//! Quasi-static hysteretic I-V characteristic (paper Fig. 2).
//!
//! Sweeping the bias slowly (relative to `T_PTM`) across a bare PTM device
//! traces the classic hysteresis loop: ohmic conduction at `R_INS` until
//! `V_IMT`, an abrupt jump to the metallic branch, ohmic conduction at
//! `R_MET` on the way down until `V_MIT`, and a jump back.

use super::dynamics::{PtmPhase, PtmState};
use super::params::PtmParams;
use crate::Result;

/// Direction of the applied-bias sweep at a sample point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepDirection {
    /// Bias increasing.
    Up,
    /// Bias decreasing.
    Down,
}

/// One sample of the quasi-static I-V characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvPoint {
    /// Applied bias \[V\].
    pub v: f64,
    /// Device current \[A\].
    pub i: f64,
    /// Phase after settling at this bias.
    pub phase: PtmPhase,
    /// Sweep direction when the sample was taken.
    pub direction: SweepDirection,
}

/// Traces the quasi-static hysteresis loop `0 → v_max → 0` with `steps`
/// samples per leg.
///
/// Quasi-static means each bias point is held long enough for any phase
/// transition to complete, so `T_PTM` does not appear in the result.
///
/// # Errors
///
/// Propagates parameter validation failure.
///
/// # Example
///
/// ```
/// use sfet_devices::ptm::{hysteresis_sweep, PtmParams, PtmPhase};
///
/// # fn main() -> Result<(), sfet_devices::DeviceError> {
/// let pts = hysteresis_sweep(&PtmParams::vo2_default(), 1.0, 100)?;
/// // Somewhere in the up-sweep the device goes metallic.
/// assert!(pts.iter().any(|p| p.phase == PtmPhase::Metallic));
/// # Ok(())
/// # }
/// ```
pub fn hysteresis_sweep(params: &PtmParams, v_max: f64, steps: usize) -> Result<Vec<IvPoint>> {
    let mut state = PtmState::new(*params)?;
    let mut pts = Vec::with_capacity(2 * steps + 2);
    let mut t = 0.0;
    // Hold time per point: long enough for a transition to finish.
    let hold = params.t_ptm.max(1e-12) * 10.0;

    let mut sample = |state: &mut PtmState, v: f64, direction: SweepDirection, t: &mut f64| {
        // Settle: fire at most once per bias point (quasi-static hold).
        if let Some(excess) = state.threshold_excess(v) {
            if excess >= 0.0 {
                state.fire(*t);
                *t += hold;
                state.update(*t);
            }
        }
        let r = state.resistance(*t);
        pts.push(IvPoint {
            v,
            i: v / r,
            phase: state.phase(),
            direction,
        });
        *t += hold;
    };

    for k in 0..=steps {
        let v = v_max * k as f64 / steps as f64;
        sample(&mut state, v, SweepDirection::Up, &mut t);
    }
    for k in (0..steps).rev() {
        let v = v_max * k as f64 / steps as f64;
        sample(&mut state, v, SweepDirection::Down, &mut t);
    }
    Ok(pts)
}

/// Extracts the observed transition voltages from a swept loop: the first
/// up-sweep bias at which the device is metallic, and the first down-sweep
/// bias at which it is insulating again.
///
/// Returns `None` for a loop that never transitioned.
pub fn extract_thresholds(points: &[IvPoint]) -> Option<(f64, f64)> {
    let v_up = points
        .iter()
        .find(|p| p.direction == SweepDirection::Up && p.phase == PtmPhase::Metallic)?
        .v;
    let v_down = points
        .iter()
        .find(|p| p.direction == SweepDirection::Down && p.phase == PtmPhase::Insulating)?
        .v;
    Some((v_up, v_down))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_reproduces_thresholds() {
        let p = PtmParams::vo2_default();
        let pts = hysteresis_sweep(&p, 1.0, 200).unwrap();
        let (v_up, v_down) = extract_thresholds(&pts).unwrap();
        assert!((v_up - p.v_imt).abs() < 0.01, "IMT at {v_up}");
        assert!((v_down - p.v_mit).abs() < 0.01, "MIT at {v_down}");
    }

    #[test]
    fn hysteresis_window_exists() {
        let p = PtmParams::vo2_default();
        let pts = hysteresis_sweep(&p, 1.0, 100).unwrap();
        // At v = 0.25 V (between V_MIT and V_IMT) the up-sweep is insulating
        // but the down-sweep is metallic: that's the hysteresis.
        let up = pts
            .iter()
            .find(|pt| pt.direction == SweepDirection::Up && (pt.v - 0.25).abs() < 6e-3)
            .unwrap();
        let down = pts
            .iter()
            .find(|pt| pt.direction == SweepDirection::Down && (pt.v - 0.25).abs() < 6e-3)
            .unwrap();
        assert_eq!(up.phase, PtmPhase::Insulating);
        assert_eq!(down.phase, PtmPhase::Metallic);
        assert!(
            down.i / up.i > 10.0,
            "metallic branch carries far more current"
        );
    }

    #[test]
    fn current_jump_at_transition() {
        let p = PtmParams::vo2_default();
        let pts = hysteresis_sweep(&p, 1.0, 400).unwrap();
        let mut max_jump = 0.0f64;
        for w in pts.windows(2) {
            if w[0].direction == SweepDirection::Up && w[1].direction == SweepDirection::Up {
                max_jump = max_jump.max(w[1].i / w[0].i.max(1e-30));
            }
        }
        // R_INS/R_MET = 100 ⇒ the jump is ~two decades.
        assert!(max_jump > 50.0, "jump ratio {max_jump}");
    }

    #[test]
    fn returns_to_insulating_at_zero() {
        let p = PtmParams::vo2_default();
        let pts = hysteresis_sweep(&p, 1.0, 100).unwrap();
        let last = pts.last().unwrap();
        assert_eq!(last.phase, PtmPhase::Insulating);
        assert!(last.i.abs() < 1e-9);
    }

    #[test]
    fn below_threshold_sweep_never_fires() {
        let p = PtmParams::vo2_default();
        let pts = hysteresis_sweep(&p, 0.35, 50).unwrap();
        assert!(pts.iter().all(|pt| pt.phase == PtmPhase::Insulating));
        assert!(extract_thresholds(&pts).is_none());
    }

    #[test]
    fn ohmic_branches_have_correct_slope() {
        let p = PtmParams::vo2_default();
        let pts = hysteresis_sweep(&p, 1.0, 100).unwrap();
        for pt in &pts {
            let expect = match pt.phase {
                PtmPhase::Insulating => pt.v / p.r_ins,
                PtmPhase::Metallic => pt.v / p.r_met,
            };
            assert!((pt.i - expect).abs() <= 1e-12 + 1e-9 * expect.abs());
        }
    }
}
