//! PTM phase state machine with finite switching time.
//!
//! The state machine is advanced *between* accepted simulator time steps:
//! within a step the resistance is treated as a known function of time,
//! keeping the device linear inside the Newton solve. The simulator
//! monitors [`PtmState::threshold_excess`] to detect crossings, shrinks the
//! step to land near the crossing, then calls [`PtmState::fire`].

use super::params::PtmParams;
use crate::Result;
use sfet_numeric::smooth::{exp_lerp, smoothstep};

/// Stable phase of a PTM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtmPhase {
    /// High-resistance insulating phase (`R_INS`).
    Insulating,
    /// Low-resistance metallic phase (`R_MET`).
    Metallic,
}

impl PtmPhase {
    /// The phase a transition from `self` targets.
    pub fn other(&self) -> PtmPhase {
        match self {
            PtmPhase::Insulating => PtmPhase::Metallic,
            PtmPhase::Metallic => PtmPhase::Insulating,
        }
    }
}

impl std::fmt::Display for PtmPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PtmPhase::Insulating => "insulating",
            PtmPhase::Metallic => "metallic",
        })
    }
}

/// A recorded phase transition (used by the Fig. 8 transition-count
/// analysis and by waveform annotation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionEvent {
    /// Simulation time at which the transition began \[s\].
    pub time: f64,
    /// Phase the device is transitioning *to*.
    pub to: PtmPhase,
}

impl TransitionEvent {
    /// `true` for an insulator→metal transition (IMT), `false` for
    /// metal→insulator (MIT). The telemetry layer uses this to split
    /// the `ptm.imt_events` / `ptm.mit_events` counters.
    pub fn is_imt(&self) -> bool {
        self.to == PtmPhase::Metallic
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Transition {
    start: f64,
    from_r: f64,
}

/// A serializable snapshot of a [`PtmState`]'s dynamic fields (phase and
/// any in-flight transition), *excluding* the parameters — a snapshot is
/// only meaningful restored onto a state built from the same [`PtmParams`].
/// Used by the simulator's transient checkpoint format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtmSnapshot {
    /// Stable phase at snapshot time.
    pub phase: PtmPhase,
    /// In-flight transition as `(start_time, from_resistance)`, if any.
    pub transition: Option<(f64, f64)>,
}

/// Dynamic state of one PTM device instance.
///
/// # Example
///
/// ```
/// use sfet_devices::ptm::{PtmParams, PtmState, PtmPhase};
///
/// # fn main() -> Result<(), sfet_devices::DeviceError> {
/// let mut ptm = PtmState::new(PtmParams::vo2_default())?;
/// assert_eq!(ptm.phase(), PtmPhase::Insulating);
/// // 0.5 V across the device exceeds V_IMT = 0.4 V:
/// assert!(ptm.threshold_excess(0.5).unwrap() > 0.0);
/// ptm.fire(1e-12);
/// ptm.update(1e-12 + 20e-12); // past T_PTM: transition completes
/// assert_eq!(ptm.phase(), PtmPhase::Metallic);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PtmState {
    params: PtmParams,
    phase: PtmPhase,
    transition: Option<Transition>,
}

impl PtmState {
    /// Creates a PTM in the insulating phase (the zero-bias state).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn new(params: PtmParams) -> Result<Self> {
        params.validate()?;
        Ok(PtmState {
            params,
            phase: PtmPhase::Insulating,
            transition: None,
        })
    }

    /// The device parameters.
    pub fn params(&self) -> &PtmParams {
        &self.params
    }

    /// Current stable phase (the *source* phase while a transition is in
    /// flight).
    pub fn phase(&self) -> PtmPhase {
        self.phase
    }

    /// Whether a phase transition is currently in progress.
    pub fn in_transition(&self) -> bool {
        self.transition.is_some()
    }

    fn stable_resistance(&self, phase: PtmPhase) -> f64 {
        match phase {
            PtmPhase::Insulating => self.params.r_ins,
            PtmPhase::Metallic => self.params.r_met,
        }
    }

    /// Device resistance at absolute time `t`.
    ///
    /// During a transition the resistance follows a smooth log-space ramp
    /// from the value at firing time to the target phase's resistance over
    /// `T_PTM`; otherwise it is the stable phase resistance.
    pub fn resistance(&self, t: f64) -> f64 {
        match self.transition {
            None => self.stable_resistance(self.phase),
            Some(tr) => {
                let target = self.stable_resistance(self.phase.other());
                if self.params.t_ptm <= 0.0 {
                    return target;
                }
                let progress = smoothstep((t - tr.start) / self.params.t_ptm);
                exp_lerp(tr.from_r, target, progress)
            }
        }
    }

    /// Signed distance of `|v|` past the armed threshold, or `None` while a
    /// transition is in flight (the device cannot re-trigger until the
    /// current transition completes).
    ///
    /// A non-negative return value means the threshold has been reached and
    /// [`fire`](Self::fire) should be called.
    pub fn threshold_excess(&self, v: f64) -> Option<f64> {
        if self.transition.is_some() {
            return None;
        }
        Some(match self.phase {
            PtmPhase::Insulating => v.abs() - self.params.v_imt,
            PtmPhase::Metallic => self.params.v_mit - v.abs(),
        })
    }

    /// Begins a phase transition at time `t`, returning the event record.
    ///
    /// With `t_ptm == 0` the transition completes immediately.
    ///
    /// # Panics
    ///
    /// Panics if a transition is already in flight (the simulator must not
    /// fire a non-armed device; see [`threshold_excess`](Self::threshold_excess)).
    pub fn fire(&mut self, t: f64) -> TransitionEvent {
        assert!(
            self.transition.is_none(),
            "PTM fired while a transition is already in flight"
        );
        let to = self.phase.other();
        if self.params.t_ptm <= 0.0 {
            self.phase = to;
        } else {
            self.transition = Some(Transition {
                start: t,
                from_r: self.stable_resistance(self.phase),
            });
        }
        TransitionEvent { time: t, to }
    }

    /// Completes any in-flight transition whose `T_PTM` window has elapsed
    /// by time `t`. Called after every accepted simulator step.
    pub fn update(&mut self, t: f64) {
        if let Some(tr) = self.transition {
            if t >= tr.start + self.params.t_ptm {
                self.phase = self.phase.other();
                self.transition = None;
            }
        }
    }

    /// Resets to the zero-bias (insulating, idle) state.
    pub fn reset(&mut self) {
        self.phase = PtmPhase::Insulating;
        self.transition = None;
    }

    /// Captures the dynamic state (phase + in-flight transition) for
    /// checkpointing. Parameters are not included; see [`PtmSnapshot`].
    pub fn snapshot(&self) -> PtmSnapshot {
        PtmSnapshot {
            phase: self.phase,
            transition: self.transition.map(|tr| (tr.start, tr.from_r)),
        }
    }

    /// Restores a state previously captured with [`snapshot`](Self::snapshot).
    /// The caller must ensure the snapshot came from a device with the same
    /// parameters, or resistance evaluation will be inconsistent.
    pub fn restore(&mut self, snap: &PtmSnapshot) {
        self.phase = snap.phase;
        self.transition = snap
            .transition
            .map(|(start, from_r)| Transition { start, from_r });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> PtmState {
        PtmState::new(PtmParams::vo2_default()).unwrap()
    }

    #[test]
    fn starts_insulating() {
        let s = state();
        assert_eq!(s.phase(), PtmPhase::Insulating);
        assert!(!s.in_transition());
        assert_eq!(s.resistance(0.0), 500e3);
    }

    #[test]
    fn threshold_arming_insulating() {
        let s = state();
        assert!(s.threshold_excess(0.39).unwrap() < 0.0);
        assert!(s.threshold_excess(0.41).unwrap() > 0.0);
        // Bipolar: negative bias triggers too.
        assert!(s.threshold_excess(-0.41).unwrap() > 0.0);
    }

    #[test]
    fn full_transition_cycle() {
        let mut s = state();
        let ev = s.fire(0.0);
        assert_eq!(ev.to, PtmPhase::Metallic);
        assert!(s.in_transition());
        // Mid-transition resistance is strictly between the endpoints.
        let r_mid = s.resistance(5e-12);
        assert!(r_mid < 500e3 && r_mid > 5e3);
        s.update(9e-12);
        assert!(s.in_transition(), "not yet complete at 9 ps");
        s.update(10e-12);
        assert!(!s.in_transition());
        assert_eq!(s.phase(), PtmPhase::Metallic);
        assert_eq!(s.resistance(11e-12), 5e3);
        // Metallic arming: drops below V_MIT.
        assert!(s.threshold_excess(0.05).unwrap() > 0.0);
        assert!(s.threshold_excess(0.2).unwrap() < 0.0);
        // Back to insulating.
        s.fire(20e-12);
        s.update(40e-12);
        assert_eq!(s.phase(), PtmPhase::Insulating);
    }

    #[test]
    fn resistance_monotone_during_imt_transition() {
        let mut s = state();
        s.fire(0.0);
        let mut prev = s.resistance(0.0);
        for i in 1..=20 {
            let t = i as f64 * 0.5e-12;
            let r = s.resistance(t);
            assert!(r <= prev + 1e-9, "resistance must fall monotonically");
            prev = r;
        }
        assert!((s.resistance(10e-12) - 5e3).abs() < 1.0);
    }

    #[test]
    fn no_rearm_during_transition() {
        let mut s = state();
        s.fire(0.0);
        assert_eq!(s.threshold_excess(1.0), None);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_fire_panics() {
        let mut s = state();
        s.fire(0.0);
        s.fire(1e-12);
    }

    #[test]
    fn zero_tptm_instantaneous() {
        let mut s = PtmState::new(PtmParams::vo2_default().with_t_ptm(0.0)).unwrap();
        s.fire(0.0);
        assert!(!s.in_transition());
        assert_eq!(s.phase(), PtmPhase::Metallic);
        assert_eq!(s.resistance(0.0), 5e3);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut s = state();
        s.fire(0.0);
        s.update(20e-12);
        s.reset();
        assert_eq!(s.phase(), PtmPhase::Insulating);
        assert!(!s.in_transition());
    }

    #[test]
    fn resistance_continuous_at_fire_and_completion() {
        let mut s = state();
        let r_before = s.resistance(0.0);
        s.fire(0.0);
        let r_at_fire = s.resistance(0.0);
        assert!((r_before - r_at_fire).abs() / r_before < 1e-12);
        let r_end_minus = s.resistance(10e-12 - 1e-18);
        s.update(10e-12);
        let r_end_plus = s.resistance(10e-12);
        assert!((r_end_minus - r_end_plus).abs() / r_end_plus < 1e-6);
    }

    #[test]
    fn snapshot_round_trips_mid_transition() {
        let mut s = state();
        s.fire(1e-12);
        let snap = s.snapshot();
        assert_eq!(snap.phase, PtmPhase::Insulating);
        assert!(snap.transition.is_some());
        let r_mid = s.resistance(5e-12);
        let mut fresh = state();
        fresh.restore(&snap);
        assert_eq!(fresh, s);
        assert_eq!(fresh.resistance(5e-12).to_bits(), r_mid.to_bits());
        // Restored state completes the transition exactly like the original.
        fresh.update(11e-12);
        s.update(11e-12);
        assert_eq!(fresh.phase(), s.phase());
    }

    #[test]
    fn phase_display_and_other() {
        assert_eq!(PtmPhase::Insulating.other(), PtmPhase::Metallic);
        assert_eq!(PtmPhase::Metallic.other(), PtmPhase::Insulating);
        assert_eq!(PtmPhase::Insulating.to_string(), "insulating");
    }
}
