//! PTM device parameters.

use crate::{DeviceError, Result};

/// Parameters of a phase-transition-material device.
///
/// Defaults ([`PtmParams::vo2_default`]) follow Fig. 4 of the paper, which
/// in turn is based on experimental VO₂ demonstrations.
///
/// # Example
///
/// ```
/// use sfet_devices::ptm::PtmParams;
///
/// # fn main() -> Result<(), sfet_devices::DeviceError> {
/// let p = PtmParams::vo2_default();
/// p.validate()?;
/// assert!(p.r_ins / p.r_met >= 100.0 - 1e-9); // two-decade resistance contrast
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtmParams {
    /// Insulator→metal transition threshold voltage \[V\].
    pub v_imt: f64,
    /// Metal→insulator transition threshold voltage \[V\].
    pub v_mit: f64,
    /// Insulating-state resistance \[Ω\].
    pub r_ins: f64,
    /// Metallic-state resistance \[Ω\].
    pub r_met: f64,
    /// Intrinsic phase-transition switching time \[s\].
    pub t_ptm: f64,
}

impl PtmParams {
    /// The paper's standard VO₂ parameter set (Fig. 4).
    pub fn vo2_default() -> Self {
        PtmParams {
            v_imt: 0.4,
            v_mit: 0.1,
            r_ins: 500e3,
            r_met: 5e3,
            t_ptm: 10e-12,
        }
    }

    /// The *ideal two-state reference mode*: the paper's VO₂ parameter set
    /// with an instantaneous transition (`t_ptm = 0`), so the device is an
    /// exact two-valued resistor with hysteretic switching at the
    /// thresholds. Circuits built on it have closed-form piecewise
    /// solutions, which is what the `sfet-verify` analytic-reference
    /// catalog scores the transient engine against.
    ///
    /// # Example
    ///
    /// ```
    /// use sfet_devices::ptm::PtmParams;
    /// let p = PtmParams::ideal_reference();
    /// assert_eq!(p.t_ptm, 0.0);
    /// p.validate().unwrap();
    /// ```
    pub fn ideal_reference() -> Self {
        Self::vo2_default().with_t_ptm(0.0)
    }

    /// Current threshold for the insulator→metal transition,
    /// `I_IMT = V_IMT / R_INS`.
    pub fn i_imt(&self) -> f64 {
        self.v_imt / self.r_ins
    }

    /// Current threshold for the metal→insulator transition,
    /// `I_MIT = V_MIT / R_MET`.
    pub fn i_mit(&self) -> f64 {
        self.v_mit / self.r_met
    }

    /// Returns a copy with thresholds replaced — the Fig. 6 sweep knob.
    pub fn with_thresholds(&self, v_imt: f64, v_mit: f64) -> Self {
        PtmParams {
            v_imt,
            v_mit,
            ..*self
        }
    }

    /// Returns a copy with the switching time replaced — the Fig. 8 knob.
    pub fn with_t_ptm(&self, t_ptm: f64) -> Self {
        PtmParams { t_ptm, ..*self }
    }

    /// VO₂'s insulator–metal transition is intrinsically *thermal*
    /// (T_C ≈ 68 °C); electrical switching rides on top of it, so both
    /// thresholds shrink as the ambient approaches T_C and the insulating
    /// resistance falls with its semiconducting activation energy. This
    /// behavioural model captures the designer-relevant consequences:
    ///
    /// * `V_IMT`, `V_MIT` scale with `(T_C − T) / (T_C − 25 °C)` (floored
    ///   at 5 % so the device never becomes a plain wire in simulation);
    /// * `R_INS` halves every 25 °C of ambient rise (metallic `R_MET` is
    ///   nearly temperature-flat and is left unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `celsius >= 68.0` (past T_C the device is permanently
    /// metallic and no longer a Soft-FET at all — reject rather than
    /// silently produce a degenerate model).
    ///
    /// # Example
    ///
    /// ```
    /// use sfet_devices::ptm::PtmParams;
    /// let hot = PtmParams::vo2_default().at_temperature(55.0);
    /// assert!(hot.v_imt < 0.4 && hot.r_ins < 500e3);
    /// hot.validate().unwrap();
    /// ```
    pub fn at_temperature(&self, celsius: f64) -> Self {
        const T_C: f64 = 68.0;
        const T_REF: f64 = 25.0;
        assert!(
            celsius < T_C,
            "ambient {celsius} C is past the VO2 transition temperature"
        );
        let threshold_scale = ((T_C - celsius) / (T_C - T_REF)).clamp(0.05, 2.0);
        let r_ins_scale = 0.5f64.powf((celsius - T_REF) / 25.0);
        PtmParams {
            v_imt: self.v_imt * threshold_scale,
            v_mit: self.v_mit * threshold_scale,
            r_ins: (self.r_ins * r_ins_scale).max(self.r_met * 2.0),
            ..*self
        }
    }

    /// Returns a copy with both resistances scaled by `k`, preserving the
    /// `R_INS/R_MET` contrast. Used when attaching a PTM to a much larger
    /// gate capacitance (e.g. a power gate): physically, a wider PTM via
    /// has proportionally lower resistance in both phases.
    pub fn scaled_resistance(&self, k: f64) -> Self {
        PtmParams {
            r_ins: self.r_ins * k,
            r_met: self.r_met * k,
            ..*self
        }
    }

    /// Validates parameter domains and mutual consistency.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::InvalidParameter`] for out-of-domain single values.
    /// * [`DeviceError::InconsistentParameters`] if `v_mit >= v_imt` or
    ///   `r_met >= r_ins`.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, bool, &'static str); 5] = [
            ("v_imt", self.v_imt, self.v_imt > 0.0, "v_imt > 0"),
            ("v_mit", self.v_mit, self.v_mit > 0.0, "v_mit > 0"),
            ("r_ins", self.r_ins, self.r_ins > 0.0, "r_ins > 0"),
            ("r_met", self.r_met, self.r_met > 0.0, "r_met > 0"),
            ("t_ptm", self.t_ptm, self.t_ptm >= 0.0, "t_ptm >= 0"),
        ];
        for (name, value, ok, constraint) in checks {
            if !ok {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value,
                    constraint,
                });
            }
        }
        if self.v_mit >= self.v_imt {
            return Err(DeviceError::InconsistentParameters(format!(
                "v_mit ({}) must be below v_imt ({})",
                self.v_mit, self.v_imt
            )));
        }
        if self.r_met >= self.r_ins {
            return Err(DeviceError::InconsistentParameters(format!(
                "r_met ({}) must be below r_ins ({})",
                self.r_met, self.r_ins
            )));
        }
        Ok(())
    }
}

impl Default for PtmParams {
    fn default() -> Self {
        Self::vo2_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        PtmParams::vo2_default().validate().unwrap();
    }

    #[test]
    fn current_thresholds() {
        let p = PtmParams::vo2_default();
        assert!((p.i_imt() - 0.4 / 500e3).abs() < 1e-15);
        assert!((p.i_mit() - 0.1 / 5e3).abs() < 1e-12);
    }

    #[test]
    fn inverted_thresholds_rejected() {
        let p = PtmParams::vo2_default().with_thresholds(0.1, 0.4);
        assert!(matches!(
            p.validate(),
            Err(DeviceError::InconsistentParameters(_))
        ));
    }

    #[test]
    fn inverted_resistances_rejected() {
        let mut p = PtmParams::vo2_default();
        p.r_met = 1e6;
        assert!(p.validate().is_err());
    }

    #[test]
    fn negative_values_rejected() {
        let mut p = PtmParams::vo2_default();
        p.t_ptm = -1.0;
        assert!(matches!(
            p.validate(),
            Err(DeviceError::InvalidParameter { name: "t_ptm", .. })
        ));
    }

    #[test]
    fn resistance_scaling_preserves_contrast() {
        let p = PtmParams::vo2_default();
        let s = p.scaled_resistance(0.01);
        assert!((s.r_ins / s.r_met - p.r_ins / p.r_met).abs() < 1e-9);
        s.validate().unwrap();
    }

    #[test]
    fn temperature_model_trends() {
        let base = PtmParams::vo2_default();
        let cold = base.at_temperature(0.0);
        let hot = base.at_temperature(60.0);
        assert!(cold.v_imt > base.v_imt, "thresholds grow when cold");
        assert!(hot.v_imt < base.v_imt, "thresholds shrink when hot");
        assert!(hot.r_ins < base.r_ins, "insulating R falls when hot");
        assert_eq!(hot.r_met, base.r_met, "metallic branch flat");
        cold.validate().unwrap();
        hot.validate().unwrap();
        // Reference temperature is the identity.
        let same = base.at_temperature(25.0);
        assert!((same.v_imt - base.v_imt).abs() < 1e-12);
        assert!((same.r_ins - base.r_ins).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "transition temperature")]
    fn past_tc_rejected() {
        let _ = PtmParams::vo2_default().at_temperature(70.0);
    }

    #[test]
    fn builders_keep_other_fields() {
        let p = PtmParams::vo2_default().with_t_ptm(5e-12);
        assert_eq!(p.v_imt, 0.4);
        assert_eq!(p.t_ptm, 5e-12);
    }
}
