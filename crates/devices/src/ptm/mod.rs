//! Phase Transition Material (PTM) device model.
//!
//! The PTM is a two-terminal resistor that switches abruptly between an
//! insulating state (`R_INS`, ~MΩ) and a metallic state (`R_MET`, ~kΩ):
//!
//! * insulating → metallic when the voltage magnitude across the device
//!   reaches `V_IMT` (equivalently, when the current reaches
//!   `I_IMT = V_IMT / R_INS`);
//! * metallic → insulating when the voltage magnitude falls to `V_MIT`
//!   (`I_MIT = V_MIT / R_MET`);
//! * each transition takes a finite switching time `T_PTM`, during which
//!   the resistance ramps between the two values in log space.
//!
//! This is the same behavioural abstraction as the Verilog-A model the
//! paper simulates with (\[15\] in the paper), with parameters based on the
//! experimental VO₂ demonstrations: `R_INS = 500 kΩ`, `R_MET = 5 kΩ`,
//! `V_IMT = 0.4 V`, `V_MIT = 0.1 V`, `T_PTM = 10 ps`.

mod dynamics;
mod params;
mod static_iv;

pub use dynamics::{PtmPhase, PtmSnapshot, PtmState, TransitionEvent};
pub use params::PtmParams;
pub use static_iv::{extract_thresholds, hysteresis_sweep, IvPoint, SweepDirection};
