//! Device models for the Soft-FET reproduction.
//!
//! Two model families are provided:
//!
//! * [`mosfet`] — an EKV-style all-region analytic MOSFET, calibrated to a
//!   40 nm-class CMOS process. The paper simulates with proprietary 40 nm
//!   foundry models; the EKV formulation reproduces the behaviour the
//!   Soft-FET mechanism depends on — continuous subthreshold → strong
//!   inversion conduction and the gate capacitance that the PTM charges.
//! * [`ptm`] — the phase transition material: a two-terminal hysteretic
//!   resistor (insulating `R_INS` ↔ metallic `R_MET`) with voltage
//!   thresholds `V_IMT` / `V_MIT` and a finite switching time `T_PTM`,
//!   mirroring the Verilog-A behavioural model used in the paper.
//!
//! # Example
//!
//! ```
//! use sfet_devices::mosfet::{self, MosfetModel};
//!
//! let nmos = MosfetModel::nmos_40nm();
//! // Minimum-size device, full gate drive: a strongly-on transistor.
//! let op = mosfet::eval(&nmos, 120e-9, 40e-9, 1.0, 1.0, 0.0, 0.0);
//! assert!(op.id > 10e-6);
//! ```

pub mod mosfet;
pub mod ptm;

mod error;

pub use error::DeviceError;

/// Convenience result alias for device-model construction.
pub type Result<T> = std::result::Result<T, DeviceError>;
