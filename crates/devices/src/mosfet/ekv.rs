//! EKV current equation and its derivatives.
//!
//! The bulk-referenced EKV long-channel core is
//!
//! ```text
//! I_D = 2 n β U_T² [ F((V_P - V_SB)/U_T) - F((V_P - V_DB)/U_T) ]
//! V_P = (V_GB - V_T0) / n,      F(x) = ln²(1 + e^{x/2})
//! ```
//!
//! which is smooth through all operating regions and symmetric in
//! drain/source (reverse conduction "just works"). A first-order
//! channel-length-modulation factor `1 + λ·|V_DS|` (with a smoothed
//! absolute value) provides a finite output conductance in saturation.
//! PMOS devices are evaluated by mirroring all terminal voltages.

use super::model::{MosfetModel, Polarity};
use sfet_numeric::smooth::{logistic, softplus};

/// Smoothing width for |V_DS| in the channel-length-modulation factor \[V\].
const VDS_SMOOTH: f64 = 1e-3;

/// Operating-point currents and derivatives of a MOSFET.
///
/// Sign convention: `id` is the current flowing *into the drain terminal*
/// from the external circuit. For an on NMOS pulling its drain low, `id > 0`;
/// for an on PMOS pulling its drain high, `id < 0`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosOp {
    /// Drain current \[A\], positive into the drain.
    pub id: f64,
    /// ∂id/∂V_G \[S\].
    pub gm: f64,
    /// ∂id/∂V_D \[S\].
    pub gds: f64,
    /// ∂id/∂V_S \[S\].
    pub gms: f64,
    /// ∂id/∂V_B \[S\].
    pub gmb: f64,
}

/// Evaluates the drain current and all terminal derivatives at absolute node
/// voltages `(vg, vd, vs, vb)` for a device of width `w` and length `l`
/// (metres).
///
/// # Panics
///
/// Debug-asserts `w > 0` and `l > 0`.
///
/// # Example
///
/// ```
/// use sfet_devices::mosfet::{eval, MosfetModel};
///
/// let m = MosfetModel::nmos_40nm();
/// let on = eval(&m, 120e-9, 40e-9, 1.0, 1.0, 0.0, 0.0);
/// let off = eval(&m, 120e-9, 40e-9, 0.0, 1.0, 0.0, 0.0);
/// assert!(on.id / off.id > 1e4); // strong Ion/Ioff ratio
/// ```
pub fn eval(model: &MosfetModel, w: f64, l: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> MosOp {
    debug_assert!(w > 0.0 && l > 0.0, "device geometry must be positive");
    match model.polarity {
        Polarity::Nmos => eval_core(model, w, l, vg, vd, vs, vb),
        Polarity::Pmos => {
            // Mirror all voltages; id flips sign, conductances carry over:
            // id_p(v) = -id_n(-v) ⇒ ∂id_p/∂v_x = +∂id_n/∂v_x'|_{v'=-v}.
            let core = eval_core(model, w, l, -vg, -vd, -vs, -vb);
            MosOp {
                id: -core.id,
                gm: core.gm,
                gds: core.gds,
                gms: core.gms,
                gmb: core.gmb,
            }
        }
    }
}

/// Evaluates one device at `B` bias points (structure-of-arrays), writing
/// one [`MosOp`] per lane.
///
/// Lane `i` is **bitwise identical** to
/// `eval(model, w, l, vg[i], vd[i], vs[i], vb[i])`: the lane body *is* the
/// scalar evaluation, so there is no separate numeric path to validate —
/// the SoA signature exists so sweep drivers can evaluate a whole batch of
/// bias variants per model pass and the compiler can vectorise the
/// straight-line smooth-primitive core across lanes.
///
/// # Panics
///
/// Panics when the bias slices and `out` do not all share one length.
// One slice per terminal mirrors the scalar signature; bundling them
// into a struct would force callers to interleave their SoA storage.
#[allow(clippy::too_many_arguments)]
pub fn eval_batch(
    model: &MosfetModel,
    w: f64,
    l: f64,
    vg: &[f64],
    vd: &[f64],
    vs: &[f64],
    vb: &[f64],
    out: &mut [MosOp],
) {
    let lanes = out.len();
    assert!(
        vg.len() == lanes && vd.len() == lanes && vs.len() == lanes && vb.len() == lanes,
        "bias slices must match the output lane count ({lanes})"
    );
    for i in 0..lanes {
        out[i] = eval(model, w, l, vg[i], vd[i], vs[i], vb[i]);
    }
}

/// NMOS-convention EKV core with CLM.
fn eval_core(model: &MosfetModel, w: f64, l: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> MosOp {
    let ut = model.ut;
    let n = model.slope_n;
    let beta = model.kp * w / l;
    let k = 2.0 * n * beta * ut * ut;

    let vp = ((vg - vb) - model.vt0) / n;
    let xs = (vp - (vs - vb)) / ut;
    let xd = (vp - (vd - vb)) / ut;

    // F(x) = softplus(x/2)^2 ; F'(x) = softplus(x/2) * logistic(x/2)
    let fs = {
        let s = softplus(0.5 * xs);
        s * s
    };
    let fd = {
        let s = softplus(0.5 * xd);
        s * s
    };
    let fps = softplus(0.5 * xs) * logistic(0.5 * xs);
    let fpd = softplus(0.5 * xd) * logistic(0.5 * xd);

    let base = k * (fs - fd);
    let dbase_dvg = k / (n * ut) * (fps - fpd);
    let dbase_dvd = k * fpd / ut;
    let dbase_dvs = -k * fps / ut;
    let dbase_dvb = -(dbase_dvg + dbase_dvd + dbase_dvs);

    // Channel-length modulation with a smoothed |vds|.
    let vds = vd - vs;
    let sabs = (vds * vds + VDS_SMOOTH * VDS_SMOOTH).sqrt();
    let m = 1.0 + model.lambda * sabs;
    let dm_dvd = model.lambda * vds / sabs;

    MosOp {
        id: base * m,
        gm: dbase_dvg * m,
        gds: dbase_dvd * m + base * dm_dvd,
        gms: dbase_dvs * m - base * dm_dvd,
        gmb: dbase_dvb * m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 120e-9;
    const L: f64 = 40e-9;

    fn nmos() -> MosfetModel {
        MosfetModel::nmos_40nm()
    }
    fn pmos() -> MosfetModel {
        MosfetModel::pmos_40nm()
    }

    #[test]
    fn nmos_on_current_in_calibration_band() {
        let op = eval(&nmos(), W, L, 1.0, 1.0, 0.0, 0.0);
        // Target ~100 µA for the minimum device; accept a generous band.
        assert!(
            op.id > 40e-6 && op.id < 300e-6,
            "Ion = {:.1} µA",
            op.id * 1e6
        );
    }

    #[test]
    fn nmos_off_current_small() {
        let op = eval(&nmos(), W, L, 0.0, 1.0, 0.0, 0.0);
        assert!(op.id > 0.0);
        assert!(op.id < 50e-9, "Ioff = {:.3e}", op.id);
    }

    #[test]
    fn subthreshold_slope_near_85mv_per_decade() {
        let i1 = eval(&nmos(), W, L, 0.10, 1.0, 0.0, 0.0).id;
        let i2 = eval(&nmos(), W, L, 0.20, 1.0, 0.0, 0.0).id;
        let ss = 0.1 / (i2 / i1).log10() * 1e3; // mV/dec
        assert!(ss > 70.0 && ss < 100.0, "SS = {ss:.1} mV/dec");
    }

    #[test]
    fn zero_vds_zero_current() {
        let op = eval(&nmos(), W, L, 1.0, 0.5, 0.5, 0.0);
        assert!(op.id.abs() < 1e-12);
    }

    #[test]
    fn reverse_conduction_antisymmetric() {
        let fwd = eval(&nmos(), W, L, 1.0, 0.3, 0.1, 0.0);
        let rev = eval(&nmos(), W, L, 1.0, 0.1, 0.3, 0.0);
        assert!((fwd.id + rev.id).abs() < 1e-3 * fwd.id.abs().max(1e-12));
    }

    #[test]
    fn pmos_signs_correct() {
        // PMOS on: gate low, source at VDD, drain low — current out of drain.
        let on = eval(&pmos(), 2.0 * W, L, 0.0, 0.0, 1.0, 1.0);
        assert!(on.id < -10e-6, "PMOS on id = {:.3e}", on.id);
        // PMOS off: gate at VDD.
        let off = eval(&pmos(), 2.0 * W, L, 1.0, 0.0, 1.0, 1.0);
        assert!(off.id.abs() < 50e-9);
    }

    #[test]
    fn current_scales_with_width() {
        let a = eval(&nmos(), W, L, 1.0, 1.0, 0.0, 0.0);
        let b = eval(&nmos(), 2.0 * W, L, 1.0, 1.0, 0.0, 0.0);
        assert!((b.id / a.id - 2.0).abs() < 1e-9);
    }

    /// Numerical check of all four derivatives for both polarities over a
    /// grid of bias points.
    #[test]
    fn derivatives_match_finite_difference() {
        let h = 1e-7;
        for model in [nmos(), pmos()] {
            for &vg in &[0.0, 0.3, 0.6, 1.0] {
                for &vd in &[0.0, 0.4, 1.0] {
                    for &vs in &[0.0, 0.2] {
                        let vb = if model.polarity == Polarity::Nmos {
                            0.0
                        } else {
                            1.0
                        };
                        let op = eval(&model, W, L, vg, vd, vs, vb);
                        let num_gm = (eval(&model, W, L, vg + h, vd, vs, vb).id
                            - eval(&model, W, L, vg - h, vd, vs, vb).id)
                            / (2.0 * h);
                        let num_gds = (eval(&model, W, L, vg, vd + h, vs, vb).id
                            - eval(&model, W, L, vg, vd - h, vs, vb).id)
                            / (2.0 * h);
                        let num_gms = (eval(&model, W, L, vg, vd, vs + h, vb).id
                            - eval(&model, W, L, vg, vd, vs - h, vb).id)
                            / (2.0 * h);
                        let num_gmb = (eval(&model, W, L, vg, vd, vs, vb + h).id
                            - eval(&model, W, L, vg, vd, vs, vb - h).id)
                            / (2.0 * h);
                        let tol = 1e-4 * op.gm.abs().max(op.gds.abs()).max(1e-9) + 1e-9;
                        assert!((op.gm - num_gm).abs() < tol, "gm at ({vg},{vd},{vs})");
                        assert!((op.gds - num_gds).abs() < tol, "gds at ({vg},{vd},{vs})");
                        assert!((op.gms - num_gms).abs() < tol, "gms at ({vg},{vd},{vs})");
                        assert!((op.gmb - num_gmb).abs() < tol, "gmb at ({vg},{vd},{vs})");
                    }
                }
            }
        }
    }

    /// The SoA entry point is bitwise-identical to per-lane scalar calls,
    /// over an LCG-randomised bias cloud for both polarities.
    #[test]
    fn eval_batch_bitwise_matches_scalar() {
        let mut state = 0x5eed_cafe_f00du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Bias in [-0.2, 1.2] V.
            (state >> 11) as f64 / (1u64 << 53) as f64 * 1.4 - 0.2
        };
        for model in [nmos(), pmos()] {
            for lanes in [1usize, 2, 4, 7, 8] {
                let vg: Vec<f64> = (0..lanes).map(|_| next()).collect();
                let vd: Vec<f64> = (0..lanes).map(|_| next()).collect();
                let vs: Vec<f64> = (0..lanes).map(|_| next()).collect();
                let vb: Vec<f64> = (0..lanes).map(|_| next()).collect();
                let mut out = vec![MosOp::default(); lanes];
                eval_batch(&model, W, L, &vg, &vd, &vs, &vb, &mut out);
                for i in 0..lanes {
                    let s = eval(&model, W, L, vg[i], vd[i], vs[i], vb[i]);
                    for (b, r) in [
                        (out[i].id, s.id),
                        (out[i].gm, s.gm),
                        (out[i].gds, s.gds),
                        (out[i].gms, s.gms),
                        (out[i].gmb, s.gmb),
                    ] {
                        assert_eq!(b.to_bits(), r.to_bits(), "lane {i} of {lanes}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bias slices must match")]
    fn eval_batch_rejects_ragged_inputs() {
        let mut out = vec![MosOp::default(); 2];
        eval_batch(
            &nmos(),
            W,
            L,
            &[0.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
            &mut out,
        );
    }

    #[test]
    fn gm_positive_in_conduction() {
        let op = eval(&nmos(), W, L, 0.7, 1.0, 0.0, 0.0);
        assert!(op.gm > 0.0);
        assert!(op.gds > 0.0);
        assert!(op.gms < 0.0);
    }

    #[test]
    fn hvt_reduces_current() {
        let base = eval(&nmos(), W, L, 1.0, 1.0, 0.0, 0.0).id;
        let hvt_model = nmos().with_vt_shift(0.15);
        let hvt = eval(&hvt_model, W, L, 1.0, 1.0, 0.0, 0.0).id;
        assert!(hvt < base);
        assert!(hvt > 0.1 * base, "HVT should weaken, not kill, the device");
    }

    #[test]
    fn low_vdd_degrades_hvt_more_than_nominal() {
        // The paper's Fig. 5 hinges on this: at low VCC the HVT device loses
        // proportionally far more drive than the nominal device.
        let nom_hi = eval(&nmos(), W, L, 1.0, 1.0, 0.0, 0.0).id;
        let nom_lo = eval(&nmos(), W, L, 0.6, 0.6, 0.0, 0.0).id;
        let hvt_model = nmos().with_vt_shift(0.2);
        let hvt_hi = eval(&hvt_model, W, L, 1.0, 1.0, 0.0, 0.0).id;
        let hvt_lo = eval(&hvt_model, W, L, 0.6, 0.6, 0.0, 0.0).id;
        assert!(hvt_lo / hvt_hi < nom_lo / nom_hi);
    }

    #[test]
    fn continuity_across_threshold() {
        // Sample finely through V_T and require small relative jumps.
        let mut prev = eval(&nmos(), W, L, 0.30, 1.0, 0.0, 0.0).id;
        let mut v = 0.30;
        while v < 0.60 {
            v += 1e-3;
            let cur = eval(&nmos(), W, L, v, 1.0, 0.0, 0.0).id;
            assert!(cur > prev, "monotone through threshold");
            assert!((cur - prev) / prev < 0.1, "no jumps at vg={v}");
            prev = cur;
        }
    }
}
