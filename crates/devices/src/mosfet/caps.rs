//! Intrinsic gate capacitances.
//!
//! The Soft-FET mechanism is governed by the R_PTM·C_gate time constant, so
//! the gate capacitance is a first-class model output. We use the constant
//! (Meyer-style, worst-case) partition: the channel charge splits equally
//! between source and drain, plus overlap capacitance on each side and a
//! small gate-bulk term. Constant capacitances keep the transient Jacobian
//! linear in the cap branches while preserving the total gate charge the
//! PTM must deliver.

use super::model::MosfetModel;

/// Lumped gate capacitances of a MOSFET instance \[F\].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateCaps {
    /// Gate–source capacitance.
    pub cgs: f64,
    /// Gate–drain capacitance.
    pub cgd: f64,
    /// Gate–bulk capacitance.
    pub cgb: f64,
}

impl GateCaps {
    /// Total capacitance seen looking into the gate terminal.
    pub fn total(&self) -> f64 {
        self.cgs + self.cgd + self.cgb
    }
}

/// Computes the lumped gate capacitances for a device of width `w` and
/// length `l` (metres).
///
/// # Panics
///
/// Debug-asserts `w > 0` and `l > 0`.
///
/// # Example
///
/// ```
/// use sfet_devices::mosfet::{gate_caps, MosfetModel};
///
/// let c = gate_caps(&MosfetModel::nmos_40nm(), 120e-9, 40e-9);
/// // Minimum 40 nm-class device: a fraction of a femtofarad.
/// assert!(c.total() > 0.05e-15 && c.total() < 1e-15);
/// ```
pub fn gate_caps(model: &MosfetModel, w: f64, l: f64) -> GateCaps {
    debug_assert!(w > 0.0 && l > 0.0, "device geometry must be positive");
    let c_channel = model.cox * w * l;
    let c_ov = model.cov * w;
    GateCaps {
        cgs: 0.45 * c_channel + c_ov,
        cgd: 0.45 * c_channel + c_ov,
        cgb: 0.10 * c_channel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_scale_with_width() {
        let m = MosfetModel::nmos_40nm();
        let a = gate_caps(&m, 120e-9, 40e-9);
        let b = gate_caps(&m, 240e-9, 40e-9);
        assert!((b.total() / a.total() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn channel_charge_fully_partitioned() {
        let m = MosfetModel::nmos_40nm();
        let c = gate_caps(&m, 200e-9, 40e-9);
        let channel = m.cox * 200e-9 * 40e-9;
        let overlap = 2.0 * m.cov * 200e-9;
        assert!((c.total() - (channel + overlap)).abs() < 1e-21);
    }

    #[test]
    fn min_inverter_gate_cap_magnitude() {
        // Wn=120n + Wp=240n inverter input cap should be ~0.3-1 fF: the value
        // the PTM time constant calibration in DESIGN.md relies on.
        let n = gate_caps(&MosfetModel::nmos_40nm(), 120e-9, 40e-9);
        let p = gate_caps(&MosfetModel::pmos_40nm(), 240e-9, 40e-9);
        let cin = n.total() + p.total();
        assert!(cin > 0.2e-15 && cin < 1.5e-15, "Cin = {:.3e}", cin);
    }

    #[test]
    fn symmetric_source_drain_split() {
        let c = gate_caps(&MosfetModel::pmos_40nm(), 240e-9, 40e-9);
        assert_eq!(c.cgs, c.cgd);
        assert!(c.cgb < c.cgs);
    }
}
