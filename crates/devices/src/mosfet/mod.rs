//! EKV-style all-region MOSFET model.
//!
//! The Soft-FET mechanism depends on two transistor properties:
//!
//! 1. the *shape* of I_D(V_GS) from subthreshold through strong inversion —
//!    the paper's "weakly turned on" vs "strongly turned on" distinction —
//!    which requires a model that is smooth and accurate across regions; and
//! 2. the gate capacitance the PTM has to charge.
//!
//! The EKV formulation provides (1) with a single C∞ expression (no
//! region-stitching discontinuities to upset Newton), and the model card
//! carries the oxide/overlap capacitances for (2). See [`MosfetModel`] for the
//! 40 nm-class calibration targets and [`eval`] for the current/derivative
//! evaluation used by the MNA stamps.

mod caps;
mod ekv;
mod model;

pub use caps::{gate_caps, GateCaps};
pub use ekv::{eval, eval_batch, MosOp};
pub use model::{Corner, MosfetModel, Polarity};
