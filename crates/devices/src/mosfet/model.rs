//! MOSFET model cards and 40 nm-class presets.

use crate::{DeviceError, Result};

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Global process corner for MOSFET model cards.
///
/// Corners shift threshold voltage and transconductance together the way
/// foundry SS/TT/FF cards do; used to check that Soft-FET benefits survive
/// process spread (an extension of the paper's §IV sensitivity study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Corner {
    /// Slow-slow: higher |V_T|, lower mobility.
    Slow,
    /// Typical-typical.
    #[default]
    Typical,
    /// Fast-fast: lower |V_T|, higher mobility.
    Fast,
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Corner::Slow => "ss",
            Corner::Typical => "tt",
            Corner::Fast => "ff",
        })
    }
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Polarity::Nmos => "nmos",
            Polarity::Pmos => "pmos",
        })
    }
}

/// EKV-style MOSFET model card.
///
/// The default cards ([`MosfetModel::nmos_40nm`] / [`MosfetModel::pmos_40nm`])
/// are calibrated to 40 nm-class targets: |V_T0| ≈ 0.45 V, minimum-size
/// (W = 3·L) on-current of ~100 µA at V_GS = V_DS = 1 V, subthreshold slope
/// ≈ 85 mV/dec, and a gate capacitance around 0.2 fF for the minimum device.
/// The paper's proprietary foundry model differs in absolute numbers, but
/// every paper experiment is a *relative* comparison (iso-I_MAX, percentage
/// reductions), which these cards preserve.
///
/// # Example
///
/// ```
/// use sfet_devices::mosfet::MosfetModel;
///
/// let hvt = MosfetModel::nmos_40nm().with_vt_shift(0.15);
/// assert!(hvt.vt0 > MosfetModel::nmos_40nm().vt0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetModel {
    /// Model name (used by the netlist parser/writer).
    pub name: String,
    /// Channel polarity.
    pub polarity: Polarity,
    /// Threshold voltage magnitude at zero back-bias \[V\].
    pub vt0: f64,
    /// Subthreshold slope factor `n` (dimensionless, > 1).
    pub slope_n: f64,
    /// Transconductance parameter `k' = µ·C_ox` \[A/V²\].
    pub kp: f64,
    /// Channel-length modulation coefficient \[1/V\].
    pub lambda: f64,
    /// Gate-oxide capacitance per unit area \[F/m²\].
    pub cox: f64,
    /// Gate overlap capacitance per unit width \[F/m\] (each of source/drain side).
    pub cov: f64,
    /// Thermal voltage kT/q \[V\].
    pub ut: f64,
}

impl MosfetModel {
    /// 40 nm-class NMOS card.
    pub fn nmos_40nm() -> Self {
        MosfetModel {
            name: "nmos40".into(),
            polarity: Polarity::Nmos,
            vt0: 0.45,
            slope_n: 1.35,
            kp: 340e-6,
            lambda: 0.10,
            cox: 0.012,   // 12 fF/µm² (includes poly depletion / quantum derating)
            cov: 0.25e-9, // 0.25 fF/µm per side
            ut: 0.02585,
        }
    }

    /// 40 nm-class PMOS card (hole mobility ≈ 0.4× electron mobility; the
    /// standard-cell convention compensates with W_P ≈ 2·W_N).
    pub fn pmos_40nm() -> Self {
        MosfetModel {
            name: "pmos40".into(),
            polarity: Polarity::Pmos,
            vt0: 0.45,
            slope_n: 1.35,
            kp: 140e-6,
            lambda: 0.12,
            cox: 0.012,
            cov: 0.25e-9,
            ut: 0.02585,
        }
    }

    /// Returns a copy skewed to a process corner: ±40 mV on |V_T0| and
    /// ∓8 % on `kp` (SS is slower *and* weaker, FF the opposite).
    ///
    /// # Example
    ///
    /// ```
    /// use sfet_devices::mosfet::{Corner, MosfetModel};
    /// let ss = MosfetModel::nmos_40nm().at_corner(Corner::Slow);
    /// assert!(ss.vt0 > MosfetModel::nmos_40nm().vt0);
    /// assert!(ss.kp < MosfetModel::nmos_40nm().kp);
    /// ```
    pub fn at_corner(&self, corner: Corner) -> Self {
        let (dvt, kp_scale) = match corner {
            Corner::Slow => (0.04, 0.92),
            Corner::Typical => (0.0, 1.0),
            Corner::Fast => (-0.04, 1.08),
        };
        let mut m = self.clone();
        m.vt0 += dvt;
        m.kp *= kp_scale;
        m.name = format!("{}_{corner}", self.name);
        m
    }

    /// Returns a copy with the threshold magnitude shifted by `dvt` volts —
    /// the "HVT" knob used by the paper's iso-I_MAX comparison (Fig. 5).
    ///
    /// # Example
    ///
    /// ```
    /// use sfet_devices::mosfet::MosfetModel;
    /// let m = MosfetModel::pmos_40nm().with_vt_shift(0.1);
    /// assert!((m.vt0 - 0.55).abs() < 1e-12);
    /// assert!(m.name.contains("dvt"));
    /// ```
    pub fn with_vt_shift(&self, dvt: f64) -> Self {
        let mut m = self.clone();
        m.vt0 += dvt;
        m.name = format!("{}_dvt{:+.0}m", self.name, dvt * 1e3);
        m
    }

    /// Validates physical constraints on the card.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64, bool, &'static str); 6] = [
            ("vt0", self.vt0, self.vt0 > 0.0, "vt0 > 0"),
            ("slope_n", self.slope_n, self.slope_n >= 1.0, "slope_n >= 1"),
            ("kp", self.kp, self.kp > 0.0, "kp > 0"),
            ("lambda", self.lambda, self.lambda >= 0.0, "lambda >= 0"),
            ("cox", self.cox, self.cox > 0.0, "cox > 0"),
            ("ut", self.ut, self.ut > 0.0, "ut > 0"),
        ];
        for (name, value, ok, constraint) in checks {
            if !ok {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value,
                    constraint,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MosfetModel::nmos_40nm().validate().unwrap();
        MosfetModel::pmos_40nm().validate().unwrap();
    }

    #[test]
    fn vt_shift_applies() {
        let m = MosfetModel::nmos_40nm().with_vt_shift(0.2);
        assert!((m.vt0 - 0.65).abs() < 1e-12);
        m.validate().unwrap();
    }

    #[test]
    fn invalid_card_rejected() {
        let mut m = MosfetModel::nmos_40nm();
        m.kp = 0.0;
        assert!(matches!(
            m.validate(),
            Err(DeviceError::InvalidParameter { name: "kp", .. })
        ));
    }

    #[test]
    fn polarity_display() {
        assert_eq!(Polarity::Nmos.to_string(), "nmos");
        assert_eq!(Polarity::Pmos.to_string(), "pmos");
    }

    #[test]
    fn corners_ordered() {
        let base = MosfetModel::nmos_40nm();
        let ss = base.at_corner(Corner::Slow);
        let ff = base.at_corner(Corner::Fast);
        assert!(ss.vt0 > base.vt0 && base.vt0 > ff.vt0);
        assert!(ss.kp < base.kp && base.kp < ff.kp);
        ss.validate().unwrap();
        ff.validate().unwrap();
        assert!(ss.name.contains("ss"));
        // Typical corner is the identity up to the name.
        let tt = base.at_corner(Corner::Typical);
        assert_eq!(tt.vt0, base.vt0);
        assert_eq!(tt.kp, base.kp);
    }

    #[test]
    fn pmos_weaker_than_nmos() {
        assert!(MosfetModel::pmos_40nm().kp < MosfetModel::nmos_40nm().kp);
    }
}
