use std::fmt;

/// Errors from device-model construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A model or instance parameter is outside its physical domain.
    InvalidParameter {
        /// Parameter name as it appears in the model card.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// Two parameters are mutually inconsistent (e.g. `V_MIT >= V_IMT`).
    InconsistentParameters(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name}={value:.3e} violates {constraint}"),
            DeviceError::InconsistentParameters(msg) => {
                write!(f, "inconsistent parameters: {msg}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = DeviceError::InvalidParameter {
            name: "r_ins",
            value: -1.0,
            constraint: "r_ins > 0",
        };
        let s = e.to_string();
        assert!(s.contains("r_ins"));
        assert!(s.contains("violates"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<DeviceError>();
    }
}
