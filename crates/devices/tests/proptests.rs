//! Property tests for the device models: EKV consistency laws and PTM
//! state-machine invariants under random parameters and biases.

use proptest::prelude::*;
use sfet_devices::mosfet::{self, MosfetModel};
use sfet_devices::ptm::{PtmParams, PtmPhase, PtmState};

fn bias() -> impl Strategy<Value = f64> {
    -0.2f64..1.2
}

proptest! {
    /// Drain current is antisymmetric under drain/source exchange (the EKV
    /// core is symmetric; CLM uses |V_DS|).
    #[test]
    fn nmos_ds_antisymmetry(vg in bias(), va in bias(), vb in bias()) {
        let m = MosfetModel::nmos_40nm();
        let fwd = mosfet::eval(&m, 120e-9, 40e-9, vg, va, vb, 0.0);
        let rev = mosfet::eval(&m, 120e-9, 40e-9, vg, vb, va, 0.0);
        let scale = fwd.id.abs().max(rev.id.abs()).max(1e-15);
        prop_assert!((fwd.id + rev.id).abs() / scale < 1e-6);
    }

    /// Current increases with gate drive (NMOS) at any drain bias.
    #[test]
    fn nmos_gm_nonnegative(vg in 0.0f64..1.0, vd in 0.05f64..1.2) {
        let m = MosfetModel::nmos_40nm();
        let lo = mosfet::eval(&m, 120e-9, 40e-9, vg, vd, 0.0, 0.0);
        let hi = mosfet::eval(&m, 120e-9, 40e-9, vg + 0.05, vd, 0.0, 0.0);
        prop_assert!(hi.id >= lo.id * (1.0 - 1e-9));
        prop_assert!(lo.gm >= 0.0);
    }

    /// PMOS mirror law: id_p(vg,vd,vs,vb) = -id_n(-vg,-vd,-vs,-vb) with the
    /// same kp.
    #[test]
    fn pmos_is_mirrored_nmos(vg in bias(), vd in bias(), vs in bias()) {
        let mut n = MosfetModel::nmos_40nm();
        let mut p = MosfetModel::pmos_40nm();
        // Equalise kp/lambda so the mirror is exact.
        p.kp = n.kp;
        p.lambda = n.lambda;
        n.slope_n = p.slope_n;
        let vb = 1.0;
        let pm = mosfet::eval(&p, 120e-9, 40e-9, vg, vd, vs, vb);
        let nm = mosfet::eval(&n, 120e-9, 40e-9, -vg, -vd, -vs, -vb);
        let scale = pm.id.abs().max(1e-15);
        prop_assert!((pm.id + nm.id).abs() / scale < 1e-9);
    }

    /// Terminal-current derivative identity: gm + gds + gms + gmb = 0
    /// (shifting all four terminals together changes nothing).
    #[test]
    fn derivative_sum_rule(vg in bias(), vd in bias(), vs in bias()) {
        for model in [MosfetModel::nmos_40nm(), MosfetModel::pmos_40nm()] {
            let op = mosfet::eval(&model, 240e-9, 40e-9, vg, vd, vs, 0.0);
            let sum = op.gm + op.gds + op.gms + op.gmb;
            let scale = op.gm.abs().max(op.gds.abs()).max(1e-12);
            prop_assert!(sum.abs() / scale < 1e-6, "sum rule violated: {sum}");
        }
    }

    /// Gate capacitance total equals channel + overlap for any geometry.
    #[test]
    fn gate_cap_accounting(w_nm in 60.0f64..10_000.0, l_nm in 30.0f64..500.0) {
        let m = MosfetModel::nmos_40nm();
        let (w, l) = (w_nm * 1e-9, l_nm * 1e-9);
        let c = mosfet::gate_caps(&m, w, l);
        let expect = m.cox * w * l + 2.0 * m.cov * w;
        prop_assert!(((c.total() - expect) / expect).abs() < 1e-12);
        prop_assert!(c.cgs > 0.0 && c.cgd > 0.0 && c.cgb > 0.0);
    }

    /// PTM resistance is always within [R_MET, R_INS] for any event
    /// sequence the state machine allows.
    #[test]
    fn ptm_resistance_always_bounded(
        fire_times in proptest::collection::vec(0.0f64..1e-9, 0..6),
        probe in 0.0f64..2e-9,
    ) {
        let params = PtmParams::vo2_default();
        let mut state = PtmState::new(params).unwrap();
        let mut times = fire_times;
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for t in times {
            state.update(t);
            if !state.in_transition() {
                state.fire(t);
            }
        }
        let r = state.resistance(probe);
        prop_assert!(r >= params.r_met * 0.999 && r <= params.r_ins * 1.001);
    }

    /// The quasi-static hysteresis loop always closes: sweeping up and back
    /// to zero leaves the device insulating, regardless of parameters.
    #[test]
    fn hysteresis_loop_closes(
        v_imt in 0.2f64..0.9,
        gap_frac in 0.2f64..0.9,
        r_exp in 4.5f64..6.5,
    ) {
        let params = PtmParams {
            v_imt,
            v_mit: v_imt * gap_frac * 0.9,
            r_ins: 10f64.powf(r_exp),
            r_met: 10f64.powf(r_exp - 2.0),
            t_ptm: 10e-12,
        };
        params.validate().unwrap();
        let pts = sfet_devices::ptm::hysteresis_sweep(&params, 1.2, 150).unwrap();
        prop_assert_eq!(pts.last().unwrap().phase, PtmPhase::Insulating);
        prop_assert!(pts.last().unwrap().i.abs() < 1e-9);
    }

    /// threshold_excess is continuous in v and changes sign exactly at the
    /// armed threshold.
    #[test]
    fn threshold_excess_sign(v in 0.0f64..1.0) {
        let params = PtmParams::vo2_default();
        let state = PtmState::new(params).unwrap();
        let e = state.threshold_excess(v).unwrap();
        prop_assert_eq!(e >= 0.0, v >= params.v_imt);
        prop_assert!((e - (v.abs() - params.v_imt)).abs() < 1e-12);
    }

    /// Every settled point of the quasi-static hysteresis loop sits on one
    /// of the two resistance branches: v/i is R_INS or R_MET, never in
    /// between (the sweep holds each bias long past T_PTM).
    #[test]
    fn hysteresis_resistance_stays_on_the_two_branches(
        v_imt in 0.25f64..0.8,
        gap_frac in 0.2f64..0.8,
        r_exp in 4.5f64..6.0,
    ) {
        let params = PtmParams {
            v_imt,
            v_mit: v_imt * gap_frac,
            r_ins: 10f64.powf(r_exp),
            r_met: 10f64.powf(r_exp - 2.0),
            t_ptm: 10e-12,
        };
        params.validate().unwrap();
        let pts = sfet_devices::ptm::hysteresis_sweep(&params, 1.1, 120).unwrap();
        for p in &pts {
            if p.v.abs() < 1e-6 {
                continue; // near zero bias the ratio v/i is ill-conditioned
            }
            let r = p.v / p.i;
            let dist = (r / params.r_ins - 1.0).abs().min((r / params.r_met - 1.0).abs());
            prop_assert!(
                dist < 1e-9,
                "off-branch resistance {r:.4e} at v={:.4}", p.v
            );
            // And the branch agrees with the reported phase.
            let expect = match p.phase {
                PtmPhase::Insulating => params.r_ins,
                PtmPhase::Metallic => params.r_met,
            };
            prop_assert!((r / expect - 1.0).abs() < 1e-9);
        }
    }

    /// Phase transitions along the hysteresis loop fire only at threshold
    /// crossings: insulating → metallic requires v ≥ V_IMT, metallic →
    /// insulating requires v ≤ V_MIT.
    #[test]
    fn hysteresis_transitions_only_fire_at_thresholds(
        v_imt in 0.25f64..0.8,
        gap_frac in 0.2f64..0.8,
        steps in 40usize..200,
    ) {
        let params = PtmParams::vo2_default().with_thresholds(v_imt, v_imt * gap_frac);
        params.validate().unwrap();
        let pts = sfet_devices::ptm::hysteresis_sweep(&params, 1.1, steps).unwrap();
        // The sweep samples the bias grid, so a crossing is detected up to
        // one grid interval after the exact threshold.
        let dv = 1.1 / steps as f64;
        for pair in pts.windows(2) {
            match (pair[0].phase, pair[1].phase) {
                (PtmPhase::Insulating, PtmPhase::Metallic) => {
                    prop_assert!(
                        pair[1].v >= params.v_imt - 1e-12 && pair[1].v <= params.v_imt + dv + 1e-12,
                        "IMT fired at v={:.4}, threshold {:.4}", pair[1].v, params.v_imt
                    );
                }
                (PtmPhase::Metallic, PtmPhase::Insulating) => {
                    prop_assert!(
                        pair[1].v <= params.v_mit + 1e-12 && pair[1].v >= params.v_mit - dv - 1e-12,
                        "MIT fired at v={:.4}, threshold {:.4}", pair[1].v, params.v_mit
                    );
                }
                _ => {}
            }
        }
    }

    /// No chatter under monotone ramps: driving the state machine with a
    /// monotone bias ramp fires at most one transition, however fine the
    /// ramp is sampled and wherever it ends.
    #[test]
    fn monotone_ramp_fires_at_most_one_transition(
        v_end in 0.0f64..1.5,
        n in 10usize..400,
        t_ptm_ps in 1.0f64..50.0,
    ) {
        let params = PtmParams::vo2_default().with_t_ptm(t_ptm_ps * 1e-12);
        let mut state = PtmState::new(params).unwrap();
        let dt = 1e-12;
        let mut fired = 0usize;
        // Rising leg: 0 → v_end.
        for i in 0..=n {
            let t = i as f64 * dt;
            let v = v_end * i as f64 / n as f64;
            state.update(t);
            if !state.in_transition() {
                if let Some(excess) = state.threshold_excess(v) {
                    if excess >= 0.0 {
                        state.fire(t);
                        fired += 1;
                    }
                }
            }
        }
        prop_assert!(fired <= 1, "rising ramp fired {fired} transitions");
        // Away from the exact-threshold knife edge the outcome is forced.
        if v_end >= params.v_imt + 1e-9 {
            prop_assert_eq!(fired, 1);
        } else if v_end < params.v_imt - 1e-9 {
            prop_assert_eq!(fired, 0);
        }
        // Falling leg back to zero: again at most one transition (MIT),
        // and only if the rising leg went metallic.
        let mut fired_down = 0usize;
        for i in 0..=n {
            let t = (n + 1 + i) as f64 * dt * 10.0;
            let v = v_end * (n - i) as f64 / n as f64;
            state.update(t);
            if !state.in_transition() {
                if let Some(excess) = state.threshold_excess(v) {
                    if excess >= 0.0 {
                        state.fire(t);
                        fired_down += 1;
                    }
                }
            }
        }
        prop_assert!(fired_down <= fired, "falling ramp chattered");
    }
}
