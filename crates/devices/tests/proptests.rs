//! Property tests for the device models: EKV consistency laws and PTM
//! state-machine invariants under random parameters and biases.

use proptest::prelude::*;
use sfet_devices::mosfet::{self, MosfetModel};
use sfet_devices::ptm::{PtmParams, PtmPhase, PtmState};

fn bias() -> impl Strategy<Value = f64> {
    -0.2f64..1.2
}

proptest! {
    /// Drain current is antisymmetric under drain/source exchange (the EKV
    /// core is symmetric; CLM uses |V_DS|).
    #[test]
    fn nmos_ds_antisymmetry(vg in bias(), va in bias(), vb in bias()) {
        let m = MosfetModel::nmos_40nm();
        let fwd = mosfet::eval(&m, 120e-9, 40e-9, vg, va, vb, 0.0);
        let rev = mosfet::eval(&m, 120e-9, 40e-9, vg, vb, va, 0.0);
        let scale = fwd.id.abs().max(rev.id.abs()).max(1e-15);
        prop_assert!((fwd.id + rev.id).abs() / scale < 1e-6);
    }

    /// Current increases with gate drive (NMOS) at any drain bias.
    #[test]
    fn nmos_gm_nonnegative(vg in 0.0f64..1.0, vd in 0.05f64..1.2) {
        let m = MosfetModel::nmos_40nm();
        let lo = mosfet::eval(&m, 120e-9, 40e-9, vg, vd, 0.0, 0.0);
        let hi = mosfet::eval(&m, 120e-9, 40e-9, vg + 0.05, vd, 0.0, 0.0);
        prop_assert!(hi.id >= lo.id * (1.0 - 1e-9));
        prop_assert!(lo.gm >= 0.0);
    }

    /// PMOS mirror law: id_p(vg,vd,vs,vb) = -id_n(-vg,-vd,-vs,-vb) with the
    /// same kp.
    #[test]
    fn pmos_is_mirrored_nmos(vg in bias(), vd in bias(), vs in bias()) {
        let mut n = MosfetModel::nmos_40nm();
        let mut p = MosfetModel::pmos_40nm();
        // Equalise kp/lambda so the mirror is exact.
        p.kp = n.kp;
        p.lambda = n.lambda;
        n.slope_n = p.slope_n;
        let vb = 1.0;
        let pm = mosfet::eval(&p, 120e-9, 40e-9, vg, vd, vs, vb);
        let nm = mosfet::eval(&n, 120e-9, 40e-9, -vg, -vd, -vs, -vb);
        let scale = pm.id.abs().max(1e-15);
        prop_assert!((pm.id + nm.id).abs() / scale < 1e-9);
    }

    /// Terminal-current derivative identity: gm + gds + gms + gmb = 0
    /// (shifting all four terminals together changes nothing).
    #[test]
    fn derivative_sum_rule(vg in bias(), vd in bias(), vs in bias()) {
        for model in [MosfetModel::nmos_40nm(), MosfetModel::pmos_40nm()] {
            let op = mosfet::eval(&model, 240e-9, 40e-9, vg, vd, vs, 0.0);
            let sum = op.gm + op.gds + op.gms + op.gmb;
            let scale = op.gm.abs().max(op.gds.abs()).max(1e-12);
            prop_assert!(sum.abs() / scale < 1e-6, "sum rule violated: {sum}");
        }
    }

    /// Gate capacitance total equals channel + overlap for any geometry.
    #[test]
    fn gate_cap_accounting(w_nm in 60.0f64..10_000.0, l_nm in 30.0f64..500.0) {
        let m = MosfetModel::nmos_40nm();
        let (w, l) = (w_nm * 1e-9, l_nm * 1e-9);
        let c = mosfet::gate_caps(&m, w, l);
        let expect = m.cox * w * l + 2.0 * m.cov * w;
        prop_assert!(((c.total() - expect) / expect).abs() < 1e-12);
        prop_assert!(c.cgs > 0.0 && c.cgd > 0.0 && c.cgb > 0.0);
    }

    /// PTM resistance is always within [R_MET, R_INS] for any event
    /// sequence the state machine allows.
    #[test]
    fn ptm_resistance_always_bounded(
        fire_times in proptest::collection::vec(0.0f64..1e-9, 0..6),
        probe in 0.0f64..2e-9,
    ) {
        let params = PtmParams::vo2_default();
        let mut state = PtmState::new(params).unwrap();
        let mut times = fire_times;
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for t in times {
            state.update(t);
            if !state.in_transition() {
                state.fire(t);
            }
        }
        let r = state.resistance(probe);
        prop_assert!(r >= params.r_met * 0.999 && r <= params.r_ins * 1.001);
    }

    /// The quasi-static hysteresis loop always closes: sweeping up and back
    /// to zero leaves the device insulating, regardless of parameters.
    #[test]
    fn hysteresis_loop_closes(
        v_imt in 0.2f64..0.9,
        gap_frac in 0.2f64..0.9,
        r_exp in 4.5f64..6.5,
    ) {
        let params = PtmParams {
            v_imt,
            v_mit: v_imt * gap_frac * 0.9,
            r_ins: 10f64.powf(r_exp),
            r_met: 10f64.powf(r_exp - 2.0),
            t_ptm: 10e-12,
        };
        params.validate().unwrap();
        let pts = sfet_devices::ptm::hysteresis_sweep(&params, 1.2, 150).unwrap();
        prop_assert_eq!(pts.last().unwrap().phase, PtmPhase::Insulating);
        prop_assert!(pts.last().unwrap().i.abs() < 1e-9);
    }

    /// threshold_excess is continuous in v and changes sign exactly at the
    /// armed threshold.
    #[test]
    fn threshold_excess_sign(v in 0.0f64..1.0) {
        let params = PtmParams::vo2_default();
        let state = PtmState::new(params).unwrap();
        let e = state.threshold_excess(v).unwrap();
        prop_assert_eq!(e >= 0.0, v >= params.v_imt);
        prop_assert!((e - (v.abs() - params.v_imt)).abs() < 1e-12);
    }
}
