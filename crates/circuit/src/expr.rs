//! Deterministic parameter-expression evaluator for `{...}` netlist
//! expressions and `.param` cards.
//!
//! The accepted grammar is deliberately small and side-effect free:
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := ('-' | '+') factor | primary
//! primary := NUMBER | IDENT | '(' expr ')'
//! ```
//!
//! Numbers use the full SPICE engineering syntax of
//! [`crate::si::parse_eng`] (`2.2k`, `30p`, `1meg`, trailing unit letters
//! ignored). Identifiers are parameter references, resolved
//! case-insensitively against the evaluation scope. Evaluation is plain
//! left-to-right `f64` arithmetic, so a given expression and scope always
//! produce the same bits on every platform the engine supports.
//!
//! [`resolve_params`] turns a scope's `.param` definitions — which may
//! reference each other in any order — into concrete values, detecting
//! reference cycles ([`CircuitError::ParamCycle`]) and dangling names
//! ([`CircuitError::UndefinedParam`]) instead of recursing forever.
//!
//! # Example
//!
//! ```
//! use std::collections::HashMap;
//! use sfet_circuit::expr::eval_expr;
//!
//! let mut scope = HashMap::new();
//! scope.insert("w".to_string(), 120e-9);
//! assert_eq!(eval_expr("2 * w", &scope).unwrap(), 240e-9);
//! assert_eq!(eval_expr("-(1k + 500) / 2", &scope).unwrap(), -750.0);
//! ```

use std::collections::HashMap;

use crate::error::CircuitError;
use crate::si::parse_eng;

/// A resolved parameter scope: lower-cased name → value.
pub type ParamScope = HashMap<String, f64>;

/// One `.param` definition before resolution: lower-cased name, expression
/// text, and the 1-based source line of the definition (0 if synthetic).
#[derive(Debug, Clone)]
pub struct ParamDef {
    /// Parameter name, lower-cased.
    pub name: String,
    /// Right-hand side expression (braces already stripped).
    pub expr: String,
    /// 1-based source line of the definition.
    pub line: usize,
}

/// Evaluates an expression against an already-resolved scope.
///
/// # Errors
///
/// [`CircuitError::Parse`] (line 0; callers rewrite it) on syntax errors or
/// non-finite results, [`CircuitError::UndefinedParam`] when an identifier
/// is not in `scope`.
pub fn eval_expr(text: &str, scope: &ParamScope) -> Result<f64, CircuitError> {
    let mut lookup = |name: &str, _line: usize| {
        scope
            .get(name)
            .copied()
            .ok_or(CircuitError::UndefinedParam {
                name: name.to_string(),
                line: 0,
            })
    };
    eval_with(text, &mut lookup)
}

/// Resolves a list of `.param` definitions against an outer scope.
///
/// Definitions may reference each other in any textual order and may
/// reference names from `outer`; a definition shadows the same name in
/// `outer` for *other* definitions' references (a definition referencing
/// itself is reported as a cycle, not resolved against the outer scope).
/// When the same name is defined twice in one scope the later definition
/// wins, matching ngspice.
///
/// Returns `outer` extended/overridden with the resolved definitions.
///
/// # Errors
///
/// [`CircuitError::ParamCycle`] on cyclic references,
/// [`CircuitError::UndefinedParam`] on dangling names, and expression
/// syntax errors as [`CircuitError::Parse`]; each carries the source line
/// of the definition being resolved.
pub fn resolve_params(defs: &[ParamDef], outer: &ParamScope) -> Result<ParamScope, CircuitError> {
    // Later definition of the same name wins.
    let mut by_name: HashMap<&str, &ParamDef> = HashMap::new();
    for def in defs {
        by_name.insert(def.name.as_str(), def);
    }
    let mut resolver = Resolver {
        defs: &by_name,
        outer,
        memo: HashMap::new(),
        visiting: Vec::new(),
    };
    let mut scope = outer.clone();
    for def in defs {
        let v = resolver.value_of(&def.name, def.line)?;
        scope.insert(def.name.clone(), v);
    }
    Ok(scope)
}

struct Resolver<'a> {
    defs: &'a HashMap<&'a str, &'a ParamDef>,
    outer: &'a ParamScope,
    memo: HashMap<String, f64>,
    visiting: Vec<String>,
}

impl Resolver<'_> {
    fn value_of(&mut self, name: &str, ref_line: usize) -> Result<f64, CircuitError> {
        if let Some(&v) = self.memo.get(name) {
            return Ok(v);
        }
        let Some(&def) = self.defs.get(name) else {
            return self
                .outer
                .get(name)
                .copied()
                .ok_or(CircuitError::UndefinedParam {
                    name: name.to_string(),
                    line: ref_line,
                });
        };
        if self.visiting.iter().any(|n| n == name) {
            return Err(CircuitError::ParamCycle {
                name: name.to_string(),
                line: def.line,
            });
        }
        self.visiting.push(name.to_string());
        let expr = def.expr.clone();
        let line = def.line;
        let result = {
            let mut lookup = |n: &str, l: usize| self.value_of(n, l);
            eval_with_line(&expr, line, &mut lookup)
        };
        self.visiting.pop();
        let v = result?;
        self.memo.insert(name.to_string(), v);
        Ok(v)
    }
}

fn eval_with<F>(text: &str, lookup: &mut F) -> Result<f64, CircuitError>
where
    F: FnMut(&str, usize) -> Result<f64, CircuitError>,
{
    eval_with_line(text, 0, lookup)
}

fn eval_with_line<F>(text: &str, line: usize, lookup: &mut F) -> Result<f64, CircuitError>
where
    F: FnMut(&str, usize) -> Result<f64, CircuitError>,
{
    let tokens = lex(text, line)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        text,
        line,
        lookup,
    };
    let v = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.syntax("trailing input after expression"));
    }
    if !v.is_finite() {
        return Err(CircuitError::Parse {
            line,
            message: format!("expression {text:?} evaluates to a non-finite value"),
        });
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn lex(text: &str, line: usize) -> Result<Vec<Tok>, CircuitError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                // Exponent part: e/E followed by optional sign and digits.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                // Engineering suffix + unit letters, handled by parse_eng.
                while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    i += 1;
                }
                let v = parse_eng(&text[start..i]).map_err(|_| CircuitError::Parse {
                    line,
                    message: format!("bad number {:?} in expression {text:?}", &text[start..i]),
                })?;
                out.push(Tok::Num(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(text[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(CircuitError::Parse {
                    line,
                    message: format!("unexpected character {other:?} in expression {text:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a, F> {
    tokens: &'a [Tok],
    pos: usize,
    text: &'a str,
    line: usize,
    lookup: &'a mut F,
}

impl<F> Parser<'_, F>
where
    F: FnMut(&str, usize) -> Result<f64, CircuitError>,
{
    fn syntax(&self, why: &str) -> CircuitError {
        CircuitError::Parse {
            line: self.line,
            message: format!("{why} in expression {:?}", self.text),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn expr(&mut self) -> Result<f64, CircuitError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    acc += self.term()?;
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    acc -= self.term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<f64, CircuitError> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    acc *= self.factor()?;
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    let d = self.factor()?;
                    if d == 0.0 {
                        return Err(self.syntax("division by zero"));
                    }
                    acc /= d;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self) -> Result<f64, CircuitError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some(Tok::Plus) => {
                self.pos += 1;
                self.factor()
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<f64, CircuitError> {
        match self.peek().cloned() {
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Ok(v)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                match (self.lookup)(&name, self.line) {
                    Ok(v) => Ok(v),
                    // Attach this expression's line to a bare undefined-param
                    // error coming straight from the scope lookup.
                    Err(CircuitError::UndefinedParam { name, line: 0 }) => {
                        Err(CircuitError::UndefinedParam {
                            name,
                            line: self.line,
                        })
                    }
                    Err(e) => Err(e),
                }
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let v = self.expr()?;
                match self.peek() {
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        Ok(v)
                    }
                    _ => Err(self.syntax("missing ')'")),
                }
            }
            _ => Err(self.syntax("expected a number, parameter, or '('")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(pairs: &[(&str, f64)]) -> ParamScope {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn arithmetic_and_precedence() {
        let s = ParamScope::new();
        assert_eq!(eval_expr("1 + 2 * 3", &s).unwrap(), 7.0);
        assert_eq!(eval_expr("(1 + 2) * 3", &s).unwrap(), 9.0);
        assert_eq!(eval_expr("8 / 2 / 2", &s).unwrap(), 2.0);
        assert_eq!(eval_expr("10 - 4 - 3", &s).unwrap(), 3.0);
        assert_eq!(eval_expr("-3", &s).unwrap(), -3.0);
        assert_eq!(eval_expr("--3", &s).unwrap(), 3.0);
        assert_eq!(eval_expr("+5", &s).unwrap(), 5.0);
        assert_eq!(eval_expr("2 * -3", &s).unwrap(), -6.0);
    }

    #[test]
    fn engineering_suffixes_in_expressions() {
        let s = ParamScope::new();
        assert_eq!(eval_expr("2.2k", &s).unwrap(), 2200.0);
        assert_eq!(eval_expr("1meg / 2", &s).unwrap(), 500e3);
        assert_eq!(eval_expr("30p + 10p", &s).unwrap(), 40e-12);
        assert_eq!(eval_expr("1.5e3", &s).unwrap(), 1500.0);
        let v = eval_expr("100nV", &s).unwrap();
        assert!((v - 100e-9).abs() < 1e-21, "{v}");
    }

    #[test]
    fn parameter_references_case_insensitive() {
        let s = scope(&[("wid", 2.0), ("len", 4.0)]);
        assert_eq!(eval_expr("WID * Len", &s).unwrap(), 8.0);
    }

    #[test]
    fn undefined_param_named_error() {
        let s = ParamScope::new();
        match eval_expr("2 * nope", &s) {
            Err(CircuitError::UndefinedParam { name, .. }) => assert_eq!(name, "nope"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_rejected() {
        let s = scope(&[("a", 1.0)]);
        assert!(eval_expr("", &s).is_err());
        assert!(eval_expr("1 +", &s).is_err());
        assert!(eval_expr("(1", &s).is_err());
        assert!(eval_expr("1 2", &s).is_err());
        assert!(eval_expr("a ^ 2", &s).is_err());
        assert!(eval_expr("1 / 0", &s).is_err());
    }

    #[test]
    fn resolve_out_of_order_and_shadowing() {
        let defs = vec![
            ParamDef {
                name: "b".into(),
                expr: "a * 2".into(),
                line: 1,
            },
            ParamDef {
                name: "a".into(),
                expr: "1k".into(),
                line: 2,
            },
        ];
        let outer = scope(&[("a", 7.0)]);
        let resolved = resolve_params(&defs, &outer).unwrap();
        // The local definition of `a` shadows the outer one for `b`.
        assert_eq!(resolved["a"], 1000.0);
        assert_eq!(resolved["b"], 2000.0);
    }

    #[test]
    fn resolve_last_definition_wins() {
        let defs = vec![
            ParamDef {
                name: "x".into(),
                expr: "1".into(),
                line: 1,
            },
            ParamDef {
                name: "x".into(),
                expr: "2".into(),
                line: 2,
            },
        ];
        let resolved = resolve_params(&defs, &ParamScope::new()).unwrap();
        assert_eq!(resolved["x"], 2.0);
    }

    #[test]
    fn cycle_detected() {
        let defs = vec![
            ParamDef {
                name: "a".into(),
                expr: "b + 1".into(),
                line: 1,
            },
            ParamDef {
                name: "b".into(),
                expr: "a + 1".into(),
                line: 2,
            },
        ];
        match resolve_params(&defs, &ParamScope::new()) {
            Err(CircuitError::ParamCycle { name, line }) => {
                assert!(name == "a" || name == "b");
                assert!(line == 1 || line == 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_reference_is_a_cycle() {
        let defs = vec![ParamDef {
            name: "w".into(),
            expr: "w * 2".into(),
            line: 3,
        }];
        let outer = scope(&[("w", 1.0)]);
        assert!(matches!(
            resolve_params(&defs, &outer),
            Err(CircuitError::ParamCycle { .. })
        ));
    }

    #[test]
    fn dangling_reference_carries_definition_line() {
        let defs = vec![ParamDef {
            name: "a".into(),
            expr: "ghost".into(),
            line: 9,
        }];
        match resolve_params(&defs, &ParamScope::new()) {
            Err(CircuitError::UndefinedParam { name, line }) => {
                assert_eq!(name, "ghost");
                assert_eq!(line, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
