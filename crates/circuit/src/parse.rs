//! SPICE-like netlist parser.
//!
//! Supports the card subset the Soft-FET experiments use:
//!
//! ```text
//! * comment                          ; inline comments after ';'
//! R<name> p n <value>
//! C<name> p n <value> [IC=<v>]
//! L<name> p n <value>
//! V<name> p n DC <v> | <v> | PWL(t v ...) | PULSE(v1 v2 d tr tf pw [per]) | SIN(off amp f [d])
//! I<name> p n <same source syntax>
//! E<name> p n cp cn <gain>           ; VCVS: v(p,n) = gain * v(cp,cn)
//! G<name> p n cp cn <gm>             ; VCCS: i(p->n) = gm * v(cp,cn)
//! F<name> p n <vsource> <gain>       ; CCCS: i(p->n) = gain * i(vsource)
//! H<name> p n <vsource> <r>          ; CCVS: v(p,n) = r * i(vsource)
//! M<name> d g s b <model> W=<w> L=<l>
//! P<name> p n [<ptm-model>] [VIMT=v] [VMIT=v] [RINS=r] [RMET=r] [TPTM=t]
//! .param <name>=<expr> [<name>=<expr> ...]
//! .model <name> <mos-base> [vt_shift|vt0|kp|lambda|slope_n|cox|cov|ut=<v> ...]
//! .model <name> <ptm-base> [VIMT|VMIT|RINS|RMET|TPTM=<v> ...]
//! .subckt <name> <ports...> [<param>=<default> ...] ... .ends
//! X<name> <nodes...> <subckt> [<param>=<value> ...]
//! .tran <dtmax> <tstop>
//! .dc <source> <start> <stop> <step>
//! .ic v(<node>)=<value> [v(<node>)=<value> ...]
//! .end
//! + <continuation of the previous card>
//! ```
//!
//! Any value position (and `.tran`/`.dc` arguments) may be a brace
//! expression `{...}` over `.param` names — see [`crate::expr`] for the
//! grammar. `.param` cards apply to their whole scope regardless of where
//! they appear in it, and a later definition of the same name wins.
//!
//! Subcircuits are flattened at parse time: internal nodes and element
//! names get the instance path as a prefix (`x1.mid`, `Mx1.P`), ports map
//! to the instantiating nodes, and ground stays global. Subcircuit headers
//! may declare parameter defaults which `X` cards override
//! (`X1 a b cell w=2u`); parameters resolve through the instantiation
//! chain, innermost definition winning. An F/H card inside a subcircuit
//! can only reference a voltage source in the same subcircuit instance
//! (the controlling name gets the same instance prefix the `V` card gets).
//!
//! Values accept engineering suffixes (see [`crate::si::parse_eng`]).
//! MOSFET model bases `nmos40`/`pmos40` (aliases `nmos`/`pmos`) are
//! predefined; the PTM base `ptm` starts from
//! [`PtmParams::vo2_default`]. `.model` cards may also derive from any
//! previously defined model card.
//!
//! # Example
//!
//! ```
//! let deck = "\
//! * inverter driving a load
//! .param vdd=1.0 cl=2f
//! VDD vdd 0 DC {vdd}
//! VIN in 0 PWL(0 0 10p 0 40p {vdd})
//! M1 out in vdd vdd pmos40 W=240n L=40n
//! M2 out in 0 0 nmos40 W=120n L=40n
//! C1 out 0 {cl}
//! .tran 0.1p 200p
//! .end";
//! let parsed = sfet_circuit::parse::parse_netlist(deck).unwrap();
//! assert_eq!(parsed.circuit.elements().len(), 5);
//! assert_eq!(parsed.analyses.len(), 1);
//! ```

use std::collections::{HashMap, HashSet};

use crate::error::CircuitError;
use crate::expr::{eval_expr, resolve_params, ParamDef, ParamScope};
use crate::netlist::Circuit;
use crate::si::parse_eng;
use crate::waveform::SourceWaveform;
use sfet_devices::mosfet::MosfetModel;
use sfet_devices::ptm::PtmParams;
use sfet_numeric::interp::PiecewiseLinear;

/// An analysis directive found in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum Analysis {
    /// `.tran <dtmax> <tstop>` — transient analysis request.
    Tran {
        /// Maximum time step \[s\].
        dtmax: f64,
        /// Stop time \[s\].
        tstop: f64,
    },
    /// `.dc <source> <start> <stop> <step>` — DC sweep of one source.
    Dc {
        /// Name of the swept V/I source.
        source: String,
        /// First sweep value.
        start: f64,
        /// Last sweep value (inclusive when the grid lands on it).
        stop: f64,
        /// Sweep increment; sign must point from `start` toward `stop`.
        step: f64,
    },
}

/// Expands a `.dc` sweep specification into its grid of source values:
/// `start`, `start + step`, … up to the last point that does not overshoot
/// `stop`. When the step divides the range to within floating-point
/// rounding, the final point is snapped to exactly `stop` (the inclusive
/// endpoint the card promises) instead of carrying the accumulated
/// `start + n·step` rounding.
///
/// The divisibility test uses a tolerance *relative to the operand
/// magnitudes*: the dominant error in `(stop - start) / step` is the
/// decimal rounding of `start`/`stop` themselves, which is on the order of
/// `ε·max(|start|, |stop|)` — for fine steps around a large offset (say
/// `step = 1 nV` at `start = 0.1 V`) that error is many thousand times a
/// fixed `1e-9` count epsilon, which used to drop the stop point.
pub fn dc_grid(start: f64, stop: f64, step: f64) -> Vec<f64> {
    if step == 0.0 || !step.is_finite() || !start.is_finite() || !stop.is_finite() {
        return vec![start];
    }
    let span = (stop - start) / step;
    if !span.is_finite() || span < 0.0 {
        // The step points away from `stop`: only the start value.
        return vec![start];
    }
    // Bound on the rounding error of `span`: the subtraction is off by up
    // to ~ε·max(|start|,|stop|), the division and `step` rounding by
    // ~ε·span; a 4× safety factor covers the worst-case combination. A
    // real mid-step remainder is a O(1) fraction of a step, far above it.
    let tol = 4.0 * f64::EPSILON * (start.abs().max(stop.abs()) / step.abs() + span).max(1.0);
    let nearest = span.round();
    let divides = (span - nearest).abs() <= tol;
    let n = if divides { nearest } else { span.floor() } as usize;
    let mut grid: Vec<f64> = (0..=n).map(|i| start + i as f64 * step).collect();
    if divides {
        grid[n] = stop;
    }
    grid
}

/// Result of parsing a netlist: the circuit plus analysis directives.
#[derive(Debug, Clone)]
pub struct ParsedNetlist {
    /// The parsed circuit.
    pub circuit: Circuit,
    /// Analysis directives in file order.
    pub analyses: Vec<Analysis>,
}

/// Parses a SPICE-like netlist.
///
/// # Errors
///
/// [`CircuitError::Parse`] with the 1-based line number of the offending
/// card, a named structural error ([`CircuitError::DuplicateSubckt`],
/// [`CircuitError::SubcktArity`], [`CircuitError::SubcktRecursion`],
/// [`CircuitError::UnknownSubckt`], [`CircuitError::UndefinedParam`],
/// [`CircuitError::ParamCycle`]), or any construction error from the
/// [`Circuit`] builder.
pub fn parse_netlist(text: &str) -> Result<ParsedNetlist, CircuitError> {
    // Join continuation lines, remembering each logical line's start line.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim_end();
        if line.trim().is_empty() || line.trim_start().starts_with('*') {
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            if let Some(last) = logical.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest);
                continue;
            }
            return Err(err(idx + 1, "continuation line with nothing to continue"));
        }
        logical.push((idx + 1, line.trim().to_string()));
    }

    // Extract .subckt definitions, resolve top-level parameters, then
    // flatten X-card instantiations (substituting {…} expressions).
    let (toplevel, subckts) = extract_subckts(logical)?;
    let (global_defs, toplevel) = split_param_lines(toplevel)?;
    let genv = resolve_params(&global_defs, &ParamScope::new())?;
    let logical = expand_subckts(toplevel, &subckts, 0, &genv)?;

    let mut models = ModelSet::presets();
    let mut circuit = Circuit::new();
    let mut analyses = Vec::new();

    // Record resolved globals on the circuit in first-definition order
    // (redefinitions change the value, not the position).
    let mut seen: HashSet<&str> = HashSet::new();
    for def in &global_defs {
        if seen.insert(def.name.as_str()) {
            circuit.set_param(&def.name, genv[&def.name]);
        }
    }

    for (line_no, line) in &logical {
        let tokens = tokenize(line);
        if tokens.is_empty() {
            continue;
        }
        let head = tokens[0].to_ascii_lowercase();
        let result = if head == ".end" {
            break;
        } else if head == ".model" {
            parse_model(&tokens, &mut models)
        } else if head == ".tran" {
            parse_tran(&tokens).map(|a| analyses.push(a))
        } else if head == ".dc" {
            parse_dc(&tokens).map(|a| analyses.push(a))
        } else if head == ".ic" {
            parse_ic(&tokens, &mut circuit)
        } else if head.starts_with('.') {
            Err(err(0, &format!("unknown directive {:?}", tokens[0])))
        } else {
            parse_card(&tokens, &mut circuit, &models)
        };
        result.map_err(|e| rewrite_line(e, *line_no))?;
    }

    Ok(ParsedNetlist { circuit, analyses })
}

/// The model cards in scope while parsing: MOSFET cards and PTM cards
/// share the `.model` namespace but live in separate families.
struct ModelSet {
    mos: HashMap<String, MosfetModel>,
    ptm: HashMap<String, PtmParams>,
}

impl ModelSet {
    fn presets() -> Self {
        let mut mos = HashMap::new();
        mos.insert("nmos40".to_string(), MosfetModel::nmos_40nm());
        mos.insert("pmos40".to_string(), MosfetModel::pmos_40nm());
        // Convenience aliases for decks written against generic names.
        mos.insert("nmos".to_string(), MosfetModel::nmos_40nm());
        mos.insert("pmos".to_string(), MosfetModel::pmos_40nm());
        ModelSet {
            mos,
            ptm: HashMap::new(),
        }
    }
}

/// A subcircuit definition: port names, header parameter defaults, and
/// body card lines.
#[derive(Debug, Clone)]
struct Subckt {
    ports: Vec<String>,
    params: Vec<ParamDef>,
    body: Vec<(usize, String)>,
}

/// Numbered logical netlist lines.
type NumberedLines = Vec<(usize, String)>;

/// Splits the logical lines into top-level cards and `.subckt` blocks.
fn extract_subckts(
    logical: NumberedLines,
) -> Result<(NumberedLines, HashMap<String, Subckt>), CircuitError> {
    let mut toplevel = Vec::new();
    let mut subckts: HashMap<String, Subckt> = HashMap::new();
    let mut current: Option<(String, Subckt, usize)> = None;

    for (line_no, line) in logical {
        let head = line
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_lowercase();
        match head.as_str() {
            ".subckt" => {
                if current.is_some() {
                    return Err(err(line_no, "nested .subckt definitions are not allowed"));
                }
                let tokens = split_card(&line);
                let mut positional: Vec<String> = Vec::new();
                let mut params: Vec<ParamDef> = Vec::new();
                for tok in tokens.iter().skip(1) {
                    match split_assignment(tok) {
                        Some((k, v)) => params.push(ParamDef {
                            name: check_param_name(k, line_no)?,
                            expr: strip_braces(v).to_string(),
                            line: line_no,
                        }),
                        None => {
                            if !params.is_empty() {
                                return Err(err(
                                    line_no,
                                    ".subckt ports must come before parameter defaults",
                                ));
                            }
                            positional.push(tok.to_string());
                        }
                    }
                }
                if positional.len() < 2 {
                    return Err(err(line_no, ".subckt needs a name and at least one port"));
                }
                let name = positional[0].to_ascii_lowercase();
                if subckts.contains_key(&name) {
                    return Err(CircuitError::DuplicateSubckt {
                        name,
                        line: line_no,
                    });
                }
                let ports = positional[1..].to_vec();
                current = Some((
                    name,
                    Subckt {
                        ports,
                        params,
                        body: Vec::new(),
                    },
                    line_no,
                ));
            }
            ".ends" => match current.take() {
                Some((name, def, _)) => {
                    subckts.insert(name, def);
                }
                None => return Err(err(line_no, ".ends without a matching .subckt")),
            },
            _ => match &mut current {
                Some((_, def, _)) => def.body.push((line_no, line)),
                None => toplevel.push((line_no, line)),
            },
        }
    }
    if let Some((name, _, line_no)) = current {
        return Err(err(line_no, &format!("unterminated .subckt {name:?}")));
    }
    Ok((toplevel, subckts))
}

/// Maximum subcircuit nesting depth (guards against recursive definitions).
const MAX_SUBCKT_DEPTH: usize = 16;

/// Recursively expands `X<name> <node...> <subckt> [param=value...]` cards
/// into flat card lines, resolving `.param` scopes and substituting `{…}`
/// expressions along the way. Internal nodes and element names are
/// prefixed with the instance path (`x1.`); ground (`0`/`gnd`) stays
/// global.
fn expand_subckts(
    lines: NumberedLines,
    subckts: &HashMap<String, Subckt>,
    depth: usize,
    outer: &ParamScope,
) -> Result<NumberedLines, CircuitError> {
    // `.param` cards apply to their whole scope, wherever they appear.
    let (defs, lines) = split_param_lines(lines)?;
    let scope = resolve_params(&defs, outer)?;
    let mut out = Vec::with_capacity(lines.len());
    for (line_no, line) in lines {
        let is_x = line
            .chars()
            .next()
            .map(|c| c.eq_ignore_ascii_case(&'x'))
            .unwrap_or(false);
        if !is_x {
            if depth > 0 && line.starts_with('.') {
                let head = line.split_whitespace().next().unwrap_or(".");
                return Err(err(
                    line_no,
                    &format!("directive {head:?} is not allowed inside .subckt"),
                ));
            }
            out.push((line_no, substitute_braces(&line, &scope, line_no)?));
            continue;
        }
        let tokens = split_card(&line);
        let mut positional: Vec<&str> = Vec::new();
        let mut overrides: Vec<(String, f64)> = Vec::new();
        for tok in &tokens {
            match split_assignment(tok) {
                Some((k, v)) => {
                    // X-card overrides are evaluated in the caller's scope.
                    let value =
                        eval_expr(strip_braces(v), &scope).map_err(|e| rewrite_line(e, line_no))?;
                    overrides.push((k.to_ascii_lowercase(), value));
                }
                None => positional.push(tok),
            }
        }
        if positional.len() < 3 {
            return Err(err(line_no, "X card needs <name> <nodes...> <subckt>"));
        }
        let inst = positional[0].to_ascii_lowercase();
        let sub_name = positional[positional.len() - 1].to_ascii_lowercase();
        let outer_nodes = &positional[1..positional.len() - 1];
        let def = subckts
            .get(&sub_name)
            .ok_or_else(|| CircuitError::UnknownSubckt {
                name: sub_name.clone(),
                line: line_no,
            })?;
        if depth >= MAX_SUBCKT_DEPTH {
            return Err(CircuitError::SubcktRecursion {
                subckt: sub_name,
                line: line_no,
            });
        }
        if outer_nodes.len() != def.ports.len() {
            return Err(CircuitError::SubcktArity {
                subckt: sub_name,
                expected: def.ports.len(),
                given: outer_nodes.len(),
                line: line_no,
            });
        }
        for (k, _) in &overrides {
            if !def.params.iter().any(|d| &d.name == k) {
                return Err(err(
                    line_no,
                    &format!("subcircuit {sub_name:?} has no parameter {k:?}"),
                ));
            }
        }
        // Child scope: caller scope, then X-card overrides, then
        // non-overridden header defaults resolved against both (so a
        // default may reference other parameters, including overridden
        // ones).
        let mut child = scope.clone();
        for (k, v) in &overrides {
            child.insert(k.clone(), *v);
        }
        let defaults: Vec<ParamDef> = def
            .params
            .iter()
            .filter(|d| !overrides.iter().any(|(k, _)| k == &d.name))
            .cloned()
            .collect();
        let child = resolve_params(&defaults, &child)?;
        let port_map: HashMap<&str, &str> = def
            .ports
            .iter()
            .map(String::as_str)
            .zip(outer_nodes.iter().copied())
            .collect();
        let mut expanded_body = Vec::with_capacity(def.body.len());
        for (body_line_no, body_line) in &def.body {
            expanded_body.push((*body_line_no, rename_card(body_line, &inst, &port_map)));
        }
        // Recurse for nested X cards inside the body.
        let flat = expand_subckts(expanded_body, subckts, depth + 1, &child)?;
        out.extend(flat);
    }
    Ok(out)
}

/// Rewrites one body card for instantiation: element name gets the
/// instance prefix; node tokens map through the port map or get prefixed;
/// the controlling-source token of an F/H card gets the element-style
/// prefix so it tracks the renamed `V` card in the same instance.
fn rename_card(line: &str, inst: &str, port_map: &HashMap<&str, &str>) -> String {
    let tokens = split_card(line);
    if tokens.is_empty() {
        return line.to_string();
    }
    if tokens[0].starts_with('.') {
        // Directives (`.param` for scoped parameters) pass through; the
        // recursive expansion step interprets or rejects them.
        return line.to_string();
    }
    let kind = tokens[0].chars().next().unwrap_or(' ').to_ascii_uppercase();
    // How many leading positional tokens (after the name) are node names.
    let node_count = match kind {
        'R' | 'C' | 'L' | 'V' | 'I' | 'P' | 'F' | 'H' => 2,
        'M' | 'E' | 'G' => 4,
        'X' => usize::MAX, // all positional tokens except the subckt name
        _ => 0,
    };
    let positional_total = tokens
        .iter()
        .filter(|t| split_assignment(t).is_none())
        .count();
    // The card's type letter must stay first (the card dispatcher keys on
    // it), so the instance prefix goes after it: MP inside x1 -> Mx1.P.
    let renamed = if kind == 'X' {
        format!("{}.{}", inst, tokens[0])
    } else {
        format!("{}{}.{}", &tokens[0][..1], inst, &tokens[0][1..])
    };
    let mut out = vec![renamed];
    let mut pos_idx = 0usize;
    for tok in tokens.iter().skip(1) {
        if split_assignment(tok).is_some() {
            out.push(tok.clone());
            continue;
        }
        pos_idx += 1;
        let is_node = if kind == 'X' {
            pos_idx < positional_total - 1
        } else {
            pos_idx <= node_count
        };
        if is_node {
            out.push(map_node(tok, inst, port_map));
        } else if (kind == 'F' || kind == 'H') && pos_idx == 3 && tok.len() > 1 {
            out.push(format!("{}{}.{}", &tok[..1], inst, &tok[1..]));
        } else {
            out.push(tok.clone());
        }
    }
    out.join(" ")
}

fn map_node(token: &str, inst: &str, port_map: &HashMap<&str, &str>) -> String {
    if token == "0" || token.eq_ignore_ascii_case("gnd") {
        return "0".to_string();
    }
    match port_map.get(token) {
        Some(outer) => outer.to_string(),
        None => format!("{inst}.{token}"),
    }
}

fn err(line: usize, message: &str) -> CircuitError {
    CircuitError::Parse {
        line,
        message: message.to_string(),
    }
}

/// Fills in the source line on errors raised without one (line 0).
fn rewrite_line(e: CircuitError, line: usize) -> CircuitError {
    match e {
        CircuitError::Parse { message, line: 0 } => CircuitError::Parse { line, message },
        CircuitError::UndefinedParam { name, line: 0 } => {
            CircuitError::UndefinedParam { name, line }
        }
        CircuitError::ParamCycle { name, line: 0 } => CircuitError::ParamCycle { name, line },
        other => other,
    }
}

/// Extracts `.param` cards from a scope's lines, leaving the rest.
fn split_param_lines(lines: NumberedLines) -> Result<(Vec<ParamDef>, NumberedLines), CircuitError> {
    let mut defs = Vec::new();
    let mut rest = Vec::new();
    for (line_no, line) in lines {
        let head = line
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_lowercase();
        if head == ".param" {
            defs.extend(parse_param_card(line_no, &line)?);
        } else {
            rest.push((line_no, line));
        }
    }
    Ok((defs, rest))
}

/// Parses one `.param name=expr [name=expr ...]` card.
fn parse_param_card(line_no: usize, line: &str) -> Result<Vec<ParamDef>, CircuitError> {
    let tokens = split_card(line);
    if tokens.len() < 2 {
        return Err(err(
            line_no,
            ".param needs at least one <name>=<expr> assignment",
        ));
    }
    let mut defs = Vec::new();
    for tok in tokens.iter().skip(1) {
        let Some((name, expr)) = split_assignment(tok) else {
            return Err(err(
                line_no,
                &format!("expected <name>=<expr>, got {tok:?}"),
            ));
        };
        defs.push(ParamDef {
            name: check_param_name(name, line_no)?,
            expr: strip_braces(expr).to_string(),
            line: line_no,
        });
    }
    Ok(defs)
}

/// Validates and lower-cases a parameter name.
fn check_param_name(name: &str, line_no: usize) -> Result<String, CircuitError> {
    let ok = name
        .chars()
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_')
        .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if !ok {
        return Err(err(
            line_no,
            &format!("invalid parameter name {name:?} (want [a-z_][a-z0-9_]*)"),
        ));
    }
    Ok(name.to_ascii_lowercase())
}

/// Splits `name=value` tokens produced by [`split_card`]. Returns `None`
/// for purely positional tokens.
fn split_assignment(token: &str) -> Option<(&str, &str)> {
    let eq = token.find('=')?;
    let (k, v) = (&token[..eq], &token[eq + 1..]);
    if k.is_empty() || v.is_empty() {
        return None;
    }
    Some((k, v))
}

/// Strips one level of surrounding braces: `{expr}` -> `expr`.
fn strip_braces(token: &str) -> &str {
    let t = token.trim();
    if let Some(inner) = t.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
        inner
    } else {
        t
    }
}

/// Splits a card into whitespace/comma-separated tokens, keeping `{...}`
/// expressions (which may contain spaces) atomic and merging `k = v`
/// spellings into single `k=v` assignment tokens.
fn split_card(line: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for ch in line.chars() {
        match ch {
            '{' => {
                depth += 1;
                cur.push(ch);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            c if depth > 0 => cur.push(c),
            '=' => {
                if cur.is_empty() {
                    if let Some(prev) = out.pop() {
                        cur = prev;
                    }
                }
                cur.push('=');
            }
            c if c.is_whitespace() || c == ',' => {
                if !cur.is_empty() && !cur.ends_with('=') {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Replaces every `{expr}` in the line with its evaluated value.
fn substitute_braces(
    line: &str,
    scope: &ParamScope,
    line_no: usize,
) -> Result<String, CircuitError> {
    if !line.contains('{') {
        return Ok(line.to_string());
    }
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let mut depth = 0usize;
        let mut close = None;
        for (i, c) in rest[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close.ok_or_else(|| err(line_no, "unmatched '{' in expression"))?;
        let v = eval_expr(&rest[open + 1..close], scope).map_err(|e| rewrite_line(e, line_no))?;
        out.push_str(&format!("{v:e}"));
        rest = &rest[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Splits a card into tokens, treating parentheses and `=` as separators
/// that also survive as their own tokens (for `(`/`)`) or vanish (`=`,
/// commas).
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in line.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(ch.to_string());
            }
            c if c.is_whitespace() || c == ',' || c == '=' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_model(tokens: &[String], models: &mut ModelSet) -> Result<(), CircuitError> {
    if tokens.len() < 3 {
        return Err(err(0, ".model needs a name and a base model"));
    }
    let name = tokens[1].to_ascii_lowercase();
    let base = tokens[2].to_ascii_lowercase();
    if base == "ptm" || models.ptm.contains_key(&base) {
        let mut params = models
            .ptm
            .get(&base)
            .copied()
            .unwrap_or_else(PtmParams::vo2_default);
        apply_ptm_overrides(&tokens[3..], &mut params)?;
        params.validate()?;
        models.ptm.insert(name, params);
        return Ok(());
    }
    let mut model = models
        .mos
        .get(&base)
        .cloned()
        .ok_or_else(|| err(0, &format!("unknown base model {base:?}")))?;
    let mut rest = tokens[3..].iter();
    while let Some(key) = rest.next() {
        let value = rest
            .next()
            .ok_or_else(|| err(0, &format!("missing value for {key}")))?;
        let v = parse_eng(value)?;
        match key.to_ascii_lowercase().as_str() {
            "vt_shift" => model = model.with_vt_shift(v),
            "vt0" => model.vt0 = v,
            "kp" => model.kp = v,
            "lambda" => model.lambda = v,
            "slope_n" => model.slope_n = v,
            "cox" => model.cox = v,
            "cov" => model.cov = v,
            "ut" => model.ut = v,
            other => return Err(err(0, &format!("unknown model parameter {other:?}"))),
        }
    }
    model.name = name.clone();
    model.validate()?;
    models.mos.insert(name, model);
    Ok(())
}

/// Applies `key value` PTM parameter pairs from an already-tokenized card.
fn apply_ptm_overrides(tokens: &[String], params: &mut PtmParams) -> Result<(), CircuitError> {
    let mut it = tokens.iter();
    while let Some(key) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| err(0, &format!("missing value for {key}")))?;
        let v = parse_eng(value)?;
        match key.to_ascii_lowercase().as_str() {
            "vimt" => params.v_imt = v,
            "vmit" => params.v_mit = v,
            "rins" => params.r_ins = v,
            "rmet" => params.r_met = v,
            "tptm" => params.t_ptm = v,
            other => return Err(err(0, &format!("unknown ptm parameter {other:?}"))),
        }
    }
    Ok(())
}

fn parse_tran(tokens: &[String]) -> Result<Analysis, CircuitError> {
    if tokens.len() != 3 {
        return Err(err(0, ".tran needs <dtmax> <tstop>"));
    }
    Ok(Analysis::Tran {
        dtmax: parse_eng(&tokens[1])?,
        tstop: parse_eng(&tokens[2])?,
    })
}

fn parse_dc(tokens: &[String]) -> Result<Analysis, CircuitError> {
    if tokens.len() != 5 {
        return Err(err(0, ".dc needs <source> <start> <stop> <step>"));
    }
    let source = tokens[1].clone();
    let start = parse_eng(&tokens[2])?;
    let stop = parse_eng(&tokens[3])?;
    let step = parse_eng(&tokens[4])?;
    if step == 0.0 || !step.is_finite() || !start.is_finite() || !stop.is_finite() {
        return Err(err(0, ".dc values must be finite with a non-zero step"));
    }
    if (stop - start) * step < 0.0 {
        return Err(err(0, ".dc step direction does not reach stop from start"));
    }
    Ok(Analysis::Dc {
        source,
        start,
        stop,
        step,
    })
}

/// Parses `.ic v(<node>)=<value> ...` node-voltage pins.
fn parse_ic(tokens: &[String], circuit: &mut Circuit) -> Result<(), CircuitError> {
    let mut it = tokens[1..].iter();
    let mut any = false;
    while let Some(head) = it.next() {
        if !head.eq_ignore_ascii_case("v") {
            return Err(err(0, ".ic entries look like v(<node>)=<value>"));
        }
        match (it.next(), it.next(), it.next(), it.next()) {
            (Some(open), Some(node), Some(close), Some(value)) if open == "(" && close == ")" => {
                let v = parse_eng(value)?;
                let id = circuit.node(node);
                circuit.set_node_ic(id, v);
                any = true;
            }
            _ => return Err(err(0, ".ic entries look like v(<node>)=<value>")),
        }
    }
    if !any {
        return Err(err(0, ".ic needs at least one v(<node>)=<value> entry"));
    }
    Ok(())
}

fn parse_card(
    tokens: &[String],
    circuit: &mut Circuit,
    models: &ModelSet,
) -> Result<(), CircuitError> {
    let card = &tokens[0];
    let kind = card
        .chars()
        .next()
        .map(|c| c.to_ascii_uppercase())
        .ok_or_else(|| err(0, "empty card"))?;
    match kind {
        'R' | 'C' | 'L' => {
            if tokens.len() < 4 {
                return Err(err(0, "passive card needs <name> <p> <n> <value>"));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            let v = parse_eng(&tokens[3])?;
            match kind {
                'R' => circuit.add_resistor(card, p, n, v)?,
                'C' => {
                    // Optional IC=<v>.
                    if tokens.len() >= 6 && tokens[4].eq_ignore_ascii_case("ic") {
                        circuit.add_capacitor_ic(card, p, n, v, parse_eng(&tokens[5])?)?
                    } else {
                        circuit.add_capacitor(card, p, n, v)?
                    }
                }
                _ => circuit.add_inductor(card, p, n, v)?,
            };
            Ok(())
        }
        'V' | 'I' => {
            if tokens.len() < 4 {
                return Err(err(0, "source card needs <name> <p> <n> <value>"));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            let wave = parse_source(&tokens[3..])?;
            if kind == 'V' {
                circuit.add_voltage_source(card, p, n, wave)?;
            } else {
                circuit.add_current_source(card, p, n, wave)?;
            }
            Ok(())
        }
        'E' | 'G' => {
            if tokens.len() < 6 {
                return Err(err(
                    0,
                    "controlled source card needs <name> <p> <n> <cp> <cn> <value>",
                ));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            let cp = circuit.node(&tokens[3]);
            let cn = circuit.node(&tokens[4]);
            let v = parse_eng(&tokens[5])?;
            if kind == 'E' {
                circuit.add_vcvs(card, p, n, cp, cn, v)?;
            } else {
                circuit.add_vccs(card, p, n, cp, cn, v)?;
            }
            Ok(())
        }
        'F' | 'H' => {
            if tokens.len() < 5 {
                return Err(err(
                    0,
                    "controlled source card needs <name> <p> <n> <vsource> <value>",
                ));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            let v = parse_eng(&tokens[4])?;
            if kind == 'F' {
                circuit.add_cccs(card, p, n, &tokens[3], v)?;
            } else {
                circuit.add_ccvs(card, p, n, &tokens[3], v)?;
            }
            Ok(())
        }
        'M' => {
            if tokens.len() < 10 {
                return Err(err(
                    0,
                    "mosfet card needs <name> d g s b <model> W=<w> L=<l>",
                ));
            }
            let d = circuit.node(&tokens[1]);
            let g = circuit.node(&tokens[2]);
            let s = circuit.node(&tokens[3]);
            let b = circuit.node(&tokens[4]);
            let model = models
                .mos
                .get(&tokens[5].to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| err(0, &format!("unknown model {:?}", tokens[5])))?;
            let mut w = None;
            let mut l = None;
            let mut it = tokens[6..].iter();
            while let Some(key) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| err(0, &format!("missing value for {key}")))?;
                match key.to_ascii_lowercase().as_str() {
                    "w" => w = Some(parse_eng(value)?),
                    "l" => l = Some(parse_eng(value)?),
                    other => return Err(err(0, &format!("unknown mosfet parameter {other:?}"))),
                }
            }
            let w = w.ok_or_else(|| err(0, "mosfet missing W"))?;
            let l = l.ok_or_else(|| err(0, "mosfet missing L"))?;
            circuit.add_mosfet(card, d, g, s, b, model, w, l)?;
            Ok(())
        }
        'P' => {
            if tokens.len() < 3 {
                return Err(err(0, "ptm card needs <name> <p> <n> [model] [params]"));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            // Optional PTM model-card name, then key/value overrides.
            let (mut params, rest) = match tokens.get(3) {
                Some(t) if models.ptm.contains_key(&t.to_ascii_lowercase()) => {
                    (models.ptm[&t.to_ascii_lowercase()], &tokens[4..])
                }
                _ => (PtmParams::vo2_default(), &tokens[3..]),
            };
            apply_ptm_overrides(rest, &mut params)?;
            circuit.add_ptm(card, p, n, params)?;
            Ok(())
        }
        other => Err(err(0, &format!("unknown card type {other:?}"))),
    }
}

/// Parses the value portion of a V/I card.
fn parse_source(tokens: &[String]) -> Result<SourceWaveform, CircuitError> {
    if tokens.is_empty() {
        return Err(err(0, "missing source value"));
    }
    let head = tokens[0].to_ascii_uppercase();
    match head.as_str() {
        "DC" => {
            let v = tokens
                .get(1)
                .ok_or_else(|| err(0, "DC needs a value"))
                .and_then(|t| parse_eng(t))?;
            Ok(SourceWaveform::Dc(v))
        }
        "PWL" => {
            let args = paren_args(&tokens[1..])?;
            if args.len() < 2 || args.len() % 2 != 0 {
                return Err(err(0, "PWL needs an even number of (t, v) values"));
            }
            let (xs, ys): (Vec<f64>, Vec<f64>) = args.chunks(2).map(|c| (c[0], c[1])).unzip();
            let pwl = PiecewiseLinear::new(xs, ys).map_err(|e| err(0, &format!("bad PWL: {e}")))?;
            Ok(SourceWaveform::Pwl(pwl))
        }
        "PULSE" => {
            let a = paren_args(&tokens[1..])?;
            if a.len() < 6 || a.len() > 7 {
                return Err(err(0, "PULSE needs 6 or 7 arguments"));
            }
            Ok(SourceWaveform::Pulse {
                v1: a[0],
                v2: a[1],
                delay: a[2],
                rise: a[3],
                fall: a[4],
                width: a[5],
                period: a.get(6).copied().unwrap_or(f64::INFINITY),
            })
        }
        "SIN" => {
            let a = paren_args(&tokens[1..])?;
            if a.len() < 3 || a.len() > 4 {
                return Err(err(0, "SIN needs 3 or 4 arguments"));
            }
            Ok(SourceWaveform::Sine {
                offset: a[0],
                ampl: a[1],
                freq: a[2],
                delay: a.get(3).copied().unwrap_or(0.0),
            })
        }
        "RAMP" => {
            let a = paren_args(&tokens[1..])?;
            if a.len() != 4 {
                return Err(err(0, "RAMP needs 4 arguments (v0 v1 tstart trise)"));
            }
            Ok(SourceWaveform::ramp(a[0], a[1], a[2], a[3]))
        }
        _ => {
            // Bare value means DC.
            Ok(SourceWaveform::Dc(parse_eng(&tokens[0])?))
        }
    }
}

/// Consumes `( v v ... )` token groups into numeric arguments.
fn paren_args(tokens: &[String]) -> Result<Vec<f64>, CircuitError> {
    if tokens.first().map(String::as_str) != Some("(") {
        return Err(err(0, "expected '('"));
    }
    let close = tokens
        .iter()
        .position(|t| t == ")")
        .ok_or_else(|| err(0, "missing ')'"))?;
    tokens[1..close].iter().map(|t| parse_eng(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn parse_rc_deck() {
        let parsed = parse_netlist("V1 a 0 DC 1\nR1 a 0 1k\n.end").unwrap();
        assert_eq!(parsed.circuit.elements().len(), 2);
        parsed.circuit.validate().unwrap();
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let deck = "* title\n\nV1 a 0 1.0 ; the source\n* mid comment\nR1 a 0 50\n";
        let parsed = parse_netlist(deck).unwrap();
        assert_eq!(parsed.circuit.elements().len(), 2);
    }

    #[test]
    fn parse_continuation_lines() {
        let deck = "V1 a 0\n+ PWL(0 0\n+ 10p 1)\nR1 a 0 1k";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[0] {
            Element::VoltageSource(v) => {
                assert!((v.wave.eval(5e-12) - 0.5).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_pulse_source() {
        let parsed = parse_netlist("V1 a 0 PULSE(0 1 1n 0.1n 0.1n 0.3n 1n)\nR1 a 0 1k").unwrap();
        match &parsed.circuit.elements()[0] {
            Element::VoltageSource(v) => {
                assert_eq!(v.wave.eval(1.2e-9), 1.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_mosfet_with_model() {
        let deck = "\
.model hvtn nmos40 vt_shift=0.15
VDD d 0 1
M1 d g 0 0 hvtn W=120n L=40n
R1 g 0 1k";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Mosfet(m) => {
                assert!((m.model.vt0 - 0.60).abs() < 1e-12);
                assert!((m.w - 120e-9).abs() < 1e-15);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_ptm_card_with_overrides() {
        let deck = "V1 a 0 1\nP1 a b VIMT=0.3 TPTM=5p\nC1 b 0 1f";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Ptm(p) => {
                assert_eq!(p.params.v_imt, 0.3);
                assert_eq!(p.params.t_ptm, 5e-12);
                assert_eq!(p.params.r_ins, 500e3); // default retained
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_tran_directive() {
        let parsed = parse_netlist("V1 a 0 1\nR1 a 0 1\n.tran 0.1p 200p").unwrap();
        assert_eq!(
            parsed.analyses,
            vec![Analysis::Tran {
                dtmax: 0.1e-12,
                tstop: 200e-12
            }]
        );
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse_netlist("V1 a 0 1\nR1 a 0 oops").unwrap_err();
        match e {
            CircuitError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_card_rejected() {
        assert!(parse_netlist("X1 a b c").is_err());
    }

    #[test]
    fn unknown_model_rejected() {
        assert!(parse_netlist("M1 d g 0 0 bogus W=1u L=1u").is_err());
    }

    #[test]
    fn cap_with_initial_condition() {
        let parsed = parse_netlist("V1 a 0 1\nC1 a 0 1f IC=0.5").unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Capacitor(c) => assert_eq!(c.ic, Some(0.5)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn round_trip_through_writer() {
        let deck = "V1 in 0 DC 1\nR1 in out 50\nC1 out 0 2f";
        let parsed = parse_netlist(deck).unwrap();
        let text = parsed.circuit.to_netlist();
        let reparsed = parse_netlist(&text).unwrap();
        assert_eq!(
            parsed.circuit.elements().len(),
            reparsed.circuit.elements().len()
        );
    }

    #[test]
    fn stops_at_end_directive() {
        let parsed = parse_netlist("V1 a 0 1\nR1 a 0 1\n.end\ngarbage here").unwrap();
        assert_eq!(parsed.circuit.elements().len(), 2);
    }
}

#[cfg(test)]
mod subckt_tests {
    use super::*;
    use crate::element::Element;

    const INV_DECK: &str = "\
.subckt inv in out vdd
MP out in vdd vdd pmos40 W=240n L=40n
MN out in 0 0 nmos40 W=120n L=40n
.ends
VDD vdd 0 DC 1.0
VIN a 0 DC 0.0
X1 a b vdd inv
X2 b c vdd inv
C1 c 0 2f
";

    #[test]
    fn subckt_expansion_flattens_two_instances() {
        let parsed = parse_netlist(INV_DECK).unwrap();
        // 3 top-level elements + 2 MOSFETs per instance.
        assert_eq!(parsed.circuit.elements().len(), 7);
        parsed.circuit.validate().unwrap();
        // Instance-scoped element names.
        assert!(parsed.circuit.find_element("Mx1.P").is_some());
        assert!(parsed.circuit.find_element("Mx2.N").is_some());
        // Ports map to outer nodes; no leaked internal nodes for this cell.
        assert!(parsed.circuit.find_node("b").is_some());
        assert!(parsed.circuit.find_node("x1.out").is_none());
    }

    #[test]
    fn subckt_internal_nodes_are_scoped() {
        let deck = "\
.subckt divider top bot
R1 top mid 1k
R2 mid bot 1k
.ends
V1 a 0 DC 1.0
Xu a 0 divider
Xv a 0 divider
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        assert!(parsed.circuit.find_node("xu.mid").is_some());
        assert!(parsed.circuit.find_node("xv.mid").is_some());
        // The two instances are electrically independent halves.
        assert_eq!(parsed.circuit.elements().len(), 5);
    }

    #[test]
    fn nested_subckts_expand() {
        let deck = "\
.subckt unit a b
R1 a b 1k
.ends
.subckt pair p q
X1 p m unit
X2 m q unit
.ends
V1 in 0 DC 1.0
Xtop in 0 pair
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        let resistors = parsed
            .circuit
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Resistor(_)))
            .count();
        assert_eq!(resistors, 2);
        assert!(parsed.circuit.find_node("xtop.m").is_some());
    }

    #[test]
    fn ground_stays_global_inside_subckt() {
        let deck = "\
.subckt pulldown x
R1 x 0 1k
.ends
V1 a 0 DC 1.0
X1 a pulldown
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        // Only nodes: ground + a.
        assert_eq!(parsed.circuit.node_count(), 2);
    }

    #[test]
    fn subckt_errors() {
        assert!(parse_netlist(".subckt foo a\nR1 a 0 1k\n").is_err()); // unterminated
        assert!(parse_netlist(".ends\n").is_err()); // stray .ends
        assert!(parse_netlist("V1 a 0 1\nX1 a b nosuch\nR1 b 0 1k").is_err()); // unknown
                                                                               // Port count mismatch.
        let deck = ".subckt u a b\nR1 a b 1k\n.ends\nV1 x 0 1\nX1 x u\n";
        assert!(parse_netlist(deck).is_err());
        // Recursive definition trips the depth guard.
        let deck = ".subckt loop a b\nX1 a b loop\n.ends\nV1 x 0 1\nX1 x 0 loop\n";
        assert!(parse_netlist(deck).is_err());
    }

    #[test]
    fn subckt_with_ptm_and_tran() {
        let deck = "\
.subckt softinv in out vdd
P1 in g VIMT=0.4 VMIT=0.1
MP out g vdd vdd pmos40 W=240n L=40n
MN out g 0 0 nmos40 W=120n L=40n
.ends
VDD vdd 0 DC 1.0
VIN a 0 PWL(0 1 20p 1 50p 0)
X1 a y vdd softinv
CL y 0 2f
.tran 0.5p 300p
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        assert!(parsed.circuit.find_element("Px1.1").is_some());
        assert_eq!(parsed.analyses.len(), 1);
    }

    #[test]
    fn duplicate_subckt_is_a_named_error() {
        let deck = ".subckt u a b\nR1 a b 1k\n.ends\n.subckt u a b\nR1 a b 2k\n.ends\n";
        match parse_netlist(deck).unwrap_err() {
            CircuitError::DuplicateSubckt { name, line } => {
                assert_eq!(name, "u");
                assert_eq!(line, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_a_named_error() {
        let deck = ".subckt u a b\nR1 a b 1k\n.ends\nV1 x 0 1\nX1 x u\n";
        match parse_netlist(deck).unwrap_err() {
            CircuitError::SubcktArity {
                subckt,
                expected,
                given,
                line,
            } => {
                assert_eq!(subckt, "u");
                assert_eq!(expected, 2);
                assert_eq!(given, 1);
                assert_eq!(line, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recursion_is_a_named_error() {
        let deck = ".subckt loop a b\nX1 a b loop\n.ends\nV1 x 0 1\nX1 x 0 loop\n";
        match parse_netlist(deck).unwrap_err() {
            CircuitError::SubcktRecursion { subckt, line } => {
                assert_eq!(subckt, "loop");
                assert_eq!(line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_subckt_is_a_named_error() {
        match parse_netlist("V1 a 0 1\nX1 a b nosuch\nR1 b 0 1k").unwrap_err() {
            CircuitError::UnknownSubckt { name, line } => {
                assert_eq!(name, "nosuch");
                assert_eq!(line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn directive_inside_subckt_rejected() {
        let deck = "\
.subckt bad a b
R1 a b 1k
.tran 1p 10p
.ends
V1 x 0 1
X1 x 0 bad
";
        match parse_netlist(deck).unwrap_err() {
            CircuitError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains(".tran"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod param_tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn global_params_feed_values_and_are_recorded() {
        let deck = "\
.param vdd=1.2 rload={vdd*1000}
V1 a 0 DC {vdd}
R1 a 0 {rload}
";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[0] {
            Element::VoltageSource(v) => assert_eq!(v.wave.eval(0.0), 1.2),
            _ => unreachable!(),
        }
        match &parsed.circuit.elements()[1] {
            Element::Resistor(r) => assert!((r.ohms - 1200.0).abs() < 1e-9),
            _ => unreachable!(),
        }
        assert_eq!(parsed.circuit.params().len(), 2);
        assert_eq!(parsed.circuit.params()[0], ("vdd".to_string(), 1.2));
    }

    #[test]
    fn params_apply_regardless_of_position() {
        // The .param card comes after its use; scope-wide semantics.
        let deck = "R1 a 0 {r}\nV1 a 0 1\n.param r=2k";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[0] {
            Element::Resistor(r) => assert_eq!(r.ohms, 2000.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn later_param_definition_wins() {
        let deck = ".param r=1k\n.param r=3k\nV1 a 0 1\nR1 a 0 {r}";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Resistor(r) => assert_eq!(r.ohms, 3000.0),
            _ => unreachable!(),
        }
        assert_eq!(parsed.circuit.params(), &[("r".to_string(), 3000.0)]);
    }

    #[test]
    fn expressions_with_spaces_and_suffixes() {
        let deck = ".param c0 = {2 * (1f + 0.5f)}\nV1 a 0 1\nC1 a 0 {c0}";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Capacitor(c) => assert!((c.farads - 3e-15).abs() < 1e-27),
            _ => unreachable!(),
        }
    }

    #[test]
    fn undefined_param_carries_use_line() {
        let e = parse_netlist("V1 a 0 1\nR1 a 0 {nope}").unwrap_err();
        match e {
            CircuitError::UndefinedParam { name, line } => {
                assert_eq!(name, "nope");
                assert_eq!(line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn param_cycle_is_a_named_error() {
        let e = parse_netlist(".param a={b} b={a}\nV1 x 0 1\nR1 x 0 {a}").unwrap_err();
        assert!(matches!(e, CircuitError::ParamCycle { .. }), "{e:?}");
    }

    #[test]
    fn subckt_defaults_and_x_card_overrides() {
        let deck = "\
.subckt div a b rtop=1k rbot={rtop}
R1 a m {rtop}
R2 m b {rbot}
.ends
V1 in 0 1
X1 in 0 div
X2 in 0 div rtop=2k
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        let ohms = |name: &str| match parsed
            .circuit
            .elements()
            .iter()
            .find(|e| e.name() == name)
            .unwrap()
        {
            Element::Resistor(r) => r.ohms,
            _ => unreachable!(),
        };
        assert_eq!(ohms("Rx1.1"), 1000.0);
        assert_eq!(ohms("Rx1.2"), 1000.0);
        // Override propagates into the default that references it.
        assert_eq!(ohms("Rx2.1"), 2000.0);
        assert_eq!(ohms("Rx2.2"), 2000.0);
    }

    #[test]
    fn subckt_param_shadows_global() {
        let deck = "\
.param w=1k
.subckt cell a b w=2k
R1 a b {w}
.ends
V1 in 0 1
R0 in mid {w}
X1 mid 0 cell
";
        let parsed = parse_netlist(deck).unwrap();
        let ohms = |name: &str| match parsed
            .circuit
            .elements()
            .iter()
            .find(|e| e.name() == name)
            .unwrap()
        {
            Element::Resistor(r) => r.ohms,
            _ => unreachable!(),
        };
        assert_eq!(ohms("R0"), 1000.0);
        assert_eq!(ohms("Rx1.1"), 2000.0);
    }

    #[test]
    fn body_params_resolve_against_enclosing_scope() {
        let deck = "\
.param base=100
.subckt cell a b
.param r={base*10}
R1 a b {r}
.ends
V1 in 0 1
X1 in 0 cell
";
        let parsed = parse_netlist(deck).unwrap();
        match parsed
            .circuit
            .elements()
            .iter()
            .find(|e| e.name() == "Rx1.1")
            .unwrap()
        {
            Element::Resistor(r) => assert_eq!(r.ohms, 1000.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unknown_x_card_param_rejected() {
        let deck = ".subckt u a b w=1k\nR1 a b {w}\n.ends\nV1 x 0 1\nX1 x 0 u bogus=2\n";
        let e = parse_netlist(deck).unwrap_err();
        match e {
            CircuitError::Parse { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("bogus"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn braces_in_directives() {
        let deck = ".param ts=100p\nV1 a 0 1\nR1 a 0 1k\n.tran {ts/100} {ts}";
        let parsed = parse_netlist(deck).unwrap();
        assert_eq!(
            parsed.analyses,
            vec![Analysis::Tran {
                dtmax: 1e-12,
                tstop: 100e-12
            }]
        );
    }

    #[test]
    fn bad_param_name_rejected() {
        assert!(parse_netlist(".param 1x=2\nV1 a 0 1\nR1 a 0 1k").is_err());
        assert!(parse_netlist(".param\nV1 a 0 1\nR1 a 0 1k").is_err());
    }

    #[test]
    fn unmatched_brace_rejected() {
        let e = parse_netlist("V1 a 0 1\nR1 a 0 {r").unwrap_err();
        assert!(matches!(e, CircuitError::Parse { line: 2, .. }), "{e:?}");
    }
}

#[cfg(test)]
mod controlled_source_tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn parse_vcvs_and_vccs() {
        let deck = "\
V1 in 0 DC 0.1
R1 in 0 1k
E1 amp 0 in 0 10
RL amp 0 1k
G1 0 gout in 0 1m
RG gout 0 2k
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        match parsed.circuit.elements().iter().find(|e| e.name() == "E1") {
            Some(Element::Vcvs(e)) => assert_eq!(e.gain, 10.0),
            other => panic!("unexpected {other:?}"),
        }
        match parsed.circuit.elements().iter().find(|e| e.name() == "G1") {
            Some(Element::Vccs(g)) => assert_eq!(g.gm, 1e-3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_cccs_and_ccvs() {
        let deck = "\
V1 in 0 DC 1
R1 in 0 1k
F1 fout 0 V1 2
RF fout 0 1k
H1 hout 0 V1 50
RH hout 0 1k
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        match parsed.circuit.elements().iter().find(|e| e.name() == "F1") {
            Some(Element::Cccs(f)) => {
                assert_eq!(f.vname, "V1");
                assert_eq!(f.gain, 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parsed.circuit.elements().iter().find(|e| e.name() == "H1") {
            Some(Element::Ccvs(h)) => assert_eq!(h.r, 50.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dangling_control_source_fails_validation() {
        let deck = "I1 0 a DC 1m\nRA a 0 1k\nF1 b 0 VMISSING 2\nRB b 0 1k";
        let parsed = parse_netlist(deck).unwrap();
        match parsed.circuit.validate().unwrap_err() {
            CircuitError::UnknownControlSource { element, source } => {
                assert_eq!(element, "F1");
                assert_eq!(source, "VMISSING");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn f_card_in_subckt_references_local_vsource() {
        let deck = "\
.subckt mirror in out
VSENSE in 0 DC 0
F1 out 0 VSENSE 2
.ends
I1 0 a DC 1m
X1 a b mirror
RL b 0 1k
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        assert!(parsed.circuit.find_element("Vx1.SENSE").is_some());
        match parsed
            .circuit
            .elements()
            .iter()
            .find(|e| e.name() == "Fx1.1")
        {
            Some(Element::Cccs(f)) => assert_eq!(f.vname, "Vx1.SENSE"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn controlled_sources_round_trip_through_writer() {
        let deck = "\
V1 in 0 DC 1
R1 in 0 1k
E1 e 0 in 0 4
RE e 0 1k
G1 0 g in 0 2m
RG g 0 1k
F1 f 0 V1 3
RF f 0 1k
H1 h 0 V1 25
RH h 0 1k
";
        let parsed = parse_netlist(deck).unwrap();
        let text = parsed.circuit.to_netlist();
        let reparsed = parse_netlist(&text).unwrap();
        assert_eq!(parsed.circuit.elements(), reparsed.circuit.elements());
    }
}

#[cfg(test)]
mod directive_tests {
    use super::*;

    #[test]
    fn dc_directive_parses() {
        let parsed = parse_netlist("V1 a 0 1\nR1 a 0 1k\n.dc V1 0 1 0.25").unwrap();
        assert_eq!(
            parsed.analyses,
            vec![Analysis::Dc {
                source: "V1".to_string(),
                start: 0.0,
                stop: 1.0,
                step: 0.25
            }]
        );
    }

    #[test]
    fn dc_directive_rejects_bad_step() {
        assert!(parse_netlist("V1 a 0 1\nR1 a 0 1k\n.dc V1 0 1 0").is_err());
        assert!(parse_netlist("V1 a 0 1\nR1 a 0 1k\n.dc V1 0 1 -0.1").is_err());
        assert!(parse_netlist("V1 a 0 1\nR1 a 0 1k\n.dc V1 0 1").is_err());
    }

    #[test]
    fn dc_grid_spans_inclusive_ranges() {
        assert_eq!(dc_grid(0.0, 1.0, 0.25), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(dc_grid(1.0, 0.0, -0.5), vec![1.0, 0.5, 0.0]);
        // Non-dividing step stops short of overshooting.
        assert_eq!(
            dc_grid(0.0, 1.0, 0.3),
            vec![0.0, 0.3, 0.6, 0.8999999999999999]
        );
        assert_eq!(dc_grid(0.5, 0.5, 0.1), vec![0.5]);
    }

    #[test]
    fn dc_grid_keeps_stop_for_fine_steps_at_an_offset() {
        // Regression: with a nanovolt step around a 0.1 V offset the
        // rounding of `(stop - start) / step` is dominated by the decimal
        // rounding of the endpoints — thousands of times the old absolute
        // `1e-9` count epsilon — and the inclusive stop point was dropped.
        for k in [114usize, 135, 142, 163] {
            let (start, step) = (0.1, 1e-9);
            let stop = start + k as f64 * step;
            let grid = dc_grid(start, stop, step);
            assert_eq!(grid.len(), k + 1, "k={k}: stop point dropped");
            assert_eq!(*grid.last().unwrap(), stop, "k={k}");
        }
    }

    #[test]
    fn dc_grid_snaps_final_point_to_stop() {
        // 0.3/0.1 does not divide exactly in binary; the last point used
        // to overshoot to 0.30000000000000004 instead of landing on stop.
        let grid = dc_grid(0.0, 0.3, 0.1);
        assert_eq!(grid.len(), 4);
        assert_eq!(*grid.last().unwrap(), 0.3);
        // Long sweeps likewise end exactly on the card's stop value.
        let grid = dc_grid(0.0, 100.0, 1e-5);
        assert_eq!(grid.len(), 10_000_001);
        assert_eq!(*grid.last().unwrap(), 100.0);
    }

    #[test]
    fn dc_grid_degenerate_inputs_yield_start_only() {
        assert_eq!(dc_grid(0.0, 1.0, f64::NAN), vec![0.0]);
        assert_eq!(dc_grid(0.0, f64::NAN, 0.1), vec![0.0]);
        assert_eq!(dc_grid(f64::NAN, 1.0, 0.1).len(), 1);
        // Step pointing away from stop: start only (unchanged behavior).
        assert_eq!(dc_grid(0.0, 1.0, -0.1), vec![0.0]);
        assert_eq!(dc_grid(1.0, 0.0, 0.1), vec![1.0]);
    }

    #[test]
    fn ic_directive_pins_nodes() {
        let parsed = parse_netlist("V1 a 0 1\nR1 a b 1k\nC1 b 0 1f\n.ic v(b)=0.5").unwrap();
        let node_ics = parsed.circuit.node_ics();
        assert_eq!(node_ics.len(), 1);
        let b = parsed.circuit.find_node("b").unwrap();
        assert_eq!(node_ics[0], (b, 0.5));
    }

    #[test]
    fn ic_directive_multiple_entries_and_overwrite() {
        let deck = "V1 a 0 1\nR1 a b 1k\nC1 b 0 1f\n.ic v(b)=0.5 v(a)=1\n.ic v(b)=0.7";
        let parsed = parse_netlist(deck).unwrap();
        let b = parsed.circuit.find_node("b").unwrap();
        let ics = parsed.circuit.node_ics();
        assert_eq!(ics.len(), 2);
        assert!(ics.contains(&(b, 0.7)));
    }

    #[test]
    fn ic_directive_rejects_bad_shapes() {
        assert!(parse_netlist("V1 a 0 1\nR1 a 0 1k\n.ic").is_err());
        assert!(parse_netlist("V1 a 0 1\nR1 a 0 1k\n.ic i(a)=1").is_err());
        assert!(parse_netlist("V1 a 0 1\nR1 a 0 1k\n.ic v(a)").is_err());
    }

    #[test]
    fn model_card_full_overrides() {
        let deck = "\
.model fast nmos40 vt0=0.3 kp=400u lambda=0.1 slope_n=1.3
VDD d 0 1
M1 d g 0 0 fast W=120n L=40n
R1 g 0 1k";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            crate::element::Element::Mosfet(m) => {
                assert_eq!(m.model.vt0, 0.3);
                assert!((m.model.kp - 400e-6).abs() < 1e-15);
                assert_eq!(m.model.lambda, 0.1);
                assert_eq!(m.model.slope_n, 1.3);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn model_cards_can_derive_from_model_cards() {
        let deck = "\
.model hvtn nmos40 vt_shift=0.1
.model hvtn2 hvtn vt_shift=0.1
VDD d 0 1
M1 d g 0 0 hvtn2 W=120n L=40n
R1 g 0 1k";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            crate::element::Element::Mosfet(m) => {
                // nmos40 vt0 is 0.45; two +0.1 shifts stack.
                assert!((m.model.vt0 - 0.65).abs() < 1e-12);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn ptm_model_cards_apply_to_p_cards() {
        let deck = "\
.model myptm ptm VIMT=0.35 RINS=200k
V1 a 0 1
P1 a b myptm TPTM=2p
C1 b 0 1f";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            crate::element::Element::Ptm(p) => {
                assert_eq!(p.params.v_imt, 0.35);
                assert_eq!(p.params.r_ins, 200e3);
                assert_eq!(p.params.t_ptm, 2e-12); // instance override on top
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn ptm_model_cards_can_derive() {
        let deck = "\
.model base ptm VIMT=0.35
.model hot base VMIT=0.05
V1 a 0 1
P1 a b hot
C1 b 0 1f";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            crate::element::Element::Ptm(p) => {
                assert_eq!(p.params.v_imt, 0.35);
                assert_eq!(p.params.v_mit, 0.05);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn invalid_ptm_model_card_rejected() {
        // v_mit above v_imt violates the device invariant.
        assert!(parse_netlist(".model bad ptm VIMT=0.1 VMIT=0.5\nV1 a 0 1\nR1 a 0 1k").is_err());
    }

    #[test]
    fn nmos_pmos_aliases_available() {
        let deck = "VDD d 0 1\nM1 d g 0 0 nmos W=120n L=40n\nR1 g 0 1k";
        assert!(parse_netlist(deck).is_ok());
    }
}
