//! SPICE-like netlist parser.
//!
//! Supports the card subset the Soft-FET experiments use:
//!
//! ```text
//! * comment                          ; inline comments after ';'
//! R<name> p n <value>
//! C<name> p n <value> [IC=<v>]
//! L<name> p n <value>
//! V<name> p n DC <v> | <v> | PWL(t v ...) | PULSE(v1 v2 d tr tf pw [per]) | SIN(off amp f [d])
//! I<name> p n <same source syntax>
//! M<name> d g s b <model> W=<w> L=<l>
//! P<name> p n [VIMT=v] [VMIT=v] [RINS=r] [RMET=r] [TPTM=t]
//! .model <name> nmos40|pmos40 [vt_shift=<v>]
//! .subckt <name> <ports...> ... .ends    ; hierarchical cells
//! X<name> <nodes...> <subckt>            ; instantiation (flattened)
//! .tran <dtmax> <tstop>
//! .end
//! + <continuation of the previous card>
//! ```
//!
//! Subcircuits are flattened at parse time: internal nodes and element
//! names get the instance path as a prefix (`x1.mid`, `Mx1.P`), ports map
//! to the instantiating nodes, and ground stays global.
//!
//! Values accept engineering suffixes (see [`crate::si::parse_eng`]).
//! Model names `nmos40` and `pmos40` are predefined.
//!
//! # Example
//!
//! ```
//! let deck = "\
//! * inverter driving a load
//! VDD vdd 0 DC 1.0
//! VIN in 0 PWL(0 0 10p 0 40p 1)
//! M1 out in vdd vdd pmos40 W=240n L=40n
//! M2 out in 0 0 nmos40 W=120n L=40n
//! C1 out 0 2f
//! .tran 0.1p 200p
//! .end";
//! let parsed = sfet_circuit::parse::parse_netlist(deck).unwrap();
//! assert_eq!(parsed.circuit.elements().len(), 5);
//! assert_eq!(parsed.analyses.len(), 1);
//! ```

use std::collections::HashMap;

use crate::error::CircuitError;
use crate::netlist::Circuit;
use crate::si::parse_eng;
use crate::waveform::SourceWaveform;
use sfet_devices::mosfet::MosfetModel;
use sfet_devices::ptm::PtmParams;
use sfet_numeric::interp::PiecewiseLinear;

/// An analysis directive found in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum Analysis {
    /// `.tran <dtmax> <tstop>` — transient analysis request.
    Tran {
        /// Maximum time step \[s\].
        dtmax: f64,
        /// Stop time \[s\].
        tstop: f64,
    },
}

/// Result of parsing a netlist: the circuit plus analysis directives.
#[derive(Debug, Clone)]
pub struct ParsedNetlist {
    /// The parsed circuit.
    pub circuit: Circuit,
    /// Analysis directives in file order.
    pub analyses: Vec<Analysis>,
}

/// Parses a SPICE-like netlist.
///
/// # Errors
///
/// [`CircuitError::Parse`] with the 1-based line number of the offending
/// card, or any construction error from the [`Circuit`] builder.
pub fn parse_netlist(text: &str) -> Result<ParsedNetlist, CircuitError> {
    // Join continuation lines, remembering each logical line's start line.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim_end();
        if line.trim().is_empty() || line.trim_start().starts_with('*') {
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix('+') {
            if let Some(last) = logical.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest);
                continue;
            }
            return Err(err(idx + 1, "continuation line with nothing to continue"));
        }
        logical.push((idx + 1, line.trim().to_string()));
    }

    // Extract .subckt definitions, then flatten X-card instantiations.
    let (toplevel, subckts) = extract_subckts(logical)?;
    let logical = expand_subckts(toplevel, &subckts, 0)?;

    let mut models: HashMap<String, MosfetModel> = HashMap::new();
    models.insert("nmos40".into(), MosfetModel::nmos_40nm());
    models.insert("pmos40".into(), MosfetModel::pmos_40nm());

    let mut circuit = Circuit::new();
    let mut analyses = Vec::new();

    for (line_no, line) in &logical {
        let tokens = tokenize(line);
        if tokens.is_empty() {
            continue;
        }
        let head = tokens[0].to_ascii_lowercase();
        let result = if head == ".end" {
            break;
        } else if head == ".model" {
            parse_model(&tokens, &mut models)
        } else if head == ".tran" {
            parse_tran(&tokens).map(|a| analyses.push(a))
        } else if head.starts_with('.') {
            Err(err(0, &format!("unknown directive {:?}", tokens[0])))
        } else {
            parse_card(&tokens, &mut circuit, &models)
        };
        result.map_err(|e| rewrite_line(e, *line_no))?;
    }

    Ok(ParsedNetlist { circuit, analyses })
}

/// A subcircuit definition: port names plus body card lines.
#[derive(Debug, Clone)]
struct Subckt {
    ports: Vec<String>,
    body: Vec<(usize, String)>,
}

/// Numbered logical netlist lines.
type NumberedLines = Vec<(usize, String)>;

/// Splits the logical lines into top-level cards and `.subckt` blocks.
fn extract_subckts(
    logical: NumberedLines,
) -> Result<(NumberedLines, HashMap<String, Subckt>), CircuitError> {
    let mut toplevel = Vec::new();
    let mut subckts: HashMap<String, Subckt> = HashMap::new();
    let mut current: Option<(String, Subckt, usize)> = None;

    for (line_no, line) in logical {
        let head = line
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_lowercase();
        match head.as_str() {
            ".subckt" => {
                if current.is_some() {
                    return Err(err(line_no, "nested .subckt definitions are not allowed"));
                }
                let tokens: Vec<&str> = line.split_whitespace().collect();
                if tokens.len() < 3 {
                    return Err(err(line_no, ".subckt needs a name and at least one port"));
                }
                let name = tokens[1].to_ascii_lowercase();
                if subckts.contains_key(&name) {
                    return Err(err(line_no, &format!("duplicate subcircuit {name:?}")));
                }
                let ports = tokens[2..].iter().map(|s| s.to_string()).collect();
                current = Some((
                    name,
                    Subckt {
                        ports,
                        body: Vec::new(),
                    },
                    line_no,
                ));
            }
            ".ends" => match current.take() {
                Some((name, def, _)) => {
                    subckts.insert(name, def);
                }
                None => return Err(err(line_no, ".ends without a matching .subckt")),
            },
            _ => match &mut current {
                Some((_, def, _)) => def.body.push((line_no, line)),
                None => toplevel.push((line_no, line)),
            },
        }
    }
    if let Some((name, _, line_no)) = current {
        return Err(err(line_no, &format!("unterminated .subckt {name:?}")));
    }
    Ok((toplevel, subckts))
}

/// Maximum subcircuit nesting depth (guards against recursive definitions).
const MAX_SUBCKT_DEPTH: usize = 16;

/// Recursively expands `X<name> <node...> <subckt>` cards into flat card
/// lines. Internal nodes and element names are prefixed with the instance
/// path (`x1.`); ground (`0`/`gnd`) stays global.
fn expand_subckts(
    lines: NumberedLines,
    subckts: &HashMap<String, Subckt>,
    depth: usize,
) -> Result<NumberedLines, CircuitError> {
    let mut out = Vec::with_capacity(lines.len());
    for (line_no, line) in lines {
        let is_x = line
            .chars()
            .next()
            .map(|c| c.eq_ignore_ascii_case(&'x'))
            .unwrap_or(false);
        if !is_x {
            out.push((line_no, line));
            continue;
        }
        if depth >= MAX_SUBCKT_DEPTH {
            return Err(err(line_no, "subcircuit nesting too deep (recursion?)"));
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 3 {
            return Err(err(line_no, "X card needs <name> <nodes...> <subckt>"));
        }
        let inst = tokens[0].to_ascii_lowercase();
        let sub_name = tokens[tokens.len() - 1].to_ascii_lowercase();
        let outer_nodes = &tokens[1..tokens.len() - 1];
        let def = subckts
            .get(&sub_name)
            .ok_or_else(|| err(line_no, &format!("unknown subcircuit {sub_name:?}")))?;
        if outer_nodes.len() != def.ports.len() {
            return Err(err(
                line_no,
                &format!(
                    "subcircuit {sub_name:?} has {} ports, {} nodes given",
                    def.ports.len(),
                    outer_nodes.len()
                ),
            ));
        }
        let port_map: HashMap<&str, &str> = def
            .ports
            .iter()
            .map(String::as_str)
            .zip(outer_nodes.iter().copied())
            .collect();
        let mut expanded_body = Vec::with_capacity(def.body.len());
        for (body_line_no, body_line) in &def.body {
            expanded_body.push((*body_line_no, rename_card(body_line, &inst, &port_map)));
        }
        // Recurse for nested X cards inside the body.
        let flat = expand_subckts(expanded_body, subckts, depth + 1)?;
        out.extend(flat);
    }
    Ok(out)
}

/// Rewrites one body card for instantiation: element name gets the
/// instance prefix; node tokens map through the port map or get prefixed.
fn rename_card(line: &str, inst: &str, port_map: &HashMap<&str, &str>) -> String {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.is_empty() {
        return line.to_string();
    }
    let kind = tokens[0].chars().next().unwrap_or(' ').to_ascii_uppercase();
    // Which token positions are node names, per card type.
    let node_count = match kind {
        'R' | 'C' | 'L' | 'V' | 'I' | 'P' => 2,
        'M' => 4,
        'X' => tokens.len().saturating_sub(2), // all but name and subckt name
        _ => 0,
    };
    // The card's type letter must stay first (the card dispatcher keys on
    // it), so the instance prefix goes after it: MP inside x1 -> Mx1.P.
    let renamed = if kind == 'X' {
        format!("{}.{}", inst, tokens[0])
    } else {
        format!("{}{}.{}", &tokens[0][..1], inst, &tokens[0][1..])
    };
    let mut out = vec![renamed];
    for (i, tok) in tokens.iter().enumerate().skip(1) {
        if i <= node_count {
            out.push(map_node(tok, inst, port_map));
        } else {
            out.push(tok.to_string());
        }
    }
    out.join(" ")
}

fn map_node(token: &str, inst: &str, port_map: &HashMap<&str, &str>) -> String {
    if token == "0" || token.eq_ignore_ascii_case("gnd") {
        return "0".to_string();
    }
    match port_map.get(token) {
        Some(outer) => outer.to_string(),
        None => format!("{inst}.{token}"),
    }
}

fn err(line: usize, message: &str) -> CircuitError {
    CircuitError::Parse {
        line,
        message: message.to_string(),
    }
}

fn rewrite_line(e: CircuitError, line: usize) -> CircuitError {
    match e {
        CircuitError::Parse { message, .. } => CircuitError::Parse { line, message },
        other => other,
    }
}

/// Splits a card into tokens, treating parentheses and `=` as separators
/// that also survive as their own tokens (for `(`/`)`) or vanish (`=`,
/// commas).
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in line.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(ch.to_string());
            }
            c if c.is_whitespace() || c == ',' || c == '=' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_model(
    tokens: &[String],
    models: &mut HashMap<String, MosfetModel>,
) -> Result<(), CircuitError> {
    if tokens.len() < 3 {
        return Err(err(0, ".model needs a name and a base model"));
    }
    let name = tokens[1].to_ascii_lowercase();
    let base = tokens[2].to_ascii_lowercase();
    let mut model = models
        .get(&base)
        .cloned()
        .ok_or_else(|| err(0, &format!("unknown base model {base:?}")))?;
    let mut rest = tokens[3..].iter();
    while let Some(key) = rest.next() {
        let value = rest
            .next()
            .ok_or_else(|| err(0, &format!("missing value for {key}")))?;
        let v = parse_eng(value)?;
        match key.to_ascii_lowercase().as_str() {
            "vt_shift" => model = model.with_vt_shift(v),
            "kp" => model.kp = v,
            "lambda" => model.lambda = v,
            other => return Err(err(0, &format!("unknown model parameter {other:?}"))),
        }
    }
    model.name = name.clone();
    models.insert(name, model);
    Ok(())
}

fn parse_tran(tokens: &[String]) -> Result<Analysis, CircuitError> {
    if tokens.len() != 3 {
        return Err(err(0, ".tran needs <dtmax> <tstop>"));
    }
    Ok(Analysis::Tran {
        dtmax: parse_eng(&tokens[1])?,
        tstop: parse_eng(&tokens[2])?,
    })
}

fn parse_card(
    tokens: &[String],
    circuit: &mut Circuit,
    models: &HashMap<String, MosfetModel>,
) -> Result<(), CircuitError> {
    let card = &tokens[0];
    let kind = card
        .chars()
        .next()
        .map(|c| c.to_ascii_uppercase())
        .ok_or_else(|| err(0, "empty card"))?;
    match kind {
        'R' | 'C' | 'L' => {
            if tokens.len() < 4 {
                return Err(err(0, "passive card needs <name> <p> <n> <value>"));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            let v = parse_eng(&tokens[3])?;
            match kind {
                'R' => circuit.add_resistor(card, p, n, v)?,
                'C' => {
                    // Optional IC=<v>.
                    if tokens.len() >= 6 && tokens[4].eq_ignore_ascii_case("ic") {
                        circuit.add_capacitor_ic(card, p, n, v, parse_eng(&tokens[5])?)?
                    } else {
                        circuit.add_capacitor(card, p, n, v)?
                    }
                }
                _ => circuit.add_inductor(card, p, n, v)?,
            };
            Ok(())
        }
        'V' | 'I' => {
            if tokens.len() < 4 {
                return Err(err(0, "source card needs <name> <p> <n> <value>"));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            let wave = parse_source(&tokens[3..])?;
            if kind == 'V' {
                circuit.add_voltage_source(card, p, n, wave)?;
            } else {
                circuit.add_current_source(card, p, n, wave)?;
            }
            Ok(())
        }
        'M' => {
            if tokens.len() < 10 {
                return Err(err(
                    0,
                    "mosfet card needs <name> d g s b <model> W=<w> L=<l>",
                ));
            }
            let d = circuit.node(&tokens[1]);
            let g = circuit.node(&tokens[2]);
            let s = circuit.node(&tokens[3]);
            let b = circuit.node(&tokens[4]);
            let model = models
                .get(&tokens[5].to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| err(0, &format!("unknown model {:?}", tokens[5])))?;
            let mut w = None;
            let mut l = None;
            let mut it = tokens[6..].iter();
            while let Some(key) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| err(0, &format!("missing value for {key}")))?;
                match key.to_ascii_lowercase().as_str() {
                    "w" => w = Some(parse_eng(value)?),
                    "l" => l = Some(parse_eng(value)?),
                    other => return Err(err(0, &format!("unknown mosfet parameter {other:?}"))),
                }
            }
            let w = w.ok_or_else(|| err(0, "mosfet missing W"))?;
            let l = l.ok_or_else(|| err(0, "mosfet missing L"))?;
            circuit.add_mosfet(card, d, g, s, b, model, w, l)?;
            Ok(())
        }
        'P' => {
            if tokens.len() < 3 {
                return Err(err(0, "ptm card needs <name> <p> <n> [params]"));
            }
            let p = circuit.node(&tokens[1]);
            let n = circuit.node(&tokens[2]);
            let mut params = PtmParams::vo2_default();
            let mut it = tokens[3..].iter();
            while let Some(key) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| err(0, &format!("missing value for {key}")))?;
                let v = parse_eng(value)?;
                match key.to_ascii_lowercase().as_str() {
                    "vimt" => params.v_imt = v,
                    "vmit" => params.v_mit = v,
                    "rins" => params.r_ins = v,
                    "rmet" => params.r_met = v,
                    "tptm" => params.t_ptm = v,
                    other => return Err(err(0, &format!("unknown ptm parameter {other:?}"))),
                }
            }
            circuit.add_ptm(card, p, n, params)?;
            Ok(())
        }
        other => Err(err(0, &format!("unknown card type {other:?}"))),
    }
}

/// Parses the value portion of a V/I card.
fn parse_source(tokens: &[String]) -> Result<SourceWaveform, CircuitError> {
    if tokens.is_empty() {
        return Err(err(0, "missing source value"));
    }
    let head = tokens[0].to_ascii_uppercase();
    match head.as_str() {
        "DC" => {
            let v = tokens
                .get(1)
                .ok_or_else(|| err(0, "DC needs a value"))
                .and_then(|t| parse_eng(t))?;
            Ok(SourceWaveform::Dc(v))
        }
        "PWL" => {
            let args = paren_args(&tokens[1..])?;
            if args.len() < 2 || args.len() % 2 != 0 {
                return Err(err(0, "PWL needs an even number of (t, v) values"));
            }
            let (xs, ys): (Vec<f64>, Vec<f64>) = args.chunks(2).map(|c| (c[0], c[1])).unzip();
            let pwl = PiecewiseLinear::new(xs, ys).map_err(|e| err(0, &format!("bad PWL: {e}")))?;
            Ok(SourceWaveform::Pwl(pwl))
        }
        "PULSE" => {
            let a = paren_args(&tokens[1..])?;
            if a.len() < 6 || a.len() > 7 {
                return Err(err(0, "PULSE needs 6 or 7 arguments"));
            }
            Ok(SourceWaveform::Pulse {
                v1: a[0],
                v2: a[1],
                delay: a[2],
                rise: a[3],
                fall: a[4],
                width: a[5],
                period: a.get(6).copied().unwrap_or(f64::INFINITY),
            })
        }
        "SIN" => {
            let a = paren_args(&tokens[1..])?;
            if a.len() < 3 || a.len() > 4 {
                return Err(err(0, "SIN needs 3 or 4 arguments"));
            }
            Ok(SourceWaveform::Sine {
                offset: a[0],
                ampl: a[1],
                freq: a[2],
                delay: a.get(3).copied().unwrap_or(0.0),
            })
        }
        "RAMP" => {
            let a = paren_args(&tokens[1..])?;
            if a.len() != 4 {
                return Err(err(0, "RAMP needs 4 arguments (v0 v1 tstart trise)"));
            }
            Ok(SourceWaveform::ramp(a[0], a[1], a[2], a[3]))
        }
        _ => {
            // Bare value means DC.
            Ok(SourceWaveform::Dc(parse_eng(&tokens[0])?))
        }
    }
}

/// Consumes `( v v ... )` token groups into numeric arguments.
fn paren_args(tokens: &[String]) -> Result<Vec<f64>, CircuitError> {
    if tokens.first().map(String::as_str) != Some("(") {
        return Err(err(0, "expected '('"));
    }
    let close = tokens
        .iter()
        .position(|t| t == ")")
        .ok_or_else(|| err(0, "missing ')'"))?;
    tokens[1..close].iter().map(|t| parse_eng(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn parse_rc_deck() {
        let parsed = parse_netlist("V1 a 0 DC 1\nR1 a 0 1k\n.end").unwrap();
        assert_eq!(parsed.circuit.elements().len(), 2);
        parsed.circuit.validate().unwrap();
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let deck = "* title\n\nV1 a 0 1.0 ; the source\n* mid comment\nR1 a 0 50\n";
        let parsed = parse_netlist(deck).unwrap();
        assert_eq!(parsed.circuit.elements().len(), 2);
    }

    #[test]
    fn parse_continuation_lines() {
        let deck = "V1 a 0\n+ PWL(0 0\n+ 10p 1)\nR1 a 0 1k";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[0] {
            Element::VoltageSource(v) => {
                assert!((v.wave.eval(5e-12) - 0.5).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_pulse_source() {
        let parsed = parse_netlist("V1 a 0 PULSE(0 1 1n 0.1n 0.1n 0.3n 1n)\nR1 a 0 1k").unwrap();
        match &parsed.circuit.elements()[0] {
            Element::VoltageSource(v) => {
                assert_eq!(v.wave.eval(1.2e-9), 1.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_mosfet_with_model() {
        let deck = "\
.model hvtn nmos40 vt_shift=0.15
VDD d 0 1
M1 d g 0 0 hvtn W=120n L=40n
R1 g 0 1k";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Mosfet(m) => {
                assert!((m.model.vt0 - 0.60).abs() < 1e-12);
                assert!((m.w - 120e-9).abs() < 1e-15);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_ptm_card_with_overrides() {
        let deck = "V1 a 0 1\nP1 a b VIMT=0.3 TPTM=5p\nC1 b 0 1f";
        let parsed = parse_netlist(deck).unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Ptm(p) => {
                assert_eq!(p.params.v_imt, 0.3);
                assert_eq!(p.params.t_ptm, 5e-12);
                assert_eq!(p.params.r_ins, 500e3); // default retained
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_tran_directive() {
        let parsed = parse_netlist("V1 a 0 1\nR1 a 0 1\n.tran 0.1p 200p").unwrap();
        assert_eq!(
            parsed.analyses,
            vec![Analysis::Tran {
                dtmax: 0.1e-12,
                tstop: 200e-12
            }]
        );
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse_netlist("V1 a 0 1\nR1 a 0 oops").unwrap_err();
        match e {
            CircuitError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_card_rejected() {
        assert!(parse_netlist("X1 a b c").is_err());
    }

    #[test]
    fn unknown_model_rejected() {
        assert!(parse_netlist("M1 d g 0 0 bogus W=1u L=1u").is_err());
    }

    #[test]
    fn cap_with_initial_condition() {
        let parsed = parse_netlist("V1 a 0 1\nC1 a 0 1f IC=0.5").unwrap();
        match &parsed.circuit.elements()[1] {
            Element::Capacitor(c) => assert_eq!(c.ic, Some(0.5)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn round_trip_through_writer() {
        let deck = "V1 in 0 DC 1\nR1 in out 50\nC1 out 0 2f";
        let parsed = parse_netlist(deck).unwrap();
        let text = parsed.circuit.to_netlist();
        let reparsed = parse_netlist(&text).unwrap();
        assert_eq!(
            parsed.circuit.elements().len(),
            reparsed.circuit.elements().len()
        );
    }

    #[test]
    fn stops_at_end_directive() {
        let parsed = parse_netlist("V1 a 0 1\nR1 a 0 1\n.end\ngarbage here").unwrap();
        assert_eq!(parsed.circuit.elements().len(), 2);
    }
}

#[cfg(test)]
mod subckt_tests {
    use super::*;
    use crate::element::Element;

    const INV_DECK: &str = "\
.subckt inv in out vdd
MP out in vdd vdd pmos40 W=240n L=40n
MN out in 0 0 nmos40 W=120n L=40n
.ends
VDD vdd 0 DC 1.0
VIN a 0 DC 0.0
X1 a b vdd inv
X2 b c vdd inv
C1 c 0 2f
";

    #[test]
    fn subckt_expansion_flattens_two_instances() {
        let parsed = parse_netlist(INV_DECK).unwrap();
        // 3 top-level elements + 2 MOSFETs per instance.
        assert_eq!(parsed.circuit.elements().len(), 7);
        parsed.circuit.validate().unwrap();
        // Instance-scoped element names.
        assert!(parsed.circuit.find_element("Mx1.P").is_some());
        assert!(parsed.circuit.find_element("Mx2.N").is_some());
        // Ports map to outer nodes; no leaked internal nodes for this cell.
        assert!(parsed.circuit.find_node("b").is_some());
        assert!(parsed.circuit.find_node("x1.out").is_none());
    }

    #[test]
    fn subckt_internal_nodes_are_scoped() {
        let deck = "\
.subckt divider top bot
R1 top mid 1k
R2 mid bot 1k
.ends
V1 a 0 DC 1.0
Xu a 0 divider
Xv a 0 divider
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        assert!(parsed.circuit.find_node("xu.mid").is_some());
        assert!(parsed.circuit.find_node("xv.mid").is_some());
        // The two instances are electrically independent halves.
        assert_eq!(parsed.circuit.elements().len(), 5);
    }

    #[test]
    fn nested_subckts_expand() {
        let deck = "\
.subckt unit a b
R1 a b 1k
.ends
.subckt pair p q
X1 p m unit
X2 m q unit
.ends
V1 in 0 DC 1.0
Xtop in 0 pair
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        let resistors = parsed
            .circuit
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Resistor(_)))
            .count();
        assert_eq!(resistors, 2);
        assert!(parsed.circuit.find_node("xtop.m").is_some());
    }

    #[test]
    fn ground_stays_global_inside_subckt() {
        let deck = "\
.subckt pulldown x
R1 x 0 1k
.ends
V1 a 0 DC 1.0
X1 a pulldown
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        // Only nodes: ground + a.
        assert_eq!(parsed.circuit.node_count(), 2);
    }

    #[test]
    fn subckt_errors() {
        assert!(parse_netlist(".subckt foo a\nR1 a 0 1k\n").is_err()); // unterminated
        assert!(parse_netlist(".ends\n").is_err()); // stray .ends
        assert!(parse_netlist("V1 a 0 1\nX1 a b nosuch\nR1 b 0 1k").is_err()); // unknown
                                                                               // Port count mismatch.
        let deck = ".subckt u a b\nR1 a b 1k\n.ends\nV1 x 0 1\nX1 x u\n";
        assert!(parse_netlist(deck).is_err());
        // Recursive definition trips the depth guard.
        let deck = ".subckt loop a b\nX1 a b loop\n.ends\nV1 x 0 1\nX1 x 0 loop\n";
        assert!(parse_netlist(deck).is_err());
    }

    #[test]
    fn subckt_with_ptm_and_tran() {
        let deck = "\
.subckt softinv in out vdd
P1 in g VIMT=0.4 VMIT=0.1
MP out g vdd vdd pmos40 W=240n L=40n
MN out g 0 0 nmos40 W=120n L=40n
.ends
VDD vdd 0 DC 1.0
VIN a 0 PWL(0 1 20p 1 50p 0)
X1 a y vdd softinv
CL y 0 2f
.tran 0.5p 300p
";
        let parsed = parse_netlist(deck).unwrap();
        parsed.circuit.validate().unwrap();
        assert!(parsed.circuit.find_element("Px1.1").is_some());
        assert_eq!(parsed.analyses.len(), 1);
    }
}
