//! Independent-source waveforms.

use sfet_numeric::interp::PiecewiseLinear;

/// Time-domain waveform of an independent source.
///
/// The variants mirror the SPICE source syntax the paper's experiments
/// need: DC levels, one-shot ramps (the paper's standard input stimulus),
/// periodic pulses, arbitrary PWL, and sinusoids.
///
/// # Example
///
/// ```
/// use sfet_circuit::SourceWaveform;
///
/// // 0 → 1 V ramp starting at t=0, 30 ps rise time (paper Fig. 4 input).
/// let w = SourceWaveform::ramp(0.0, 1.0, 0.0, 30e-12);
/// assert_eq!(w.eval(0.0), 0.0);
/// assert_eq!(w.eval(15e-12), 0.5);
/// assert_eq!(w.eval(1e-9), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// One-shot linear ramp from `v0` to `v1` starting at `t_start` and
    /// lasting `t_rise` (clamped at both ends).
    Ramp {
        /// Initial value.
        v0: f64,
        /// Final value.
        v1: f64,
        /// Ramp start time \[s\].
        t_start: f64,
        /// Ramp duration \[s\] (must be > 0).
        t_rise: f64,
    },
    /// Periodic trapezoidal pulse (SPICE `PULSE`).
    Pulse {
        /// Initial/low value.
        v1: f64,
        /// Pulsed/high value.
        v2: f64,
        /// Delay before the first edge \[s\].
        delay: f64,
        /// Rise time \[s\].
        rise: f64,
        /// Fall time \[s\].
        fall: f64,
        /// High (plateau) width \[s\].
        width: f64,
        /// Repetition period \[s\]; `f64::INFINITY` for one-shot.
        period: f64,
    },
    /// Arbitrary piecewise-linear waveform.
    Pwl(PiecewiseLinear),
    /// Sinusoid `offset + ampl * sin(2π f (t - delay))` for `t >= delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency \[Hz\].
        freq: f64,
        /// Start delay \[s\].
        delay: f64,
    },
}

impl SourceWaveform {
    /// Convenience constructor for the one-shot [`SourceWaveform::Ramp`].
    pub fn ramp(v0: f64, v1: f64, t_start: f64, t_rise: f64) -> Self {
        SourceWaveform::Ramp {
            v0,
            v1,
            t_start,
            t_rise,
        }
    }

    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Ramp {
                v0,
                v1,
                t_start,
                t_rise,
            } => {
                if t <= *t_start {
                    *v0
                } else if t >= t_start + t_rise {
                    *v1
                } else {
                    v0 + (v1 - v0) * (t - t_start) / t_rise
                }
            }
            SourceWaveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    if *rise == 0.0 {
                        *v2
                    } else {
                        v1 + (v2 - v1) * tau / rise
                    }
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    if *fall == 0.0 {
                        *v1
                    } else {
                        v2 + (v1 - v2) * (tau - rise - width) / fall
                    }
                } else {
                    *v1
                }
            }
            SourceWaveform::Pwl(p) => p.eval(t),
            SourceWaveform::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// The next waveform corner strictly after `t`, if any. The transient
    /// engine forces time steps onto corners so that slope discontinuities
    /// are never straddled.
    pub fn next_breakpoint(&self, t: f64) -> Option<f64> {
        const EPS: f64 = 1e-21;
        match self {
            SourceWaveform::Dc(_) | SourceWaveform::Sine { .. } => None,
            SourceWaveform::Ramp {
                t_start, t_rise, ..
            } => {
                let corners = [*t_start, t_start + t_rise];
                corners.iter().copied().find(|&c| c > t + EPS)
            }
            SourceWaveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                // Corners within one period, replicated if periodic.
                let local = [0.0, *rise, rise + width, rise + width + fall];
                let base = if period.is_finite() && *period > 0.0 && t >= *delay {
                    delay + ((t - delay) / period).floor() * period
                } else {
                    *delay
                };
                for cycle in 0..2 {
                    let off = base + cycle as f64 * if period.is_finite() { *period } else { 0.0 };
                    for &c in &local {
                        let corner = off + c;
                        if corner > t + EPS {
                            return Some(corner);
                        }
                    }
                    if !period.is_finite() {
                        break;
                    }
                }
                None
            }
            SourceWaveform::Pwl(p) => p.next_breakpoint(t),
        }
    }

    /// The waveform value at `t = 0` (used for the DC operating point).
    pub fn initial_value(&self) -> f64 {
        self.eval(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_constant() {
        let w = SourceWaveform::Dc(1.2);
        assert_eq!(w.eval(0.0), 1.2);
        assert_eq!(w.eval(1.0), 1.2);
        assert_eq!(w.next_breakpoint(0.0), None);
    }

    #[test]
    fn ramp_endpoints_and_interior() {
        let w = SourceWaveform::ramp(1.0, 0.0, 10e-12, 30e-12);
        assert_eq!(w.eval(0.0), 1.0);
        assert_eq!(w.eval(10e-12), 1.0);
        assert!((w.eval(25e-12) - 0.5).abs() < 1e-12);
        assert_eq!(w.eval(40e-12), 0.0);
        assert_eq!(w.eval(1.0), 0.0);
    }

    #[test]
    fn ramp_breakpoints() {
        let w = SourceWaveform::ramp(0.0, 1.0, 10e-12, 30e-12);
        assert_eq!(w.next_breakpoint(0.0), Some(10e-12));
        assert_eq!(w.next_breakpoint(10e-12), Some(40e-12));
        assert_eq!(w.next_breakpoint(40e-12), None);
    }

    #[test]
    fn pulse_one_period() {
        let w = SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.3e-9,
            period: 1e-9,
        };
        assert_eq!(w.eval(0.5e-9), 0.0);
        assert!((w.eval(1.05e-9) - 0.5).abs() < 1e-9);
        assert_eq!(w.eval(1.2e-9), 1.0);
        assert!((w.eval(1.45e-9) - 0.5).abs() < 1e-9);
        assert_eq!(w.eval(1.8e-9), 0.0);
        // Periodic repetition.
        assert_eq!(w.eval(2.2e-9), 1.0);
    }

    #[test]
    fn pulse_one_shot() {
        let w = SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 5e-12,
            period: f64::INFINITY,
        };
        assert_eq!(w.eval(3e-12), 1.0);
        assert_eq!(w.eval(100e-12), 0.0);
    }

    #[test]
    fn pulse_breakpoints_advance() {
        let w = SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.3e-9,
            period: f64::INFINITY,
        };
        let mut t = 0.0;
        let mut corners = Vec::new();
        while let Some(c) = w.next_breakpoint(t) {
            corners.push(c);
            t = c;
            if corners.len() > 10 {
                break;
            }
        }
        assert_eq!(corners.len(), 4);
        assert!((corners[0] - 1e-9).abs() < 1e-18);
        assert!((corners[3] - 1.5e-9).abs() < 1e-18);
    }

    #[test]
    fn sine_waveform() {
        let w = SourceWaveform::Sine {
            offset: 0.5,
            ampl: 0.1,
            freq: 1e9,
            delay: 0.0,
        };
        assert!((w.eval(0.0) - 0.5).abs() < 1e-12);
        assert!((w.eval(0.25e-9) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn pwl_wraps_piecewise_linear() {
        let p = PiecewiseLinear::new(vec![0.0, 1e-9], vec![0.0, 1.0]).unwrap();
        let w = SourceWaveform::Pwl(p);
        assert!((w.eval(0.5e-9) - 0.5).abs() < 1e-12);
        assert_eq!(w.next_breakpoint(0.0), Some(1e-9));
    }

    #[test]
    fn initial_value_matches_eval_zero() {
        let w = SourceWaveform::ramp(0.7, 0.0, 1e-12, 1e-12);
        assert_eq!(w.initial_value(), 0.7);
    }
}
