//! Circuit netlist data model for the Soft-FET simulator.
//!
//! A [`Circuit`] is a flat netlist: named nodes (node `0` is ground) plus a
//! list of element instances — passives ([`Resistor`], [`Capacitor`],
//! [`Inductor`]), independent sources ([`VoltageSource`], [`CurrentSource`]
//! driven by a [`SourceWaveform`]), and the two device families from
//! `sfet-devices` ([`MosfetInstance`], [`PtmInstance`]).
//!
//! The crate is purely structural: it validates connectivity and values but
//! contains no simulation semantics (those live in `sfet-sim`). A
//! SPICE-like text representation is provided by [`parse`] and
//! [`Circuit::to_netlist`].
//!
//! # Example
//!
//! Build the paper's PTM + capacitor soft-charging test structure (Fig. 3):
//!
//! ```
//! use sfet_circuit::{Circuit, SourceWaveform};
//! use sfet_devices::ptm::PtmParams;
//!
//! # fn main() -> Result<(), sfet_circuit::CircuitError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vc = ckt.node("c");
//! let gnd = Circuit::ground();
//! ckt.add_voltage_source("VIN", vin, gnd, SourceWaveform::ramp(0.0, 1.0, 0.0, 30e-12))?;
//! ckt.add_ptm("P1", vin, vc, PtmParams::vo2_default())?;
//! ckt.add_capacitor("C1", vc, gnd, 0.5e-15)?;
//! ckt.validate()?;
//! # Ok(())
//! # }
//! ```

pub mod builders;
mod element;
mod error;
pub mod expr;
mod netlist;
mod node;
pub mod parse;
pub mod si;
mod waveform;

pub use element::{
    Capacitor, Cccs, Ccvs, CurrentSource, Element, ElementId, Inductor, MosfetInstance,
    PtmInstance, Resistor, Vccs, Vcvs, VoltageSource,
};
pub use error::CircuitError;
pub use netlist::Circuit;
pub use node::NodeId;
pub use waveform::SourceWaveform;

/// Convenience result alias for netlist construction.
pub type Result<T> = std::result::Result<T, CircuitError>;
