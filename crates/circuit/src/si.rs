//! Engineering (SPICE) notation: parsing and formatting.
//!
//! SPICE value syntax: an optional sign, a decimal number, an optional
//! scale suffix (`f p n u m k meg g t`, case-insensitive), and optional
//! trailing unit letters that are ignored (`30ps`, `500kOhm`, `1.2V`).

use crate::error::CircuitError;

/// Parses a SPICE-style engineering value such as `500k`, `0.5f`, `30p`,
/// `2.5meg`, or `1.0`.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] (with line 0; the caller rewrites the
/// line number) when the text is not a valid value.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sfet_circuit::CircuitError> {
/// assert_eq!(sfet_circuit::si::parse_eng("500k")?, 500e3);
/// assert_eq!(sfet_circuit::si::parse_eng("30ps")?, 30e-12);
/// assert_eq!(sfet_circuit::si::parse_eng("2meg")?, 2e6);
/// # Ok(())
/// # }
/// ```
pub fn parse_eng(text: &str) -> Result<f64, CircuitError> {
    let s = text.trim();
    if s.is_empty() {
        return Err(parse_err(s, "empty value"));
    }
    // Split the leading numeric part from the suffix.
    let mut split = s.len();
    for (i, ch) in s.char_indices() {
        let numeric = ch.is_ascii_digit()
            || ch == '.'
            || ch == '+'
            || ch == '-'
            || ((ch == 'e' || ch == 'E')
                && s[i + ch.len_utf8()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-'));
        if !numeric {
            split = i;
            break;
        }
    }
    let (num, suffix) = s.split_at(split);
    let base: f64 = num
        .parse()
        .map_err(|_| parse_err(s, "invalid numeric literal"))?;
    let suffix = suffix.to_ascii_lowercase();
    let scale = if suffix.is_empty() {
        1.0
    } else if suffix.starts_with("meg") {
        1e6
    } else if suffix.starts_with("mil") {
        25.4e-6
    } else {
        match suffix.chars().next().unwrap() {
            't' => 1e12,
            'g' => 1e9,
            'k' => 1e3,
            'm' => 1e-3,
            'u' => 1e-6,
            'n' => 1e-9,
            'p' => 1e-12,
            'f' => 1e-15,
            'a' => 1e-18,
            // Unit-only suffix like "V" or "Ohm".
            c if c.is_ascii_alphabetic() => 1.0,
            _ => return Err(parse_err(s, "unknown scale suffix")),
        }
    };
    let value = base * scale;
    // `f64::from_str` accepts overflowing literals like "1e999" by
    // saturating to infinity; a netlist value that decodes non-finite can
    // only poison every downstream solve, so name it here.
    if !value.is_finite() {
        return Err(parse_err(s, "value overflows to a non-finite number"));
    }
    Ok(value)
}

fn parse_err(text: &str, why: &str) -> CircuitError {
    CircuitError::Parse {
        line: 0,
        message: format!("{why}: {text:?}"),
    }
}

/// Formats a value in engineering notation with a scale suffix, e.g.
/// `500k`, `30p`, `1.5u`.
///
/// # Example
///
/// ```
/// assert_eq!(sfet_circuit::si::format_eng(500e3), "500k");
/// assert_eq!(sfet_circuit::si::format_eng(30e-12), "30p");
/// assert_eq!(sfet_circuit::si::format_eng(0.0), "0");
/// ```
pub fn format_eng(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    const SUFFIXES: [(f64, &str); 9] = [
        (1e12, "t"),
        (1e9, "g"),
        (1e6, "meg"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = value.abs();
    // Below the table, fall through to femto.
    let (scale, suffix) = if mag < 0.9995e-12 {
        (1e-15, "f")
    } else {
        *SUFFIXES
            .iter()
            .find(|(s, _)| mag >= *s * 0.9995)
            .unwrap_or(&(1e-12, "p"))
    };
    let scaled = value / scale;
    // Up to 4 significant digits, trailing zeros trimmed.
    let text = format!("{scaled:.4}");
    let trimmed = text.trim_end_matches('0').trim_end_matches('.');
    format!("{trimmed}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_numbers() {
        assert_eq!(parse_eng("42").unwrap(), 42.0);
        assert_eq!(parse_eng("-1.5").unwrap(), -1.5);
        assert_eq!(parse_eng("2e3").unwrap(), 2000.0);
        assert_eq!(parse_eng("1E-9").unwrap(), 1e-9);
    }

    #[test]
    fn parse_rejects_nonfinite_overflow() {
        // "1e999" saturates f64 to infinity; it must be a parse error,
        // not an infinite element value handed to the solver.
        for text in ["1e999", "-1e999", "1e307k", "9e305meg"] {
            let err = parse_eng(text).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{text}: {err}");
        }
        // Large but finite values still parse.
        assert_eq!(parse_eng("1e308").unwrap(), 1e308);
    }

    fn close(text: &str, expect: f64) {
        let got = parse_eng(text).unwrap();
        assert!(
            ((got - expect) / expect).abs() < 1e-12,
            "{text}: {got} vs {expect}"
        );
    }

    #[test]
    fn parse_scale_suffixes() {
        close("1t", 1e12);
        close("1g", 1e9);
        close("2meg", 2e6);
        close("500K", 500e3);
        close("3m", 3e-3);
        close("10u", 10e-6);
        close("5n", 5e-9);
        close("30p", 30e-12);
        close("0.5f", 0.5e-15);
    }

    #[test]
    fn parse_with_unit_letters() {
        assert_eq!(parse_eng("30ps").unwrap(), 30e-12);
        assert_eq!(parse_eng("500kOhm").unwrap(), 500e3);
        assert_eq!(parse_eng("1.0V").unwrap(), 1.0);
        assert_eq!(parse_eng("2megohm").unwrap(), 2e6);
    }

    #[test]
    fn parse_m_is_milli_not_mega() {
        assert_eq!(parse_eng("1m").unwrap(), 1e-3);
        assert_eq!(parse_eng("1meg").unwrap(), 1e6);
    }

    /// Pins the complete SPICE suffix semantics, including the classic
    /// gotchas: suffixes are case-insensitive, `m`/`M` are always milli,
    /// only the spelled-out `meg`/`MEG` is 1e6, `mil` is the imperial
    /// thousandth-inch, and trailing unit letters are ignored — so `1MHz`
    /// is one *milli*-hertz-ish 1e-3 and `1A` is one *atto*, exactly as in
    /// SPICE.
    #[test]
    fn suffix_semantics_table() {
        let table: &[(&str, f64)] = &[
            // Every scale suffix, lower and upper case.
            ("1t", 1e12),
            ("1T", 1e12),
            ("1g", 1e9),
            ("1G", 1e9),
            ("1meg", 1e6),
            ("1MEG", 1e6),
            ("1Meg", 1e6),
            ("1k", 1e3),
            ("1K", 1e3),
            ("1m", 1e-3),
            ("1M", 1e-3),
            ("1u", 1e-6),
            ("1U", 1e-6),
            ("1n", 1e-9),
            ("1N", 1e-9),
            ("1p", 1e-12),
            ("1P", 1e-12),
            ("1f", 1e-15),
            ("1F", 1e-15),
            ("1a", 1e-18),
            ("1A", 1e-18),
            // The mil family (thousandth of an inch).
            ("1mil", 25.4e-6),
            ("1MIL", 25.4e-6),
            ("2mil", 50.8e-6),
            // Unit letters after a scale suffix are ignored.
            ("1kOhm", 1e3),
            ("1KOHM", 1e3),
            ("2megohm", 2e6),
            ("2MEGOhm", 2e6),
            ("30ps", 30e-12),
            ("2.5nF", 2.5e-9),
            ("100uA", 100e-6),
            // Unit-only letters (no scale prefix) mean scale 1.
            ("1V", 1.0),
            ("1v", 1.0),
            ("3Hz", 3.0),
            ("2s", 2.0),
            // The gotchas: M is milli even when a unit follows.
            ("1MHz", 1e-3),
            ("1mV", 1e-3),
            ("1MA", 1e-3),
            // meg wins over m+unit when spelled out.
            ("2MEGV", 2e6),
            // Signs and decimals compose with suffixes.
            ("-2.5k", -2.5e3),
            ("+0.5m", 0.5e-3),
            // Exponents compose with suffixes too.
            ("1e3k", 1e6),
            ("2E-3m", 2e-6),
        ];
        for &(text, expect) in table {
            let got = parse_eng(text).unwrap();
            assert!(
                ((got - expect) / expect).abs() < 1e-12,
                "{text}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_eng("").is_err());
        assert!(parse_eng("abc").is_err());
        assert!(parse_eng("1..2").is_err());
    }

    #[test]
    fn format_round_values() {
        assert_eq!(format_eng(1e3), "1k");
        assert_eq!(format_eng(500e3), "500k");
        assert_eq!(format_eng(2e6), "2meg");
        assert_eq!(format_eng(30e-12), "30p");
        assert_eq!(format_eng(0.5e-15), "0.5f");
        assert_eq!(format_eng(1.0), "1");
        assert_eq!(format_eng(-3e-3), "-3m");
    }

    #[test]
    fn format_parse_round_trip() {
        for &v in &[
            1.0, 0.5e-15, 30e-12, 10e-9, 3.3e-6, 2e-3, 47.0, 500e3, 2e6, 1e9,
        ] {
            let t = format_eng(v);
            let back = parse_eng(&t).unwrap();
            assert!(((back - v) / v).abs() < 1e-3, "{v} -> {t} -> {back}");
        }
    }
}
