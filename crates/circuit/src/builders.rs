//! Reference netlist builders for the verification subsystem.
//!
//! `sfet-verify` scores the transient engine against circuits with
//! closed-form solutions. These builders construct those canonical
//! topologies with fixed, documented node and element names so the exact
//! solutions and the golden-waveform harness can address signals without
//! duplicating netlist code:
//!
//! | builder | topology | probe |
//! |---|---|---|
//! | [`driven_rc`] | `VIN → R1 → out, C1 out→gnd` | `v(out)` |
//! | [`driven_rl`] | `VIN → R1 → mid, L1 mid→gnd` | `i(L1)` |
//! | [`driven_lc`] | `VIN → L1 → out, C1 out→gnd` | `v(out)` |
//! | [`driven_rlc`] | `VIN → R1 → m1, L1 m1→out, C1 out→gnd` | `v(out)` |
//! | [`current_driven_rc`] | `IIN gnd→out ∥ R1 ∥ C1` | `v(out)` |

use crate::{Circuit, Result, SourceWaveform};

/// Series RC driven by a voltage source: `VIN` at node `in`, `R1` from
/// `in` to `out`, `C1` from `out` to ground. Probe `v(out)`.
///
/// # Errors
///
/// Propagates element-construction failures (non-positive values).
///
/// # Example
///
/// ```
/// use sfet_circuit::{builders, SourceWaveform};
///
/// # fn main() -> Result<(), sfet_circuit::CircuitError> {
/// let ckt = builders::driven_rc(1e3, 1e-15, SourceWaveform::Dc(1.0))?;
/// ckt.validate()?;
/// # Ok(())
/// # }
/// ```
pub fn driven_rc(r: f64, c: f64, drive: SourceWaveform) -> Result<Circuit> {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("VIN", inp, gnd, drive)?;
    ckt.add_resistor("R1", inp, out, r)?;
    ckt.add_capacitor("C1", out, gnd, c)?;
    Ok(ckt)
}

/// Series RL driven by a voltage source: `VIN` at node `in`, `R1` from
/// `in` to `mid`, `L1` from `mid` to ground. Probe `i(L1)`.
///
/// # Errors
///
/// Propagates element-construction failures (non-positive values).
pub fn driven_rl(r: f64, l: f64, drive: SourceWaveform) -> Result<Circuit> {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let mid = ckt.node("mid");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("VIN", inp, gnd, drive)?;
    ckt.add_resistor("R1", inp, mid, r)?;
    ckt.add_inductor("L1", mid, gnd, l)?;
    Ok(ckt)
}

/// Lossless series LC driven by a voltage source: `VIN` at node `in`,
/// `L1` from `in` to `out`, `C1` from `out` to ground. Probe `v(out)` —
/// the undamped tank oscillation at `ω₀ = 1/√(LC)`.
///
/// # Errors
///
/// Propagates element-construction failures (non-positive values).
pub fn driven_lc(l: f64, c: f64, drive: SourceWaveform) -> Result<Circuit> {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("VIN", inp, gnd, drive)?;
    ckt.add_inductor("L1", inp, out, l)?;
    ckt.add_capacitor("C1", out, gnd, c)?;
    Ok(ckt)
}

/// Series RLC driven by a voltage source: `VIN` at node `in`, `R1` from
/// `in` to `m1`, `L1` from `m1` to `out`, `C1` from `out` to ground.
/// Probe `v(out)`.
///
/// # Errors
///
/// Propagates element-construction failures (non-positive values).
pub fn driven_rlc(r: f64, l: f64, c: f64, drive: SourceWaveform) -> Result<Circuit> {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let m1 = ckt.node("m1");
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("VIN", inp, gnd, drive)?;
    ckt.add_resistor("R1", inp, m1, r)?;
    ckt.add_inductor("L1", m1, out, l)?;
    ckt.add_capacitor("C1", out, gnd, c)?;
    Ok(ckt)
}

/// Parallel RC driven by a current source: `IIN` from ground into `out`,
/// with `R1` and `C1` from `out` to ground. Probe `v(out)`. This is the
/// topology the method-of-manufactured-solutions reference uses: the
/// source current is chosen so a prescribed `v(out)` solves the circuit
/// exactly.
///
/// # Errors
///
/// Propagates element-construction failures (non-positive values).
pub fn current_driven_rc(r: f64, c: f64, drive: SourceWaveform) -> Result<Circuit> {
    let mut ckt = Circuit::new();
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_current_source("IIN", gnd, out, drive)?;
    ckt.add_resistor("R1", out, gnd, r)?;
    ckt.add_capacitor("C1", out, gnd, c)?;
    Ok(ckt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builders_validate() {
        let drive = SourceWaveform::ramp(0.0, 1.0, 1e-12, 2e-12);
        for ckt in [
            driven_rc(1e3, 1e-15, drive.clone()).unwrap(),
            driven_rl(100.0, 1e-9, drive.clone()).unwrap(),
            driven_lc(1e-9, 1e-15, drive.clone()).unwrap(),
            driven_rlc(10.0, 1e-9, 1e-12, drive.clone()).unwrap(),
            current_driven_rc(1e3, 1e-15, drive.clone()).unwrap(),
        ] {
            ckt.validate().unwrap();
        }
    }

    #[test]
    fn conventional_names_resolve() {
        let ckt = driven_rlc(10.0, 1e-9, 1e-12, SourceWaveform::Dc(0.0)).unwrap();
        assert!(ckt.find_node("out").is_some());
        assert!(ckt.find_element("VIN").is_some());
        assert!(ckt.find_element("L1").is_some());
    }

    #[test]
    fn bad_values_rejected() {
        assert!(driven_rc(-1.0, 1e-15, SourceWaveform::Dc(0.0)).is_err());
        assert!(driven_lc(1e-9, 0.0, SourceWaveform::Dc(0.0)).is_err());
    }
}
