//! The [`Circuit`] container and builder API.

use std::collections::HashMap;

use crate::element::{
    Capacitor, Cccs, Ccvs, CurrentSource, Element, ElementId, Inductor, MosfetInstance,
    PtmInstance, Resistor, Vccs, Vcvs, VoltageSource,
};
use crate::error::CircuitError;
use crate::node::NodeId;
use crate::waveform::SourceWaveform;
use crate::Result;
use sfet_devices::mosfet::MosfetModel;
use sfet_devices::ptm::PtmParams;

/// A flat netlist: named nodes plus element instances.
///
/// Nodes are interned by name; node `"0"` (also reachable via
/// [`Circuit::ground`]) is the reference node. Elements are added through
/// the `add_*` methods, which validate values eagerly and return an
/// [`ElementId`] usable as a probe handle by the simulator.
///
/// # Example
///
/// ```
/// use sfet_circuit::{Circuit, SourceWaveform};
///
/// # fn main() -> Result<(), sfet_circuit::CircuitError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let gnd = Circuit::ground();
/// let vs = ckt.add_voltage_source("V1", a, gnd, SourceWaveform::Dc(1.0))?;
/// ckt.add_resistor("R1", a, gnd, 50.0)?;
/// ckt.validate()?;
/// assert_eq!(ckt.element(vs).name(), "V1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    elements: Vec<Element>,
    name_lookup: HashMap<String, ElementId>,
    /// Resolved top-level `.param` values in first-definition order
    /// (informational: values are already substituted into elements).
    params: Vec<(String, f64)>,
    /// `.ic` node-voltage pins in directive order.
    node_ics: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            node_lookup: HashMap::new(),
            elements: Vec::new(),
            name_lookup: HashMap::new(),
            params: Vec::new(),
            node_ics: Vec::new(),
        };
        c.node_lookup.insert("0".to_string(), NodeId(0));
        c
    }

    /// The ground (reference) node.
    pub fn ground() -> NodeId {
        NodeId::GROUND
    }

    /// Interns a node by name, creating it on first use. The name `"0"`
    /// (or `"gnd"`, case-insensitive) maps to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        if let Some(&id) = self.node_lookup.get(key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.to_string());
        self.node_lookup.insert(key.to_string(), id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let key = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        self.node_lookup.get(key).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Looks up an element by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Finds an element id by instance name.
    pub fn find_element(&self, name: &str) -> Option<ElementId> {
        self.name_lookup.get(name).copied()
    }

    /// Records a resolved top-level `.param` value (informational —
    /// expressions are substituted before elements are built). Re-defining
    /// a name overwrites its value in place.
    pub fn set_param(&mut self, name: &str, value: f64) {
        let key = name.to_ascii_lowercase();
        if let Some(slot) = self.params.iter_mut().find(|(n, _)| *n == key) {
            slot.1 = value;
        } else {
            self.params.push((key, value));
        }
    }

    /// Resolved top-level `.param` values in first-definition order.
    pub fn params(&self) -> &[(String, f64)] {
        &self.params
    }

    /// Pins a node's voltage for DC initialisation (`.ic v(node)=value`):
    /// the DC operating point sees a stiff Norton equivalent holding the
    /// node near `value`; the pin is released during transient stepping.
    /// Re-pinning a node overwrites the previous value.
    pub fn set_node_ic(&mut self, node: NodeId, value: f64) {
        if let Some(slot) = self.node_ics.iter_mut().find(|(n, _)| *n == node) {
            slot.1 = value;
        } else {
            self.node_ics.push((node, value));
        }
    }

    /// `.ic` node-voltage pins in directive order.
    pub fn node_ics(&self) -> &[(NodeId, f64)] {
        &self.node_ics
    }

    fn insert(&mut self, element: Element) -> Result<ElementId> {
        let name = element.name().to_string();
        if self.name_lookup.contains_key(&name) {
            return Err(CircuitError::DuplicateElement(name));
        }
        let id = ElementId(self.elements.len());
        self.name_lookup.insert(name, id);
        self.elements.push(element);
        Ok(id)
    }

    fn check_positive(name: &str, what: &str, v: f64) -> Result<()> {
        if !(v.is_finite() && v > 0.0) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                reason: format!("{what} must be positive and finite, got {v:e}"),
            });
        }
        Ok(())
    }

    fn check_distinct(name: &str, p: NodeId, n: NodeId) -> Result<()> {
        if p == n {
            return Err(CircuitError::ShortedElement(name.to_string()));
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Duplicate name, non-positive/non-finite value, or shorted terminals.
    pub fn add_resistor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        ohms: f64,
    ) -> Result<ElementId> {
        Self::check_positive(name, "resistance", ohms)?;
        Self::check_distinct(name, p, n)?;
        self.insert(Element::Resistor(Resistor {
            name: name.to_string(),
            p,
            n,
            ohms,
        }))
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Duplicate name, non-positive/non-finite value, or shorted terminals.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        farads: f64,
    ) -> Result<ElementId> {
        Self::check_positive(name, "capacitance", farads)?;
        Self::check_distinct(name, p, n)?;
        self.insert(Element::Capacitor(Capacitor {
            name: name.to_string(),
            p,
            n,
            farads,
            ic: None,
        }))
    }

    /// Adds a capacitor with an initial-condition voltage.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::add_capacitor`].
    pub fn add_capacitor_ic(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        farads: f64,
        ic: f64,
    ) -> Result<ElementId> {
        Self::check_positive(name, "capacitance", farads)?;
        Self::check_distinct(name, p, n)?;
        self.insert(Element::Capacitor(Capacitor {
            name: name.to_string(),
            p,
            n,
            farads,
            ic: Some(ic),
        }))
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Duplicate name, non-positive/non-finite value, or shorted terminals.
    pub fn add_inductor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        henries: f64,
    ) -> Result<ElementId> {
        Self::check_positive(name, "inductance", henries)?;
        Self::check_distinct(name, p, n)?;
        self.insert(Element::Inductor(Inductor {
            name: name.to_string(),
            p,
            n,
            henries,
            ic: None,
        }))
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// Duplicate name or shorted terminals.
    pub fn add_voltage_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: SourceWaveform,
    ) -> Result<ElementId> {
        Self::check_distinct(name, p, n)?;
        self.insert(Element::VoltageSource(VoltageSource {
            name: name.to_string(),
            p,
            n,
            wave,
        }))
    }

    /// Adds an independent current source.
    ///
    /// # Errors
    ///
    /// Duplicate name or shorted terminals.
    pub fn add_current_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: SourceWaveform,
    ) -> Result<ElementId> {
        Self::check_distinct(name, p, n)?;
        self.insert(Element::CurrentSource(CurrentSource {
            name: name.to_string(),
            p,
            n,
            wave,
        }))
    }

    fn check_finite(name: &str, what: &str, v: f64) -> Result<()> {
        if !v.is_finite() {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                reason: format!("{what} must be finite, got {v:e}"),
            });
        }
        Ok(())
    }

    /// Adds a voltage-controlled voltage source (E card):
    /// `v(p,n) = gain * v(cp,cn)`.
    ///
    /// # Errors
    ///
    /// Duplicate name, shorted output terminals, or a non-finite gain.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<ElementId> {
        Self::check_distinct(name, p, n)?;
        Self::check_finite(name, "gain", gain)?;
        self.insert(Element::Vcvs(Vcvs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gain,
        }))
    }

    /// Adds a voltage-controlled current source (G card):
    /// `i(p→n) = gm * v(cp,cn)`.
    ///
    /// # Errors
    ///
    /// Duplicate name, shorted output terminals, or a non-finite
    /// transconductance.
    pub fn add_vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<ElementId> {
        Self::check_distinct(name, p, n)?;
        Self::check_finite(name, "transconductance", gm)?;
        self.insert(Element::Vccs(Vccs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gm,
        }))
    }

    /// Adds a current-controlled current source (F card):
    /// `i(p→n) = gain * i(vname)`. The controlling voltage source may be
    /// defined later in the netlist; the reference is checked by
    /// [`Circuit::validate`].
    ///
    /// # Errors
    ///
    /// Duplicate name, shorted output terminals, or a non-finite gain.
    pub fn add_cccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        vname: &str,
        gain: f64,
    ) -> Result<ElementId> {
        Self::check_distinct(name, p, n)?;
        Self::check_finite(name, "gain", gain)?;
        self.insert(Element::Cccs(Cccs {
            name: name.to_string(),
            p,
            n,
            vname: vname.to_string(),
            gain,
        }))
    }

    /// Adds a current-controlled voltage source (H card):
    /// `v(p,n) = r * i(vname)`. The controlling voltage source may be
    /// defined later in the netlist; the reference is checked by
    /// [`Circuit::validate`].
    ///
    /// # Errors
    ///
    /// Duplicate name, shorted output terminals, or a non-finite
    /// transresistance.
    pub fn add_ccvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        vname: &str,
        r: f64,
    ) -> Result<ElementId> {
        Self::check_distinct(name, p, n)?;
        Self::check_finite(name, "transresistance", r)?;
        self.insert(Element::Ccvs(Ccvs {
            name: name.to_string(),
            p,
            n,
            vname: vname.to_string(),
            r,
        }))
    }

    /// Adds a MOSFET instance.
    ///
    /// # Errors
    ///
    /// Duplicate name, invalid geometry, or an invalid model card.
    #[allow(clippy::too_many_arguments)] // a MOSFET simply has 4 terminals + model + geometry
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: MosfetModel,
        w: f64,
        l: f64,
    ) -> Result<ElementId> {
        Self::check_positive(name, "width", w)?;
        Self::check_positive(name, "length", l)?;
        model.validate()?;
        self.insert(Element::Mosfet(MosfetInstance {
            name: name.to_string(),
            d,
            g,
            s,
            b,
            model,
            w,
            l,
        }))
    }

    /// Adds a PTM device.
    ///
    /// # Errors
    ///
    /// Duplicate name, shorted terminals, or invalid PTM parameters.
    pub fn add_ptm(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        params: PtmParams,
    ) -> Result<ElementId> {
        Self::check_distinct(name, p, n)?;
        params.validate()?;
        self.insert(Element::Ptm(PtmInstance {
            name: name.to_string(),
            p,
            n,
            params,
        }))
    }

    /// Validates global circuit consistency:
    ///
    /// * at least one element;
    /// * at least one element terminal on ground;
    /// * every non-ground node touched by at least two terminals (a node
    ///   seen only once has no defined current path);
    /// * every F/H controlled source references an existing voltage source.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a [`CircuitError`].
    pub fn validate(&self) -> Result<()> {
        if self.elements.is_empty() {
            return Err(CircuitError::EmptyCircuit);
        }
        for e in &self.elements {
            if let Some(vname) = e.control_source() {
                let controls = self
                    .find_element(vname)
                    .map(|id| matches!(self.element(id), Element::VoltageSource(_)))
                    .unwrap_or(false);
                if !controls {
                    return Err(CircuitError::UnknownControlSource {
                        element: e.name().to_string(),
                        source: vname.to_string(),
                    });
                }
            }
        }
        let mut touch = vec![0usize; self.node_names.len()];
        for e in &self.elements {
            for n in e.nodes() {
                touch[n.0] += 1;
            }
        }
        if touch[0] == 0 {
            return Err(CircuitError::NoGroundReference);
        }
        for (idx, &count) in touch.iter().enumerate().skip(1) {
            if count == 1 {
                return Err(CircuitError::FloatingNode(self.node_names[idx].clone()));
            }
        }
        Ok(())
    }

    /// Renders the circuit as a SPICE-like netlist (the inverse of
    /// [`parse::parse_netlist`](crate::parse::parse_netlist) for the cards
    /// it supports).
    pub fn to_netlist(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("* netlist generated by sfet-circuit\n");
        for (name, value) in &self.params {
            // Full-precision {:e} (not format_eng): the recorded value must
            // survive the round trip exactly.
            let _ = writeln!(out, ".param {name}={value:e}");
        }
        for e in &self.elements {
            let line = match e {
                Element::Resistor(r) => format!(
                    "R{} {} {} {}",
                    strip_prefix(&r.name, 'R'),
                    self.node_name(r.p),
                    self.node_name(r.n),
                    crate::si::format_eng(r.ohms)
                ),
                Element::Capacitor(c) => format!(
                    "C{} {} {} {}",
                    strip_prefix(&c.name, 'C'),
                    self.node_name(c.p),
                    self.node_name(c.n),
                    crate::si::format_eng(c.farads)
                ),
                Element::Inductor(l) => format!(
                    "L{} {} {} {}",
                    strip_prefix(&l.name, 'L'),
                    self.node_name(l.p),
                    self.node_name(l.n),
                    crate::si::format_eng(l.henries)
                ),
                Element::VoltageSource(v) => format!(
                    "V{} {} {} {}",
                    strip_prefix(&v.name, 'V'),
                    self.node_name(v.p),
                    self.node_name(v.n),
                    format_wave(&v.wave)
                ),
                Element::CurrentSource(i) => format!(
                    "I{} {} {} {}",
                    strip_prefix(&i.name, 'I'),
                    self.node_name(i.p),
                    self.node_name(i.n),
                    format_wave(&i.wave)
                ),
                Element::Vcvs(e) => format!(
                    "E{} {} {} {} {} {:e}",
                    strip_prefix(&e.name, 'E'),
                    self.node_name(e.p),
                    self.node_name(e.n),
                    self.node_name(e.cp),
                    self.node_name(e.cn),
                    e.gain
                ),
                Element::Vccs(g) => format!(
                    "G{} {} {} {} {} {:e}",
                    strip_prefix(&g.name, 'G'),
                    self.node_name(g.p),
                    self.node_name(g.n),
                    self.node_name(g.cp),
                    self.node_name(g.cn),
                    g.gm
                ),
                Element::Cccs(c) => format!(
                    "F{} {} {} {} {:e}",
                    strip_prefix(&c.name, 'F'),
                    self.node_name(c.p),
                    self.node_name(c.n),
                    c.vname,
                    c.gain
                ),
                Element::Ccvs(h) => format!(
                    "H{} {} {} {} {:e}",
                    strip_prefix(&h.name, 'H'),
                    self.node_name(h.p),
                    self.node_name(h.n),
                    h.vname,
                    h.r
                ),
                Element::Mosfet(m) => format!(
                    "M{} {} {} {} {} {} W={} L={}",
                    strip_prefix(&m.name, 'M'),
                    self.node_name(m.d),
                    self.node_name(m.g),
                    self.node_name(m.s),
                    self.node_name(m.b),
                    m.model.name,
                    crate::si::format_eng(m.w),
                    crate::si::format_eng(m.l)
                ),
                Element::Ptm(p) => format!(
                    "P{} {} {} VIMT={} VMIT={} RINS={} RMET={} TPTM={}",
                    strip_prefix(&p.name, 'P'),
                    self.node_name(p.p),
                    self.node_name(p.n),
                    crate::si::format_eng(p.params.v_imt),
                    crate::si::format_eng(p.params.v_mit),
                    crate::si::format_eng(p.params.r_ins),
                    crate::si::format_eng(p.params.r_met),
                    crate::si::format_eng(p.params.t_ptm)
                ),
            };
            let _ = writeln!(out, "{line}");
        }
        for (node, value) in &self.node_ics {
            let _ = writeln!(out, ".ic v({})={value:e}", self.node_name(*node));
        }
        out.push_str(".end\n");
        out
    }
}

fn strip_prefix(name: &str, prefix: char) -> &str {
    name.strip_prefix(prefix)
        .or_else(|| name.strip_prefix(prefix.to_ascii_lowercase()))
        .unwrap_or(name)
}

fn format_wave(w: &SourceWaveform) -> String {
    match w {
        SourceWaveform::Dc(v) => format!("DC {}", crate::si::format_eng(*v)),
        SourceWaveform::Ramp {
            v0,
            v1,
            t_start,
            t_rise,
        } => format!(
            "PWL(0 {} {} {} {} {})",
            crate::si::format_eng(*v0),
            crate::si::format_eng(t_start.max(1e-18)),
            crate::si::format_eng(*v0),
            crate::si::format_eng(t_start + t_rise),
            crate::si::format_eng(*v1)
        ),
        SourceWaveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => {
            let mut s = format!(
                "PULSE({} {} {} {} {} {}",
                crate::si::format_eng(*v1),
                crate::si::format_eng(*v2),
                crate::si::format_eng(*delay),
                crate::si::format_eng(*rise),
                crate::si::format_eng(*fall),
                crate::si::format_eng(*width)
            );
            if period.is_finite() {
                s.push(' ');
                s.push_str(&crate::si::format_eng(*period));
            }
            s.push(')');
            s
        }
        SourceWaveform::Pwl(p) => {
            let mut s = String::from("PWL(");
            for (i, (x, y)) in p.xs().iter().zip(p.ys()).enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(&format!(
                    "{} {}",
                    crate::si::format_eng(*x),
                    crate::si::format_eng(*y)
                ));
            }
            s.push(')');
            s
        }
        SourceWaveform::Sine {
            offset,
            ampl,
            freq,
            delay,
        } => format!(
            "SIN({} {} {} {})",
            crate::si::format_eng(*offset),
            crate::si::format_eng(*ampl),
            crate::si::format_eng(*freq),
            crate::si::format_eng(*delay)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let g = Circuit::ground();
        c.add_voltage_source("V1", a, g, SourceWaveform::Dc(1.0))
            .unwrap();
        c.add_resistor("R1", a, g, 1e3).unwrap();
        c
    }

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn gnd_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::ground());
        assert_eq!(c.node("gnd"), Circuit::ground());
        assert_eq!(c.node("GND"), Circuit::ground());
        assert_eq!(c.find_node("gnd"), Some(Circuit::ground()));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = rc_circuit();
        let a = c.node("a");
        let g = Circuit::ground();
        assert!(matches!(
            c.add_resistor("R1", a, g, 2e3),
            Err(CircuitError::DuplicateElement(_))
        ));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let g = Circuit::ground();
        assert!(c.add_resistor("R1", a, g, 0.0).is_err());
        assert!(c.add_resistor("R2", a, g, -5.0).is_err());
        assert!(c.add_capacitor("C1", a, g, f64::NAN).is_err());
        assert!(c.add_inductor("L1", a, g, f64::INFINITY).is_err());
    }

    #[test]
    fn shorted_element_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(matches!(
            c.add_resistor("R1", a, a, 1e3),
            Err(CircuitError::ShortedElement(_))
        ));
    }

    #[test]
    fn validate_passes_for_rc() {
        rc_circuit().validate().unwrap();
    }

    #[test]
    fn empty_circuit_invalid() {
        assert!(matches!(
            Circuit::new().validate(),
            Err(CircuitError::EmptyCircuit)
        ));
    }

    #[test]
    fn floating_node_detected() {
        let mut c = rc_circuit();
        let a = c.node("a");
        let dangling = c.node("x");
        c.add_resistor("R9", a, dangling, 1e3).unwrap();
        assert!(matches!(
            c.validate(),
            Err(CircuitError::FloatingNode(name)) if name == "x"
        ));
    }

    #[test]
    fn no_ground_detected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R1", a, b, 1e3).unwrap();
        assert!(matches!(c.validate(), Err(CircuitError::NoGroundReference)));
    }

    #[test]
    fn find_element_by_name() {
        let c = rc_circuit();
        let id = c.find_element("R1").unwrap();
        assert_eq!(c.element(id).name(), "R1");
        assert!(c.find_element("R999").is_none());
    }

    #[test]
    fn ptm_params_validated_on_add() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let bad = PtmParams::vo2_default().with_thresholds(0.1, 0.4);
        assert!(matches!(
            c.add_ptm("P1", a, b, bad),
            Err(CircuitError::Device(_))
        ));
    }

    #[test]
    fn netlist_round_trips_core_elements() {
        let mut c = Circuit::new();
        let a = c.node("in");
        let g = Circuit::ground();
        c.add_voltage_source("V1", a, g, SourceWaveform::Dc(1.0))
            .unwrap();
        c.add_resistor("R1", a, g, 50.0).unwrap();
        let text = c.to_netlist();
        assert!(text.contains("V1 in 0 DC 1"));
        assert!(text.contains("R1 in 0 50"));
        assert!(text.ends_with(".end\n"));
    }
}
