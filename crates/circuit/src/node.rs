//! Circuit node identifiers.

/// A circuit node. `NodeId(0)` is the ground (reference) node.
///
/// Node ids are created by [`Circuit::node`](crate::Circuit::node) and are
/// only meaningful within the circuit that produced them.
///
/// # Example
///
/// ```
/// use sfet_circuit::{Circuit, NodeId};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// assert_ne!(a, Circuit::ground());
/// assert_eq!(ckt.node("a"), a); // same name, same node
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of this node (0 = ground). Useful for indexing simulator
    /// solution vectors.
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }

    /// Reconstructs a node id from a raw index (the inverse of
    /// [`NodeId::index`]). Intended for simulator backends iterating node
    /// indices; the id is only valid for the circuit the index came from.
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }

    /// Whether this is the ground node.
    #[inline]
    pub fn is_ground(&self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_properties() {
        assert!(NodeId::GROUND.is_ground());
        assert_eq!(NodeId::GROUND.index(), 0);
        assert_eq!(NodeId::GROUND.to_string(), "n0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
    }
}
