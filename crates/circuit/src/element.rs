//! Netlist element instances.

use crate::node::NodeId;
use crate::waveform::SourceWaveform;
use sfet_devices::mosfet::MosfetModel;
use sfet_devices::ptm::PtmParams;

/// Handle to an element within its [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index into the circuit's element list.
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A linear resistor.
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    /// Instance name (unique within the circuit).
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Resistance \[Ω\], must be positive and finite.
    pub ohms: f64,
}

/// A linear capacitor.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    /// Instance name.
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Capacitance \[F\], must be positive and finite.
    pub farads: f64,
    /// Optional initial voltage for transient analysis \[V\].
    pub ic: Option<f64>,
}

/// A linear inductor (adds one branch-current unknown in MNA).
#[derive(Debug, Clone, PartialEq)]
pub struct Inductor {
    /// Instance name.
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Inductance \[H\], must be positive and finite.
    pub henries: f64,
    /// Optional initial current for transient analysis \[A\].
    pub ic: Option<f64>,
}

/// An independent voltage source (adds one branch-current unknown in MNA).
///
/// The branch current is defined flowing from `p` through the source to
/// `n`; a positive branch current means the source is *sinking* current at
/// its positive terminal. Rail-current measurements in the experiments use
/// this branch current.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSource {
    /// Instance name.
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Source waveform.
    pub wave: SourceWaveform,
}

/// An independent current source.
///
/// A positive value drives current from `p` through the source into `n`
/// (i.e. it removes current from node `p` and injects it into node `n`),
/// matching SPICE conventions.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSource {
    /// Instance name.
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Source waveform.
    pub wave: SourceWaveform,
}

/// A MOSFET instance: model card plus geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetInstance {
    /// Instance name.
    pub name: String,
    /// Drain node.
    pub d: NodeId,
    /// Gate node.
    pub g: NodeId,
    /// Source node.
    pub s: NodeId,
    /// Bulk node.
    pub b: NodeId,
    /// Model card.
    pub model: MosfetModel,
    /// Channel width \[m\].
    pub w: f64,
    /// Channel length \[m\].
    pub l: f64,
}

/// A linear voltage-controlled voltage source (SPICE `E` card; adds one
/// branch-current unknown in MNA): `v(p,n) = gain * v(cp,cn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Vcvs {
    /// Instance name.
    pub name: String,
    /// Positive output terminal.
    pub p: NodeId,
    /// Negative output terminal.
    pub n: NodeId,
    /// Positive controlling terminal.
    pub cp: NodeId,
    /// Negative controlling terminal.
    pub cn: NodeId,
    /// Voltage gain \[V/V\], must be finite.
    pub gain: f64,
}

/// A linear voltage-controlled current source (SPICE `G` card):
/// `i(p→n) = gm * v(cp,cn)`, current flowing from `p` through the source
/// into `n` like an independent current source.
#[derive(Debug, Clone, PartialEq)]
pub struct Vccs {
    /// Instance name.
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Positive controlling terminal.
    pub cp: NodeId,
    /// Negative controlling terminal.
    pub cn: NodeId,
    /// Transconductance \[S\], must be finite.
    pub gm: f64,
}

/// A linear current-controlled current source (SPICE `F` card):
/// `i(p→n) = gain * i(vname)`, where `i(vname)` is the branch current of
/// the named voltage source (positive flowing p→n through that source).
#[derive(Debug, Clone, PartialEq)]
pub struct Cccs {
    /// Instance name.
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Name of the controlling voltage source.
    pub vname: String,
    /// Current gain \[A/A\], must be finite.
    pub gain: f64,
}

/// A linear current-controlled voltage source (SPICE `H` card; adds one
/// branch-current unknown in MNA): `v(p,n) = r * i(vname)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ccvs {
    /// Instance name.
    pub name: String,
    /// Positive output terminal.
    pub p: NodeId,
    /// Negative output terminal.
    pub n: NodeId,
    /// Name of the controlling voltage source.
    pub vname: String,
    /// Transresistance \[Ω\], must be finite.
    pub r: f64,
}

/// A PTM device instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PtmInstance {
    /// Instance name.
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// Device parameters.
    pub params: PtmParams,
}

/// Any netlist element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor.
    Resistor(Resistor),
    /// Linear capacitor.
    Capacitor(Capacitor),
    /// Linear inductor.
    Inductor(Inductor),
    /// Independent voltage source.
    VoltageSource(VoltageSource),
    /// Independent current source.
    CurrentSource(CurrentSource),
    /// Voltage-controlled voltage source (E card).
    Vcvs(Vcvs),
    /// Voltage-controlled current source (G card).
    Vccs(Vccs),
    /// Current-controlled current source (F card).
    Cccs(Cccs),
    /// Current-controlled voltage source (H card).
    Ccvs(Ccvs),
    /// MOSFET.
    Mosfet(MosfetInstance),
    /// Phase-transition-material device.
    Ptm(PtmInstance),
}

impl Element {
    /// Instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor(e) => &e.name,
            Element::Capacitor(e) => &e.name,
            Element::Inductor(e) => &e.name,
            Element::VoltageSource(e) => &e.name,
            Element::CurrentSource(e) => &e.name,
            Element::Vcvs(e) => &e.name,
            Element::Vccs(e) => &e.name,
            Element::Cccs(e) => &e.name,
            Element::Ccvs(e) => &e.name,
            Element::Mosfet(e) => &e.name,
            Element::Ptm(e) => &e.name,
        }
    }

    /// All nodes this element touches, in terminal order.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor(e) => vec![e.p, e.n],
            Element::Capacitor(e) => vec![e.p, e.n],
            Element::Inductor(e) => vec![e.p, e.n],
            Element::VoltageSource(e) => vec![e.p, e.n],
            Element::CurrentSource(e) => vec![e.p, e.n],
            Element::Vcvs(e) => vec![e.p, e.n, e.cp, e.cn],
            Element::Vccs(e) => vec![e.p, e.n, e.cp, e.cn],
            Element::Cccs(e) => vec![e.p, e.n],
            Element::Ccvs(e) => vec![e.p, e.n],
            Element::Mosfet(e) => vec![e.d, e.g, e.s, e.b],
            Element::Ptm(e) => vec![e.p, e.n],
        }
    }

    /// Whether this element contributes a branch-current unknown in MNA.
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource(_) | Element::Inductor(_) | Element::Vcvs(_) | Element::Ccvs(_)
        )
    }

    /// For current-controlled sources (F/H cards), the name of the
    /// controlling voltage source.
    pub fn control_source(&self) -> Option<&str> {
        match self {
            Element::Cccs(e) => Some(&e.vname),
            Element::Ccvs(e) => Some(&e.vname),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_name_dispatch() {
        let r = Element::Resistor(Resistor {
            name: "R1".into(),
            p: NodeId(1),
            n: NodeId(0),
            ohms: 1e3,
        });
        assert_eq!(r.name(), "R1");
        assert_eq!(r.nodes(), vec![NodeId(1), NodeId(0)]);
        assert!(!r.has_branch_current());
    }

    #[test]
    fn branch_current_elements() {
        let v = Element::VoltageSource(VoltageSource {
            name: "V1".into(),
            p: NodeId(1),
            n: NodeId(0),
            wave: SourceWaveform::Dc(1.0),
        });
        assert!(v.has_branch_current());
        let l = Element::Inductor(Inductor {
            name: "L1".into(),
            p: NodeId(1),
            n: NodeId(0),
            henries: 1e-9,
            ic: None,
        });
        assert!(l.has_branch_current());
    }

    #[test]
    fn mosfet_touches_four_nodes() {
        let m = Element::Mosfet(MosfetInstance {
            name: "M1".into(),
            d: NodeId(1),
            g: NodeId(2),
            s: NodeId(0),
            b: NodeId(0),
            model: MosfetModel::nmos_40nm(),
            w: 120e-9,
            l: 40e-9,
        });
        assert_eq!(m.nodes().len(), 4);
    }
}
