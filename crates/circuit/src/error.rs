use std::fmt;

/// Errors from netlist construction, validation, and parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// An element with this name already exists in the circuit.
    DuplicateElement(String),
    /// An element value is outside its legal domain.
    InvalidValue {
        /// Element name.
        element: String,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// Both terminals of a two-terminal element are the same node.
    ShortedElement(String),
    /// A node is referenced by only one element terminal and is not ground —
    /// its voltage would be determined solely by leakage.
    FloatingNode(String),
    /// The circuit has no elements.
    EmptyCircuit,
    /// No element connects to the ground node, leaving the matrix singular.
    NoGroundReference,
    /// A device model failed validation; carries the device error text.
    Device(String),
    /// Netlist text could not be parsed. Carries line number and message.
    Parse {
        /// 1-based line number in the netlist source.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A `.subckt` card redefines a subcircuit name already in scope.
    DuplicateSubckt {
        /// Subcircuit name (lower-cased).
        name: String,
        /// 1-based line number of the redefinition.
        line: usize,
    },
    /// An `X` card supplies a different number of connection nodes than the
    /// subcircuit declares ports.
    SubcktArity {
        /// Subcircuit name (lower-cased).
        subckt: String,
        /// Ports declared on the `.subckt` card.
        expected: usize,
        /// Nodes given on the `X` card.
        given: usize,
        /// 1-based line number of the `X` card.
        line: usize,
    },
    /// Subcircuit expansion exceeded the nesting limit — almost always a
    /// recursive definition.
    SubcktRecursion {
        /// Subcircuit whose expansion tripped the limit.
        subckt: String,
        /// 1-based line number of the `X` card that went too deep.
        line: usize,
    },
    /// An `X` card references a subcircuit that was never defined.
    UnknownSubckt {
        /// The missing subcircuit name (lower-cased).
        name: String,
        /// 1-based line number of the `X` card.
        line: usize,
    },
    /// A `{...}` expression or `.param` card references a parameter that is
    /// not defined in any enclosing scope.
    UndefinedParam {
        /// The missing parameter name (lower-cased).
        name: String,
        /// 1-based line number of the reference (0 if unknown).
        line: usize,
    },
    /// `.param` definitions form a reference cycle.
    ParamCycle {
        /// A parameter on the cycle (lower-cased).
        name: String,
        /// 1-based line number of its definition (0 if unknown).
        line: usize,
    },
    /// An F/H controlled source names a controlling element that is not a
    /// voltage source in the circuit.
    UnknownControlSource {
        /// The controlled source's instance name.
        element: String,
        /// The controlling voltage source it references.
        source: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateElement(name) => {
                write!(f, "duplicate element name {name:?}")
            }
            CircuitError::InvalidValue { element, reason } => {
                write!(f, "invalid value on {element:?}: {reason}")
            }
            CircuitError::ShortedElement(name) => {
                write!(f, "element {name:?} has both terminals on the same node")
            }
            CircuitError::FloatingNode(name) => write!(f, "node {name:?} is floating"),
            CircuitError::EmptyCircuit => write!(f, "circuit contains no elements"),
            CircuitError::NoGroundReference => {
                write!(f, "no element connects to ground (node 0)")
            }
            CircuitError::Device(msg) => write!(f, "device model error: {msg}"),
            CircuitError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            CircuitError::DuplicateSubckt { name, line } => {
                write!(f, "line {line}: duplicate subcircuit {name:?}")
            }
            CircuitError::SubcktArity {
                subckt,
                expected,
                given,
                line,
            } => write!(
                f,
                "line {line}: subcircuit {subckt:?} has {expected} ports, {given} nodes given"
            ),
            CircuitError::SubcktRecursion { subckt, line } => write!(
                f,
                "line {line}: subcircuit {subckt:?} nesting too deep (recursive definition?)"
            ),
            CircuitError::UnknownSubckt { name, line } => {
                write!(f, "line {line}: unknown subcircuit {name:?}")
            }
            CircuitError::UndefinedParam { name, line } => {
                write!(f, "line {line}: undefined parameter {name:?}")
            }
            CircuitError::ParamCycle { name, line } => {
                write!(f, "line {line}: parameter {name:?} is defined cyclically")
            }
            CircuitError::UnknownControlSource { element, source } => write!(
                f,
                "controlled source {element:?} references {source:?}, which is not a voltage source"
            ),
        }
    }
}

impl std::error::Error for CircuitError {}

impl From<sfet_devices::DeviceError> for CircuitError {
    fn from(e: sfet_devices::DeviceError) -> Self {
        CircuitError::Device(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CircuitError::DuplicateElement("R1".into())
            .to_string()
            .contains("R1"));
        assert!(CircuitError::EmptyCircuit
            .to_string()
            .contains("no elements"));
        let p = CircuitError::Parse {
            line: 7,
            message: "bad card".into(),
        };
        assert!(p.to_string().contains("line 7"));
    }

    #[test]
    fn from_device_error() {
        let de = sfet_devices::DeviceError::InconsistentParameters("x".into());
        let ce: CircuitError = de.into();
        assert!(matches!(ce, CircuitError::Device(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<CircuitError>();
    }
}
