//! Property tests for the netlist layer: parser/writer round-trips,
//! waveform algebra, and builder invariants under random inputs.

use proptest::prelude::*;
use sfet_circuit::{parse::parse_netlist, Circuit, Element, SourceWaveform};

fn arb_eng_value() -> impl Strategy<Value = f64> {
    // Values spanning femto to mega, the range format_eng supports.
    (-12i32..7, 1.0f64..9.99).prop_map(|(e, m)| m * 10f64.powi(e))
}

proptest! {
    /// format_eng -> parse_eng round-trips within 0.1%.
    #[test]
    fn si_round_trip(v in arb_eng_value()) {
        let text = sfet_circuit::si::format_eng(v);
        let back = sfet_circuit::si::parse_eng(&text).unwrap();
        prop_assert!(((back - v) / v).abs() < 1e-3, "{v} -> {text} -> {back}");
    }

    /// Random R/C ladders survive a netlist write → parse round trip with
    /// identical element counts, names, and values.
    #[test]
    fn netlist_round_trip(values in proptest::collection::vec(arb_eng_value(), 1..8)) {
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let src = ckt.node("src");
        ckt.add_voltage_source("V1", src, gnd, SourceWaveform::Dc(1.0)).unwrap();
        let mut prev = src;
        for (k, &v) in values.iter().enumerate() {
            let n = ckt.node(&format!("n{k}"));
            if k % 2 == 0 {
                ckt.add_resistor(&format!("R{k}"), prev, n, v.abs().max(1e-3)).unwrap();
            } else {
                ckt.add_capacitor(&format!("C{k}"), prev, n, v.abs().max(1e-18)).unwrap();
            }
            prev = n;
        }
        let text = ckt.to_netlist();
        let parsed = parse_netlist(&text).unwrap();
        prop_assert_eq!(parsed.circuit.elements().len(), ckt.elements().len());
        for (a, b) in ckt.elements().iter().zip(parsed.circuit.elements()) {
            prop_assert_eq!(a.name(), b.name());
            match (a, b) {
                (Element::Resistor(x), Element::Resistor(y)) => {
                    prop_assert!(((x.ohms - y.ohms) / x.ohms).abs() < 1e-3);
                }
                (Element::Capacitor(x), Element::Capacitor(y)) => {
                    prop_assert!(((x.farads - y.farads) / x.farads).abs() < 1e-3);
                }
                (Element::VoltageSource(_), Element::VoltageSource(_)) => {}
                other => prop_assert!(false, "element kind changed: {other:?}"),
            }
        }
    }

    /// Pulse waveforms always stay within [min(v1,v2), max(v1,v2)].
    #[test]
    fn pulse_bounded(
        v1 in -2.0f64..2.0,
        v2 in -2.0f64..2.0,
        t in 0.0f64..10e-9,
        rise in 1e-12f64..1e-10,
        width in 1e-12f64..1e-9,
        period_mult in 2.5f64..10.0,
    ) {
        let w = SourceWaveform::Pulse {
            v1,
            v2,
            delay: 0.5e-9,
            rise,
            fall: rise,
            width,
            period: (2.0 * rise + width) * period_mult,
        };
        let v = w.eval(t);
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "pulse value {v} outside [{lo}, {hi}]");
    }

    /// Ramp waveforms are monotone between their corners.
    #[test]
    fn ramp_monotone(
        v0 in -1.0f64..1.0,
        v1 in -1.0f64..1.0,
        t_start in 0.0f64..1e-9,
        t_rise in 1e-12f64..1e-9,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let w = SourceWaveform::ramp(v0, v1, t_start, t_rise);
        let span = t_start + t_rise + 1e-9;
        let (ta, tb) = (a.min(b) * span, a.max(b) * span);
        let (va, vb) = (w.eval(ta), w.eval(tb));
        if v1 >= v0 {
            prop_assert!(vb >= va - 1e-12);
        } else {
            prop_assert!(vb <= va + 1e-12);
        }
    }

    /// next_breakpoint is always strictly in the future and corners are
    /// reachable by iterating it.
    #[test]
    fn breakpoints_strictly_advance(
        t_start in 0.0f64..1e-9,
        t_rise in 1e-12f64..1e-9,
    ) {
        let w = SourceWaveform::ramp(0.0, 1.0, t_start, t_rise);
        let mut t = -1e-12;
        let mut count = 0;
        while let Some(bp) = w.next_breakpoint(t) {
            prop_assert!(bp > t);
            t = bp;
            count += 1;
            prop_assert!(count <= 2, "a one-shot ramp has exactly two corners");
        }
        prop_assert_eq!(count, 2);
    }

    /// Node interning is injective: distinct names, distinct ids.
    #[test]
    fn node_interning_injective(names in proptest::collection::hash_set("[a-z][a-z0-9]{0,6}", 1..20)) {
        let mut ckt = Circuit::new();
        let ids: Vec<_> = names.iter().map(|n| ckt.node(n)).collect();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        // "gnd" aliases ground; everything else must be unique and fresh.
        let expected = names.len() - usize::from(names.contains("gnd"));
        prop_assert!(unique.len() >= expected);
    }
}

proptest! {
    /// `.dc` grid expansion: the grid always starts exactly on `start`,
    /// never overshoots `stop`, is monotone in the step direction, and —
    /// when constructed from an integer number of steps — ends exactly on
    /// `stop` regardless of how badly the decimal endpoints round.
    #[test]
    fn dc_grid_divisible_ranges_pin_endpoints(
        start in -2.0f64..2.0,
        step_mag in 1e-9f64..0.5,
        k in 1usize..400,
        direction in 0u8..2,
    ) {
        let descending = direction == 1;
        let step = if descending { -step_mag } else { step_mag };
        let stop = start + k as f64 * step;
        let grid = sfet_circuit::parse::dc_grid(start, stop, step);
        prop_assert_eq!(grid.len(), k + 1, "inclusive stop dropped or overshot");
        prop_assert_eq!(grid[0], start);
        prop_assert_eq!(*grid.last().unwrap(), stop);
        for w in grid.windows(2) {
            if descending {
                prop_assert!(w[1] < w[0], "descending grid must stay monotone");
            } else {
                prop_assert!(w[1] > w[0], "ascending grid must stay monotone");
            }
        }
    }

    /// Arbitrary (possibly non-dividing) ranges: first point pinned to
    /// `start`, no point past `stop`, monotone throughout.
    #[test]
    fn dc_grid_never_overshoots(
        start in -2.0f64..2.0,
        span in 0.0f64..4.0,
        step in 1e-6f64..0.7,
    ) {
        let stop = start + span;
        let grid = sfet_circuit::parse::dc_grid(start, stop, step);
        prop_assert!(!grid.is_empty());
        prop_assert_eq!(grid[0], start);
        let tol = 4.0 * f64::EPSILON * (start.abs().max(stop.abs()) / step + span / step).max(1.0);
        for (i, v) in grid.iter().enumerate() {
            // Allow the divisibility tolerance's worth of slack, in step units.
            prop_assert!(*v <= stop + tol * step, "point {i} overshoots stop");
        }
        for w in grid.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }
}
