//! Write → parse round-trip property: arbitrary circuits built through the
//! programmatic API survive `to_netlist` → `parse_netlist` with identical
//! element lists, `.param` tables, and `.ic` pins.
//!
//! Values emitted with `{:e}` (params, controlled-source coefficients, `.ic`
//! pins) must round-trip bit-exactly; values emitted through
//! [`sfet_circuit::si::format_eng`] (R/C/L, source waveform corners) carry
//! 4 significant digits and are compared to 0.1%.

use proptest::prelude::*;
use sfet_circuit::{parse::parse_netlist, Circuit, Element, NodeId, SourceWaveform};

/// Values format_eng can carry: spanning femto to mega.
fn arb_fmt_value() -> impl Strategy<Value = f64> {
    (-12i32..7, 1.0f64..9.99).prop_map(|(e, m)| m * 10f64.powi(e))
}

/// Values emitted in full `{:e}` precision — any finite nonzero double
/// round-trips exactly through Rust's shortest-representation formatter.
fn arb_exact_value() -> impl Strategy<Value = f64> {
    (0u8..2, 1e-6f64..1e6).prop_map(|(neg, mag)| if neg == 0 { mag } else { -mag })
}

/// One generated element: a kind selector, node-pool picks, and values.
#[derive(Debug, Clone)]
struct ElemSpec {
    kind: u8,
    a: usize,
    b: usize,
    c: usize,
    d: usize,
    fmt_val: f64,
    exact_val: f64,
}

fn arb_elem() -> impl Strategy<Value = ElemSpec> {
    (
        0u8..9,
        0usize..POOL,
        0usize..POOL - 1,
        0usize..POOL,
        0usize..POOL,
        arb_fmt_value(),
        arb_exact_value(),
    )
        .prop_map(|(kind, a, b, c, d, fmt_val, exact_val)| ElemSpec {
            kind,
            a,
            b,
            c,
            d,
            fmt_val,
            exact_val,
        })
}

const POOL: usize = 6;

/// Builds a circuit from specs: an anchor V0 (so F/H always have a control
/// source to reference), then one element per spec over a shared node pool.
fn build(specs: &[ElemSpec], params: &[f64], ics: &[(usize, f64)]) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = (0..POOL).map(|i| ckt.node(&format!("n{i}"))).collect();
    ckt.add_voltage_source("V0", nodes[0], Circuit::ground(), SourceWaveform::Dc(1.0))
        .unwrap();
    for (k, s) in specs.iter().enumerate() {
        let p = nodes[s.a];
        // Guaranteed distinct from p.
        let n = nodes[(s.a + 1 + s.b) % POOL];
        let (cp, cn) = (nodes[s.c], nodes[s.d]);
        match s.kind {
            0 => ckt.add_resistor(&format!("R{k}"), p, n, s.fmt_val.abs()),
            1 => ckt.add_capacitor(&format!("C{k}"), p, n, s.fmt_val.abs()),
            2 => ckt.add_inductor(&format!("L{k}"), p, n, s.fmt_val.abs()),
            3 => {
                ckt.add_voltage_source(&format!("V{}", k + 1), p, n, SourceWaveform::Dc(s.fmt_val))
            }
            4 => ckt.add_current_source(&format!("I{k}"), p, n, SourceWaveform::Dc(s.fmt_val)),
            5 => ckt.add_vcvs(&format!("E{k}"), p, n, cp, cn, s.exact_val),
            6 => ckt.add_vccs(&format!("G{k}"), p, n, cp, cn, s.exact_val),
            7 => ckt.add_cccs(&format!("F{k}"), p, n, "V0", s.exact_val),
            8 => ckt.add_ccvs(&format!("H{k}"), p, n, "V0", s.exact_val),
            _ => unreachable!(),
        }
        .unwrap();
    }
    for (i, &v) in params.iter().enumerate() {
        ckt.set_param(&format!("p{i}"), v);
    }
    for &(node, v) in ics {
        ckt.set_node_ic(nodes[node], v);
    }
    ckt
}

/// Relative closeness for format_eng's 4 significant digits.
fn close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    ((a - b) / a).abs() < 1e-3
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary circuits over all element kinds round-trip through the
    /// netlist text with identical structure.
    #[test]
    fn arbitrary_circuit_round_trip(
        specs in proptest::collection::vec(arb_elem(), 1..12),
        params in proptest::collection::vec(arb_exact_value(), 0..4),
        ics in proptest::collection::vec((0usize..POOL, arb_exact_value()), 0..3),
    ) {
        let ckt = build(&specs, &params, &ics);
        let text = ckt.to_netlist();
        let parsed = parse_netlist(&text).unwrap_or_else(|e| {
            panic!("generated netlist failed to parse: {e}\n{text}")
        });
        let back = &parsed.circuit;

        // Element lists match pairwise: same kind, name, node names, values.
        prop_assert_eq!(back.elements().len(), ckt.elements().len());
        for (a, b) in ckt.elements().iter().zip(back.elements()) {
            prop_assert_eq!(a.name(), b.name(), "in\n{}", text);
            match (a, b) {
                (Element::Resistor(x), Element::Resistor(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    prop_assert!(close(x.ohms, y.ohms));
                }
                (Element::Capacitor(x), Element::Capacitor(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    prop_assert!(close(x.farads, y.farads));
                }
                (Element::Inductor(x), Element::Inductor(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    prop_assert!(close(x.henries, y.henries));
                }
                (Element::VoltageSource(x), Element::VoltageSource(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    match (&x.wave, &y.wave) {
                        (SourceWaveform::Dc(u), SourceWaveform::Dc(v)) => {
                            prop_assert!(close(*u, *v));
                        }
                        other => prop_assert!(false, "waveform kind changed: {other:?}"),
                    }
                }
                (Element::CurrentSource(x), Element::CurrentSource(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    match (&x.wave, &y.wave) {
                        (SourceWaveform::Dc(u), SourceWaveform::Dc(v)) => {
                            prop_assert!(close(*u, *v));
                        }
                        other => prop_assert!(false, "waveform kind changed: {other:?}"),
                    }
                }
                // {:e}-emitted coefficients must round-trip bit-exactly.
                (Element::Vcvs(x), Element::Vcvs(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    prop_assert_eq!(ckt.node_name(x.cp), back.node_name(y.cp));
                    prop_assert_eq!(ckt.node_name(x.cn), back.node_name(y.cn));
                    prop_assert_eq!(x.gain, y.gain);
                }
                (Element::Vccs(x), Element::Vccs(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    prop_assert_eq!(ckt.node_name(x.cp), back.node_name(y.cp));
                    prop_assert_eq!(ckt.node_name(x.cn), back.node_name(y.cn));
                    prop_assert_eq!(x.gm, y.gm);
                }
                (Element::Cccs(x), Element::Cccs(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    prop_assert_eq!(&x.vname, &y.vname);
                    prop_assert_eq!(x.gain, y.gain);
                }
                (Element::Ccvs(x), Element::Ccvs(y)) => {
                    prop_assert_eq!(ckt.node_name(x.p), back.node_name(y.p));
                    prop_assert_eq!(ckt.node_name(x.n), back.node_name(y.n));
                    prop_assert_eq!(&x.vname, &y.vname);
                    prop_assert_eq!(x.r, y.r);
                }
                other => prop_assert!(false, "element kind changed: {other:?}"),
            }
        }

        // .param table: same names, same order, bit-exact values.
        prop_assert_eq!(back.params(), ckt.params());

        // .ic pins: same (node name, value) sequence, bit-exact values.
        prop_assert_eq!(back.node_ics().len(), ckt.node_ics().len());
        for ((na, va), (nb, vb)) in ckt.node_ics().iter().zip(back.node_ics()) {
            prop_assert_eq!(ckt.node_name(*na), back.node_name(*nb));
            prop_assert_eq!(va, vb);
        }
    }
}
