//! Property tests for waveform storage and measurements.

use proptest::prelude::*;
use sfet_waveform::measure::{
    bounce, charge_split, crossing_time, droop, max_abs_didt, CrossDirection,
};
use sfet_waveform::Waveform;

fn arb_waveform() -> impl Strategy<Value = Waveform> {
    proptest::collection::vec(-3.0f64..3.0, 2..40).prop_map(|values| {
        let times: Vec<f64> = (0..values.len()).map(|i| i as f64 * 1e-12).collect();
        Waveform::from_samples(times, values).expect("valid by construction")
    })
}

proptest! {
    /// value_at at a sample time returns that sample.
    #[test]
    fn value_at_samples(wf in arb_waveform(), idx in 0usize..40) {
        let idx = idx % wf.len();
        let t = wf.times()[idx];
        prop_assert!((wf.value_at(t) - wf.values()[idx]).abs() < 1e-12);
    }

    /// Interpolated values never escape the neighbouring samples' range.
    #[test]
    fn interpolation_bounded(wf in arb_waveform(), q in 0.0f64..1.0) {
        let t = wf.start_time() + q * (wf.end_time() - wf.start_time());
        let v = wf.value_at(t);
        let (_, lo) = wf.min();
        let (_, hi) = wf.max();
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// Integral is additive over adjacent windows.
    #[test]
    fn integral_additive(wf in arb_waveform(), split in 0.1f64..0.9) {
        let t0 = wf.start_time();
        let t2 = wf.end_time();
        let t1 = t0 + split * (t2 - t0);
        let whole = wf.integral_between(t0, t2);
        let parts = wf.integral_between(t0, t1) + wf.integral_between(t1, t2);
        prop_assert!((whole - parts).abs() < 1e-9 * whole.abs().max(1e-15));
    }

    /// The integral of the derivative recovers the net change.
    #[test]
    fn derivative_integral_inverse(wf in arb_waveform()) {
        prop_assume!(wf.len() >= 3);
        let d = wf.derivative();
        let net = d.integral();
        // Derivative samples live at segment midpoints, so the trapezoidal
        // re-integration is inexact at the two half-segments; allow slack
        // proportional to the largest slope.
        let slack = 1e-12 * max_abs_didt(&wf) + 1e-12;
        let expect = wf.last_value() - wf.first_value();
        prop_assert!((net - expect).abs() <= slack + 0.5 * (expect.abs() + 1.0) , "net {net} vs {expect}");
    }

    /// droop + overshoot together bound the peak-to-peak excursion.
    #[test]
    fn droop_consistency(wf in arb_waveform(), nominal in -1.0f64..1.0) {
        let r = droop(&wf, nominal);
        prop_assert!(r.droop >= 0.0 && r.overshoot >= 0.0);
        prop_assert!(r.peak_to_peak <= r.droop + r.overshoot + (2.0 * nominal.abs()) + 1e-12);
        let b = bounce(&wf, nominal);
        prop_assert!(b >= r.droop.max(r.overshoot) - 1e-12);
    }

    /// A found crossing really does bracket the level.
    #[test]
    fn crossing_is_a_crossing(wf in arb_waveform(), level in -2.0f64..2.0) {
        if let Ok(tc) = crossing_time(&wf, level, CrossDirection::Either, wf.start_time()) {
            prop_assert!(tc >= wf.start_time() && tc <= wf.end_time());
            prop_assert!((wf.value_at(tc) - level).abs() < 1e-6);
        }
    }

    /// Charge split components are non-negative and total-consistent.
    #[test]
    fn charge_split_consistent(wf in arb_waveform(), c_load in 1e-16f64..1e-12) {
        let v = wf.map(f64::abs);
        let q = charge_split(&wf, &v, c_load, wf.start_time(), wf.end_time());
        prop_assert!(q.total >= 0.0);
        prop_assert!(q.output >= 0.0);
        prop_assert!(q.short_circuit >= 0.0);
        prop_assert!(q.short_circuit <= q.total + 1e-18);
    }

    /// Windowing preserves values inside the window.
    #[test]
    fn window_preserves_values(wf in arb_waveform(), a in 0.05f64..0.45, b in 0.55f64..0.95) {
        prop_assume!(wf.len() >= 4);
        let t0 = wf.start_time() + a * (wf.end_time() - wf.start_time());
        let t1 = wf.start_time() + b * (wf.end_time() - wf.start_time());
        let win = wf.window(t0, t1).unwrap();
        let mid = 0.5 * (t0 + t1);
        prop_assert!((win.value_at(mid) - wf.value_at(mid)).abs() < 1e-12);
        prop_assert!(win.start_time() >= t0 - 1e-18 && win.end_time() <= t1 + 1e-18);
    }
}
