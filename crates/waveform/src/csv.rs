//! CSV export of waveform sets.
//!
//! The figure-regeneration binaries dump their series as CSV so results can
//! be plotted externally; all columns are resampled onto the first
//! waveform's time axis.

use crate::Waveform;

/// Renders named waveforms as CSV text with a `time` column. All waveforms
/// are resampled (linear interpolation) onto the first waveform's time axis.
///
/// # Panics
///
/// Panics if `columns` is empty.
///
/// # Example
///
/// ```
/// use sfet_waveform::{csv::to_csv, Waveform};
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// let v = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0])?;
/// let text = to_csv(&[("v(out)", &v)]);
/// assert!(text.starts_with("time,v(out)\n"));
/// # Ok(())
/// # }
/// ```
pub fn to_csv(columns: &[(&str, &Waveform)]) -> String {
    assert!(!columns.is_empty(), "to_csv needs at least one column");
    let mut out = String::from("time");
    for (name, _) in columns {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    let base = columns[0].1;
    for &t in base.times() {
        out.push_str(&format!("{t:e}"));
        for (_, wf) in columns {
            out.push_str(&format!(",{:e}", wf.value_at(t)));
        }
        out.push('\n');
    }
    out
}

/// Writes [`to_csv`] output to a file.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_csv(path: &std::path::Path, columns: &[(&str, &Waveform)]) -> std::io::Result<()> {
    std::fs::write(path, to_csv(columns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let a = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Waveform::from_samples(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        let text = to_csv(&[("a", &a), ("b", &b)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "time,a,b");
        // b resampled at t=1 → 2.0.
        assert!(lines[2].starts_with("1e0,2e0,2e0"));
    }

    #[test]
    fn write_csv_to_tempfile() {
        let a = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let path = std::env::temp_dir().join("sfet_csv_test.csv");
        write_csv(&path, &[("a", &a)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("time,a"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_columns_panic() {
        let _ = to_csv(&[]);
    }
}
