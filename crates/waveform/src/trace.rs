//! The sampled time-series type.

use crate::{Result, WaveformError};
use sfet_numeric::interp::lerp_between;

/// A sampled waveform: a strictly increasing time axis plus one value per
/// sample. Evaluation between samples is linear; outside the range it
/// clamps to the end values.
///
/// # Example
///
/// ```
/// use sfet_waveform::Waveform;
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// let w = Waveform::from_samples(vec![0.0, 1e-12, 2e-12], vec![0.0, 1.0, 1.0])?;
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.value_at(0.5e-12), 0.5);
/// assert_eq!(w.first_value(), 0.0);
/// assert_eq!(w.last_value(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Builds a waveform from parallel time/value vectors.
    ///
    /// # Errors
    ///
    /// [`WaveformError::InvalidSamples`] if the vectors are empty, differ in
    /// length, contain non-finite entries, or the times are not strictly
    /// increasing.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        if times.is_empty() || times.len() != values.len() {
            return Err(WaveformError::InvalidSamples(
                "times and values must be non-empty and of equal length".into(),
            ));
        }
        if times.iter().chain(values.iter()).any(|v| !v.is_finite()) {
            return Err(WaveformError::InvalidSamples(
                "samples must be finite".into(),
            ));
        }
        if times.windows(2).any(|w| w[0] >= w[1]) {
            return Err(WaveformError::InvalidSamples(
                "time axis must be strictly increasing".into(),
            ));
        }
        Ok(Waveform { times, values })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the waveform holds no samples (never true for a constructed
    /// waveform; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The time axis.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// First sampled time.
    pub fn start_time(&self) -> f64 {
        self.times[0]
    }

    /// Last sampled time.
    pub fn end_time(&self) -> f64 {
        *self.times.last().expect("waveform is never empty")
    }

    /// Value at the first sample.
    pub fn first_value(&self) -> f64 {
        self.values[0]
    }

    /// Value at the last sample.
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("waveform is never empty")
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Linearly interpolated value at `t` (clamped outside the range).
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        let n = self.times.len();
        if t >= self.times[n - 1] {
            return self.values[n - 1];
        }
        let i = self.times.partition_point(|&ti| ti <= t);
        lerp_between(
            self.times[i - 1],
            self.values[i - 1],
            self.times[i],
            self.values[i],
            t,
        )
    }

    /// Global minimum value and its time.
    pub fn min(&self) -> (f64, f64) {
        self.iter()
            .fold((self.times[0], f64::INFINITY), |(tb, vb), (t, v)| {
                if v < vb {
                    (t, v)
                } else {
                    (tb, vb)
                }
            })
    }

    /// Global maximum value and its time.
    pub fn max(&self) -> (f64, f64) {
        self.iter()
            .fold((self.times[0], f64::NEG_INFINITY), |(tb, vb), (t, v)| {
                if v > vb {
                    (t, v)
                } else {
                    (tb, vb)
                }
            })
    }

    /// Time and value of the sample with the largest magnitude.
    pub fn peak_abs(&self) -> (f64, f64) {
        self.iter()
            .fold((self.times[0], 0.0), |(tb, vb): (f64, f64), (t, v)| {
                if v.abs() > vb.abs() {
                    (t, v)
                } else {
                    (tb, vb)
                }
            })
    }

    /// Returns a new waveform with every value transformed by `f`.
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> Waveform {
        Waveform {
            times: self.times.clone(),
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Piecewise derivative, sampled at segment midpoints mapped back onto
    /// the left sample time (length `len() - 1`, or a single zero sample for
    /// a one-point waveform).
    pub fn derivative(&self) -> Waveform {
        if self.times.len() < 2 {
            return Waveform {
                times: self.times.clone(),
                values: vec![0.0],
            };
        }
        let mut times = Vec::with_capacity(self.times.len() - 1);
        let mut values = Vec::with_capacity(self.times.len() - 1);
        for i in 1..self.times.len() {
            let dt = self.times[i] - self.times[i - 1];
            times.push(0.5 * (self.times[i] + self.times[i - 1]));
            values.push((self.values[i] - self.values[i - 1]) / dt);
        }
        Waveform { times, values }
    }

    /// Trapezoidal integral over the full waveform.
    pub fn integral(&self) -> f64 {
        self.integral_between(self.start_time(), self.end_time())
    }

    /// Trapezoidal integral over `[t0, t1]` (clamped to the sampled range,
    /// with partial end segments interpolated).
    pub fn integral_between(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let (t0, t1) = (t0.max(self.start_time()), t1.min(self.end_time()));
        if t1 <= t0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 1..self.times.len() {
            let (ta, tb) = (self.times[i - 1], self.times[i]);
            if tb <= t0 || ta >= t1 {
                continue;
            }
            let lo = ta.max(t0);
            let hi = tb.min(t1);
            let va = self.value_at(lo);
            let vb = self.value_at(hi);
            acc += 0.5 * (va + vb) * (hi - lo);
        }
        acc
    }

    /// Resamples onto another waveform's time axis and combines pairwise.
    pub fn zip_with<F: FnMut(f64, f64) -> f64>(&self, other: &Waveform, mut f: F) -> Waveform {
        Waveform {
            times: self.times.clone(),
            values: self
                .times
                .iter()
                .zip(&self.values)
                .map(|(&t, &v)| f(v, other.value_at(t)))
                .collect(),
        }
    }

    /// Returns the sub-waveform covering `[t0, t1]` (including interpolated
    /// end points).
    ///
    /// # Errors
    ///
    /// [`WaveformError::MeasurementFailed`] if the window does not overlap
    /// the sampled range.
    pub fn window(&self, t0: f64, t1: f64) -> Result<Waveform> {
        if t1 <= t0 || t1 <= self.start_time() || t0 >= self.end_time() {
            return Err(WaveformError::MeasurementFailed(format!(
                "window [{t0:e}, {t1:e}] does not overlap waveform range"
            )));
        }
        let t0 = t0.max(self.start_time());
        let t1 = t1.min(self.end_time());
        let mut times = vec![t0];
        let mut values = vec![self.value_at(t0)];
        for (t, v) in self.iter() {
            if t > t0 && t < t1 {
                times.push(t);
                values.push(v);
            }
        }
        if t1 > *times.last().expect("non-empty") {
            times.push(t1);
            values.push(self.value_at(t1));
        }
        Ok(Waveform { times, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Waveform {
        Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Waveform::from_samples(vec![], vec![]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Waveform::from_samples(vec![0.0], vec![f64::NAN]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn value_interpolation_and_clamping() {
        let w = tri();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 1.0);
        assert_eq!(w.value_at(1.5), 1.0);
        assert_eq!(w.value_at(5.0), 0.0);
    }

    #[test]
    fn min_max_peak() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![1.0, -3.0, 2.0]).unwrap();
        assert_eq!(w.min(), (1.0, -3.0));
        assert_eq!(w.max(), (2.0, 2.0));
        assert_eq!(w.peak_abs(), (1.0, -3.0));
    }

    #[test]
    fn derivative_of_triangle() {
        let d = tri().derivative();
        assert_eq!(d.len(), 2);
        assert_eq!(d.values()[0], 2.0);
        assert_eq!(d.values()[1], -2.0);
    }

    #[test]
    fn integral_of_triangle() {
        assert!((tri().integral() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn integral_between_partial_segments() {
        let w = tri();
        // [0.5, 1.5]: area = two trapezoids of mean 1.5 width 0.5 each = 1.5.
        assert!((w.integral_between(0.5, 1.5) - 1.5).abs() < 1e-12);
        assert_eq!(w.integral_between(1.0, 1.0), 0.0);
        assert_eq!(w.integral_between(2.0, 1.0), 0.0);
        // Clamps outside.
        assert!((w.integral_between(-5.0, 5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn map_and_zip() {
        let w = tri();
        let neg = w.map(|v| -v);
        assert_eq!(neg.values()[1], -2.0);
        let sum = w.zip_with(&neg, |a, b| a + b);
        assert!(sum.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn window_extraction() {
        let w = tri();
        let win = w.window(0.5, 1.5).unwrap();
        assert_eq!(win.start_time(), 0.5);
        assert_eq!(win.end_time(), 1.5);
        assert_eq!(win.value_at(1.0), 2.0);
        assert!(w.window(5.0, 6.0).is_err());
        assert!(w.window(1.0, 1.0).is_err());
    }

    #[test]
    fn iter_pairs() {
        let w = tri();
        let pts: Vec<(f64, f64)> = w.iter().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], (1.0, 2.0));
    }
}
