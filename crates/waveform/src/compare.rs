//! Waveform resampling and tolerance-envelope comparison.
//!
//! The golden-waveform regression harness (`sfet-verify`) pins whole
//! signals, not just scalar metrics. Two honestly-computed runs of the
//! same scenario may differ by tiny amounts after a solver change that is
//! *better*, not wrong — so goldens are compared against a tolerance
//! envelope ([`Tol`]) with three knobs:
//!
//! * `abs` — absolute deviation floor (units of the signal);
//! * `rel` — relative deviation, scaled by the golden value's magnitude;
//! * `time_shift` — a horizontal window: a sample passes if the actual
//!   waveform comes within the abs+rel envelope *anywhere* inside
//!   `±time_shift` of the golden sample time. This absorbs step-placement
//!   jitter around sharp edges without loosening the vertical envelope.

use crate::{Result, Waveform, WaveformError};

/// A tolerance envelope for comparing a measured value against a golden
/// one: the allowance at golden value `g` is `abs + rel·|g|`, optionally
/// searched over a `±time_shift` window for waveform comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tol {
    /// Absolute allowance (signal units).
    pub abs: f64,
    /// Relative allowance (scaled by the golden magnitude).
    pub rel: f64,
    /// Half-width of the time-shift search window \[s\]; `0.0` compares
    /// strictly pointwise.
    pub time_shift: f64,
}

impl Tol {
    /// A pointwise envelope with the given absolute and relative terms.
    pub fn new(abs: f64, rel: f64) -> Self {
        Tol {
            abs,
            rel,
            time_shift: 0.0,
        }
    }

    /// Builder-style addition of a time-shift window.
    pub fn with_time_shift(mut self, time_shift: f64) -> Self {
        self.time_shift = time_shift;
        self
    }

    /// Envelope allowance at golden value `g`: `abs + rel·|g|`.
    pub fn allowance(&self, golden: f64) -> f64 {
        self.abs + self.rel * golden.abs()
    }

    /// Margin of a scalar comparison: `|actual − golden| / allowance`.
    /// Values `<= 1` are within the envelope.
    pub fn margin(&self, actual: f64, golden: f64) -> f64 {
        let allow = self.allowance(golden);
        if allow <= 0.0 {
            return if actual == golden { 0.0 } else { f64::INFINITY };
        }
        (actual - golden).abs() / allow
    }

    /// Whether a scalar `actual` lies within the envelope around `golden`.
    ///
    /// # Example
    ///
    /// ```
    /// use sfet_waveform::compare::Tol;
    /// let tol = Tol::new(0.0, 0.02); // 2 % relative
    /// assert!(tol.check_scalar(1.01, 1.0));
    /// assert!(!tol.check_scalar(1.05, 1.0));
    /// ```
    pub fn check_scalar(&self, actual: f64, golden: f64) -> bool {
        self.margin(actual, golden) <= 1.0
    }
}

/// Outcome of comparing an actual waveform against a golden one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareReport {
    /// Golden samples checked.
    pub checked: usize,
    /// Samples whose deviation exceeded the envelope.
    pub violations: usize,
    /// Worst deviation / allowance ratio over all samples (`<= 1` passes).
    pub worst_margin: f64,
    /// Golden sample time of the worst margin.
    pub worst_time: f64,
    /// Golden value at the worst margin.
    pub worst_golden: f64,
    /// Closest actual value (within the shift window) at the worst margin.
    pub worst_actual: f64,
}

impl CompareReport {
    /// `true` when every golden sample was matched within the envelope.
    pub fn pass(&self) -> bool {
        self.violations == 0
    }
}

/// Smallest vertical distance from golden value `g` to the piecewise-linear
/// `actual` waveform over the window `[t - shift, t + shift]`.
///
/// Golden samples outside the actual waveform's time domain are *not*
/// matched against the clamped end value — a run that stopped early must
/// fail at the overhanging samples, not pass by holding its last value.
/// (A relative slack of 1e-9 of the actual span absorbs the float jitter
/// between two adaptive time axes that nominally end at the same instant.)
fn window_deviation(actual: &Waveform, t: f64, g: f64, shift: f64) -> (f64, f64) {
    let (a0, a1) = (actual.start_time(), actual.end_time());
    let eps = 1e-9 * (a1 - a0).abs();
    if shift <= 0.0 {
        if t < a0 - eps || t > a1 + eps {
            return (f64::INFINITY, f64::NAN);
        }
        let v = actual.value_at(t);
        return ((v - g).abs(), v);
    }
    let (lo, hi) = (t - shift, t + shift);
    if hi < a0 - eps || lo > a1 + eps {
        return (f64::INFINITY, f64::NAN);
    }
    // Search only the part of the window the actual waveform covers.
    let (lo, hi) = (lo.max(a0), hi.min(a1));
    // Candidate evaluation points: the window ends plus every actual
    // sample inside the window. Between consecutive candidates the actual
    // waveform is linear, so the minimum of |actual − g| over a segment is
    // zero if the segment crosses g and an endpoint value otherwise.
    let mut prev = actual.value_at(lo);
    let mut best = (prev - g).abs();
    let mut best_v = prev;
    let consider = |v: f64, best: &mut f64, best_v: &mut f64, prev: &mut f64| {
        if (*prev - g) * (v - g) <= 0.0 {
            *best = 0.0;
            *best_v = g;
        } else if (v - g).abs() < *best {
            *best = (v - g).abs();
            *best_v = v;
        }
        *prev = v;
    };
    for (ts, vs) in actual.iter() {
        if ts > lo && ts < hi {
            consider(vs, &mut best, &mut best_v, &mut prev);
        }
    }
    consider(actual.value_at(hi), &mut best, &mut best_v, &mut prev);
    (best, best_v)
}

/// Compares `actual` against `golden` sample-by-sample under the envelope
/// `tol`, reporting the worst margin and the violation count.
///
/// Every *golden* sample is scored; the actual waveform is evaluated by
/// linear interpolation (and searched over the `±time_shift` window when
/// one is configured).
///
/// # Example
///
/// ```
/// use sfet_waveform::compare::{compare, Tol};
/// use sfet_waveform::Waveform;
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// let golden = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0])?;
/// let actual = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.004, 1.0])?;
/// let report = compare(&golden, &actual, &Tol::new(1e-2, 0.0));
/// assert!(report.pass());
/// assert!(report.worst_margin < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn compare(golden: &Waveform, actual: &Waveform, tol: &Tol) -> CompareReport {
    let mut report = CompareReport {
        checked: 0,
        violations: 0,
        worst_margin: 0.0,
        worst_time: golden.start_time(),
        worst_golden: golden.first_value(),
        worst_actual: actual.first_value(),
    };
    for (t, g) in golden.iter() {
        let (dev, closest) = window_deviation(actual, t, g, tol.time_shift);
        let allow = tol.allowance(g);
        let margin = if allow > 0.0 {
            dev / allow
        } else if dev == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        report.checked += 1;
        if margin > 1.0 {
            report.violations += 1;
        }
        if margin > report.worst_margin {
            report.worst_margin = margin;
            report.worst_time = t;
            report.worst_golden = g;
            report.worst_actual = closest;
        }
    }
    report
}

/// Resamples a waveform onto `n` uniformly spaced points spanning its full
/// time range (linear interpolation). Used to store goldens compactly and
/// compare runs whose adaptive time axes differ.
///
/// # Errors
///
/// [`WaveformError::InvalidSamples`] if `n < 2` or the waveform spans a
/// single instant.
pub fn resample(w: &Waveform, n: usize) -> Result<Waveform> {
    if n < 2 {
        return Err(WaveformError::InvalidSamples(
            "resample needs at least two points".into(),
        ));
    }
    let (t0, t1) = (w.start_time(), w.end_time());
    if t1 <= t0 {
        return Err(WaveformError::InvalidSamples(
            "cannot resample a single-instant waveform".into(),
        ));
    }
    let step = (t1 - t0) / (n - 1) as f64;
    let times: Vec<f64> = (0..n).map(|i| t0 + step * i as f64).collect();
    let values: Vec<f64> = times.iter().map(|&t| w.value_at(t)).collect();
    Waveform::from_samples(times, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(times: &[f64], values: &[f64]) -> Waveform {
        Waveform::from_samples(times.to_vec(), values.to_vec()).unwrap()
    }

    #[test]
    fn scalar_envelope() {
        let tol = Tol::new(1e-3, 0.01);
        assert!(tol.check_scalar(1.010, 1.0)); // 1e-3 + 1e-2 allowance
        assert!(!tol.check_scalar(1.012, 1.0));
        // Zero-allowance envelope only admits exact equality.
        let exact = Tol::new(0.0, 0.0);
        assert!(exact.check_scalar(2.0, 2.0));
        assert!(!exact.check_scalar(2.0 + 1e-12, 2.0));
    }

    #[test]
    fn identical_waveforms_pass_zero_tolerance() {
        let g = wf(&[0.0, 1.0, 2.0], &[0.0, 5.0, -1.0]);
        let r = compare(&g, &g.clone(), &Tol::new(0.0, 0.0));
        assert!(r.pass());
        assert_eq!(r.worst_margin, 0.0);
        assert_eq!(r.checked, 3);
    }

    #[test]
    fn vertical_violation_detected() {
        let g = wf(&[0.0, 1.0, 2.0], &[0.0, 1.0, 1.0]);
        let a = wf(&[0.0, 1.0, 2.0], &[0.0, 1.2, 1.0]);
        let r = compare(&g, &a, &Tol::new(0.05, 0.0));
        assert!(!r.pass());
        assert_eq!(r.violations, 1);
        assert_eq!(r.worst_time, 1.0);
        assert!((r.worst_actual - 1.2).abs() < 1e-12);
    }

    #[test]
    fn time_shift_absorbs_edge_jitter() {
        // A unit step at t=1.0 in the golden, at t=1.05 in the actual:
        // hopeless pointwise, fine with a 0.1 s shift window.
        let g = wf(&[0.0, 0.999, 1.001, 2.0], &[0.0, 0.0, 1.0, 1.0]);
        let a = wf(&[0.0, 1.049, 1.051, 2.0], &[0.0, 0.0, 1.0, 1.0]);
        let strict = compare(&g, &a, &Tol::new(0.01, 0.0));
        assert!(!strict.pass());
        let shifted = compare(&g, &a, &Tol::new(0.01, 0.0).with_time_shift(0.1));
        assert!(shifted.pass(), "worst margin {}", shifted.worst_margin);
    }

    #[test]
    fn time_shift_does_not_mask_level_errors() {
        let g = wf(&[0.0, 1.0, 2.0], &[1.0, 1.0, 1.0]);
        let a = wf(&[0.0, 1.0, 2.0], &[1.5, 1.5, 1.5]);
        let r = compare(&g, &a, &Tol::new(0.1, 0.0).with_time_shift(0.5));
        assert!(!r.pass());
        assert_eq!(r.violations, 3);
    }

    /// Regression: golden samples past the end of the actual waveform
    /// used to be compared against the *clamped* final actual value, so a
    /// run that stopped one sample early still passed. Overhang must fail.
    #[test]
    fn overhang_beyond_actual_domain_fails() {
        let g = wf(&[0.0, 1.0, 2.0, 3.0], &[0.0, 1.0, 1.0, 1.0]);
        // The actual run stops at t = 2: the t = 3 golden sample has no
        // actual counterpart.
        let a = wf(&[0.0, 1.0, 2.0], &[0.0, 1.0, 1.0]);
        let r = compare(&g, &a, &Tol::new(0.05, 0.0));
        assert!(!r.pass());
        assert_eq!(r.violations, 1);
        assert_eq!(r.worst_time, 3.0);
        assert!(r.worst_margin.is_infinite());
        // A shift window that cannot reach back into the domain fails too.
        let r = compare(&g, &a, &Tol::new(0.05, 0.0).with_time_shift(0.5));
        assert!(!r.pass(), "±0.5 window around t=3 never touches t≤2");
        // A window that *does* reach the domain may legitimately match.
        let r = compare(&g, &a, &Tol::new(0.05, 0.0).with_time_shift(1.5));
        assert!(r.pass(), "worst margin {}", r.worst_margin);
    }

    /// Sub-epsilon end-time jitter between two adaptive time axes that
    /// nominally stop at the same instant must not trip the overhang check.
    #[test]
    fn end_time_float_jitter_is_tolerated() {
        let end = 2.0 + 1e-13; // within 1e-9 of the 2.0-second span
        let g = wf(&[0.0, 1.0, end], &[0.0, 1.0, 1.0]);
        let a = wf(&[0.0, 1.0, 2.0], &[0.0, 1.0, 1.0]);
        let r = compare(&g, &a, &Tol::new(1e-6, 0.0));
        assert!(r.pass(), "worst margin {}", r.worst_margin);
        let r = compare(&g, &a, &Tol::new(1e-6, 0.0).with_time_shift(0.1));
        assert!(r.pass(), "worst margin {}", r.worst_margin);
    }

    #[test]
    fn resample_is_uniform_and_interpolates() {
        let w = wf(&[0.0, 1.0, 4.0], &[0.0, 1.0, 4.0]);
        let r = resample(&w, 5).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.times(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        for (t, v) in r.iter() {
            assert!((v - t).abs() < 1e-12);
        }
        assert!(resample(&w, 1).is_err());
    }
}
