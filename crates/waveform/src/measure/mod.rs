//! Waveform measurements — the quantities the paper's figures report.

pub mod charge;
pub mod delay;
pub mod droop;
pub mod peak;
pub mod slew;
pub mod vtc;

pub use charge::{charge_split, ChargeSplit};
pub use delay::{crossing_time, propagation_delay, CrossDirection};
pub use droop::{bounce, droop, DroopReport};
pub use peak::{max_abs_didt, peak_abs_current};
pub use slew::slew_rate;
pub use vtc::{noise_margins, NoiseMargins};
