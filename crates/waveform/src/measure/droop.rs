//! Supply droop and ground bounce (paper Figs. 1, 10, 11).

use crate::Waveform;

/// Summary of a rail disturbance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroopReport {
    /// Nominal rail value used as the reference \[V\].
    pub nominal: f64,
    /// Worst undershoot below nominal (≥ 0) \[V\].
    pub droop: f64,
    /// Worst overshoot above nominal (≥ 0) \[V\].
    pub overshoot: f64,
    /// Time of the worst undershoot \[s\]; `None` when the rail never dips
    /// below nominal (no droop to locate).
    pub t_droop: Option<f64>,
    /// Peak-to-peak excursion \[V\].
    pub peak_to_peak: f64,
}

/// Measures the worst-case supply droop of a rail waveform against its
/// nominal value.
///
/// A rail that never dips below `nominal` reports `droop == 0.0` with
/// `t_droop == None` — there is no undershoot instant to locate, and
/// callers must not read a time out of a droop-free report. `t_droop` is
/// `Some` exactly when `droop > 0.0`.
///
/// # Example
///
/// ```
/// use sfet_waveform::{measure::droop, Waveform};
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// let rail = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![1.0, 0.93, 1.01])?;
/// let r = droop(&rail, 1.0);
/// assert!((r.droop - 0.07).abs() < 1e-12);
/// assert!((r.overshoot - 0.01).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn droop(rail: &Waveform, nominal: f64) -> DroopReport {
    let (t_min, v_min) = rail.min();
    let (_, v_max) = rail.max();
    let droop = (nominal - v_min).max(0.0);
    DroopReport {
        nominal,
        droop,
        overshoot: (v_max - nominal).max(0.0),
        t_droop: (droop > 0.0).then_some(t_min),
        peak_to_peak: v_max - v_min,
    }
}

/// Measures ground/supply *bounce*: the largest deviation of the rail from
/// nominal in either direction. This is the simultaneous-switching-noise
/// metric of Fig. 11.
pub fn bounce(rail: &Waveform, nominal: f64) -> f64 {
    rail.values()
        .iter()
        .fold(0.0f64, |m, &v| m.max((v - nominal).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn droop_on_clean_rail_is_zero() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![1.0, 1.0]).unwrap();
        let r = droop(&w, 1.0);
        assert_eq!(r.droop, 0.0);
        assert_eq!(r.overshoot, 0.0);
        assert_eq!(r.peak_to_peak, 0.0);
        assert_eq!(r.t_droop, None, "no droop, no droop time");
    }

    #[test]
    fn droop_time_recorded() {
        let w =
            Waveform::from_samples(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, 0.98, 0.9, 0.99]).unwrap();
        let r = droop(&w, 1.0);
        assert_eq!(r.t_droop, Some(2.0));
        assert!((r.droop - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bounce_is_symmetric() {
        let up = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 0.03]).unwrap();
        let dn = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, -0.03]).unwrap();
        assert_eq!(bounce(&up, 0.0), bounce(&dn, 0.0));
    }

    #[test]
    fn ringing_peak_to_peak() {
        let w =
            Waveform::from_samples(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, 0.95, 1.04, 1.0]).unwrap();
        let r = droop(&w, 1.0);
        assert!((r.peak_to_peak - 0.09).abs() < 1e-12);
    }
}
