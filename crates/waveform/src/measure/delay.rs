//! Threshold-crossing and propagation-delay measurements.
//!
//! The paper defines output delay as "time between 50 % input to 20 (or 80) %
//! output rise (fall)" — i.e. from the input's half-supply crossing to the
//! output leaving its initial rail by 20 % of the swing.

use crate::{Result, Waveform, WaveformError};
use sfet_numeric::interp::crossing_between;

/// Which crossing direction to look for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossDirection {
    /// Value passes the level from below.
    Rising,
    /// Value passes the level from above.
    Falling,
    /// Either direction.
    Either,
}

/// Finds the first time at/after `after` where the waveform crosses `level`
/// in the requested direction.
///
/// # Errors
///
/// [`WaveformError::MeasurementFailed`] if no such crossing exists.
///
/// # Example
///
/// ```
/// use sfet_waveform::measure::{crossing_time, CrossDirection};
/// use sfet_waveform::Waveform;
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0])?;
/// assert_eq!(crossing_time(&w, 0.5, CrossDirection::Rising, 0.0)?, 0.5);
/// assert_eq!(crossing_time(&w, 0.5, CrossDirection::Falling, 0.0)?, 1.5);
/// # Ok(())
/// # }
/// ```
pub fn crossing_time(
    wf: &Waveform,
    level: f64,
    direction: CrossDirection,
    after: f64,
) -> Result<f64> {
    let times = wf.times();
    let values = wf.values();
    for i in 1..times.len() {
        if times[i] < after {
            continue;
        }
        let (t0, v0) = (
            times[i - 1].max(after),
            wf.value_at(times[i - 1].max(after)),
        );
        let (t1, v1) = (times[i], values[i]);
        let dir_ok = match direction {
            CrossDirection::Rising => v1 > v0,
            CrossDirection::Falling => v1 < v0,
            CrossDirection::Either => true,
        };
        if !dir_ok {
            continue;
        }
        if let Some(tc) = crossing_between(t0, v0, t1, v1, level) {
            if tc >= after {
                return Ok(tc);
            }
        }
    }
    Err(WaveformError::MeasurementFailed(format!(
        "no {direction:?} crossing of {level:e} after {after:e}"
    )))
}

/// Paper-style propagation delay: from the input's 50 % crossing to the
/// output moving 20 % of the swing away from its initial rail.
///
/// `swing` is the full logic swing (V_CC). For a falling input the output
/// rises, and vice versa; the function auto-detects the input edge direction
/// from its first and last values.
///
/// # Errors
///
/// [`WaveformError::MeasurementFailed`] if either crossing is absent, or if
/// the input waveform has no edge.
pub fn propagation_delay(input: &Waveform, output: &Waveform, swing: f64) -> Result<f64> {
    let in_rising = match input.last_value() - input.first_value() {
        d if d > 0.05 * swing => true,
        d if d < -0.05 * swing => false,
        _ => {
            return Err(WaveformError::MeasurementFailed(
                "input waveform has no edge to measure from".into(),
            ))
        }
    };
    let t_in = crossing_time(
        input,
        0.5 * swing,
        if in_rising {
            CrossDirection::Rising
        } else {
            CrossDirection::Falling
        },
        input.start_time(),
    )?;
    // Output moves opposite to the input (inverting stage): measure when it
    // has moved 20% of the swing from its initial value.
    let v0 = output.value_at(t_in);
    let (level, dir) = if in_rising {
        (v0 - 0.2 * swing, CrossDirection::Falling)
    } else {
        (v0 + 0.2 * swing, CrossDirection::Rising)
    };
    let t_out = crossing_time(output, level, dir, t_in)?;
    Ok(t_out - t_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(t0: f64, t1: f64, v0: f64, v1: f64) -> Waveform {
        Waveform::from_samples(vec![t0, t1], vec![v0, v1]).unwrap()
    }

    #[test]
    fn crossing_basic() {
        let w = ramp(0.0, 1.0, 0.0, 1.0);
        assert!(
            (crossing_time(&w, 0.25, CrossDirection::Rising, 0.0).unwrap() - 0.25).abs() < 1e-12
        );
    }

    #[test]
    fn crossing_direction_filter() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap();
        let rise = crossing_time(&w, 0.5, CrossDirection::Rising, 0.0).unwrap();
        let fall = crossing_time(&w, 0.5, CrossDirection::Falling, 0.0).unwrap();
        assert!(rise < fall);
        // Either finds the first one.
        let any = crossing_time(&w, 0.5, CrossDirection::Either, 0.0).unwrap();
        assert_eq!(any, rise);
    }

    #[test]
    fn crossing_after_skips_early_edges() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        let c = crossing_time(&w, 0.5, CrossDirection::Rising, 1.5).unwrap();
        assert!((c - 2.5).abs() < 1e-12);
    }

    #[test]
    fn no_crossing_is_error() {
        let w = ramp(0.0, 1.0, 0.0, 0.4);
        assert!(crossing_time(&w, 0.5, CrossDirection::Rising, 0.0).is_err());
    }

    #[test]
    fn propagation_delay_inverter_like() {
        // Input falls 1→0 over [0, 1]; output rises 0→1 over [0.5, 1.5].
        let input = ramp(0.0, 1.0, 1.0, 0.0);
        let output =
            Waveform::from_samples(vec![0.0, 0.5, 1.5, 2.0], vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let d = propagation_delay(&input, &output, 1.0).unwrap();
        // t_in = 0.5; output reaches 0.2 at t = 0.7.
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn propagation_delay_rising_input() {
        let input = ramp(0.0, 1.0, 0.0, 1.0);
        let output =
            Waveform::from_samples(vec![0.0, 0.5, 1.5, 2.0], vec![1.0, 1.0, 0.0, 0.0]).unwrap();
        let d = propagation_delay(&input, &output, 1.0).unwrap();
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn flat_input_rejected() {
        let input = ramp(0.0, 1.0, 0.5, 0.5);
        let output = ramp(0.0, 1.0, 0.0, 1.0);
        assert!(propagation_delay(&input, &output, 1.0).is_err());
    }
}
