//! 10–90 % slew-rate measurement.

use super::delay::{crossing_time, CrossDirection};
use crate::{Result, Waveform, WaveformError};

/// Measures the 10–90 % slew rate of the first full edge of `wf` between
/// the rails `v_lo` and `v_hi` (returns V/s, always positive).
///
/// # Errors
///
/// [`WaveformError::MeasurementFailed`] if the waveform never traverses
/// both the 10 % and 90 % levels.
///
/// # Example
///
/// ```
/// use sfet_waveform::{measure::slew_rate, Waveform};
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// let w = Waveform::from_samples(vec![0.0, 1e-9], vec![0.0, 1.0])?;
/// let s = slew_rate(&w, 0.0, 1.0)?;
/// assert!((s - 1e9).abs() / 1e9 < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn slew_rate(wf: &Waveform, v_lo: f64, v_hi: f64) -> Result<f64> {
    let swing = v_hi - v_lo;
    if swing <= 0.0 {
        return Err(WaveformError::MeasurementFailed(
            "slew_rate requires v_hi > v_lo".into(),
        ));
    }
    let l10 = v_lo + 0.1 * swing;
    let l90 = v_lo + 0.9 * swing;
    let rising = wf.last_value() >= wf.first_value();
    let (first, second, dir) = if rising {
        (l10, l90, CrossDirection::Rising)
    } else {
        (l90, l10, CrossDirection::Falling)
    };
    let t1 = crossing_time(wf, first, dir, wf.start_time())?;
    let t2 = crossing_time(wf, second, dir, t1)?;
    if t2 <= t1 {
        return Err(WaveformError::MeasurementFailed(
            "degenerate edge: zero transition time".into(),
        ));
    }
    Ok(0.8 * swing / (t2 - t1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falling_edge_slew() {
        let w = Waveform::from_samples(vec![0.0, 2e-9], vec![1.0, 0.0]).unwrap();
        let s = slew_rate(&w, 0.0, 1.0).unwrap();
        assert!((s - 0.5e9).abs() / 0.5e9 < 1e-9);
    }

    #[test]
    fn incomplete_edge_fails() {
        let w = Waveform::from_samples(vec![0.0, 1e-9], vec![0.0, 0.5]).unwrap();
        assert!(slew_rate(&w, 0.0, 1.0).is_err());
    }

    #[test]
    fn invalid_rails_rejected() {
        let w = Waveform::from_samples(vec![0.0, 1e-9], vec![0.0, 1.0]).unwrap();
        assert!(slew_rate(&w, 1.0, 0.0).is_err());
    }

    #[test]
    fn nonlinear_edge_uses_10_90_window() {
        // Slow start, fast middle: slew should reflect the 10-90 window only.
        let w = Waveform::from_samples(vec![0.0, 1e-9, 1.1e-9, 2e-9], vec![0.0, 0.1, 0.9, 1.0])
            .unwrap();
        let s = slew_rate(&w, 0.0, 1.0).unwrap();
        assert!((s - 0.8 / 0.1e-9).abs() / s < 1e-9);
    }
}
