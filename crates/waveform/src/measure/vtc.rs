//! Voltage-transfer-characteristic (VTC) measurements.
//!
//! The paper's §III-A argues the Soft-FET leaves DC noise margins
//! untouched (unlike the Hyper-FET, whose series output resistance
//! degrades them); these helpers extract the standard static metrics from
//! a swept transfer curve so that claim can be tested quantitatively.

use crate::{Result, Waveform, WaveformError};

/// Static noise-margin summary of an inverting transfer curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseMargins {
    /// Input low level `V_IL` (first unity-gain point) \[V\].
    pub v_il: f64,
    /// Input high level `V_IH` (second unity-gain point) \[V\].
    pub v_ih: f64,
    /// Output high level `V_OH = VTC(V_IL)` \[V\].
    pub v_oh: f64,
    /// Output low level `V_OL = VTC(V_IH)` \[V\].
    pub v_ol: f64,
    /// Low noise margin `NM_L = V_IL - V_OL` \[V\].
    pub nm_l: f64,
    /// High noise margin `NM_H = V_OH - V_IH` \[V\].
    pub nm_h: f64,
    /// Switching threshold `V_M` (where `VTC(v) = v`) \[V\].
    pub v_m: f64,
}

/// Extracts noise margins from an inverting VTC (input on the waveform's
/// abscissa, output on its ordinate).
///
/// Uses the unity-gain (|dVout/dVin| = 1) definition of `V_IL`/`V_IH`.
///
/// # Errors
///
/// [`WaveformError::MeasurementFailed`] if the curve is not inverting or
/// has no unity-gain points (e.g. too few samples).
///
/// # Example
///
/// ```
/// use sfet_waveform::{measure::noise_margins, Waveform};
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// // Idealised steep inverter: V_M = 0.5.
/// let vin: Vec<f64> = (0..=100).map(|k| k as f64 / 100.0).collect();
/// let vout: Vec<f64> = vin.iter().map(|&v| 1.0 / (1.0 + ((v - 0.5) / 0.02).exp())).collect();
/// let nm = noise_margins(&Waveform::from_samples(vin, vout)?)?;
/// assert!((nm.v_m - 0.5).abs() < 0.02);
/// assert!(nm.nm_l > 0.3 && nm.nm_h > 0.3);
/// # Ok(())
/// # }
/// ```
pub fn noise_margins(vtc: &Waveform) -> Result<NoiseMargins> {
    if vtc.len() < 5 {
        return Err(WaveformError::MeasurementFailed(
            "VTC needs at least 5 samples".into(),
        ));
    }
    if vtc.last_value() >= vtc.first_value() {
        return Err(WaveformError::MeasurementFailed(
            "VTC is not inverting".into(),
        ));
    }
    let gain = vtc.derivative();
    // First crossing of gain = -1 going down, last crossing coming back.
    let mut v_il = None;
    let mut v_ih = None;
    for i in 0..gain.len() {
        let g = gain.values()[i];
        if v_il.is_none() && g <= -1.0 {
            v_il = Some(gain.times()[i]);
        }
        if g <= -1.0 {
            v_ih = Some(gain.times()[i]);
        }
    }
    let (v_il, v_ih) = match (v_il, v_ih) {
        (Some(a), Some(b)) if b > a => (a, b),
        (Some(a), Some(_)) => {
            // Single steep segment: split it symmetrically.
            (a * 0.999, a * 1.001)
        }
        _ => {
            return Err(WaveformError::MeasurementFailed(
                "no unity-gain point found".into(),
            ))
        }
    };
    let v_oh = vtc.value_at(v_il);
    let v_ol = vtc.value_at(v_ih);

    // Switching threshold: VTC(v) = v.
    let mut v_m = f64::NAN;
    for i in 1..vtc.len() {
        let (x0, y0) = (vtc.times()[i - 1], vtc.values()[i - 1]);
        let (x1, y1) = (vtc.times()[i], vtc.values()[i]);
        let d0 = y0 - x0;
        let d1 = y1 - x1;
        if d0 >= 0.0 && d1 <= 0.0 {
            v_m = x0 + (x1 - x0) * d0 / (d0 - d1).max(1e-30);
            break;
        }
    }
    if !v_m.is_finite() {
        return Err(WaveformError::MeasurementFailed(
            "no switching threshold found".into(),
        ));
    }

    Ok(NoiseMargins {
        v_il,
        v_ih,
        v_oh,
        v_ol,
        nm_l: v_il - v_ol,
        nm_h: v_oh - v_ih,
        v_m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logistic_vtc(vm: f64, steep: f64) -> Waveform {
        let vin: Vec<f64> = (0..=200).map(|k| k as f64 / 200.0).collect();
        let vout: Vec<f64> = vin
            .iter()
            .map(|&v| 1.0 / (1.0 + ((v - vm) / steep).exp()))
            .collect();
        Waveform::from_samples(vin, vout).unwrap()
    }

    #[test]
    fn symmetric_vtc_symmetric_margins() {
        let nm = noise_margins(&logistic_vtc(0.5, 0.03)).unwrap();
        assert!((nm.v_m - 0.5).abs() < 0.01);
        assert!((nm.nm_l - nm.nm_h).abs() < 0.02);
        assert!(nm.v_il < 0.5 && nm.v_ih > 0.5);
        assert!(nm.v_oh > 0.9 && nm.v_ol < 0.1);
    }

    #[test]
    fn skewed_vtc_shifts_threshold() {
        let nm = noise_margins(&logistic_vtc(0.4, 0.03)).unwrap();
        assert!((nm.v_m - 0.4).abs() < 0.02);
        assert!(nm.nm_l < nm.nm_h);
    }

    #[test]
    fn steeper_curve_gives_larger_margins() {
        let soft = noise_margins(&logistic_vtc(0.5, 0.08)).unwrap();
        let steep = noise_margins(&logistic_vtc(0.5, 0.02)).unwrap();
        assert!(steep.nm_l > soft.nm_l);
        assert!(steep.nm_h > soft.nm_h);
    }

    #[test]
    fn non_inverting_rejected() {
        let w = Waveform::from_samples(vec![0.0, 0.5, 1.0], vec![0.0, 0.5, 1.0]).unwrap();
        assert!(noise_margins(&w).is_err());
    }

    #[test]
    fn too_few_samples_rejected() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert!(noise_margins(&w).is_err());
    }

    #[test]
    fn shallow_curve_without_gain_rejected() {
        // Gain never reaches -1.
        let vin: Vec<f64> = (0..=50).map(|k| k as f64 / 50.0).collect();
        let vout: Vec<f64> = vin.iter().map(|&v| 0.6 - 0.2 * v).collect();
        let w = Waveform::from_samples(vin, vout).unwrap();
        assert!(noise_margins(&w).is_err());
    }
}
