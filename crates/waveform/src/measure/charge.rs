//! Charge accounting (paper Fig. 7).
//!
//! During a falling input transition the V_CC rail delivers a total charge
//! `Q_total = ∫ i_vcc dt`. Part of it lands on the output capacitance
//! (`Q_out = C_load · ΔV_out`); the remainder flowed straight through the
//! momentarily-conducting stack to ground — the short-circuit charge
//! (`Q_sc = Q_total - Q_out`). Fig. 7 compares both components across the
//! peak-current-reduction techniques.

use crate::Waveform;

/// Decomposition of rail charge into useful and short-circuit parts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeSplit {
    /// Total charge drawn from the rail \[C\].
    pub total: f64,
    /// Charge delivered to the load capacitance \[C\].
    pub output: f64,
    /// Short-circuit (crowbar) charge \[C\].
    pub short_circuit: f64,
}

/// Splits the rail charge for one output transition.
///
/// * `rail_current` — current drawn from the supply (the V_CC source branch
///   current, sign-normalised so that delivery is positive);
/// * `v_out` — output node waveform;
/// * `c_load` — load capacitance \[F\];
/// * `t0`, `t1` — transition window.
///
/// # Example
///
/// ```
/// use sfet_waveform::{measure::charge_split, Waveform};
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// // 1 µA for 1 ns = 1 fC total; output swings 0→0.5 V on 1 fF: 0.5 fC useful.
/// let i = Waveform::from_samples(vec![0.0, 1e-9], vec![1e-6, 1e-6])?;
/// let v = Waveform::from_samples(vec![0.0, 1e-9], vec![0.0, 0.5])?;
/// let q = charge_split(&i, &v, 1e-15, 0.0, 1e-9);
/// assert!((q.total - 1e-15).abs() < 1e-20);
/// assert!((q.short_circuit - 0.5e-15).abs() < 1e-20);
/// # Ok(())
/// # }
/// ```
pub fn charge_split(
    rail_current: &Waveform,
    v_out: &Waveform,
    c_load: f64,
    t0: f64,
    t1: f64,
) -> ChargeSplit {
    let total = rail_current.integral_between(t0, t1).abs();
    let dv = v_out.value_at(t1) - v_out.value_at(t0);
    let output = (c_load * dv).abs();
    ChargeSplit {
        total,
        output,
        short_circuit: (total - output).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_load_charge_no_short_circuit() {
        // Rail delivers exactly C·ΔV.
        let i = Waveform::from_samples(vec![0.0, 1e-9], vec![2e-6, 2e-6]).unwrap();
        let v = Waveform::from_samples(vec![0.0, 1e-9], vec![0.0, 2.0]).unwrap();
        let q = charge_split(&i, &v, 1e-15, 0.0, 1e-9);
        assert!((q.total - 2e-15).abs() < 1e-21);
        assert!((q.output - 2e-15).abs() < 1e-21);
        assert_eq!(q.short_circuit, 0.0);
    }

    #[test]
    fn negative_rail_current_normalised() {
        let i = Waveform::from_samples(vec![0.0, 1e-9], vec![-1e-6, -1e-6]).unwrap();
        let v = Waveform::from_samples(vec![0.0, 1e-9], vec![1.0, 1.0]).unwrap();
        let q = charge_split(&i, &v, 1e-15, 0.0, 1e-9);
        assert!((q.total - 1e-15).abs() < 1e-21);
        assert!((q.short_circuit - 1e-15).abs() < 1e-21);
    }

    #[test]
    fn falling_output_counts_magnitude() {
        let i = Waveform::from_samples(vec![0.0, 1e-9], vec![1e-6, 1e-6]).unwrap();
        let v = Waveform::from_samples(vec![0.0, 1e-9], vec![1.0, 0.2]).unwrap();
        let q = charge_split(&i, &v, 1e-15, 0.0, 1e-9);
        assert!((q.output - 0.8e-15).abs() < 1e-21);
    }

    #[test]
    fn window_restricts_integration() {
        let i = Waveform::from_samples(vec![0.0, 1e-9, 2e-9], vec![1e-6, 1e-6, 1e-6]).unwrap();
        let v = Waveform::from_samples(vec![0.0, 2e-9], vec![0.0, 0.0]).unwrap();
        let q = charge_split(&i, &v, 1e-15, 0.0, 1e-9);
        assert!((q.total - 1e-15).abs() < 1e-21);
    }
}
