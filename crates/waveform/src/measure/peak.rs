//! Peak current and maximum di/dt — the paper's two headline metrics.

use crate::Waveform;

/// Peak absolute current of a rail-current waveform: `I_MAX` in the paper.
///
/// Returns `(time, |value|)`.
///
/// # Example
///
/// ```
/// use sfet_waveform::{measure::peak_abs_current, Waveform};
///
/// # fn main() -> Result<(), sfet_waveform::WaveformError> {
/// let i = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, -5e-6, -1e-6])?;
/// let (t, imax) = peak_abs_current(&i);
/// assert_eq!((t, imax), (1.0, 5e-6));
/// # Ok(())
/// # }
/// ```
pub fn peak_abs_current(current: &Waveform) -> (f64, f64) {
    let (t, v) = current.peak_abs();
    (t, v.abs())
}

/// Maximum absolute slope of a current waveform: the paper's `di/dt` metric
/// \[A/s\].
///
/// The derivative is evaluated per sample segment; for waveforms produced
/// by the adaptive transient engine the segments already concentrate where
/// the current moves fast.
pub fn max_abs_didt(current: &Waveform) -> f64 {
    current
        .derivative()
        .values()
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn didt_of_linear_ramp_is_slope() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 3.0, 6.0]).unwrap();
        assert!((max_abs_didt(&w) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn didt_picks_steepest_segment() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 1.1, 2.0], vec![0.0, 1.0, 3.0, 3.1]).unwrap();
        assert!((max_abs_didt(&w) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn didt_of_constant_is_zero() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![2.0, 2.0]).unwrap();
        assert_eq!(max_abs_didt(&w), 0.0);
    }

    #[test]
    fn peak_handles_negative_currents() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![1e-6, -2e-6]).unwrap();
        assert_eq!(peak_abs_current(&w), (1.0, 2e-6));
    }
}
