use std::fmt;

/// Errors from waveform construction and measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformError {
    /// Sample vectors are empty, ragged, or the time axis is not strictly
    /// increasing / finite.
    InvalidSamples(String),
    /// A measurement's precondition failed (e.g. the waveform never crosses
    /// the requested threshold).
    MeasurementFailed(String),
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::InvalidSamples(msg) => write!(f, "invalid samples: {msg}"),
            WaveformError::MeasurementFailed(msg) => write!(f, "measurement failed: {msg}"),
        }
    }
}

impl std::error::Error for WaveformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(WaveformError::InvalidSamples("x".into())
            .to_string()
            .contains("invalid samples"));
        assert!(WaveformError::MeasurementFailed("y".into())
            .to_string()
            .contains("measurement failed"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<WaveformError>();
    }
}
