//! Waveform storage and measurement for the Soft-FET experiments.
//!
//! The transient engine in `sfet-sim` produces [`Waveform`]s — sampled
//! time series. Every number the paper reports is a *measurement* on such
//! waveforms, and those measurements live here:
//!
//! * [`measure::peak`] — peak rail current `I_MAX` and maximum `di/dt`;
//! * [`measure::delay`] — the paper's propagation delay (50 % input to
//!   20 %/80 % output);
//! * [`measure::charge`] — total/output/short-circuit charge (Fig. 7);
//! * [`measure::droop`](measure::droop()) — supply droop and ground bounce (Figs. 10, 11);
//! * [`measure::slew`] — 10–90 % slew measurement.
//!
//! The [`compare`] module provides tolerance-envelope waveform comparison
//! and uniform resampling for the golden-waveform regression harness
//! (`sfet-verify`, see `docs/VERIFICATION.md`).
//!
//! # Example
//!
//! ```
//! use sfet_waveform::Waveform;
//!
//! # fn main() -> Result<(), sfet_waveform::WaveformError> {
//! let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0])?;
//! assert_eq!(w.value_at(0.5), 1.0);
//! let (t_peak, v_peak) = w.peak_abs();
//! assert_eq!((t_peak, v_peak), (1.0, 2.0));
//! # Ok(())
//! # }
//! ```

pub mod compare;
pub mod csv;
pub mod measure;

mod error;
mod trace;

pub use error::WaveformError;
pub use trace::Waveform;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WaveformError>;
