//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace's tests use.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value and draws from
    /// that (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
tuple_strategy!(A, B, C, D, E, G, H);
tuple_strategy!(A, B, C, D, E, G, H, I);

/// String-pattern strategy: a `&str` is interpreted as a regex (subset) and
/// generates matching strings. Supported: literal characters, `[...]`
/// classes with `-` ranges, and the `?`, `*`, `+`, `{m}`, `{m,n}`
/// quantifiers (`*`/`+` are capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi {
                *lo
            } else {
                lo + (rng.next_u64() as usize) % (hi - lo + 1)
            };
            for _ in 0..n {
                let idx = (rng.next_u64() as usize) % chars.len();
                out.push(chars[idx]);
            }
        }
        out
    }
}

/// One pattern atom: candidate characters plus a repetition range.
type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let set = expand_class(&chars[i + 1..close]);
                i = close + 1;
                set
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(
            !set.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        atoms.push((set, lo, hi));
    }
    atoms
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (a, b) = (body[i] as u32, body[i + 2] as u32);
            for c in a..=b {
                set.push(char::from_u32(c).expect("valid class range"));
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (2usize..12).generate(&mut rng);
            assert!((2..12).contains(&u));
            let s = (-12i32..7).generate(&mut rng);
            assert!((-12..7).contains(&s));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(1);
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..100 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
        let doubled = (1usize..10).prop_map(|v| v * 2);
        assert_eq!(doubled.generate(&mut rng) % 2, 0);
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }
}
