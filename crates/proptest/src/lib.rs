//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be fetched from crates.io. This crate implements
//! the subset of its API that the workspace's property tests actually use —
//! deterministically seeded generation, the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_flat_map`, range / tuple / collection / regex-string
//! strategies, and the `proptest!` / `prop_assert!` family of macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim.
//! * **Fully deterministic.** Each test's RNG is seeded from the test name,
//!   so runs are reproducible across machines and thread counts.
//! * **Tiny regex subset** for string strategies: literals, `[...]` classes
//!   with ranges, and `?`/`*`/`+`/`{m}`/`{m,n}` quantifiers.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Runs each `fn name(pat in strategy, ...) { body }` item as a `#[test]`
/// over `ProptestConfig::default().cases` generated inputs (override with a
/// leading `#![proptest_config(expr)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_mut, unused_variables, clippy::redundant_closure_call)]
            $crate::test_runner::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            )
            .run(|__rng| {
                let mut __case = ::std::string::String::new();
                $(
                    let $pat = $crate::test_runner::generate_logged(
                        &($strat),
                        __rng,
                        stringify!($pat),
                        &mut __case,
                    );
                )*
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__out, __case)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (without panicking the whole runner loop) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
