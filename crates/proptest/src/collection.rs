//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `len` (half-open, like the
/// real proptest's `1..8`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Generates `HashSet`s with a size drawn from `len`. Duplicate draws are
/// retried a bounded number of times, so for very narrow element domains the
/// set may come out smaller than requested (the real crate rejects instead).
pub fn hash_set<S>(element: S, len: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, len }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = sample_len(&self.len, rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = sample_len(&self.len, rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < 32 * n + 64 {
            attempts += 1;
            out.insert(self.element.generate(rng));
        }
        out
    }
}

fn sample_len(len: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(len.start < len.end, "empty collection length range");
    len.start + (rng.next_u64() as usize) % (len.end - len.start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::new(11);
        let s = vec(0.0f64..1.0, 2..40);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..40).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn hash_set_elements_distinct() {
        let mut rng = TestRng::new(13);
        let s = hash_set(0usize..1000, 1..20);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 20);
        }
    }
}
