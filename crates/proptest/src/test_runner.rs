//! Deterministic case runner and RNG.

use crate::strategy::Strategy;
use std::fmt::Debug;
use std::fmt::Write as _;

/// Runner configuration. Only the knobs the workspace uses are exposed;
/// `..ProptestConfig::default()` update syntax works as in the real crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
    /// Total rejections (`prop_assume!` failures) tolerated before the test
    /// aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is regenerated.
    Reject,
    /// `prop_assert!` (or friends) failed with a message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// SplitMix64 generator: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates one value and appends `name = value` to the case log so
/// failures can report the exact inputs (the stub does not shrink).
pub fn generate_logged<S>(strategy: &S, rng: &mut TestRng, name: &str, log: &mut String) -> S::Value
where
    S: Strategy,
    S::Value: Debug,
{
    let value = strategy.generate(rng);
    if !log.is_empty() {
        log.push_str(", ");
    }
    let _ = write!(log, "{name} = {value:?}");
    value
}

/// Drives one `proptest!` test: repeatedly generates inputs and runs the
/// body until `cases` cases pass, a case fails, or the reject budget is
/// exhausted.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    test_name: &'static str,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from the test name, so every
    /// test explores a different but reproducible corner of the space.
    pub fn new(config: ProptestConfig, test_name: &'static str) -> Self {
        // FNV-1a over the name: stable across runs, compilers, platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng::new(seed),
            test_name,
        }
    }

    /// Runs the closure until `cases` successes. The closure returns the
    /// case outcome plus a human-readable description of the inputs.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
    {
        let mut passed = 0;
        let mut rejected = 0;
        while passed < self.config.cases {
            let (outcome, inputs) = case(&mut self.rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "{}: too many prop_assume! rejections ({rejected}) \
                             after {passed} passing cases",
                            self.test_name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{}: property failed after {passed} passing cases\n  \
                         failure: {msg}\n  inputs: {inputs}",
                        self.test_name
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let (mut a, mut b) = (TestRng::new(42), TestRng::new(42));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn runner_counts_cases() {
        let mut runs = 0;
        TestRunner::new(ProptestConfig::with_cases(10), "counts").run(|_| {
            runs += 1;
            (Ok(()), String::new())
        });
        assert_eq!(runs, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn runner_reports_failures() {
        TestRunner::new(ProptestConfig::with_cases(5), "fails").run(|rng| {
            let v = rng.unit_f64();
            (
                Err(TestCaseError::fail("always fails")),
                format!("v = {v:?}"),
            )
        });
    }

    #[test]
    fn rejects_are_not_failures() {
        let mut total = 0;
        TestRunner::new(ProptestConfig::with_cases(4), "rejects").run(|_| {
            total += 1;
            if total % 2 == 0 {
                (Ok(()), String::new())
            } else {
                (Err(TestCaseError::Reject), String::new())
            }
        });
        assert_eq!(total, 8);
    }
}
