//! Convergence-order measurement for the transient integrators.
//!
//! Each smooth [`AnalyticReference`] is run down a ladder of maximum step
//! sizes (`dtmax = tstop / divisions`, LTE control off so `dtmax` is the
//! binding step size), the L2 error against the exact solution is recorded
//! at every rung, and the observed order is the slope of a log–log
//! least-squares fit ([`sfet_numeric::norms::fit_order`]). The trapezoidal
//! rule must come out at ≈ 2, backward Euler and Gear-2's BE startup
//! behaviour at ≈ 1 or better; CI fails when any fit drops more than
//! [`ORDER_MARGIN`] below nominal.

use sfet_numeric::integrate::Method;
use sfet_numeric::norms::{fit_order, OrderFit};

use crate::analytic::{smooth_catalog, AnalyticReference};
use crate::Result;

/// Allowed shortfall of an observed order below its nominal value before
/// the check (and the CI `verify` job) fails.
pub const ORDER_MARGIN: f64 = 0.15;

/// One reference × method order measurement: the error ladder and its fit.
#[derive(Debug, Clone)]
pub struct OrderMeasurement {
    /// Reference name ([`AnalyticReference::name`]).
    pub reference: &'static str,
    /// Integration method measured.
    pub method: Method,
    /// Ladder step sizes \[s\], coarse → fine.
    pub dts: Vec<f64>,
    /// Time-weighted L2 error at each rung.
    pub l2: Vec<f64>,
    /// L∞ error at each rung.
    pub linf: Vec<f64>,
    /// Log–log fit of `l2` against `dts`.
    pub fit: OrderFit,
}

impl OrderMeasurement {
    /// Nominal order for this measurement's method.
    pub fn nominal(&self) -> f64 {
        nominal_order(self.method)
    }

    /// Whether the observed order clears `nominal − ORDER_MARGIN`.
    pub fn pass(&self) -> bool {
        self.fit.order >= self.nominal() - ORDER_MARGIN
    }
}

/// Nominal convergence order of an integration method on smooth problems.
/// Gear-2 is gated at 1.0, conservatively: the engine restarts it from
/// backward-Euler steps at every source corner and its variable-step
/// startup depresses the prefactor, so the gate asserts at-least-first-order
/// while the CI table records the actual observed value.
pub fn nominal_order(method: Method) -> f64 {
    match method {
        Method::Trapezoidal => 2.0,
        Method::BackwardEuler => 1.0,
        Method::Gear2 => 1.0,
    }
}

/// Runs `reference` at every rung of `divisions` with `method` and fits the
/// observed convergence order of the L2 error.
///
/// # Errors
///
/// Propagates run/score failures; [`crate::VerifyError::Numeric`] if the
/// ladder has fewer than two usable rungs.
pub fn measure_order(
    reference: &AnalyticReference,
    method: Method,
    divisions: &[usize],
) -> Result<OrderMeasurement> {
    let mut dts = Vec::with_capacity(divisions.len());
    let mut l2 = Vec::with_capacity(divisions.len());
    let mut linf = Vec::with_capacity(divisions.len());
    for &div in divisions {
        let norms = reference.run_and_score(div, method)?;
        dts.push(reference.tstop / div as f64);
        l2.push(norms.l2);
        linf.push(norms.linf);
    }
    let fit = fit_order(&dts, &l2)?;
    Ok(OrderMeasurement {
        reference: reference.name,
        method,
        dts,
        l2,
        linf,
        fit,
    })
}

/// The full order table: every smooth reference × every integration method,
/// each at its own default ladder.
///
/// # Errors
///
/// Propagates [`measure_order`] failures.
pub fn order_table() -> Result<Vec<OrderMeasurement>> {
    let mut rows = Vec::new();
    for reference in smooth_catalog()? {
        for method in [Method::Trapezoidal, Method::BackwardEuler, Method::Gear2] {
            rows.push(measure_order(&reference, method, reference.divisions)?);
        }
    }
    Ok(rows)
}

/// Renders an order table as GitHub-flavoured markdown (the CI artifact).
pub fn render_markdown(rows: &[OrderMeasurement]) -> String {
    let mut out = String::from(
        "| reference | method | observed order | nominal | r² | finest-rung L2 | status |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for row in rows {
        let status = if row.pass() { "ok" } else { "FAIL" };
        let finest = row.l2.last().copied().unwrap_or(f64::NAN);
        out.push_str(&format!(
            "| {} | {:?} | {:.3} | {:.1} | {:.5} | {:.3e} | {} |\n",
            row.reference,
            row.method,
            row.fit.order,
            row.nominal(),
            row.fit.r2,
            finest,
            status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::catalog;

    #[test]
    fn nominal_orders() {
        assert_eq!(nominal_order(Method::Trapezoidal), 2.0);
        assert_eq!(nominal_order(Method::BackwardEuler), 1.0);
    }

    #[test]
    fn short_ladder_measures_rc_trapezoidal() {
        // A cut-down ladder keeps this unit test fast; the full table runs
        // in tests/convergence.rs and in CI's order_table binary.
        let refs = catalog().unwrap();
        let rc = refs.iter().find(|r| r.name == "rc_step").unwrap();
        let m = measure_order(rc, Method::Trapezoidal, &[100, 200, 400]).unwrap();
        assert!(m.fit.order > 1.5, "observed order {}", m.fit.order);
        assert!(m.pass());
        assert_eq!(m.dts.len(), 3);
        assert!(m.l2[0] > m.l2[2], "errors must shrink down the ladder");
    }

    #[test]
    fn markdown_table_lists_every_row() {
        let refs = catalog().unwrap();
        let rc = refs.iter().find(|r| r.name == "rc_step").unwrap();
        let m = measure_order(rc, Method::BackwardEuler, &[100, 200]).unwrap();
        let md = render_markdown(&[m]);
        assert!(md.contains("rc_step"));
        assert!(md.contains("BackwardEuler"));
        assert!(md.lines().count() >= 3);
    }
}
