//! Golden-waveform check/update tool.
//!
//! ```text
//! cargo run -p sfet-verify --bin golden            # check all scenarios
//! cargo run -p sfet-verify --bin golden -- --update  # regenerate goldens
//! cargo run -p sfet-verify --bin golden -- power_gate_wake  # one scenario
//! ```
//!
//! Checking exits non-zero when any signal leaves its tolerance envelope or
//! a golden file is missing. Updating prints a human-readable diff of what
//! moved before rewriting each file.

use std::process::ExitCode;

use sfet_verify::golden::{
    check_scenario, compact, diff_summary, golden_path, load, run_scenario, save, scenario_names,
};

fn usage() -> ExitCode {
    eprintln!("usage: golden [--update] [scenario...]");
    eprintln!("known scenarios: {}", scenario_names().join(", "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut update = false;
    let mut picked: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update" => update = true,
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return usage();
            }
            other => picked.push(other.to_string()),
        }
    }
    let names: Vec<&str> = if picked.is_empty() {
        scenario_names().to_vec()
    } else {
        let known = scenario_names();
        for p in &picked {
            if !known.contains(&p.as_str()) {
                eprintln!("unknown scenario `{p}`");
                return usage();
            }
        }
        picked.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    for name in names {
        if update {
            match update_one(name) {
                Ok(()) => {}
                Err(e) => {
                    eprintln!("{name}: update failed: {e}");
                    failed = true;
                }
            }
        } else {
            match check_scenario(name) {
                Ok(reports) => {
                    let bad: Vec<_> = reports.iter().filter(|r| !r.report.pass()).collect();
                    if bad.is_empty() {
                        let worst = reports
                            .iter()
                            .map(|r| r.report.worst_margin)
                            .fold(0.0_f64, f64::max);
                        println!(
                            "{name}: ok ({} signals, worst margin {worst:.3e})",
                            reports.len()
                        );
                    } else {
                        failed = true;
                        for r in bad {
                            eprintln!(
                                "{name}: signal `{}` out of envelope: {} of {} samples, worst \
                                 margin {:.3e} at t={:.4e} (golden {:.6e}, actual {:.6e})",
                                r.name,
                                r.report.violations,
                                r.report.checked,
                                r.report.worst_margin,
                                r.report.worst_time,
                                r.report.worst_golden,
                                r.report.worst_actual
                            );
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{name}: check failed: {e} (run with --update to regenerate)");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn update_one(name: &str) -> sfet_verify::Result<()> {
    let fresh = run_scenario(name)?;
    match load(name) {
        Ok(old) => {
            println!("{name}: refreshing {}", golden_path(name).display());
            print!("{}", diff_summary(&old, &compact(&fresh)?));
        }
        Err(_) => println!("{name}: writing new {}", golden_path(name).display()),
    }
    save(&fresh)?;
    Ok(())
}
