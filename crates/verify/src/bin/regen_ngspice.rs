//! ngspice-corpus check/update tool.
//!
//! ```text
//! cargo run -p sfet-verify --bin regen_ngspice              # check all decks
//! cargo run -p sfet-verify --bin regen_ngspice -- --update  # regenerate CSVs
//! cargo run -p sfet-verify --bin regen_ngspice -- vcvs_amp  # one deck
//! ```
//!
//! Checking re-runs every deck and compares it against its committed
//! `.expected.csv` under the corpus tolerances, lints the corpus for
//! orphaned files, and exits non-zero on any failure. Updating rewrites
//! the CSVs from a fresh engine run — see the provenance notes in
//! `sfet_verify::ngspice` before doing that.

use std::process::ExitCode;

use sfet_verify::ngspice::{check_deck, corpus, expected_path, lint_corpus, update_expected};

fn usage() -> ExitCode {
    eprintln!("usage: regen_ngspice [--update] [deck...]");
    eprintln!(
        "known decks: {}",
        corpus()
            .iter()
            .map(|d| d.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut update = false;
    let mut picked: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update" => update = true,
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return usage();
            }
            other => picked.push(other.to_string()),
        }
    }
    let all = corpus();
    let names: Vec<&str> = if picked.is_empty() {
        all.iter().map(|d| d.name).collect()
    } else {
        for p in &picked {
            if !all.iter().any(|d| d.name == p.as_str()) {
                eprintln!("unknown deck `{p}`");
                return usage();
            }
        }
        picked.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    for name in &names {
        if update {
            match update_expected(name) {
                Ok(()) => println!("{name}: wrote {}", expected_path(name).display()),
                Err(e) => {
                    eprintln!("{name}: update failed: {e}");
                    failed = true;
                }
            }
        } else {
            match check_deck(name) {
                Ok(reports) => {
                    let bad: Vec<_> = reports.iter().filter(|r| !r.report.pass()).collect();
                    if bad.is_empty() {
                        let worst = reports
                            .iter()
                            .map(|r| r.report.worst_margin)
                            .fold(0.0_f64, f64::max);
                        println!(
                            "{name}: ok ({} signals, worst margin {worst:.3e})",
                            reports.len()
                        );
                    } else {
                        failed = true;
                        for r in bad {
                            eprintln!(
                                "{name}: signal `{}` out of envelope: {} of {} samples, worst \
                                 margin {:.3e} at t={:.4e} (expected {:.6e}, actual {:.6e})",
                                r.name,
                                r.report.violations,
                                r.report.checked,
                                r.report.worst_margin,
                                r.report.worst_time,
                                r.report.worst_golden,
                                r.report.worst_actual
                            );
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{name}: check failed: {e} (run with --update to regenerate)");
                    failed = true;
                }
            }
        }
    }
    // Full runs also lint the corpus directory for orphans.
    if picked.is_empty() && !update {
        match lint_corpus() {
            Ok(problems) => {
                for p in &problems {
                    eprintln!("corpus lint: {p}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("corpus lint failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
