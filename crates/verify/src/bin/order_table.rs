//! Convergence-order table tool (the CI `verify` job's artifact).
//!
//! Runs every smooth analytic reference down its `dt` ladder with every
//! integration method, prints the fitted-order table as markdown, and exits
//! non-zero if any observed order falls more than `ORDER_MARGIN` below its
//! nominal value. Pass `--out <path>` to also write the table to a file.

use std::process::ExitCode;

use sfet_verify::order::{order_table, render_markdown, ORDER_MARGIN};

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("usage: order_table [--out <path>]  (unknown arg `{other}`)");
                return ExitCode::FAILURE;
            }
        }
    }

    let rows = match order_table() {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("order measurement failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let table = render_markdown(&rows);
    print!("{table}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &table) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let failures: Vec<_> = rows.iter().filter(|r| !r.pass()).collect();
    if failures.is_empty() {
        println!("\nall {} fits within {ORDER_MARGIN} of nominal", rows.len());
        ExitCode::SUCCESS
    } else {
        for f in failures {
            eprintln!(
                "order regression: {} with {:?} fitted {:.3}, nominal {:.1} (margin {ORDER_MARGIN})",
                f.reference,
                f.method,
                f.fit.order,
                f.nominal()
            );
        }
        ExitCode::FAILURE
    }
}
