//! ngspice cross-validation corpus for the general SPICE frontend.
//!
//! Every feature the netlist frontend supports — `.param` expressions,
//! parameterized subcircuits, the E/G/F/H controlled sources, derived
//! `.model` cards, `.ic` pins, and `.dc` sweeps — is exercised by at least
//! one committed deck under `crates/verify/goldens/ngspice/`. Each
//! `<name>.sp` deck is paired with a `<name>.expected.csv` waveform file;
//! [`check_deck`] re-runs the deck and compares every signal against the
//! stored expectation under a per-signal [`Tol`] envelope, exactly like the
//! scenario golden harness in [`crate::golden`].
//!
//! ## Provenance — read this before trusting a deck
//!
//! The decks are written in ngspice-compatible syntax so the corpus can be
//! re-validated against ngspice offline (`ngspice -b <deck>` with matching
//! `wrdata` probes); ngspice itself is **not** required — or invoked — in
//! CI. The committed CSVs were produced by this engine via the regen
//! binary, and their trustworthiness is tiered by [`Provenance`]:
//!
//! * [`Provenance::Analytic`] decks have closed-form solutions, and the
//!   test suite (`tests/ngspice_validation.rs`) independently checks the
//!   fresh run against the formula — the CSV is cross-validated, not
//!   self-certified.
//! * [`Provenance::EnginePinned`] decks (MOSFET/PTM nonlinear circuits)
//!   have no closed form; their CSVs pin current behaviour as a regression
//!   reference only.
//!
//! Refresh the CSVs after an intentional behaviour change with
//!
//! ```text
//! cargo run -p sfet-verify --bin regen_ngspice -- --update
//! ```

use std::path::PathBuf;

use sfet_circuit::parse::{dc_grid, parse_netlist, Analysis};
use sfet_sim::{dc_sweep, transient, SimOptions};
use sfet_waveform::compare::{compare, resample, Tol};
use sfet_waveform::Waveform;

use crate::golden::SignalReport;
use crate::{Result, VerifyError};

/// Samples stored per expected-CSV signal (uniform resampling grid).
pub const CSV_POINTS: usize = 512;

/// Where a deck's expected CSV derives its authority from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The deck has a closed-form solution and the test suite checks the
    /// engine against the formula independently of the CSV.
    Analytic,
    /// No closed form; the CSV pins current engine behaviour (regression
    /// reference only).
    EnginePinned,
}

/// One signal a deck pins, with its comparison envelope.
#[derive(Debug, Clone)]
pub struct SignalSpec {
    /// Probe name: `v(<node>)` or `i(<element>)` (spelled exactly as in
    /// the deck).
    pub name: &'static str,
    /// Envelope used when the signal is checked against its expected CSV.
    pub tol: Tol,
}

/// One deck of the corpus.
#[derive(Debug, Clone)]
pub struct DeckSpec {
    /// Deck file stem (`<name>.sp` / `<name>.expected.csv`).
    pub name: &'static str,
    /// Authority of the expected CSV.
    pub provenance: Provenance,
    /// Signals checked against the expected CSV.
    pub signals: Vec<SignalSpec>,
}

fn sig(name: &'static str, tol: Tol) -> SignalSpec {
    SignalSpec { name, tol }
}

/// The deck corpus, in check order. Every `.sp` file in [`deck_dir`] must
/// appear here and vice versa (enforced by the corpus-lint test).
pub fn corpus() -> Vec<DeckSpec> {
    let tight = Tol::new(1e-3, 1e-3).with_time_shift(1e-13);
    let nonlinear = Tol::new(2e-3, 1e-3).with_time_shift(1e-12);
    vec![
        DeckSpec {
            name: "rc_lowpass",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(out)", tight)],
        },
        DeckSpec {
            name: "rlc_series",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(b)", nonlinear)],
        },
        DeckSpec {
            name: "vcvs_amp",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(mid)", tight), sig("v(out)", tight)],
        },
        DeckSpec {
            name: "vccs_integrator",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(out)", tight)],
        },
        DeckSpec {
            name: "cccs_mirror",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(out)", tight), sig("i(VSENSE)", tight)],
        },
        DeckSpec {
            name: "ccvs_sense",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(out)", tight), sig("i(VSENSE)", tight)],
        },
        DeckSpec {
            name: "param_divider",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(out)", tight)],
        },
        DeckSpec {
            name: "dc_transfer",
            provenance: Provenance::Analytic,
            signals: vec![sig("v(mid)", tight), sig("v(out)", tight)],
        },
        DeckSpec {
            name: "inverter_chain",
            provenance: Provenance::EnginePinned,
            signals: vec![sig("v(b)", nonlinear), sig("v(c)", nonlinear)],
        },
        DeckSpec {
            name: "ptm_rectifier",
            provenance: Provenance::EnginePinned,
            signals: vec![sig("v(out)", nonlinear)],
        },
    ]
}

/// Directory the deck corpus lives in (`crates/verify/goldens/ngspice/`).
pub fn deck_dir() -> PathBuf {
    crate::golden::golden_dir().join("ngspice")
}

/// Path of one deck's netlist file.
pub fn deck_path(name: &str) -> PathBuf {
    deck_dir().join(format!("{name}.sp"))
}

/// Path of one deck's expected-waveform CSV.
pub fn expected_path(name: &str) -> PathBuf {
    deck_dir().join(format!("{name}.expected.csv"))
}

fn format_err(msg: impl Into<String>) -> VerifyError {
    VerifyError::Format(msg.into())
}

/// Looks up a deck's corpus entry.
///
/// # Errors
///
/// [`VerifyError::Format`] for a name not in the corpus.
pub fn deck_spec(name: &str) -> Result<DeckSpec> {
    corpus()
        .into_iter()
        .find(|d| d.name == name)
        .ok_or_else(|| format_err(format!("deck `{name}` is not in the ngspice corpus")))
}

/// Runs a deck with default simulation options and extracts its pinned
/// signals in corpus order. `.tran` decks run the transient engine;
/// `.dc` decks run the sweep engine (signal axis = swept source value).
///
/// # Errors
///
/// Parse failures, simulation failures, unknown signals, and decks with no
/// analysis directive all surface as [`VerifyError`]s.
pub fn run_deck(name: &str) -> Result<Vec<(String, Waveform)>> {
    run_deck_with(name, &SimOptions::default())
}

/// [`run_deck`] with explicit base options (`.tran` decks still apply the
/// deck's own `dtmax` on top) — this is how the backend-identity tests
/// replay a deck on a different linear solver.
///
/// # Errors
///
/// As [`run_deck`].
pub fn run_deck_with(name: &str, base: &SimOptions) -> Result<Vec<(String, Waveform)>> {
    let spec = deck_spec(name)?;
    let text = std::fs::read_to_string(deck_path(name))?;
    let parsed = parse_netlist(&text)?;
    let analysis = parsed
        .analyses
        .first()
        .ok_or_else(|| format_err(format!("deck `{name}` has no analysis directive")))?;
    match *analysis {
        Analysis::Tran { dtmax, tstop } => {
            let opts = base.clone().with_dtmax(dtmax);
            let result = transient(&parsed.circuit, tstop, &opts)?;
            spec.signals
                .iter()
                .map(|s| {
                    let wave = match parse_probe(s.name)? {
                        Probe::Voltage(node) => result.voltage(node)?,
                        Probe::Current(elem) => result.branch_current(elem)?,
                    };
                    Ok((s.name.to_string(), wave))
                })
                .collect()
        }
        Analysis::Dc {
            ref source,
            start,
            stop,
            step,
        } => {
            let points = dc_grid(start, stop, step);
            let result = dc_sweep(&parsed.circuit, source, &points, base)?;
            spec.signals
                .iter()
                .map(|s| {
                    let wave = match parse_probe(s.name)? {
                        Probe::Voltage(node) => result.transfer_curve(node)?,
                        Probe::Current(_) => {
                            return Err(format_err(format!(
                                "deck `{name}`: i(...) probes are not supported for .dc decks"
                            )))
                        }
                    };
                    Ok((s.name.to_string(), wave))
                })
                .collect()
        }
    }
}

enum Probe<'a> {
    Voltage(&'a str),
    Current(&'a str),
}

fn parse_probe(name: &str) -> Result<Probe<'_>> {
    let inner = |prefix: &str| {
        name.strip_prefix(prefix)
            .and_then(|r| r.strip_suffix(')'))
            .filter(|r| !r.is_empty())
    };
    if let Some(node) = inner("v(") {
        Ok(Probe::Voltage(node))
    } else if let Some(elem) = inner("i(") {
        Ok(Probe::Current(elem))
    } else {
        Err(format_err(format!(
            "bad probe `{name}` (expected v(<node>) or i(<element>))"
        )))
    }
}

/// Serialises signals to the expected-CSV text, resampled to at most
/// [`CSV_POINTS`] samples on the first signal's axis.
///
/// # Errors
///
/// Propagates resampling failures for degenerate signals.
pub fn to_expected_csv(signals: &[(String, Waveform)]) -> Result<String> {
    let compacted: Vec<(String, Waveform)> = signals
        .iter()
        .map(|(n, w)| {
            let wave = if w.len() > CSV_POINTS {
                resample(w, CSV_POINTS)?
            } else {
                w.clone()
            };
            Ok((n.clone(), wave))
        })
        .collect::<Result<_>>()?;
    let columns: Vec<(&str, &Waveform)> = compacted.iter().map(|(n, w)| (n.as_str(), w)).collect();
    Ok(sfet_waveform::csv::to_csv(&columns))
}

/// Parses an expected CSV back into named waveforms (all sharing the
/// file's time axis).
///
/// # Errors
///
/// [`VerifyError::Format`] describing the first malformed line.
pub fn parse_expected_csv(text: &str) -> Result<Vec<(String, Waveform)>> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| format_err("empty expected CSV"))?;
    let names: Vec<&str> = header.split(',').collect();
    if names.first() != Some(&"time") || names.len() < 2 {
        return Err(format_err(format!("bad CSV header `{header}`")));
    }
    let n_cols = names.len();
    let mut times = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n_cols - 1];
    for (k, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != n_cols {
            return Err(format_err(format!(
                "CSV row {} has {} fields, expected {n_cols}",
                k + 2,
                fields.len()
            )));
        }
        let parse = |tok: &str| -> Result<f64> {
            tok.parse::<f64>()
                .map_err(|e| format_err(format!("bad CSV number `{tok}`: {e}")))
        };
        times.push(parse(fields[0])?);
        for (col, tok) in columns.iter_mut().zip(&fields[1..]) {
            col.push(parse(tok)?);
        }
    }
    names[1..]
        .iter()
        .zip(columns)
        .map(|(name, values)| {
            Ok((
                name.to_string(),
                Waveform::from_samples(times.clone(), values)?,
            ))
        })
        .collect()
}

/// Loads a deck's stored expected waveforms.
///
/// # Errors
///
/// [`VerifyError::Io`] when the CSV is missing (run the regen binary),
/// [`VerifyError::Format`] when it is malformed.
pub fn load_expected(name: &str) -> Result<Vec<(String, Waveform)>> {
    parse_expected_csv(&std::fs::read_to_string(expected_path(name))?)
}

/// Re-runs a deck and compares every pinned signal against its expected
/// CSV under the corpus (code-side) tolerances.
///
/// # Errors
///
/// Propagates run and load failures; a missing signal in the CSV is a
/// [`VerifyError::Format`].
pub fn check_deck(name: &str) -> Result<Vec<SignalReport>> {
    let spec = deck_spec(name)?;
    let fresh = run_deck(name)?;
    let expected = load_expected(name)?;
    spec.signals
        .iter()
        .map(|s| {
            let (_, exp) = expected.iter().find(|(n, _)| n == s.name).ok_or_else(|| {
                format_err(format!(
                    "signal `{}` missing from {} (regen the corpus)",
                    s.name,
                    expected_path(name).display()
                ))
            })?;
            let (_, act) = fresh
                .iter()
                .find(|(n, _)| n == s.name)
                .expect("run_deck extracts every corpus signal");
            Ok(SignalReport {
                name: s.name.to_string(),
                report: compare(exp, act, &s.tol),
            })
        })
        .collect()
}

/// Checks the whole corpus and renders a human-readable report. The bool
/// is the overall pass/fail.
///
/// # Errors
///
/// Propagates the first deck that fails to run or load (a tolerance miss
/// is a reported failure, not an error).
pub fn check_all() -> Result<(bool, String)> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut all_pass = true;
    for deck in corpus() {
        let reports = check_deck(deck.name)?;
        let deck_pass = reports.iter().all(|r| r.report.pass());
        all_pass &= deck_pass;
        let _ = writeln!(
            out,
            "{} [{}] {:?}",
            if deck_pass { "PASS" } else { "FAIL" },
            deck.name,
            deck.provenance
        );
        for r in &reports {
            let _ = writeln!(
                out,
                "  {:<12} worst margin {:>9.3e} at t={:.4e} (expected {:.6e}, got {:.6e}) {}",
                r.name,
                r.report.worst_margin,
                r.report.worst_time,
                r.report.worst_golden,
                r.report.worst_actual,
                if r.report.pass() {
                    "ok"
                } else {
                    "OUT OF ENVELOPE"
                }
            );
        }
    }
    Ok((all_pass, out))
}

/// Runs a deck and writes its expected CSV.
///
/// # Errors
///
/// Propagates run and write failures.
pub fn update_expected(name: &str) -> Result<()> {
    let signals = run_deck(name)?;
    std::fs::create_dir_all(deck_dir())?;
    std::fs::write(expected_path(name), to_expected_csv(&signals)?)?;
    Ok(())
}

/// Corpus lint: every corpus entry has both files on disk, and every
/// `.sp`/`.expected.csv` file on disk belongs to a corpus entry. Returns
/// the list of violations (empty = clean).
///
/// # Errors
///
/// [`VerifyError::Io`] if the corpus directory cannot be read.
pub fn lint_corpus() -> Result<Vec<String>> {
    let mut problems = Vec::new();
    let decks = corpus();
    for d in &decks {
        if !deck_path(d.name).is_file() {
            problems.push(format!("corpus deck `{}` has no .sp file", d.name));
        }
        if !expected_path(d.name).is_file() {
            problems.push(format!(
                "corpus deck `{}` has no .expected.csv (run regen_ngspice --update)",
                d.name
            ));
        }
    }
    for entry in std::fs::read_dir(deck_dir())? {
        let path = entry?.path();
        let Some(fname) = path.file_name().and_then(|f| f.to_str()) else {
            continue;
        };
        let stem = fname
            .strip_suffix(".sp")
            .or_else(|| fname.strip_suffix(".expected.csv"));
        match stem {
            Some(stem) => {
                if !decks.iter().any(|d| d.name == stem) {
                    problems.push(format!("file `{fname}` has no corpus entry"));
                }
            }
            None => {
                if fname != "MANIFEST.md" {
                    problems.push(format!("unexpected file `{fname}` in deck corpus"));
                }
            }
        }
    }
    Ok(problems)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_parsing() {
        assert!(matches!(parse_probe("v(out)"), Ok(Probe::Voltage("out"))));
        assert!(matches!(
            parse_probe("i(VSENSE)"),
            Ok(Probe::Current("VSENSE"))
        ));
        assert!(parse_probe("out").is_err());
        assert!(parse_probe("v()").is_err());
    }

    #[test]
    fn expected_csv_round_trip() {
        let w1 = Waveform::from_samples(vec![0.0, 1e-12, 2e-12], vec![0.0, 0.5, 1.0]).unwrap();
        let w2 = Waveform::from_samples(vec![0.0, 1e-12, 2e-12], vec![1.0, 0.5, 0.25]).unwrap();
        let signals = vec![("v(a)".to_string(), w1), ("i(V1)".to_string(), w2)];
        let text = to_expected_csv(&signals).unwrap();
        let back = parse_expected_csv(&text).unwrap();
        assert_eq!(back.len(), 2);
        for ((na, wa), (nb, wb)) in signals.iter().zip(&back) {
            assert_eq!(na, nb);
            assert_eq!(wa.times(), wb.times());
            assert_eq!(wa.values(), wb.values());
        }
    }

    #[test]
    fn parse_expected_rejects_malformed() {
        assert!(parse_expected_csv("").is_err());
        assert!(parse_expected_csv("freq,v(a)\n0,1\n").is_err());
        assert!(parse_expected_csv("time,v(a)\n0\n").is_err());
        assert!(parse_expected_csv("time,v(a)\n0,abc\n").is_err());
    }

    #[test]
    fn unknown_deck_is_a_format_error() {
        assert!(matches!(deck_spec("nope"), Err(VerifyError::Format(_))));
    }

    #[test]
    fn corpus_names_are_unique_and_nonempty() {
        let decks = corpus();
        assert!(decks.len() >= 8, "corpus must stay at \u{2265}8 decks");
        let mut names: Vec<&str> = decks.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), decks.len(), "duplicate deck names");
        assert!(decks.iter().all(|d| !d.signals.is_empty()));
    }
}
