//! Correctness subsystem for the Soft-FET reproduction.
//!
//! The simulator's unit tests check mechanisms; this crate checks *answers*.
//! It holds three pillars, described in detail in `docs/VERIFICATION.md`:
//!
//! * [`analytic`] — a catalog of reference circuits with closed-form
//!   solutions ([`AnalyticReference`]): RC/RL ramp responses, an undamped
//!   LC tank, a damped RLC, a manufactured sine-driven parallel RC, and a
//!   piecewise-exponential staircase through an ideal two-state PTM. Each
//!   exposes `exact(t)` so any transient run can be scored with the L2/L∞
//!   error norms from [`sfet_numeric::norms`].
//! * [`order`] — the convergence-order checker: runs each smooth reference
//!   down a `dt` ladder, fits the observed order by log–log regression
//!   ([`sfet_numeric::norms::fit_order`]), and asserts the trapezoidal rule
//!   converges at ≈ 2 and backward Euler at ≈ 1.
//! * [`golden`] — the golden-waveform regression harness: deterministic
//!   scenario runs checkpointed to compact on-disk golden files and
//!   compared under per-signal tolerance envelopes
//!   ([`sfet_waveform::compare::Tol`]), with a `--update` refresh binary
//!   (`cargo run -p sfet-verify --bin golden -- --update`).
//!
//! The two binaries (`golden`, `order_table`) are the CI entry points; the
//! integration tests under `crates/verify/tests/` run the same checks in
//! `cargo test`.

#![warn(missing_docs)]

use std::fmt;

pub mod analytic;
pub mod golden;
pub mod ngspice;
pub mod order;

pub use analytic::{catalog, AnalyticReference, Probe};
pub use order::{measure_order, nominal_order, order_table, OrderMeasurement};

/// Errors surfaced by the verification subsystem.
#[derive(Debug)]
pub enum VerifyError {
    /// Reference netlist construction failed.
    Circuit(sfet_circuit::CircuitError),
    /// A transient run failed.
    Sim(sfet_sim::SimError),
    /// Waveform extraction or resampling failed.
    Waveform(sfet_waveform::WaveformError),
    /// Norm computation or order fitting failed.
    Numeric(sfet_numeric::NumericError),
    /// A device-level sweep failed.
    Device(sfet_devices::DeviceError),
    /// A PDN scenario failed.
    Pdn(sfet_pdn::PdnError),
    /// Golden file I/O failed.
    Io(std::io::Error),
    /// A golden file is malformed or refers to an unknown scenario.
    Format(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Circuit(e) => write!(f, "circuit error: {e}"),
            VerifyError::Sim(e) => write!(f, "simulation error: {e}"),
            VerifyError::Waveform(e) => write!(f, "waveform error: {e}"),
            VerifyError::Numeric(e) => write!(f, "numeric error: {e}"),
            VerifyError::Device(e) => write!(f, "device error: {e}"),
            VerifyError::Pdn(e) => write!(f, "pdn scenario error: {e}"),
            VerifyError::Io(e) => write!(f, "golden file I/O error: {e}"),
            VerifyError::Format(msg) => write!(f, "golden file format error: {msg}"),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Circuit(e) => Some(e),
            VerifyError::Sim(e) => Some(e),
            VerifyError::Waveform(e) => Some(e),
            VerifyError::Numeric(e) => Some(e),
            VerifyError::Device(e) => Some(e),
            VerifyError::Pdn(e) => Some(e),
            VerifyError::Io(e) => Some(e),
            VerifyError::Format(_) => None,
        }
    }
}

impl From<sfet_circuit::CircuitError> for VerifyError {
    fn from(e: sfet_circuit::CircuitError) -> Self {
        VerifyError::Circuit(e)
    }
}
impl From<sfet_sim::SimError> for VerifyError {
    fn from(e: sfet_sim::SimError) -> Self {
        VerifyError::Sim(e)
    }
}
impl From<sfet_waveform::WaveformError> for VerifyError {
    fn from(e: sfet_waveform::WaveformError) -> Self {
        VerifyError::Waveform(e)
    }
}
impl From<sfet_numeric::NumericError> for VerifyError {
    fn from(e: sfet_numeric::NumericError) -> Self {
        VerifyError::Numeric(e)
    }
}
impl From<sfet_devices::DeviceError> for VerifyError {
    fn from(e: sfet_devices::DeviceError) -> Self {
        VerifyError::Device(e)
    }
}
impl From<sfet_pdn::PdnError> for VerifyError {
    fn from(e: sfet_pdn::PdnError) -> Self {
        VerifyError::Pdn(e)
    }
}
impl From<std::io::Error> for VerifyError {
    fn from(e: std::io::Error) -> Self {
        VerifyError::Io(e)
    }
}

/// Convenience result alias for the verification subsystem.
pub type Result<T> = std::result::Result<T, VerifyError>;
