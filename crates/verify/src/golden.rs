//! Golden-waveform regression harness.
//!
//! Deterministic scenario runs are checkpointed to compact text files under
//! `crates/verify/goldens/` and every future run is compared against them
//! under per-signal tolerance envelopes ([`Tol`]: absolute + relative +
//! time-shift, deliberately *not* bitwise — see `docs/VERIFICATION.md`).
//! Refresh the files after an intentional behaviour change with
//!
//! ```text
//! cargo run -p sfet-verify --bin golden -- --update
//! ```
//!
//! which prints a human-readable diff of what moved before rewriting.
//!
//! The tolerance used for checking always comes from the *code-side*
//! scenario definition ([`run_scenario`]), not from the stored file — so
//! tightening an envelope takes effect without regenerating goldens. The
//! `tol` line in the file records what was in force at update time, for
//! humans reading the diff.

use std::fmt::Write as _;
use std::path::PathBuf;

use sfet_devices::ptm::{hysteresis_sweep, PtmParams, PtmPhase};
use sfet_numeric::exec::ExecConfig;
use sfet_pdn::io_buffer::IoBufferScenario;
use sfet_pdn::power_gate::{wake_ramp_sweep_with, PowerGateScenario};
use sfet_waveform::compare::{compare, resample, CompareReport, Tol};
use sfet_waveform::Waveform;

use crate::analytic::catalog;
use crate::{Result, VerifyError};

/// Samples stored per golden signal (uniform resampling grid).
pub const GOLDEN_POINTS: usize = 512;

/// One named signal of a scenario run, with its comparison envelope.
#[derive(Debug, Clone)]
pub struct GoldenSignal {
    /// Signal name, unique within the scenario (no whitespace).
    pub name: String,
    /// Envelope used when this signal is checked against a golden.
    pub tol: Tol,
    /// The signal itself. For waveform scenarios the axis is time \[s\];
    /// sweep-style scenarios use the sweep parameter or sample index.
    pub wave: Waveform,
}

/// A full scenario run: every signal the scenario pins.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Scenario name (one of [`scenario_names`]).
    pub scenario: String,
    /// Pinned signals.
    pub signals: Vec<GoldenSignal>,
}

/// Comparison outcome for one signal.
#[derive(Debug, Clone)]
pub struct SignalReport {
    /// Signal name.
    pub name: String,
    /// Envelope comparison result.
    pub report: CompareReport,
}

/// The golden scenario catalog, in check order.
pub fn scenario_names() -> &'static [&'static str] {
    &[
        "ptm_staircase",
        "power_gate_wake",
        "io_buffer_ssn",
        "ptm_hysteresis",
        "wake_ramp_tradeoff",
    ]
}

fn signal(name: &str, tol: Tol, wave: Waveform) -> GoldenSignal {
    GoldenSignal {
        name: name.to_string(),
        tol,
        wave,
    }
}

fn index_waveform(values: Vec<f64>) -> Result<Waveform> {
    let times: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
    Ok(Waveform::from_samples(times, values)?)
}

/// The ideal-PTM staircase (the Fig. 3 soft-charging structure) run at the
/// reference's default resolution: pins the capacitor voltage and the PTM
/// resistance (as log₁₀ Ω, so both phases weigh equally).
fn run_staircase() -> Result<ScenarioRun> {
    let refs = catalog()?;
    let st = refs
        .iter()
        .find(|r| r.name == "ptm_staircase")
        .expect("catalog always contains the staircase");
    let divisions = *st.divisions.last().expect("non-empty ladder");
    let result = st.run(&st.options(divisions, sfet_numeric::integrate::Method::Trapezoidal))?;
    let v_out = result.voltage("out")?;
    let r_ptm = result.ptm_resistance("P1")?;
    let log_r = Waveform::from_samples(
        r_ptm.times().to_vec(),
        r_ptm.values().iter().map(|r| r.log10()).collect(),
    )?;
    Ok(ScenarioRun {
        scenario: "ptm_staircase".into(),
        signals: vec![
            signal("v(out)", Tol::new(2e-3, 1e-3).with_time_shift(1e-12), v_out),
            signal(
                "log10_r(P1)",
                Tol::new(0.05, 0.0).with_time_shift(1e-12),
                log_r,
            ),
        ],
    })
}

/// The Fig. 3-style power-gate wake-up, baseline and Soft-FET: pins the
/// shared rail, the gated rail, and the rail current.
fn run_power_gate() -> Result<ScenarioRun> {
    let base = PowerGateScenario::default();
    let soft = base.with_soft_fet(PtmParams::vo2_default());
    let out_b = base.run()?;
    let out_s = soft.run()?;
    let v_tol = Tol::new(1e-3, 1e-3).with_time_shift(0.2e-9);
    let i_tol = Tol::new(2e-3, 1e-2).with_time_shift(0.2e-9);
    Ok(ScenarioRun {
        scenario: "power_gate_wake".into(),
        signals: vec![
            signal("rail_base", v_tol, out_b.rail),
            signal("rail_soft", v_tol, out_s.rail),
            signal("v_virtual_soft", v_tol, out_s.v_virtual),
            signal("i_rail_soft", i_tol, out_s.i_rail),
        ],
    })
}

/// The Fig. 10 I/O buffer SSN experiment, baseline and Soft-FET: pins the
/// internal rails and the pad waveform.
fn run_io_buffer() -> Result<ScenarioRun> {
    let base = IoBufferScenario::default();
    let soft = base.with_soft_fet(PtmParams::vo2_default());
    let out_b = base.run()?;
    let out_s = soft.run()?;
    let v_tol = Tol::new(1e-3, 1e-3).with_time_shift(0.05e-9);
    Ok(ScenarioRun {
        scenario: "io_buffer_ssn".into(),
        signals: vec![
            signal("vssi_base", v_tol, out_b.vssi),
            signal("vddi_soft", v_tol, out_s.vddi),
            signal("vssi_soft", v_tol, out_s.vssi),
            signal("v_pad_soft", v_tol, out_s.v_pad),
        ],
    })
}

/// The quasi-static PTM hysteresis loop (Fig. 4): pins bias, current and
/// phase against the sample index of the `0 → 1 V → 0` sweep.
fn run_hysteresis() -> Result<ScenarioRun> {
    let points = hysteresis_sweep(&PtmParams::vo2_default(), 1.0, 200)?;
    let v = index_waveform(points.iter().map(|p| p.v).collect())?;
    let i = index_waveform(points.iter().map(|p| p.i).collect())?;
    let phase = index_waveform(
        points
            .iter()
            .map(|p| match p.phase {
                PtmPhase::Insulating => 0.0,
                PtmPhase::Metallic => 1.0,
            })
            .collect(),
    )?;
    Ok(ScenarioRun {
        scenario: "ptm_hysteresis".into(),
        signals: vec![
            signal("v", Tol::new(1e-9, 1e-9), v),
            signal("i", Tol::new(1e-12, 1e-6), i),
            signal("phase", Tol::new(0.1, 0.0), phase),
        ],
    })
}

/// The wake-ramp trade-off sweep (droop/inrush vs ramp duration), run
/// through the deterministic parallel sweep engine — this is the scenario
/// the worker-count invariance test replays at 1/2/8 workers.
fn run_wake_ramp(cfg: &ExecConfig) -> Result<ScenarioRun> {
    let ramps = [2e-9, 4e-9];
    let points = wake_ramp_sweep_with(
        cfg,
        &PowerGateScenario::default(),
        PtmParams::vo2_default(),
        &ramps,
    )?;
    let axis: Vec<f64> = points.iter().map(|p| p.wake_ramp).collect();
    let make = |values: Vec<f64>| -> Result<Waveform> {
        Ok(Waveform::from_samples(axis.clone(), values)?)
    };
    let tol = Tol::new(1e-6, 1e-3);
    Ok(ScenarioRun {
        scenario: "wake_ramp_tradeoff".into(),
        signals: vec![
            signal(
                "droop_base",
                tol,
                make(points.iter().map(|p| p.droop_base).collect())?,
            ),
            signal(
                "droop_soft",
                tol,
                make(points.iter().map(|p| p.droop_soft).collect())?,
            ),
            signal(
                "inrush_soft",
                tol,
                make(points.iter().map(|p| p.inrush_soft).collect())?,
            ),
            signal(
                "wake_time_soft",
                tol,
                make(
                    points
                        .iter()
                        .map(|p| p.wake_time_soft.unwrap_or(-1.0))
                        .collect(),
                )?,
            ),
        ],
    })
}

/// Runs one golden scenario with the execution policy from the environment
/// (`SFET_THREADS`).
///
/// # Errors
///
/// [`VerifyError::Format`] for an unknown scenario name; otherwise the
/// underlying run failure.
pub fn run_scenario(name: &str) -> Result<ScenarioRun> {
    run_scenario_with(name, &ExecConfig::from_env())
}

/// [`run_scenario`] with an explicit execution policy (only the sweep-based
/// scenarios are parallel; the rest ignore `cfg`).
///
/// # Errors
///
/// As [`run_scenario`].
pub fn run_scenario_with(name: &str, cfg: &ExecConfig) -> Result<ScenarioRun> {
    match name {
        "ptm_staircase" => run_staircase(),
        "power_gate_wake" => run_power_gate(),
        "io_buffer_ssn" => run_io_buffer(),
        "ptm_hysteresis" => run_hysteresis(),
        "wake_ramp_tradeoff" => run_wake_ramp(cfg),
        other => Err(VerifyError::Format(format!("unknown scenario `{other}`"))),
    }
}

/// Compacts a run for storage: every signal resampled onto
/// [`GOLDEN_POINTS`] uniform points (signals that already have fewer
/// samples than that are stored as-is).
///
/// # Errors
///
/// Propagates resampling failures for degenerate signals.
pub fn compact(run: &ScenarioRun) -> Result<ScenarioRun> {
    let mut signals = Vec::with_capacity(run.signals.len());
    for s in &run.signals {
        let wave = if s.wave.len() > GOLDEN_POINTS {
            resample(&s.wave, GOLDEN_POINTS)?
        } else {
            s.wave.clone()
        };
        signals.push(GoldenSignal {
            name: s.name.clone(),
            tol: s.tol,
            wave,
        });
    }
    Ok(ScenarioRun {
        scenario: run.scenario.clone(),
        signals,
    })
}

/// Serialises a (compacted) run to the golden text format.
pub fn serialize(run: &ScenarioRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "sfet-golden v1");
    let _ = writeln!(out, "scenario {}", run.scenario);
    let _ = writeln!(out, "signals {}", run.signals.len());
    for s in &run.signals {
        let _ = writeln!(out, "signal {}", s.name);
        let _ = writeln!(
            out,
            "tol {:.17e} {:.17e} {:.17e}",
            s.tol.abs, s.tol.rel, s.tol.time_shift
        );
        let _ = writeln!(out, "samples {}", s.wave.len());
        for (t, v) in s.wave.iter() {
            let _ = writeln!(out, "{t:.17e} {v:.17e}");
        }
    }
    let _ = writeln!(out, "end");
    out
}

fn malformed(msg: impl Into<String>) -> VerifyError {
    VerifyError::Format(msg.into())
}

fn expect_prefix<'a>(line: Option<&'a str>, prefix: &str) -> Result<&'a str> {
    let line = line.ok_or_else(|| malformed(format!("missing `{prefix}` line")))?;
    line.strip_prefix(prefix)
        .map(str::trim)
        .ok_or_else(|| malformed(format!("expected `{prefix} ...`, got `{line}`")))
}

fn parse_f64(tok: &str) -> Result<f64> {
    tok.parse::<f64>()
        .map_err(|e| malformed(format!("bad number `{tok}`: {e}")))
}

/// Parses the golden text format back into a [`ScenarioRun`].
///
/// # Errors
///
/// [`VerifyError::Format`] describing the first malformed line.
pub fn parse(text: &str) -> Result<ScenarioRun> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| malformed("empty golden file"))?;
    if header != "sfet-golden v1" {
        return Err(malformed(format!("unsupported header `{header}`")));
    }
    let scenario = expect_prefix(lines.next(), "scenario")?.to_string();
    let n_signals: usize = expect_prefix(lines.next(), "signals")?
        .parse()
        .map_err(|e| malformed(format!("bad signal count: {e}")))?;
    let mut signals = Vec::with_capacity(n_signals);
    for _ in 0..n_signals {
        let name = expect_prefix(lines.next(), "signal")?.to_string();
        let tol_line = expect_prefix(lines.next(), "tol")?;
        let toks: Vec<&str> = tol_line.split_whitespace().collect();
        if toks.len() != 3 {
            return Err(malformed(format!("tol needs 3 fields, got `{tol_line}`")));
        }
        let tol =
            Tol::new(parse_f64(toks[0])?, parse_f64(toks[1])?).with_time_shift(parse_f64(toks[2])?);
        let n: usize = expect_prefix(lines.next(), "samples")?
            .parse()
            .map_err(|e| malformed(format!("bad sample count: {e}")))?;
        let mut times = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| malformed(format!("signal `{name}` truncated")))?;
            let mut it = line.split_whitespace();
            let (t, v) = (
                it.next().ok_or_else(|| malformed("missing time"))?,
                it.next().ok_or_else(|| malformed("missing value"))?,
            );
            times.push(parse_f64(t)?);
            values.push(parse_f64(v)?);
        }
        signals.push(GoldenSignal {
            name,
            tol,
            wave: Waveform::from_samples(times, values)?,
        });
    }
    match lines.next() {
        Some("end") => {}
        other => return Err(malformed(format!("expected `end`, got {other:?}"))),
    }
    Ok(ScenarioRun { scenario, signals })
}

/// Directory the golden files live in (`crates/verify/goldens/`).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// Path of one scenario's golden file.
pub fn golden_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.golden"))
}

/// Loads a stored golden.
///
/// # Errors
///
/// [`VerifyError::Io`] when the file is missing (run the update binary),
/// [`VerifyError::Format`] when it is malformed.
pub fn load(name: &str) -> Result<ScenarioRun> {
    let text = std::fs::read_to_string(golden_path(name))?;
    parse(&text)
}

/// Compacts and writes a run's golden file.
///
/// # Errors
///
/// [`VerifyError::Io`] on write failure.
pub fn save(run: &ScenarioRun) -> Result<()> {
    std::fs::create_dir_all(golden_dir())?;
    std::fs::write(golden_path(&run.scenario), serialize(&compact(run)?))?;
    Ok(())
}

/// Compares a fresh run against a stored golden, signal by signal, using
/// the fresh (code-side) tolerances. Every golden signal must exist in the
/// fresh run.
///
/// # Errors
///
/// [`VerifyError::Format`] if the scenario names differ or a golden signal
/// is missing from the fresh run.
pub fn compare_runs(golden: &ScenarioRun, fresh: &ScenarioRun) -> Result<Vec<SignalReport>> {
    if golden.scenario != fresh.scenario {
        return Err(malformed(format!(
            "scenario mismatch: golden `{}` vs fresh `{}`",
            golden.scenario, fresh.scenario
        )));
    }
    let mut reports = Vec::with_capacity(golden.signals.len());
    for g in &golden.signals {
        let f = fresh
            .signals
            .iter()
            .find(|s| s.name == g.name)
            .ok_or_else(|| {
                malformed(format!(
                    "golden signal `{}` missing from fresh `{}` run",
                    g.name, fresh.scenario
                ))
            })?;
        reports.push(SignalReport {
            name: g.name.clone(),
            report: compare(&g.wave, &f.wave, &f.tol),
        });
    }
    Ok(reports)
}

/// Runs a scenario and checks it against its stored golden.
///
/// # Errors
///
/// Propagates run, load and comparison failures.
pub fn check_scenario(name: &str) -> Result<Vec<SignalReport>> {
    let fresh = run_scenario(name)?;
    let golden = load(name)?;
    compare_runs(&golden, &fresh)
}

/// Human-readable diff of a fresh run against the stored golden, for the
/// update binary: one line per signal with the worst deviation.
pub fn diff_summary(golden: &ScenarioRun, fresh: &ScenarioRun) -> String {
    let mut out = String::new();
    for g in &golden.signals {
        match fresh.signals.iter().find(|s| s.name == g.name) {
            Some(f) => {
                let r = compare(&g.wave, &f.wave, &f.tol);
                let _ = writeln!(
                    out,
                    "  {:<18} worst margin {:>9.3e} at t={:.4e} (golden {:.6e}, new {:.6e}) {}",
                    g.name,
                    r.worst_margin,
                    r.worst_time,
                    r.worst_golden,
                    r.worst_actual,
                    if r.pass() { "within envelope" } else { "MOVED" }
                );
            }
            None => {
                let _ = writeln!(out, "  {:<18} removed", g.name);
            }
        }
    }
    for f in &fresh.signals {
        if !golden.signals.iter().any(|s| s.name == f.name) {
            let _ = writeln!(out, "  {:<18} added", f.name);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_run() -> ScenarioRun {
        ScenarioRun {
            scenario: "toy".into(),
            signals: vec![signal(
                "v(x)",
                Tol::new(1e-3, 1e-4).with_time_shift(2e-12),
                Waveform::from_samples(vec![0.0, 1e-12, 2e-12], vec![0.0, 0.5, -1.25e-3]).unwrap(),
            )],
        }
    }

    #[test]
    fn serialize_parse_round_trip_is_exact() {
        let run = toy_run();
        let text = serialize(&run);
        let back = parse(&text).unwrap();
        assert_eq!(back.scenario, "toy");
        assert_eq!(back.signals.len(), 1);
        let (a, b) = (&run.signals[0], &back.signals[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.tol, b.tol);
        assert_eq!(a.wave.times(), b.wave.times());
        assert_eq!(a.wave.values(), b.wave.values());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("sfet-golden v2\n").is_err());
        assert!(parse("sfet-golden v1\nscenario x\nsignals 1\nsignal s\n").is_err());
        let truncated = serialize(&toy_run());
        let cut = &truncated[..truncated.len() - 30];
        assert!(parse(cut).is_err());
    }

    #[test]
    fn compare_runs_matches_by_name_and_flags_missing() {
        let run = toy_run();
        let reports = compare_runs(&run, &run.clone()).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].report.pass());
        assert_eq!(reports[0].report.worst_margin, 0.0);

        let mut other = run.clone();
        other.signals[0].name = "renamed".into();
        assert!(compare_runs(&run, &other).is_err());
        let mut wrong = run.clone();
        wrong.scenario = "different".into();
        assert!(compare_runs(&run, &wrong).is_err());
    }

    #[test]
    fn compact_caps_long_signals_and_keeps_short_ones() {
        let n = 3000;
        let times: Vec<f64> = (0..n).map(|i| i as f64 * 1e-12).collect();
        let values: Vec<f64> = times.iter().map(|t| (t * 1e12).sin()).collect();
        let long = ScenarioRun {
            scenario: "toy".into(),
            signals: vec![signal(
                "long",
                Tol::new(1e-3, 0.0),
                Waveform::from_samples(times, values).unwrap(),
            )],
        };
        let c = compact(&long).unwrap();
        assert_eq!(c.signals[0].wave.len(), GOLDEN_POINTS);
        let short = compact(&toy_run()).unwrap();
        assert_eq!(short.signals[0].wave.len(), 3);
    }

    #[test]
    fn unknown_scenario_is_a_format_error() {
        assert!(matches!(run_scenario("nope"), Err(VerifyError::Format(_))));
    }

    #[test]
    fn diff_summary_reports_adds_and_removals() {
        let run = toy_run();
        let mut fresh = run.clone();
        fresh.signals.push(signal(
            "extra",
            Tol::new(1.0, 0.0),
            Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 0.0]).unwrap(),
        ));
        let text = diff_summary(&run, &fresh);
        assert!(text.contains("within envelope"));
        assert!(text.contains("added"));
    }
}
