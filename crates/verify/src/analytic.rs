//! Analytic reference circuits with closed-form transient solutions.
//!
//! Every reference pairs a canonical netlist (built by
//! [`sfet_circuit::builders`]) with the exact solution of the signal it
//! probes, so any transient run can be scored with the error norms from
//! [`sfet_numeric::norms`]. The smooth references drive the convergence-order
//! checker in [`crate::order`]; the piecewise-exponential PTM staircase is
//! *event-limited* (its accuracy floor is set by threshold localisation, not
//! by the integration method) and is therefore scored against an absolute
//! tolerance instead of entering the order fit.
//!
//! # The ramp-response trick
//!
//! All voltage-driven references use a one-shot ramp `k·[r(t−t₀) − r(t−t₁)]`
//! (where `r` is the unit ramp) starting *after* `t = 0`, so the DC operating
//! point is identically zero and no initial-condition bookkeeping is needed.
//! For a linear circuit whose unit-*step* response is `s(t)`, the response to
//! a unit ramp is `ρ(t) = ∫₀ᵗ s(τ) dτ`, and superposition gives the ramp
//! response as `k·[ρ(t−t₀) − ρ(t−t₁)]`. The `ρ` kernels for the RC, LC and
//! RLC topologies are implemented below and self-tested against their
//! derivatives.

use sfet_circuit::{builders, Circuit, SourceWaveform};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::integrate::Method;
use sfet_numeric::norms::ErrorNorms;
use sfet_sim::{transient, SimOptions, TranResult};

use crate::Result;

/// Which signal of the reference circuit the exact solution describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// A node voltage, by node name.
    NodeVoltage(&'static str),
    /// A branch current, by element name.
    BranchCurrent(&'static str),
}

/// A reference circuit with a closed-form solution for one probed signal.
pub struct AnalyticReference {
    /// Short stable identifier (used in reports and golden files).
    pub name: &'static str,
    /// One-line description of the topology and what it exercises.
    pub description: &'static str,
    /// Transient duration \[s\].
    pub tstop: f64,
    /// The signal the exact solution describes.
    pub probe: Probe,
    /// Whether the solution is smooth enough for order fitting. Event-limited
    /// references (PTM staircase) set this to `false` and are scored against
    /// [`AnalyticReference::tol_linf`] only.
    pub smooth: bool,
    /// Default `dt` ladder, as divisions of `tstop` (coarse → fine).
    pub divisions: &'static [usize],
    /// L∞ accuracy gate at the finest ladder rung with the default
    /// (trapezoidal) method, in units of [`AnalyticReference::scale`].
    pub tol_linf: f64,
    /// Characteristic signal magnitude (for unit-free tolerance checks).
    pub scale: f64,
    circuit: Circuit,
    exact: Box<dyn Fn(f64) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for AnalyticReference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticReference")
            .field("name", &self.name)
            .field("tstop", &self.tstop)
            .field("probe", &self.probe)
            .field("smooth", &self.smooth)
            .finish_non_exhaustive()
    }
}

impl AnalyticReference {
    /// The reference netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The exact solution of the probed signal at time `t`.
    pub fn exact(&self, t: f64) -> f64 {
        (self.exact)(t)
    }

    /// Simulation options for one ladder rung: `dtmax = tstop / divisions`
    /// with the given integration method and LTE control left off, so the
    /// step size (and hence the measured order) is set by `dtmax` alone.
    pub fn options(&self, divisions: usize, method: Method) -> SimOptions {
        SimOptions::for_duration(self.tstop, divisions).with_method(method)
    }

    /// Runs the reference transient under `opts`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`crate::VerifyError::Sim`].
    pub fn run(&self, opts: &SimOptions) -> Result<TranResult> {
        Ok(transient(&self.circuit, self.tstop, opts)?)
    }

    /// Scores a transient run of this reference against the exact solution.
    ///
    /// # Errors
    ///
    /// [`crate::VerifyError::Sim`] if the probed signal is missing from the
    /// result, [`crate::VerifyError::Numeric`] if the time axis is degenerate.
    pub fn score(&self, result: &TranResult) -> Result<ErrorNorms> {
        let norms = match self.probe {
            Probe::NodeVoltage(node) => result.score_voltage(node, |t| (self.exact)(t))?,
            Probe::BranchCurrent(element) => {
                result.score_branch_current(element, |t| (self.exact)(t))?
            }
        };
        Ok(norms)
    }

    /// Convenience: run at one ladder rung and score.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalyticReference::run`] / [`AnalyticReference::score`]
    /// failures.
    pub fn run_and_score(&self, divisions: usize, method: Method) -> Result<ErrorNorms> {
        let result = self.run(&self.options(divisions, method))?;
        self.score(&result)
    }
}

/// Ramp-response kernel of a first-order lag (series RC voltage, and — after
/// dividing by `R` — series RL current): `ρ(x) = x − τ(1 − e^{−x/τ})`,
/// zero for `x ≤ 0`.
pub fn rho_first_order(x: f64, tau: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x - tau * (1.0 - (-x / tau).exp())
    }
}

/// Ramp-response kernel of the lossless LC tank voltage:
/// `ρ(x) = x − sin(ω₀x)/ω₀`, zero for `x ≤ 0`.
pub fn rho_lc(x: f64, w0: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x - (w0 * x).sin() / w0
    }
}

/// Ramp-response kernel of the underdamped series RLC capacitor voltage
/// (`α = R/2L`, `ω_d = √(ω₀² − α²)`):
///
/// `ρ(x) = x − I_c(x) − (α/ω_d)·I_s(x)` with
/// `I_c = [e^{−αx}(−α cos ω_d x + ω_d sin ω_d x) + α] / ω₀²` and
/// `I_s = [e^{−αx}(−α sin ω_d x − ω_d cos ω_d x) + ω_d] / ω₀²`,
/// zero for `x ≤ 0`. Reduces to [`rho_lc`] at `α = 0`.
pub fn rho_rlc(x: f64, alpha: f64, wd: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let w0_sq = alpha * alpha + wd * wd;
    let e = (-alpha * x).exp();
    let (s, c) = (wd * x).sin_cos();
    let i_cos = (e * (-alpha * c + wd * s) + alpha) / w0_sq;
    let i_sin = (e * (-alpha * s - wd * c) + wd) / w0_sq;
    x - i_cos - (alpha / wd) * i_sin
}

/// Series RC (τ = 1 ps) driven by a 2 ps voltage ramp. Probes `v(out)`.
fn rc_step() -> Result<AnalyticReference> {
    let (r, c) = (1e3, 1e-15);
    let tau = r * c;
    let (t0, t_rise) = (1e-12, 2e-12);
    let k = 1.0 / t_rise;
    let circuit = builders::driven_rc(r, c, SourceWaveform::ramp(0.0, 1.0, t0, t_rise))?;
    Ok(AnalyticReference {
        name: "rc_step",
        description: "series RC ramp response — the basic charging exponential",
        tstop: 8e-12,
        probe: Probe::NodeVoltage("out"),
        smooth: true,
        divisions: &[100, 200, 400, 800, 1600],
        tol_linf: 1e-4,
        scale: 1.0,
        circuit,
        exact: Box::new(move |t| {
            k * (rho_first_order(t - t0, tau) - rho_first_order(t - t0 - t_rise, tau))
        }),
    })
}

/// Series RL (τ = 10 ps) driven by a 5 ps voltage ramp. Probes `i(L1)` —
/// exercises the branch-current unknown and the inductor companion model.
fn rl_step() -> Result<AnalyticReference> {
    let (r, l) = (100.0, 1e-9);
    let tau = l / r;
    let (t0, t_rise) = (2e-12, 5e-12);
    let k = 1.0 / t_rise;
    let circuit = builders::driven_rl(r, l, SourceWaveform::ramp(0.0, 1.0, t0, t_rise))?;
    Ok(AnalyticReference {
        name: "rl_step",
        description: "series RL ramp response probed at the inductor branch current",
        tstop: 50e-12,
        probe: Probe::BranchCurrent("L1"),
        smooth: true,
        divisions: &[100, 200, 400, 800, 1600],
        tol_linf: 1e-4,
        scale: 1e-2,
        circuit,
        exact: Box::new(move |t| {
            k / r * (rho_first_order(t - t0, tau) - rho_first_order(t - t0 - t_rise, tau))
        }),
    })
}

/// Lossless LC tank (ω₀ = 10¹² rad/s) rung by a 3 ps ramp. Probes `v(out)`.
/// The undamped oscillation exposes numerical dissipation: backward Euler
/// decays it, the trapezoidal rule preserves it.
fn lc_tank() -> Result<AnalyticReference> {
    let (l, c) = (1e-9_f64, 1e-15_f64);
    let w0 = 1.0 / (l * c).sqrt();
    let (t0, t_rise) = (1e-12, 3e-12);
    let k = 1.0 / t_rise;
    let circuit = builders::driven_lc(l, c, SourceWaveform::ramp(0.0, 1.0, t0, t_rise))?;
    Ok(AnalyticReference {
        name: "lc_tank",
        description: "lossless LC tank — numerical-dissipation stress test",
        tstop: 12.5e-12,
        probe: Probe::NodeVoltage("out"),
        smooth: true,
        divisions: &[400, 800, 1600, 3200],
        tol_linf: 1e-4,
        scale: 1.0,
        circuit,
        exact: Box::new(move |t| k * (rho_lc(t - t0, w0) - rho_lc(t - t0 - t_rise, w0))),
    })
}

/// Underdamped series RLC (Q ≈ 3) driven by a 60 ps ramp. Probes `v(out)` —
/// the damped ringing mirrors the PDN wake-up waveforms at reduced scale.
fn driven_rlc() -> Result<AnalyticReference> {
    let (r, l, c) = (10.0_f64, 1e-9_f64, 1e-12_f64);
    let alpha = r / (2.0 * l);
    let w0_sq = 1.0 / (l * c);
    let wd = (w0_sq - alpha * alpha).sqrt();
    let (t0, t_rise) = (20e-12, 60e-12);
    let k = 1.0 / t_rise;
    let circuit = builders::driven_rlc(r, l, c, SourceWaveform::ramp(0.0, 1.0, t0, t_rise))?;
    Ok(AnalyticReference {
        name: "driven_rlc",
        description: "underdamped series RLC ramp response — damped ringing",
        tstop: 400e-12,
        probe: Probe::NodeVoltage("out"),
        smooth: true,
        divisions: &[400, 800, 1600, 3200],
        tol_linf: 1e-4,
        scale: 1.0,
        circuit,
        exact: Box::new(move |t| {
            k * (rho_rlc(t - t0, alpha, wd) - rho_rlc(t - t0 - t_rise, alpha, wd))
        }),
    })
}

/// Manufactured-solution reference: a sine current `A·sin ωt` into a
/// parallel RC from rest has the exact solution
/// `v(t) = AR/(1+q²)·(sin ωt − q cos ωt + q e^{−t/τ})` with `q = ωRC`.
/// Unlike the ramp references it has no source corners at all, so it
/// isolates the integrator from the breakpoint-snapping machinery.
fn sine_rc() -> Result<AnalyticReference> {
    let (r, c) = (1e3, 1e-15);
    let tau = r * c;
    let (ampl, freq) = (1e-3, 1e11);
    let w = 2.0 * std::f64::consts::PI * freq;
    let q = w * tau;
    let gain = ampl * r / (1.0 + q * q);
    let circuit = builders::current_driven_rc(
        r,
        c,
        SourceWaveform::Sine {
            offset: 0.0,
            ampl,
            freq,
            delay: 0.0,
        },
    )?;
    Ok(AnalyticReference {
        name: "sine_rc",
        description: "manufactured solution: sine current into parallel RC, corner-free",
        tstop: 30e-12,
        probe: Probe::NodeVoltage("out"),
        smooth: true,
        divisions: &[100, 200, 400, 800, 1600],
        tol_linf: 1e-4,
        scale: 1.0,
        circuit,
        exact: Box::new(move |t| gain * ((w * t).sin() - q * (w * t).cos() + q * (-t / tau).exp())),
    })
}

/// Piecewise-exponential gate-charge staircase through an *ideal* two-state
/// PTM ([`PtmParams::ideal_reference`], `T_PTM = 0`): a 30 ps input ramp
/// charges a capacitor through the PTM, which switches insulating → metallic
/// at `V_IMT` and back at `V_MIT`, producing four closed-form exponential
/// segments. Event-limited (`smooth = false`): the engine localises each
/// threshold crossing to `event_vtol`, a `dt`-independent floor, so this
/// reference gates absolute accuracy rather than convergence order.
fn ptm_staircase() -> Result<AnalyticReference> {
    let params = PtmParams::ideal_reference();
    let c = 1e-15;
    let (tau_ins, tau_met) = (params.r_ins * c, params.r_met * c);
    let (v_imt, v_mit) = (params.v_imt, params.v_mit);
    let t_rise = 30e-12;
    let k = 1.0 / t_rise;

    // Segment boundaries (see docs/VERIFICATION.md for the derivation).
    // S0, insulating under the ramp: v_c = k·ρ(t; τ_ins), and the PTM drop
    // k·t − v_c = k·τ_ins·(1 − e^{−t/τ_ins}) reaches V_IMT at
    let t_imt = -tau_ins * (1.0 - v_imt / (k * tau_ins)).ln();
    let c0 = k * t_imt - v_imt; // v_c at the IMT instant
    debug_assert!(t_imt < t_rise, "IMT must fire during the ramp");
    // S1, metallic under the ramp: first-order lag behind the ramp.
    let a1 = c0 - k * (t_imt - tau_met);
    let v_r = k * (t_rise - tau_met) + a1 * ((t_rise - t_imt) / -tau_met).exp();
    // S2, metallic at the plateau: exponential toward 1 V; the drop 1 − v_c
    // falls to V_MIT at
    let t_mit = t_rise + tau_met * ((1.0 - v_r) / v_mit).ln();
    debug_assert!(t_mit > t_rise);

    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("VIN", inp, gnd, SourceWaveform::ramp(0.0, 1.0, 0.0, t_rise))?;
    ckt.add_ptm("P1", inp, out, params)?;
    ckt.add_capacitor("C1", out, gnd, c)?;

    Ok(AnalyticReference {
        name: "ptm_staircase",
        description: "ideal-PTM gate-charge staircase — four exponential segments, event-limited",
        tstop: 80e-12,
        probe: Probe::NodeVoltage("out"),
        smooth: false,
        divisions: &[400, 800, 1600],
        tol_linf: 1e-2,
        scale: 1.0,
        circuit: ckt,
        exact: Box::new(move |t| {
            if t <= t_imt {
                k * rho_first_order(t, tau_ins)
            } else if t <= t_rise {
                k * (t - tau_met) + a1 * ((t - t_imt) / -tau_met).exp()
            } else if t <= t_mit {
                1.0 - (1.0 - v_r) * ((t - t_rise) / -tau_met).exp()
            } else {
                1.0 - v_mit * ((t - t_mit) / -tau_ins).exp()
            }
        }),
    })
}

/// The full reference catalog, smooth and event-limited.
///
/// # Errors
///
/// Propagates netlist-construction failures (none are expected for the
/// built-in parameter sets).
pub fn catalog() -> Result<Vec<AnalyticReference>> {
    Ok(vec![
        rc_step()?,
        rl_step()?,
        lc_tank()?,
        driven_rlc()?,
        sine_rc()?,
        ptm_staircase()?,
    ])
}

/// The smooth subset of [`catalog`] — the references the order checker uses.
///
/// # Errors
///
/// Propagates [`catalog`] failures.
pub fn smooth_catalog() -> Result<Vec<AnalyticReference>> {
    Ok(catalog()?.into_iter().filter(|r| r.smooth).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference derivative.
    fn deriv(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn rho_first_order_derivative_is_step_response() {
        let tau = 1e-12;
        for &x in &[0.3e-12_f64, 1e-12, 2.5e-12] {
            let expect = 1.0 - (-x / tau).exp();
            let got = deriv(|x| rho_first_order(x, tau), x, 1e-17);
            assert!((got - expect).abs() < 1e-6, "x={x}: {got} vs {expect}");
        }
        assert_eq!(rho_first_order(-1e-12, tau), 0.0);
    }

    #[test]
    fn rho_lc_derivative_is_step_response() {
        let w0 = 1e12;
        for &x in &[0.5e-12_f64, 2e-12, 5e-12] {
            let expect = 1.0 - (w0 * x).cos();
            let got = deriv(|x| rho_lc(x, w0), x, 1e-17);
            assert!((got - expect).abs() < 1e-5, "x={x}: {got} vs {expect}");
        }
    }

    #[test]
    fn rho_rlc_derivative_is_step_response() {
        let (alpha, wd) = (5e9, 3.122e10);
        for &x in &[10e-12_f64, 50e-12, 200e-12] {
            let expect = 1.0 - (-alpha * x).exp() * ((wd * x).cos() + alpha / wd * (wd * x).sin());
            let got = deriv(|x| rho_rlc(x, alpha, wd), x, 1e-16);
            assert!((got - expect).abs() < 1e-4, "x={x}: {got} vs {expect}");
        }
    }

    #[test]
    fn rho_rlc_reduces_to_lc_without_damping() {
        let w0 = 1e12;
        for &x in &[0.7e-12_f64, 3e-12] {
            assert!((rho_rlc(x, 1e-6, w0) - rho_lc(x, w0)).abs() < 1e-18);
        }
    }

    #[test]
    fn sine_rc_solution_satisfies_the_node_equation() {
        let refs = catalog().unwrap();
        let sine = refs.iter().find(|r| r.name == "sine_rc").unwrap();
        let (r, c, ampl, freq) = (1e3, 1e-15, 1e-3, 1e11);
        let w = 2.0 * std::f64::consts::PI * freq;
        // C·v' + v/R must equal the injected current A·sin ωt.
        for &t in &[1e-12, 4.7e-12, 13e-12, 25e-12] {
            let v = sine.exact(t);
            let dv = deriv(|t| sine.exact(t), t, 1e-17);
            let residual = c * dv + v / r - ampl * (w * t).sin();
            assert!(residual.abs() < 1e-7, "t={t}: residual {residual}");
        }
        assert!(sine.exact(0.0).abs() < 1e-15);
    }

    #[test]
    fn staircase_segments_are_continuous_and_threshold_consistent() {
        let refs = catalog().unwrap();
        let st = refs.iter().find(|r| r.name == "ptm_staircase").unwrap();
        // Continuity: scan for jumps anywhere; a discontinuity shows up as a
        // huge central difference.
        let n = 4000;
        let dt = st.tstop / n as f64;
        let mut prev = st.exact(0.0);
        for i in 1..=n {
            let v = st.exact(i as f64 * dt);
            assert!(
                (v - prev).abs() < 0.01,
                "jump at t={:.3e}: {} -> {}",
                i as f64 * dt,
                prev,
                v
            );
            prev = v;
        }
        // Endpoints: starts discharged, ends nearly charged through the
        // insulating tail.
        assert_eq!(st.exact(0.0), 0.0);
        let end = st.exact(st.tstop);
        assert!(end > 0.9 && end < 1.0, "end value {end}");
    }

    #[test]
    fn catalog_circuits_validate_and_probes_resolve() {
        for r in catalog().unwrap() {
            r.circuit().validate().unwrap();
            match r.probe {
                Probe::NodeVoltage(node) => {
                    assert!(r.circuit().find_node(node).is_some(), "{}: {node}", r.name)
                }
                Probe::BranchCurrent(el) => {
                    assert!(r.circuit().find_element(el).is_some(), "{}: {el}", r.name)
                }
            }
            assert!(!r.divisions.is_empty());
            assert!(r.tstop > 0.0 && r.scale > 0.0 && r.tol_linf > 0.0);
        }
    }

    #[test]
    fn references_have_unique_names() {
        let refs = catalog().unwrap();
        let mut names: Vec<_> = refs.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), refs.len());
    }
}
