* RC low-pass charge from a .ic-pinned start.
* Analytic: v(out,t) = 1 - exp(-t/RC), tau = 1k * 1f = 1 ps.
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1f
.ic v(out)=0
.tran 0.05p 8p
.end
