* Two-stage CMOS inverter chain on derived .model cards (engine-pinned).
.model fastn nmos40 vt_shift=-0.05
.model fastp pmos40 vt_shift=0.05
VDD vdd 0 DC 1.0
VIN a 0 PULSE(0 1 50p 10p 10p 150p 400p)
M1 b a vdd vdd fastp W=240n L=40n
M2 b a 0 0 fastn W=120n L=40n
M3 c b vdd vdd fastp W=480n L=40n
M4 c b 0 0 fastn W=240n L=40n
C1 b 0 1f
C2 c 0 2f
.tran 0.5p 400p
.end
