* VCCS charging a capacitor: a transconductance integrator.
* Analytic: v(out,t) ~= (gm/C) * integral(vin) = 1e9 * (t - 10.5p) after the step
* (bleed resistor tau = 1 us >> tstop, so droop is negligible).
V1 in 0 PWL(0 0 10p 0 11p 1 1n 1)
G1 0 out in 0 1m
C1 out 0 1p
R1 out 0 1meg
.tran 1p 500p
.end
