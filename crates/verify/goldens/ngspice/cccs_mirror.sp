* CCCS mirroring a sensed branch current into a load.
* VSENSE carries i = vin/1k; F doubles it into RL: v(out,t) = 2 * vin(t).
V1 in 0 PWL(0 0 100p 1 200p 1)
VSENSE in a 0
R1 a 0 1k
F1 0 out VSENSE 2
RL out 0 1k
.tran 1p 200p
.end
