* Series RLC step response (underdamped).
* alpha = R/2L = 5e9 /s, wd = sqrt(1/LC - alpha^2) = 3.122e10 rad/s.
V1 in 0 PWL(0 0 1p 0 2p 1 1n 1)
R1 in a 10
L1 a b 1n
C1 b 0 1p
.tran 0.5p 600p
.end
