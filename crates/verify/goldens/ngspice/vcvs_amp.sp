* VCVS amplifier over a resistive divider, gain from a .param expression.
* Analytic (memoryless): v(out,t) = gain * vin(t) / 2 = 2 * vin(t).
.param gain=4
V1 in 0 PWL(0 0 100p 1 200p 0.5)
R1 in mid 1k
R2 mid 0 1k
E1 out 0 mid 0 {gain}
RL out 0 10k
.tran 1p 200p
.end
