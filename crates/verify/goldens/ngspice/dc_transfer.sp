* .dc sweep of a loaded divider driving a VCVS.
* Analytic transfer curves: v(mid) = 0.75 * vin, v(out) = 1.5 * vin.
V1 in 0 DC 0
R1 in mid 1k
R2 mid 0 3k
E1 out 0 mid 0 2
RL out 0 10k
.dc V1 0 1 0.05
.end
