* PTM device on a named .model ptm card, pulsed drive (engine-pinned).
.model vo2fast ptm TPTM=5p
VIN in 0 PULSE(0 1 20p 20p 20p 100p 250p)
P1 in out vo2fast
C1 out 0 5f
R1 out 0 100k
.tran 0.5p 500p
.end
