* CCVS translating a sensed branch current into a voltage.
* VSENSE carries i = vin/1k; H applies r = 500: v(out,t) = 0.5 * vin(t).
V1 in 0 PWL(0 0 100p 1 200p 1)
VSENSE in a 0
R1 a 0 1k
H1 out 0 VSENSE 500
RL out 0 1k
.tran 1p 200p
.end
