* Parameterized subcircuit divider: .param, {expr} defaults, and an X override.
* rtop override = 2k propagates into the rbot={rtop} default, so the divider is
* balanced: v(out,t) = vin(t) / 2.
.param rtop=2k
.subckt div in out rtop=1k rbot={rtop}
R1 in out {rtop}
R2 out 0 {rbot}
.ends
V1 in 0 PWL(0 0 100p 1)
X1 in out div rtop={rtop}
.tran 1p 100p
.end
