//! Kill-and-resume golden: crash the Soft-FET power-gate wake transient
//! mid-flight with an injected fault (an honest kill — no snapshot is
//! taken at the crash itself, only the last *periodic* checkpoint
//! survives), resume it, and require the serialised scenario to be
//! byte-identical to the stored `power_gate_wake.golden`.
//!
//! This is deliberately stronger than the envelope comparison the regular
//! golden suite applies: checkpoint/restart must not move a single bit.

use sfet_devices::ptm::PtmParams;
use sfet_numeric::fault::FaultPlan;
use sfet_pdn::power_gate::PowerGateScenario;
use sfet_pdn::PdnError;
use sfet_sim::{CheckpointPolicy, SimError, SimOptions};
use sfet_verify::golden::{compact, golden_path, serialize, GoldenSignal, ScenarioRun};
use sfet_waveform::compare::Tol;

#[test]
fn kill_and_resume_power_gate_reproduces_the_golden_byte_for_byte() {
    let base = PowerGateScenario::default();
    let soft = base.with_soft_fet(PtmParams::vo2_default());
    let opts = SimOptions::for_duration(soft.t_stop, 4000);

    let out_b = base.run().unwrap();

    // Crash the Soft-FET run mid-flight, checkpointing every 200 accepted
    // steps on the way.
    let path = std::env::temp_dir().join(format!("sfet-verify-resume-{}.ckpt", std::process::id()));
    let crashing = opts
        .clone()
        .with_fault_plan(FaultPlan::new().with_crash(800));
    let err = soft
        .run_resumable(&crashing, &CheckpointPolicy::write_to(&path, 200))
        .unwrap_err();
    assert!(
        matches!(err, PdnError::Sim(SimError::InjectedCrash { .. })),
        "expected the injected kill, got: {err}"
    );
    assert!(path.exists(), "no periodic snapshot survived the crash");

    // Resume from the last periodic snapshot with a fault-free plan.
    let out_s = soft
        .run_resumable(&opts, &CheckpointPolicy::disabled().with_resume_from(&path))
        .unwrap();
    let _ = std::fs::remove_file(&path);

    // Assemble the scenario exactly as the golden harness does (same
    // signal names, same code-side tolerances — the `tol` lines are part
    // of the serialised bytes).
    let v_tol = Tol::new(1e-3, 1e-3).with_time_shift(0.2e-9);
    let i_tol = Tol::new(2e-3, 1e-2).with_time_shift(0.2e-9);
    let signal = |name: &str, tol: Tol, wave| GoldenSignal {
        name: name.to_string(),
        tol,
        wave,
    };
    let run = ScenarioRun {
        scenario: "power_gate_wake".into(),
        signals: vec![
            signal("rail_base", v_tol, out_b.rail),
            signal("rail_soft", v_tol, out_s.rail),
            signal("v_virtual_soft", v_tol, out_s.v_virtual),
            signal("i_rail_soft", i_tol, out_s.i_rail),
        ],
    };
    let rendered = serialize(&compact(&run).unwrap());
    let stored = std::fs::read_to_string(golden_path("power_gate_wake")).unwrap();
    assert_eq!(
        rendered, stored,
        "kill-and-resume must reproduce power_gate_wake.golden byte-for-byte"
    );
}
