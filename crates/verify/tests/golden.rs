//! Golden-waveform regression suite: every stored golden under
//! `crates/verify/goldens/` must be reproduced within its tolerance
//! envelope, and the sweep-based scenario must serialise bitwise-identically
//! at 1, 2 and 8 workers (the deterministic parallel engine's contract).
//!
//! After an intentional behaviour change, refresh the files with
//! `cargo run -p sfet-verify --bin golden -- --update`.

use sfet_numeric::exec::ExecConfig;
use sfet_verify::golden::{
    check_scenario, compact, golden_path, run_scenario_with, scenario_names, serialize,
};

#[test]
fn every_scenario_matches_its_stored_golden() {
    for &name in scenario_names() {
        assert!(
            golden_path(name).exists(),
            "missing golden file {} — run `cargo run -p sfet-verify --bin golden -- --update`",
            golden_path(name).display()
        );
        let reports = check_scenario(name).unwrap();
        assert!(!reports.is_empty(), "{name}: golden pinned no signals");
        for r in &reports {
            assert!(
                r.report.pass(),
                "{name}: signal `{}` left its envelope: {}/{} samples out, worst margin \
                 {:.3e} at t={:.4e} (golden {:.6e}, actual {:.6e})",
                r.name,
                r.report.violations,
                r.report.checked,
                r.report.worst_margin,
                r.report.worst_time,
                r.report.worst_golden,
                r.report.worst_actual
            );
        }
    }
}

#[test]
fn sweep_golden_is_bitwise_identical_across_worker_counts() {
    let mut renderings = Vec::new();
    for workers in [1, 2, 8] {
        let cfg = ExecConfig::with_workers(workers);
        let run = run_scenario_with("wake_ramp_tradeoff", &cfg).unwrap();
        renderings.push((workers, serialize(&compact(&run).unwrap())));
    }
    let (_, reference) = &renderings[0];
    for (workers, text) in &renderings[1..] {
        assert_eq!(
            text, reference,
            "wake_ramp_tradeoff serialisation differs between 1 and {workers} workers"
        );
    }
}
