//! `TranStats` counter invariants, enforced across the whole reference
//! catalog and every integration method:
//!
//! * `steps_attempted == steps_accepted + steps_rejected` — every loop
//!   iteration either accepts or rejects, nothing is double-counted;
//! * `newton_iterations >= steps_accepted` — each accepted step converged
//!   through at least one Newton iteration;
//! * the recorded waveform has `steps_accepted + 1` samples (the DC point
//!   plus one per accepted step).

use sfet_numeric::integrate::Method;
use sfet_verify::analytic::catalog;

#[test]
fn stats_counters_are_consistent_across_the_catalog() {
    for reference in catalog().unwrap() {
        for method in [Method::Trapezoidal, Method::BackwardEuler, Method::Gear2] {
            let divisions = reference.divisions[0];
            let result = reference
                .run(&reference.options(divisions, method))
                .unwrap();
            let stats = result.stats();
            assert_eq!(
                stats.steps_attempted,
                stats.steps_accepted + stats.steps_rejected,
                "{} ({method:?}): attempted != accepted + rejected: {stats:?}",
                reference.name
            );
            assert!(
                stats.newton_iterations >= stats.steps_accepted,
                "{} ({method:?}): fewer Newton iterations than accepted steps: {stats:?}",
                reference.name
            );
            assert_eq!(
                result.times().len(),
                stats.steps_accepted + 1,
                "{} ({method:?}): sample count != accepted steps + 1",
                reference.name
            );
            assert!(
                stats.steps_attempted > 0,
                "{} ({method:?}): no steps attempted",
                reference.name
            );
        }
    }
}

#[test]
fn event_refinement_shows_up_as_rejections_not_lost_attempts() {
    // The staircase reference fires two PTM transitions; localising them
    // costs rejected attempts, which must stay inside the attempted total.
    let refs = catalog().unwrap();
    let st = refs.iter().find(|r| r.name == "ptm_staircase").unwrap();
    let result = st
        .run(&st.options(st.divisions[0], Method::Trapezoidal))
        .unwrap();
    let stats = result.stats();
    assert_eq!(stats.ptm_transitions, 2, "IMT + MIT expected: {stats:?}");
    assert!(
        stats.steps_rejected > 0,
        "event refinement rejects: {stats:?}"
    );
    assert_eq!(
        stats.steps_attempted,
        stats.steps_accepted + stats.steps_rejected
    );
}
