//! ngspice-corpus cross-validation.
//!
//! Three layers, per the provenance notes in `sfet_verify::ngspice`:
//!
//! 1. every committed deck re-runs and matches its committed expected CSV
//!    under the corpus tolerance envelopes (regression gate, offline —
//!    ngspice is not invoked);
//! 2. every `Analytic` deck is additionally checked against its
//!    closed-form solution, independently of the CSV — the frontend
//!    features (params, expressions, controlled sources, `.ic`, `.dc`,
//!    subcircuit overrides) are validated against math, not against
//!    ourselves;
//! 3. backend identity: each transient deck produces bitwise-identical
//!    waveforms on the scalar and batched engines, and on the dense and
//!    sparse linear solvers.

use sfet_circuit::parse::{parse_netlist, Analysis};
use sfet_sim::{transient, transient_batch, BatchSpec, LinearSolver, SimOptions};
use sfet_verify::ngspice::{
    check_all, corpus, deck_path, lint_corpus, run_deck, run_deck_with, Provenance,
};
use sfet_waveform::Waveform;

#[test]
fn corpus_matches_committed_expectations() {
    let (pass, report) = check_all().expect("corpus runs and CSVs load");
    assert!(pass, "ngspice corpus out of envelope:\n{report}");
}

#[test]
fn corpus_directory_is_lint_clean() {
    let problems = lint_corpus().expect("corpus dir readable");
    assert!(problems.is_empty(), "corpus lint: {problems:?}");
}

/// Fetches one named signal out of a deck run.
fn signal(run: &[(String, Waveform)], name: &str) -> Waveform {
    run.iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("signal {name} missing"))
        .1
        .clone()
}

/// Asserts a waveform tracks `f(t)` within `abs` everywhere at or after
/// `t_from`.
fn assert_tracks(wave: &Waveform, t_from: f64, abs: f64, f: impl Fn(f64) -> f64) {
    let mut checked = 0usize;
    for (t, v) in wave.iter() {
        if t < t_from {
            continue;
        }
        let want = f(t);
        assert!(
            (v - want).abs() < abs,
            "at t={t:.4e}: got {v:.6e}, analytic {want:.6e}"
        );
        checked += 1;
    }
    assert!(checked > 10, "too few samples checked ({checked})");
}

/// The PWL interpolant used by several decks' drive sources.
fn pwl(points: &[(f64, f64)], t: f64) -> f64 {
    if t <= points[0].0 {
        return points[0].1;
    }
    for w in points.windows(2) {
        let ((t0, v0), (t1, v1)) = (w[0], w[1]);
        if t <= t1 {
            return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
        }
    }
    points[points.len() - 1].1
}

#[test]
fn rc_lowpass_matches_closed_form() {
    // tau = 1k * 1f = 1 ps; .ic releases from ~0 at t=0.
    let run = run_deck("rc_lowpass").unwrap();
    let tau = 1e-12;
    assert_tracks(&signal(&run, "v(out)"), 0.0, 2e-3, |t| {
        1.0 - (-t / tau).exp()
    });
}

#[test]
fn rlc_series_matches_closed_form() {
    // Underdamped series RLC step (R=10, L=1n, C=1p), step centred at 1.5p.
    let run = run_deck("rlc_series").unwrap();
    let (r, l, c): (f64, f64, f64) = (10.0, 1e-9, 1e-12);
    let alpha = r / (2.0 * l);
    let wd = (1.0 / (l * c) - alpha * alpha).sqrt();
    let t0 = 1.5e-12;
    // The drive edge has a 1 ps rise (vs a 201 ps ring period), so the
    // ideal-step formula carries a small systematic error near the edge.
    assert_tracks(&signal(&run, "v(b)"), 5e-12, 3e-2, |t| {
        let tau = t - t0;
        1.0 - (-alpha * tau).exp() * ((wd * tau).cos() + alpha / wd * (wd * tau).sin())
    });
}

#[test]
fn vcvs_amp_matches_closed_form() {
    // Memoryless: v(mid) = vin/2, v(out) = {gain}=4 times v(mid).
    let run = run_deck("vcvs_amp").unwrap();
    let vin = [(0.0, 0.0), (100e-12, 1.0), (200e-12, 0.5)];
    assert_tracks(&signal(&run, "v(mid)"), 0.0, 1e-6, |t| pwl(&vin, t) / 2.0);
    assert_tracks(&signal(&run, "v(out)"), 0.0, 1e-6, |t| 2.0 * pwl(&vin, t));
}

#[test]
fn vccs_integrator_matches_closed_form() {
    // v(out) = (gm/C) * (t - 10.5p) after the input step settles; the
    // 1 meg bleed costs < 2e-4 relative over this window.
    let run = run_deck("vccs_integrator").unwrap();
    assert_tracks(&signal(&run, "v(out)"), 20e-12, 1e-3, |t| {
        1e9 * (t - 10.5e-12)
    });
}

#[test]
fn cccs_mirror_matches_closed_form() {
    // i(VSENSE) = vin/1k (positive: + terminal to - through the source);
    // F doubles it into the 1k load: v(out) = 2 vin.
    let run = run_deck("cccs_mirror").unwrap();
    let vin = [(0.0, 0.0), (100e-12, 1.0), (200e-12, 1.0)];
    assert_tracks(&signal(&run, "i(VSENSE)"), 0.0, 1e-9, |t| {
        pwl(&vin, t) / 1e3
    });
    assert_tracks(&signal(&run, "v(out)"), 0.0, 1e-6, |t| 2.0 * pwl(&vin, t));
}

#[test]
fn ccvs_sense_matches_closed_form() {
    // v(out) = r * i(VSENSE) = 500 * vin/1k = vin/2.
    let run = run_deck("ccvs_sense").unwrap();
    let vin = [(0.0, 0.0), (100e-12, 1.0), (200e-12, 1.0)];
    assert_tracks(&signal(&run, "i(VSENSE)"), 0.0, 1e-9, |t| {
        pwl(&vin, t) / 1e3
    });
    assert_tracks(&signal(&run, "v(out)"), 0.0, 1e-6, |t| pwl(&vin, t) / 2.0);
}

#[test]
fn param_divider_matches_closed_form() {
    // rtop override (2k) feeds the rbot={rtop} default: balanced divider.
    let run = run_deck("param_divider").unwrap();
    let vin = [(0.0, 0.0), (100e-12, 1.0)];
    assert_tracks(&signal(&run, "v(out)"), 0.0, 1e-6, |t| pwl(&vin, t) / 2.0);
}

#[test]
fn dc_transfer_matches_closed_form() {
    // Sweep axis is the swept V1 value: v(mid) = 0.75 vin, v(out) = 1.5 vin.
    let run = run_deck("dc_transfer").unwrap();
    let mid = signal(&run, "v(mid)");
    let out = signal(&run, "v(out)");
    assert_eq!(mid.len(), 21, ".dc 0..1 step 0.05 is 21 points");
    for (vin, v) in mid.iter() {
        assert!((v - 0.75 * vin).abs() < 1e-9, "v(mid) at vin={vin}");
    }
    for (vin, v) in out.iter() {
        assert!((v - 1.5 * vin).abs() < 1e-9, "v(out) at vin={vin}");
    }
}

/// Parses a deck and returns its circuit plus `.tran` options, or None for
/// `.dc` decks.
fn tran_setup(name: &str) -> Option<(sfet_circuit::Circuit, f64, SimOptions)> {
    let text = std::fs::read_to_string(deck_path(name)).unwrap();
    let parsed = parse_netlist(&text).unwrap();
    match parsed.analyses.first() {
        Some(&Analysis::Tran { dtmax, tstop }) => Some((
            parsed.circuit,
            tstop,
            SimOptions::default().with_dtmax(dtmax),
        )),
        _ => None,
    }
}

#[test]
fn scalar_and_batched_runs_are_bitwise_identical() {
    for deck in corpus() {
        let Some((circuit, tstop, opts)) = tran_setup(deck.name) else {
            continue;
        };
        let scalar = transient(&circuit, tstop, &opts).unwrap();
        let spec = BatchSpec {
            circuit: &circuit,
            tstop,
            opts: &opts,
        };
        // Two identical lanes so the batched (not fallback) path engages.
        let batched = transient_batch(&[spec, spec]);
        for lane in &batched {
            let lane = lane.as_ref().unwrap();
            assert_eq!(lane.times(), scalar.times(), "{}: time axis", deck.name);
            for node in scalar.node_names() {
                assert_eq!(
                    scalar.node_samples(node).unwrap(),
                    lane.node_samples(node).unwrap(),
                    "{}: v({node}) diverged between scalar and batched",
                    deck.name
                );
            }
        }
    }
}

#[test]
fn dense_and_sparse_solvers_agree() {
    // Measured on this corpus: the linear (Analytic) decks are *bitwise*
    // identical across the two solvers — both perform the same
    // eliminations in the same IEEE-754 arithmetic for these matrices.
    // The nonlinear decks (MOSFET/PTM) are not: dense partial-pivoting
    // and sparse Gilbert–Peierls factorizations round differently in the
    // last ulp and Newton iteration amplifies that to ~5e-13, so those
    // are held to a 1e-9 absolute envelope instead. If a pivoting change
    // ever breaks the linear-deck exactness, demote it to the envelope —
    // deliberately, not silently.
    for deck in corpus() {
        let dense = run_deck_with(
            deck.name,
            &SimOptions::default().with_solver(LinearSolver::Dense),
        )
        .unwrap();
        let sparse = run_deck_with(
            deck.name,
            &SimOptions::default().with_solver(LinearSolver::Sparse),
        )
        .unwrap();
        for ((name, wd), (_, ws)) in dense.iter().zip(&sparse) {
            assert_eq!(
                wd.times(),
                ws.times(),
                "{}: {name} time axis diverged",
                deck.name
            );
            match deck.provenance {
                Provenance::Analytic => assert_eq!(
                    wd.values(),
                    ws.values(),
                    "{}: {name} diverged between dense and sparse",
                    deck.name
                ),
                Provenance::EnginePinned => {
                    for ((t, vd), (_, vs)) in wd.iter().zip(ws.iter()) {
                        assert!(
                            (vd - vs).abs() < 1e-9,
                            "{}: {name} at t={t:.4e}: dense {vd:.17e} vs sparse {vs:.17e}",
                            deck.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_new_frontend_feature_has_a_deck() {
    // The corpus must keep covering each frontend feature this harness
    // gates: scan the committed deck text for the cards themselves.
    type Pred = Box<dyn Fn(&str) -> bool>;
    let mut need: Vec<(&str, Pred)> = vec![
        (".param", Box::new(|t: &str| t.contains(".param"))),
        ("{expr}", Box::new(|t: &str| t.contains('{'))),
        (".subckt", Box::new(|t: &str| t.contains(".subckt"))),
        ("E card", Box::new(|t: &str| has_card(t, 'e'))),
        ("G card", Box::new(|t: &str| has_card(t, 'g'))),
        ("F card", Box::new(|t: &str| has_card(t, 'f'))),
        ("H card", Box::new(|t: &str| has_card(t, 'h'))),
        (".model", Box::new(|t: &str| t.contains(".model"))),
        (".ic", Box::new(|t: &str| t.contains(".ic"))),
        (".dc", Box::new(|t: &str| t.contains(".dc"))),
    ];
    let texts: Vec<String> = corpus()
        .iter()
        .map(|d| std::fs::read_to_string(deck_path(d.name)).unwrap())
        .collect();
    need.retain(|(_, pred)| !texts.iter().any(|t| pred(t)));
    let missing: Vec<&str> = need.iter().map(|(n, _)| *n).collect();
    assert!(missing.is_empty(), "no deck exercises: {missing:?}");
}

/// True when any non-comment line of the deck starts a card of `kind`.
fn has_card(text: &str, kind: char) -> bool {
    text.lines().any(|l| {
        let l = l.trim();
        !l.starts_with('*')
            && l.chars()
                .next()
                .is_some_and(|c| c.eq_ignore_ascii_case(&kind))
    })
}

#[test]
fn engine_pinned_decks_are_marked() {
    // Honesty check: the nonlinear decks must not masquerade as
    // cross-validated.
    for deck in corpus() {
        let analytic_tested = matches!(
            deck.name,
            "rc_lowpass"
                | "rlc_series"
                | "vcvs_amp"
                | "vccs_integrator"
                | "cccs_mirror"
                | "ccvs_sense"
                | "param_divider"
                | "dc_transfer"
        );
        match deck.provenance {
            Provenance::Analytic => assert!(
                analytic_tested,
                "{}: marked Analytic but has no closed-form test",
                deck.name
            ),
            Provenance::EnginePinned => assert!(
                !analytic_tested,
                "{}: has a closed-form test, promote it to Analytic",
                deck.name
            ),
        }
    }
}
