//! Convergence-order suite: the transient integrators must converge at
//! their nominal order on every smooth analytic reference, and the
//! event-limited PTM staircase must hit its absolute accuracy gate.
//!
//! The order bands here are deliberately wider than the CI regression gate
//! (`ORDER_MARGIN` in `sfet_verify::order`): an observed order *above*
//! nominal is fine (error cancellation), an order below the band is a real
//! integrator regression.

use sfet_numeric::integrate::Method;
use sfet_verify::analytic::{catalog, smooth_catalog};
use sfet_verify::order::measure_order;

#[test]
fn trapezoidal_is_second_order_on_every_smooth_reference() {
    for reference in smooth_catalog().unwrap() {
        let m = measure_order(&reference, Method::Trapezoidal, reference.divisions).unwrap();
        assert!(
            m.fit.order >= 1.85,
            "{}: trapezoidal order {:.3} below 1.85 (ladder {:?})",
            reference.name,
            m.fit.order,
            m.l2
        );
        assert!(
            m.fit.order <= 2.7,
            "{}: trapezoidal order {:.3} suspiciously high — ladder outside \
             the asymptotic range",
            reference.name,
            m.fit.order
        );
        assert!(
            m.fit.r2 >= 0.95,
            "{}: poor log-log fit r²={:.4}",
            reference.name,
            m.fit.r2
        );
    }
}

#[test]
fn backward_euler_is_first_order_on_every_smooth_reference() {
    for reference in smooth_catalog().unwrap() {
        let m = measure_order(&reference, Method::BackwardEuler, reference.divisions).unwrap();
        assert!(
            m.fit.order >= 0.9,
            "{}: backward-Euler order {:.3} below 0.9",
            reference.name,
            m.fit.order
        );
        assert!(
            m.fit.order <= 1.6,
            "{}: backward-Euler order {:.3} suspiciously high",
            reference.name,
            m.fit.order
        );
        assert!(
            m.fit.r2 >= 0.95,
            "{}: poor log-log fit r²={:.4}",
            reference.name,
            m.fit.r2
        );
    }
}

#[test]
fn gear2_clears_the_conservative_first_order_gate() {
    for reference in smooth_catalog().unwrap() {
        let m = measure_order(&reference, Method::Gear2, reference.divisions).unwrap();
        assert!(
            m.pass(),
            "{}: Gear2 order {:.3} below nominal − margin",
            reference.name,
            m.fit.order
        );
    }
}

#[test]
fn every_reference_hits_its_accuracy_gate_at_the_finest_rung() {
    for reference in catalog().unwrap() {
        let finest = *reference.divisions.last().unwrap();
        let norms = reference
            .run_and_score(finest, Method::Trapezoidal)
            .unwrap();
        assert!(
            norms.linf / reference.scale <= reference.tol_linf,
            "{}: L∞ {:.3e} (scale {:.1e}) exceeds gate {:.1e}",
            reference.name,
            norms.linf,
            reference.scale,
            reference.tol_linf
        );
    }
}

#[test]
fn errors_shrink_monotonically_down_the_trapezoidal_ladder() {
    for reference in smooth_catalog().unwrap() {
        let m = measure_order(&reference, Method::Trapezoidal, reference.divisions).unwrap();
        for pair in m.l2.windows(2) {
            assert!(
                pair[1] < pair[0],
                "{}: L2 ladder not monotone: {:?}",
                reference.name,
                m.l2
            );
        }
    }
}
