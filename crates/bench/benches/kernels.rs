//! Criterion benchmarks of the simulator kernels: dense/sparse LU,
//! device-model evaluation, and transient integration of reference
//! circuits. These track the cost of the substrate the paper experiments
//! run on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::mosfet::{self, MosfetModel};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::dense::DenseMatrix;
use sfet_numeric::sparse::TripletMatrix;
use sfet_sim::{transient, SimOptions};

fn dense_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_lu");
    for &n in &[8usize, 32, 128] {
        let mut a = DenseMatrix::zeros(n, n);
        let mut seed = 1u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for r in 0..n {
            for col in 0..n {
                a.set(r, col, next());
            }
            a.add(r, r, 4.0);
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("factor_solve", n), &n, |bench, _| {
            bench.iter(|| {
                let lu = a.clone().lu().expect("well-conditioned");
                std::hint::black_box(lu.solve(&b).expect("sized rhs"));
            })
        });
    }
    group.finish();
}

fn sparse_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_lu");
    for &n in &[64usize, 256, 1024] {
        // PDN-like ladder: tridiagonal plus a few long-range couplings.
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
                t.push(i - 1, i, -1.0);
            }
            if i + 17 < n {
                t.push(i, i + 17, -0.1);
            }
        }
        let a = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::new("factor_solve", n), &n, |bench, _| {
            bench.iter(|| {
                let lu = a.lu().expect("well-conditioned");
                std::hint::black_box(lu.solve(&b).expect("sized rhs"));
            })
        });
    }
    group.finish();
}

/// Clone-and-factor versus the persistent-workspace reuse path, for both
/// backends — the PR-2 hot-loop optimisation. Same matrices as the
/// `dense_lu` / `sparse_lu` groups so the absolute numbers line up.
fn factor_reuse(c: &mut Criterion) {
    use sfet_numeric::dense::LuFactors;

    let mut group = c.benchmark_group("factor_reuse");
    for &n in &[8usize, 16, 32, 128] {
        let mut a = DenseMatrix::zeros(n, n);
        let mut seed = 1u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for r in 0..n {
            for col in 0..n {
                a.set(r, col, next());
            }
            a.add(r, r, 4.0);
        }
        let b0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Pre-PR2 engine hot path (clone + row-major LU from scratch),
        // preserved in `sfet_bench::legacy` as the comparison baseline.
        group.bench_with_input(
            BenchmarkId::new("dense_clone_lu_legacy", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    std::hint::black_box(sfet_bench::legacy::dense_clone_lu_solve(&a, &b0));
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("dense_clone_lu", n), &n, |bench, _| {
            bench.iter(|| {
                let lu = a.clone().lu().expect("well-conditioned");
                std::hint::black_box(lu.solve(&b0).expect("sized rhs"));
            })
        });
        let mut factors = LuFactors::workspace(n);
        let mut b = b0.clone();
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("dense_refactor", n), &n, |bench, _| {
            bench.iter(|| {
                factors.refactor(&a).expect("well-conditioned");
                b.copy_from_slice(&b0);
                factors
                    .solve_in_place(&mut b, &mut scratch)
                    .expect("sized rhs");
                std::hint::black_box(&b);
            })
        });
    }
    for &n in &[64usize, 256, 1024] {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
                t.push(i - 1, i, -1.0);
            }
            if i + 17 < n {
                t.push(i, i + 17, -0.1);
            }
        }
        let a = t.to_csc();
        let b0: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::new("sparse_full_lu", n), &n, |bench, _| {
            bench.iter(|| {
                let lu = a.lu().expect("well-conditioned");
                std::hint::black_box(lu.solve(&b0).expect("sized rhs"));
            })
        });
        let mut lu = a.lu().expect("well-conditioned");
        let mut b = b0.clone();
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("sparse_refactor", n), &n, |bench, _| {
            bench.iter(|| {
                lu.refactor(&a).expect("same pattern");
                b.copy_from_slice(&b0);
                lu.solve_in_place(&mut b, &mut scratch).expect("sized rhs");
                std::hint::black_box(&b);
            })
        });
    }
    group.finish();
}

fn device_eval(c: &mut Criterion) {
    let nmos = MosfetModel::nmos_40nm();
    c.bench_function("mosfet_ekv_eval", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v += 1e-6;
            let bias = v % 1.0;
            std::hint::black_box(mosfet::eval(&nmos, 120e-9, 40e-9, bias, 1.0, 0.0, 0.0))
        })
    });
}

fn rc_transient(c: &mut Criterion) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("V1", a, gnd, SourceWaveform::ramp(0.0, 1.0, 0.0, 10e-12))
        .expect("build rc");
    ckt.add_resistor("R1", a, out, 1e3).expect("build rc");
    ckt.add_capacitor("C1", out, gnd, 1e-15).expect("build rc");
    c.bench_function("transient_rc_1000_steps", |b| {
        let opts = SimOptions::for_duration(10e-12, 1000);
        b.iter(|| std::hint::black_box(transient(&ckt, 10e-12, &opts).expect("rc converges")))
    });
}

fn softfet_inverter_transient(c: &mut Criterion) {
    use softfet::inverter::{InverterSpec, Topology};
    use softfet::metrics::run_inverter;
    let soft = InverterSpec::minimum(1.0, Topology::SoftFet(PtmParams::vo2_default()));
    let base = InverterSpec::minimum(1.0, Topology::Baseline);
    c.bench_function("transient_inverter_baseline", |b| {
        b.iter(|| std::hint::black_box(run_inverter(&base).expect("baseline converges")))
    });
    c.bench_function("transient_inverter_softfet", |b| {
        b.iter(|| std::hint::black_box(run_inverter(&soft).expect("softfet converges")))
    });
}

fn solver_backend(c: &mut Criterion) {
    use sfet_sim::LinearSolver;
    // Power-grid mesh sized to show the dense/sparse crossover.
    let mut group = c.benchmark_group("solver_backend");
    for &n in &[4usize, 8, 14] {
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let vrm = ckt.node("vrm");
        ckt.add_voltage_source("VRM", vrm, gnd, SourceWaveform::Dc(1.0))
            .expect("grid build");
        let corner = ckt.node("g0_0");
        ckt.add_resistor("Rfeed", vrm, corner, 0.05)
            .expect("grid build");
        for i in 0..n {
            for j in 0..n {
                let here = ckt.node(&format!("g{i}_{j}"));
                if i + 1 < n {
                    let down = ckt.node(&format!("g{}_{j}", i + 1));
                    ckt.add_resistor(&format!("Rv{i}_{j}"), here, down, 0.1)
                        .expect("grid build");
                }
                if j + 1 < n {
                    let right = ckt.node(&format!("g{i}_{}", j + 1));
                    ckt.add_resistor(&format!("Rh{i}_{j}"), here, right, 0.1)
                        .expect("grid build");
                }
                ckt.add_capacitor(&format!("C{i}_{j}"), here, gnd, 1e-12)
                    .expect("grid build");
            }
        }
        let far = ckt.node(&format!("g{}_{}", n - 1, n - 1));
        ckt.add_current_source(
            "Iload",
            far,
            gnd,
            SourceWaveform::ramp(0.0, 0.1, 0.2e-9, 0.2e-9),
        )
        .expect("grid build");
        let tstop = 2e-9;
        for solver in [LinearSolver::Dense, LinearSolver::Sparse] {
            let opts = SimOptions::for_duration(tstop, 100).with_solver(solver);
            group.bench_with_input(BenchmarkId::new(solver.to_string(), n * n), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(transient(&ckt, tstop, &opts).expect("grid converges"))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = dense_lu, sparse_lu, factor_reuse, device_eval, rc_transient,
        softfet_inverter_transient, solver_backend
);
criterion_main!(kernels);
