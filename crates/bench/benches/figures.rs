//! Criterion benchmarks of the per-figure experiment pipelines.
//!
//! One benchmark per paper artifact (scaled-down parameter sets where the
//! full sweep would take minutes). These both time the harness and act as
//! smoke tests that every figure's pipeline stays runnable.

use criterion::{criterion_group, criterion_main, Criterion};
use sfet_devices::ptm::{hysteresis_sweep, PtmParams};
use sfet_pdn::io_buffer::IoBufferScenario;
use sfet_pdn::power_gate::PowerGateScenario;
use softfet::design_space::{slew_sweep, tptm_sweep, vimt_vmit_grid};
use softfet::inverter::{InverterSpec, Topology};
use softfet::metrics::measure_inverter;

fn fig02_hysteresis(c: &mut Criterion) {
    let p = PtmParams::vo2_default();
    c.bench_function("fig02_hysteresis_sweep", |b| {
        b.iter(|| std::hint::black_box(hysteresis_sweep(&p, 1.0, 200).expect("sweeps")))
    });
}

fn fig04_inverter_pair(c: &mut Criterion) {
    c.bench_function("fig04_soft_vs_baseline", |b| {
        b.iter(|| {
            let base = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline))
                .expect("baseline");
            let soft = measure_inverter(&InverterSpec::minimum(
                1.0,
                Topology::SoftFet(PtmParams::vo2_default()),
            ))
            .expect("softfet");
            std::hint::black_box((base.i_max, soft.i_max))
        })
    });
}

fn fig06_grid_small(c: &mut Criterion) {
    c.bench_function("fig06_grid_3x1", |b| {
        b.iter(|| {
            std::hint::black_box(
                vimt_vmit_grid(1.0, PtmParams::vo2_default(), &[0.3, 0.4, 0.5], &[0.1])
                    .expect("grid"),
            )
        })
    });
}

fn fig08_tptm_small(c: &mut Criterion) {
    c.bench_function("fig08_tptm_3pts", |b| {
        b.iter(|| {
            std::hint::black_box(
                tptm_sweep(1.0, PtmParams::vo2_default(), &[5e-12, 10e-12, 20e-12]).expect("sweep"),
            )
        })
    });
}

fn fig09_slew_small(c: &mut Criterion) {
    c.bench_function("fig09_slew_2pts", |b| {
        b.iter(|| {
            std::hint::black_box(
                slew_sweep(1.0, PtmParams::vo2_default(), &[30e-12, 100e-12]).expect("sweep"),
            )
        })
    });
}

fn fig10_power_gate(c: &mut Criterion) {
    c.bench_function("fig10_power_gate_wakeup", |b| {
        let s = PowerGateScenario::default();
        b.iter(|| std::hint::black_box(s.run().expect("wakeup converges")))
    });
}

fn fig11_io_buffer(c: &mut Criterion) {
    c.bench_function("fig11_io_buffer_edge", |b| {
        let s = IoBufferScenario::default();
        b.iter(|| std::hint::black_box(s.run().expect("edge converges")))
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig02_hysteresis,
        fig04_inverter_pair,
        fig06_grid_small,
        fig08_tptm_small,
        fig09_slew_small,
        fig10_power_gate,
        fig11_io_buffer
);
criterion_main!(figures);
