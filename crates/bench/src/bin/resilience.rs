//! Resilience smoke — a fault-tolerant, resumable Monte-Carlo I_MAX sweep.
//!
//! Runs the standard PTM-variation Monte-Carlo population through the
//! manifest-journalled sweep path: every completed sample is recorded in
//! a sweep manifest, so killing the process (or injecting task faults via
//! `SFET_FAULT_PLAN=task@2x9999,task@4x9999`) and re-running the same
//! command finishes only the remainder and reproduces the uninterrupted
//! population bit-exactly. The manifest doubles as the CI artifact the
//! kill-and-resume smoke job uploads.
//!
//! Flags: `--manifest <path>` (default `<fig dir>/resilience_mc.manifest`),
//! `--samples <n>` (default 24), `--seed <u64>` (default 123). Exits with
//! status 1 when any sample is still `Failed` after retries, so CI can
//! assert both the degraded first pass and the clean resumed pass.

use sfet_bench::{banner, figure_dir, save_rows};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::exec::ExecConfig;
use softfet::variation::{monte_carlo_imax_resumable, summarize_outcomes, PtmVariation};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    })
}

fn main() {
    banner("Resilience", "Fault-tolerant resumable Monte-Carlo sweep");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let manifest = flag_value(&args, "--manifest")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| figure_dir().join("resilience_mc.manifest"));
    let samples: usize = flag_value(&args, "--samples")
        .map(|s| s.parse().expect("--samples: expected an integer"))
        .unwrap_or(24);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().expect("--seed: expected a u64"))
        .unwrap_or(123);

    let cfg = ExecConfig::from_env();
    let base = PtmParams::vo2_default();
    let var = PtmVariation::default();
    println!(
        "sweep: n = {samples}, seed = {seed}, manifest = {}",
        manifest.display()
    );
    if std::env::var_os("SFET_FAULT_PLAN").is_some() {
        println!("  [fault] SFET_FAULT_PLAN armed — expect degraded results");
    }

    let outcomes = match monte_carlo_imax_resumable(&cfg, 1.0, base, &var, samples, seed, &manifest)
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::with_capacity(samples);
    let mut failed = 0usize;
    for (i, o) in outcomes.iter().enumerate() {
        match o.value() {
            Some(v) => rows.push(format!("{i},{},{:.17e}", o.attempts(), v)),
            None => {
                failed += 1;
                rows.push(format!("{i},{},FAILED", o.attempts()));
                if let Some(e) = o.error() {
                    eprintln!("  sample {i} failed after {} attempt(s): {e}", o.attempts());
                }
            }
        }
    }
    save_rows("resilience_mc.csv", "sample,attempts,i_max", &rows);

    let retried = outcomes.iter().filter(|o| o.attempts() > 1).count();
    println!(
        "completed {}/{} samples ({retried} retried, {failed} failed)",
        samples - failed,
        samples
    );
    if let Some(summary) = summarize_outcomes(&outcomes, f64::INFINITY) {
        println!(
            "I_MAX over successes: mean = {:.4e} A, sigma = {:.4e} A",
            summary.mean_i_max, summary.std_i_max
        );
    }
    if failed > 0 {
        eprintln!("{failed} sample(s) unrecovered — resume with the same command to retry");
        std::process::exit(1);
    }
}
