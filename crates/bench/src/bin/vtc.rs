//! Supplementary: voltage-transfer characteristics and static noise
//! margins of the Soft-FET inverter vs baseline (the paper's §III-A claim
//! that DC characteristics are unperturbed, quantified).

use sfet_bench::{banner, save_rows};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::mosfet::MosfetModel;
use sfet_devices::ptm::PtmParams;
use sfet_sim::{dc_sweep, SimOptions};
use sfet_waveform::measure::noise_margins;
use softfet::report::Table;

fn inverter(with_ptm: bool) -> Result<Circuit, Box<dyn std::error::Error>> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let g = ckt.node("g");
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("VDD", vdd, gnd, SourceWaveform::Dc(1.0))?;
    ckt.add_voltage_source("VIN", inp, gnd, SourceWaveform::Dc(0.0))?;
    if with_ptm {
        ckt.add_ptm("P1", inp, g, PtmParams::vo2_default())?;
    } else {
        ckt.add_resistor("R1", inp, g, 0.1)?;
    }
    ckt.add_mosfet(
        "MP",
        out,
        g,
        vdd,
        vdd,
        MosfetModel::pmos_40nm(),
        240e-9,
        40e-9,
    )?;
    ckt.add_mosfet(
        "MN",
        out,
        g,
        gnd,
        gnd,
        MosfetModel::nmos_40nm(),
        120e-9,
        40e-9,
    )?;
    ckt.add_capacitor("CL", out, gnd, 2e-15)?;
    Ok(ckt)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "§III-A",
        "DC transfer characteristics: Soft-FET vs baseline",
    );
    let points: Vec<f64> = (0..=100).map(|k| k as f64 / 100.0).collect();
    let opts = SimOptions::default();

    let base = dc_sweep(&inverter(false)?, "VIN", &points, &opts)?;
    let soft = dc_sweep(&inverter(true)?, "VIN", &points, &opts)?;
    let vtc_base = base.transfer_curve("out")?;
    let vtc_soft = soft.transfer_curve("out")?;

    let nm_base = noise_margins(&vtc_base)?;
    let nm_soft = noise_margins(&vtc_soft)?;

    let mut t = Table::new(&["metric", "baseline", "soft-fet"]);
    let row = |name: &str, a: f64, b: f64| {
        vec![
            name.to_string(),
            format!("{:.4} V", a),
            format!("{:.4} V", b),
        ]
    };
    t.add_row(row("V_M (switching threshold)", nm_base.v_m, nm_soft.v_m));
    t.add_row(row("V_IL", nm_base.v_il, nm_soft.v_il));
    t.add_row(row("V_IH", nm_base.v_ih, nm_soft.v_ih));
    t.add_row(row("NM_L", nm_base.nm_l, nm_soft.nm_l));
    t.add_row(row("NM_H", nm_base.nm_h, nm_soft.nm_h));
    println!("{t}");

    let worst = points
        .iter()
        .map(|&v| (vtc_base.value_at(v) - vtc_soft.value_at(v)).abs())
        .fold(0.0f64, f64::max);
    println!(
        "largest VTC deviation across the sweep: {:.2} mV — the PTM leaves \
         the DC characteristics unperturbed, unlike the Hyper-FET (paper §III-A).",
        worst * 1e3
    );

    let rows: Vec<String> = points
        .iter()
        .map(|&v| format!("{v},{},{}", vtc_base.value_at(v), vtc_soft.value_at(v)))
        .collect();
    save_rows("vtc_comparison.csv", "vin,vout_base,vout_soft", &rows);
    Ok(())
}
