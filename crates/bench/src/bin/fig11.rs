//! Fig. 11 — Soft-FET I/O buffer: simultaneous-switching-noise reduction
//! and the resulting energy-efficiency gain.

use sfet_bench::{banner, save_csv, save_rows};
use sfet_devices::ptm::PtmParams;
use sfet_pdn::io_buffer::IoBufferScenario;
use softfet::io_buffer::{compare_io_buffer, ssn_vs_slew};
use softfet::report::{fmt_pct, fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 11", "Soft-FET I/O buffer: SSN and energy efficiency");
    let scenario = IoBufferScenario::default();
    println!(
        "pad load {} behind L_vdd={} / L_vss={}; driver {}x{}",
        fmt_si(scenario.c_pad, "F"),
        fmt_si(scenario.l_vdd, "H"),
        fmt_si(scenario.l_vss, "H"),
        fmt_si(scenario.wp, "m"),
        fmt_si(scenario.wn, "m"),
    );

    let ptm = PtmParams::vo2_default();
    let cmp = compare_io_buffer(&scenario, ptm)?;

    let mut table = Table::new(&["metric", "baseline", "soft-fet", "change"]);
    table.add_row(vec![
        "V_CC bounce".into(),
        fmt_si(cmp.baseline.vdd_bounce, "V"),
        fmt_si(cmp.soft.vdd_bounce, "V"),
        fmt_pct(-100.0 * (1.0 - cmp.soft.vdd_bounce / cmp.baseline.vdd_bounce)),
    ]);
    table.add_row(vec![
        "V_SS bounce".into(),
        fmt_si(cmp.baseline.vss_bounce, "V"),
        fmt_si(cmp.soft.vss_bounce, "V"),
        fmt_pct(-100.0 * (1.0 - cmp.soft.vss_bounce / cmp.baseline.vss_bounce)),
    ]);
    table.add_row(vec![
        "SSN (worst)".into(),
        fmt_si(cmp.baseline.ssn, "V"),
        fmt_si(cmp.soft.ssn, "V"),
        format!("-{}", fmt_pct(cmp.ssn_reduction_pct())),
    ]);
    table.add_row(vec![
        "peak current".into(),
        fmt_si(cmp.baseline.i_peak, "A"),
        fmt_si(cmp.soft.i_peak, "A"),
        fmt_pct(-100.0 * (1.0 - cmp.soft.i_peak / cmp.baseline.i_peak)),
    ]);
    table.add_row(vec![
        "pad delay".into(),
        fmt_si(cmp.baseline.delay, "s"),
        fmt_si(cmp.soft.delay, "s"),
        format!("+{}", fmt_si(cmp.delay_penalty(), "s")),
    ]);
    println!("{table}");
    println!(
        "SSN reduction: {} (paper: ~46%)",
        fmt_pct(cmp.ssn_reduction_pct())
    );
    println!(
        "energy-efficiency gain from released guard band at V_CC = 1 V: {} (paper: 8.8%)",
        fmt_pct(cmp.energy_gain_pct(1.0))
    );

    // SSN improvement vs input transition time (paper: improvement grows
    // with input transition time).
    let rises: Vec<f64> = [50.0, 100.0, 150.0, 200.0, 300.0]
        .iter()
        .map(|ps| ps * 1e-12)
        .collect();
    let sweep = ssn_vs_slew(&scenario, ptm, &rises)?;
    let mut stable = Table::new(&["input rise", "SSN base", "SSN soft", "improvement"]);
    let mut rows = Vec::new();
    for p in &sweep {
        stable.add_row(vec![
            fmt_si(p.input_rise, "s"),
            fmt_si(p.ssn_base, "V"),
            fmt_si(p.ssn_soft, "V"),
            fmt_pct(p.improvement_pct),
        ]);
        rows.push(format!(
            "{:e},{:e},{:e},{}",
            p.input_rise, p.ssn_base, p.ssn_soft, p.improvement_pct
        ));
    }
    println!("{stable}");
    println!("paper expectation: higher SSN improvement with increasing input transition time.");

    save_csv(
        "fig11_rails_soft.csv",
        &[
            ("vddi", &cmp.soft.vddi),
            ("vssi", &cmp.soft.vssi),
            ("pad", &cmp.soft.v_pad),
            ("i_vdd", &cmp.soft.i_vdd),
        ],
    );
    save_csv(
        "fig11_rails_baseline.csv",
        &[
            ("vddi", &cmp.baseline.vddi),
            ("vssi", &cmp.baseline.vssi),
            ("pad", &cmp.baseline.v_pad),
            ("i_vdd", &cmp.baseline.i_vdd),
        ],
    );
    save_rows(
        "fig11_ssn_vs_slew.csv",
        "input_rise,ssn_base,ssn_soft,improvement_pct",
        &rows,
    );
    Ok(())
}
