//! Ablations of the simulator design choices called out in DESIGN.md:
//!
//! 1. integration method (backward Euler vs trapezoidal vs Gear-2) —
//!    accuracy on an analytic RC reference and effect on Soft-FET metrics;
//! 2. PTM event refinement (`event_vtol`) — how crossing tolerance moves
//!    the measured transition times and I_MAX;
//! 3. linear-solver backend (dense vs sparse) — result equivalence (the
//!    runtime comparison lives in the Criterion `kernels` bench).

use sfet_bench::banner;
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::integrate::Method;
use sfet_sim::{transient, LinearSolver, SimOptions};
use softfet::inverter::{InverterSpec, Topology};
use softfet::metrics::{inverter_sim_options, measure_from_result};
use softfet::report::{fmt_si, Table};

fn rc_reference_error(method: Method, points: usize) -> f64 {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    let gnd = Circuit::ground();
    ckt.add_voltage_source("V1", a, gnd, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-15))
        .expect("rc build");
    ckt.add_resistor("R1", a, out, 1e3).expect("rc build");
    ckt.add_capacitor("C1", out, gnd, 1e-15).expect("rc build");
    let tstop = 5e-12;
    let opts = SimOptions::for_duration(tstop, points).with_method(method);
    let r = transient(&ckt, tstop, &opts).expect("rc converges");
    let v = r.voltage("out").expect("node exists");
    let mut worst = 0.0f64;
    for k in 1..=50 {
        let t = tstop * k as f64 / 50.0;
        let exact = 1.0 - (-t / 1e-12).exp();
        worst = worst.max((v.value_at(t) - exact).abs());
    }
    worst
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Ablation 1",
        "Integration method: RC accuracy and Soft-FET metrics",
    );
    let mut t1 = Table::new(&["method", "RC err (100 pts)", "RC err (400 pts)", "order"]);
    for method in [Method::BackwardEuler, Method::Trapezoidal, Method::Gear2] {
        let e1 = rc_reference_error(method, 100);
        let e2 = rc_reference_error(method, 400);
        t1.add_row(vec![
            method.to_string(),
            format!("{e1:.2e}"),
            format!("{e2:.2e}"),
            format!("{:.1}", (e1 / e2).log2() / 2.0),
        ]);
    }
    println!("{t1}");

    let ptm = PtmParams::vo2_default();
    let mut t2 = Table::new(&["method", "I_MAX", "delay", "transitions"]);
    for method in [Method::BackwardEuler, Method::Trapezoidal, Method::Gear2] {
        let spec = InverterSpec::minimum(1.0, Topology::SoftFet(ptm));
        let opts = inverter_sim_options(&spec).with_method(method);
        let result = transient(&spec.build()?, spec.t_stop, &opts)?;
        let m = measure_from_result(&spec, &result)?;
        t2.add_row(vec![
            method.to_string(),
            fmt_si(m.i_max, "A"),
            fmt_si(m.delay, "s"),
            m.transitions.to_string(),
        ]);
    }
    println!("{t2}");
    println!("expectation: metrics agree across methods (method-independent physics).\n");

    banner("Ablation 2", "PTM event refinement tolerance (event_vtol)");
    let mut t3 = Table::new(&["event_vtol", "I_MAX", "first transition", "rejected steps"]);
    for vtol in [50e-3, 10e-3, 2e-3, 0.5e-3] {
        let spec = InverterSpec::minimum(1.0, Topology::SoftFet(ptm));
        let mut opts = inverter_sim_options(&spec);
        opts.event_vtol = vtol;
        let result = transient(&spec.build()?, spec.t_stop, &opts)?;
        let events = result.ptm_events("PG1")?;
        let m = measure_from_result(&spec, &result)?;
        t3.add_row(vec![
            fmt_si(vtol, "V"),
            fmt_si(m.i_max, "A"),
            events
                .first()
                .map(|e| fmt_si(e.time, "s"))
                .unwrap_or_else(|| "-".into()),
            result.stats().steps_rejected.to_string(),
        ]);
    }
    println!("{t3}");
    println!("expectation: transition time converges as the tolerance tightens, at the cost of rejected steps.\n");

    banner(
        "Ablation 3",
        "LTE step control vs fixed stepping (smooth PDN-scale problem)",
    );
    {
        use sfet_circuit::{Circuit, SourceWaveform};
        let build = || -> Result<Circuit, Box<dyn std::error::Error>> {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let m1 = ckt.node("m1");
            let out = ckt.node("out");
            let gnd = Circuit::ground();
            ckt.add_voltage_source("V1", a, gnd, SourceWaveform::ramp(0.0, 1.0, 0.1e-9, 0.3e-9))?;
            ckt.add_resistor("R1", a, m1, 50.0)?;
            ckt.add_inductor("L1", m1, out, 1e-9)?;
            ckt.add_capacitor("C1", out, gnd, 1e-12)?;
            Ok(ckt)
        };
        let ckt = build()?;
        let tstop = 10e-9;
        let fixed = transient(&ckt, tstop, &SimOptions::for_duration(tstop, 8000))?;
        let mut lte_opts = SimOptions::for_duration(tstop, 200).with_lte(0.5e-3);
        lte_opts.dtmax = tstop / 50.0;
        let lte = transient(&ckt, tstop, &lte_opts)?;
        let vf = fixed.voltage("out")?;
        let vl = lte.voltage("out")?;
        let mut worst = 0.0f64;
        for k in 1..=40 {
            let tq = tstop * k as f64 / 40.0;
            worst = worst.max((vf.value_at(tq) - vl.value_at(tq)).abs());
        }
        let mut t5 = Table::new(&["controller", "accepted steps", "worst deviation"]);
        t5.add_row(vec![
            "fixed dt (8000 pts)".into(),
            fixed.stats().steps_accepted.to_string(),
            "reference".into(),
        ]);
        t5.add_row(vec![
            "LTE (tol 0.5 mV)".into(),
            lte.stats().steps_accepted.to_string(),
            fmt_si(worst, "V"),
        ]);
        println!("{t5}");
        println!(
            "expectation: LTE control reaches reference accuracy in a fraction of the steps.\n"
        );
    }

    banner(
        "Ablation 4",
        "Linear-solver backend equivalence (dense vs sparse)",
    );
    let spec = InverterSpec::minimum(1.0, Topology::SoftFet(ptm));
    let mut rows = Vec::new();
    for solver in [LinearSolver::Dense, LinearSolver::Sparse] {
        let opts = inverter_sim_options(&spec).with_solver(solver);
        let start = std::time::Instant::now();
        let result = transient(&spec.build()?, spec.t_stop, &opts)?;
        let wall = start.elapsed();
        let m = measure_from_result(&spec, &result)?;
        rows.push((solver, m.i_max, m.delay, wall));
    }
    let mut t4 = Table::new(&["solver", "I_MAX", "delay", "wall time"]);
    for (solver, imax, delay, wall) in &rows {
        t4.add_row(vec![
            solver.to_string(),
            fmt_si(*imax, "A"),
            fmt_si(*delay, "s"),
            format!("{:.1} ms", wall.as_secs_f64() * 1e3),
        ]);
    }
    println!("{t4}");
    let di = (rows[0].1 - rows[1].1).abs() / rows[0].1;
    println!("I_MAX relative deviation between backends: {di:.2e} (must be ~1e-6 class)");
    Ok(())
}
