//! Fig. 9 — effect of the input slew rate on the Soft-FET benefit, plus
//! the §IV-E slew/T_PTM design-recommendation sweep.

use sfet_bench::{banner, save_rows};
use sfet_devices::ptm::PtmParams;
use softfet::design_space::slew_sweep;
use softfet::recommend::{best_ratio, in_recommended_band, ratio_sweep, RECOMMENDED_RATIO};
use softfet::report::{fmt_pct, fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 9", "Effect of input slew rate on soft switching");
    let ptm = PtmParams::vo2_default();

    let t_rises: Vec<f64> = [10.0, 20.0, 30.0, 60.0, 100.0, 200.0, 400.0, 800.0]
        .iter()
        .map(|ps| ps * 1e-12)
        .collect();
    let points = slew_sweep(1.0, ptm, &t_rises)?;

    let mut table = Table::new(&[
        "t_rise",
        "I_MAX base",
        "I_MAX soft",
        "reduction",
        "transitions",
        "delay soft",
    ]);
    let mut rows = Vec::new();
    for p in &points {
        table.add_row(vec![
            fmt_si(p.t_rise, "s"),
            fmt_si(p.i_max_base, "A"),
            fmt_si(p.i_max_soft, "A"),
            fmt_pct(p.reduction_pct),
            p.transitions.to_string(),
            fmt_si(p.delay_soft, "s"),
        ]);
        rows.push(format!(
            "{:e},{:e},{:e},{},{},{:e}",
            p.t_rise, p.i_max_base, p.i_max_soft, p.reduction_pct, p.transitions, p.delay_soft
        ));
    }
    println!("{table}");
    println!(
        "paper expectation: the I_MAX reduction shrinks as the input slows — \
         the soft-switching behaviour vanishes with decreasing slew rate."
    );
    save_rows(
        "fig09_slew.csv",
        "t_rise,i_max_base,i_max_soft,reduction_pct,transitions,delay_soft",
        &rows,
    );

    // §IV-E: slew-time / T_PTM ratio recommendation.
    println!();
    banner("§IV-E", "Design recommendation: input-slew / T_PTM ratio");
    let ratios = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 10.0];
    let rpoints = ratio_sweep(1.0, ptm, 30e-12, &ratios)?;
    let mut rtable = Table::new(&["slew/T_PTM", "T_PTM", "I_MAX reduction", "transitions"]);
    let mut rrows = Vec::new();
    for p in &rpoints {
        rtable.add_row(vec![
            format!("{:.1}", p.ratio),
            fmt_si(p.t_ptm, "s"),
            fmt_pct(p.reduction_pct),
            p.transitions.to_string(),
        ]);
        rrows.push(format!(
            "{},{:e},{},{}",
            p.ratio, p.t_ptm, p.reduction_pct, p.transitions
        ));
    }
    println!("{rtable}");
    if let Some(best) = best_ratio(&rpoints) {
        println!(
            "best ratio observed: {best:.1} ({}) — paper recommends {:.1}-{:.1}",
            if in_recommended_band(best) {
                "inside the recommended band"
            } else {
                "outside the recommended band; note the paper calls the band a strong function of V_CC and V_IMT"
            },
            RECOMMENDED_RATIO.0,
            RECOMMENDED_RATIO.1,
        );
    }
    save_rows(
        "fig09_ratio.csv",
        "ratio,t_ptm,reduction_pct,transitions",
        &rrows,
    );
    Ok(())
}
