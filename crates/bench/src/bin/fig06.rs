//! Fig. 6 — I_MAX, di/dt and delay across the PTM (V_IMT, V_MIT) design
//! space, plus the V_G transients that explain the I_MAX dip.

use sfet_bench::{banner, save_rows};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::exec::ExecConfig;
use softfet::design_space::vimt_vmit_grid_stats;
use softfet::inverter::{InverterSpec, Topology};
use softfet::metrics::measure_inverter;
use softfet::report::{fmt_exec_stats, fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 6",
        "PTM design space: I_MAX / di/dt / delay vs (V_IMT, V_MIT)",
    );
    let base = PtmParams::vo2_default();
    let v_imts: Vec<f64> = (4..=12).map(|k| k as f64 * 0.05).collect(); // 0.20..0.60
    let v_mits = [0.05, 0.10, 0.15, 0.20];

    let (points, stats) =
        vimt_vmit_grid_stats(&ExecConfig::from_env(), 1.0, base, &v_imts, &v_mits)?;
    println!("{}\n", fmt_exec_stats(&stats));

    for metric in ["I_MAX", "di/dt", "delay"] {
        let mut table = Table::new(&["V_IMT \\ V_MIT", "0.05 V", "0.10 V", "0.15 V", "0.20 V"]);
        for &v_imt in &v_imts {
            let mut row = vec![format!("{v_imt:.2} V")];
            for &v_mit in &v_mits {
                let cell = points
                    .iter()
                    .find(|p| (p.v_imt - v_imt).abs() < 1e-9 && (p.v_mit - v_mit).abs() < 1e-9)
                    .map(|p| match metric {
                        "I_MAX" => fmt_si(p.i_max, "A"),
                        "di/dt" => fmt_si(p.di_dt, "A/s"),
                        _ => fmt_si(p.delay, "s"),
                    })
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            table.add_row(row);
        }
        println!("{metric} surface:");
        println!("{table}");
    }

    // Locate the I_MAX dip along V_IMT at V_MIT = 0.10 V.
    let mut dip: Option<(f64, f64)> = None;
    for p in points.iter().filter(|p| (p.v_mit - 0.10).abs() < 1e-9) {
        if dip.is_none_or(|(_, best)| p.i_max < best) {
            dip = Some((p.v_imt, p.i_max));
        }
    }
    if let Some((v_opt, i_opt)) = dip {
        println!(
            "I_MAX dip at V_IMT = {v_opt:.2} V ({}) — paper reports the ideal zone near 0.4 V",
            fmt_si(i_opt, "A")
        );
    }

    // V_G transient explanation for V_IMT in {0.3, 0.4, 0.5} (paper inset).
    println!("\ngate transients (V_MIT = 0.1 V):");
    let mut tr = Table::new(&["V_IMT", "transitions", "I_MAX", "max di/dt", "delay"]);
    for &v_imt in &[0.3, 0.4, 0.5] {
        let m = measure_inverter(&InverterSpec::minimum(
            1.0,
            Topology::SoftFet(base.with_thresholds(v_imt, 0.1)),
        ))?;
        tr.add_row(vec![
            format!("{v_imt:.1} V"),
            m.transitions.to_string(),
            fmt_si(m.i_max, "A"),
            fmt_si(m.di_dt, "A/s"),
            fmt_si(m.delay, "s"),
        ]);
    }
    println!("{tr}");
    println!(
        "paper expectation: V_IMT=0.3 V fires twice (small di/dt, larger I_MAX), \
         0.4 V fires once into a weakly-on PMOS (minimum I_MAX), 0.5 V fires \
         once into a strongly-on PMOS (largest di/dt)."
    );

    // V_CC dependence of the optimum (paper §IV-E: "strong function of
    // V_CC and/or V_IMT").
    println!("\noptimal V_IMT vs V_CC:");
    let opt = softfet::design_space::optimal_vimt_vs_vcc(
        base,
        &[0.6, 0.8, 1.0],
        &[0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6],
    )?;
    let mut ot = Table::new(&[
        "V_CC",
        "best V_IMT",
        "V_IMT/V_CC",
        "I_MAX (opt)",
        "I_MAX (baseline)",
    ]);
    for p in &opt {
        ot.add_row(vec![
            format!("{:.1} V", p.vdd),
            format!("{:.2} V", p.best_v_imt),
            format!("{:.2}", p.best_v_imt / p.vdd),
            fmt_si(p.i_max, "A"),
            fmt_si(p.i_max_baseline, "A"),
        ]);
    }
    println!("{ot}");
    println!(
        "a re-tuned PTM recovers the Soft-FET advantage at every V_CC — the \
         fixed-V_IMT crossover seen in Fig. 5's 0.6 V row is a device-tuning \
         artefact, exactly as the paper's §IV-E caveat predicts."
    );

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{},{:e},{:e},{:e},{}",
                p.v_imt, p.v_mit, p.i_max, p.di_dt, p.delay, p.transitions
            )
        })
        .collect();
    save_rows(
        "fig06_design_space.csv",
        "v_imt,v_mit,i_max,di_dt,delay,transitions",
        &rows,
    );
    Ok(())
}
