//! Fig. 10 — Soft-FET power gate: supply-droop mitigation on a shared
//! rail during domain wake-up.
//!
//! Pass `--trace <path>` to record the solver's telemetry event stream
//! for the baseline + Soft-FET wake-ups to a JSONL file (and a summary
//! table to stderr). The ramp sweep at the end runs untraced — its tasks
//! execute in parallel, and the headline comparison is the interesting
//! trace.

use sfet_bench::{banner, save_csv, save_rows, telemetry_from_args};
use sfet_devices::ptm::PtmParams;
use sfet_pdn::power_gate::{wake_ramp_sweep, PowerGateScenario};
use sfet_sim::SimOptions;
use softfet::power_gate::compare_power_gate_with_options;
use softfet::report::{fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 10",
        "Soft-FET power gate: shared-rail droop during wake-up",
    );
    let scenario = PowerGateScenario::default();
    println!(
        "PDN (regime of [19]): R_pkg={} L_pkg={} C_decap={}; header W={}, domain C={}, neighbour load {}",
        fmt_si(scenario.pdn.r_pkg, "Ohm"),
        fmt_si(scenario.pdn.l_pkg, "H"),
        fmt_si(scenario.pdn.c_decap, "F"),
        fmt_si(scenario.pg_width, "m"),
        fmt_si(scenario.c_domain, "F"),
        fmt_si(scenario.i_active, "A"),
    );

    let opts =
        SimOptions::for_duration(scenario.t_stop, 4000).with_telemetry(telemetry_from_args());
    let cmp = compare_power_gate_with_options(&scenario, PtmParams::vo2_default(), &opts)?;

    let mut table = Table::new(&["metric", "baseline PG", "soft-FET PG", "improvement"]);
    table.add_row(vec![
        "rail droop".into(),
        fmt_si(cmp.baseline.droop.droop, "V"),
        fmt_si(cmp.soft.droop.droop, "V"),
        format!("{:.1} mV lower", cmp.droop_improvement_mv()),
    ]);
    table.add_row(vec![
        "peak inrush".into(),
        fmt_si(cmp.baseline.peak_inrush, "A"),
        fmt_si(cmp.soft.peak_inrush, "A"),
        format!("{:.2}x lower", cmp.current_reduction_factor()),
    ]);
    table.add_row(vec![
        "max di/dt".into(),
        fmt_si(cmp.baseline.di_dt, "A/s"),
        fmt_si(cmp.soft.di_dt, "A/s"),
        format!("{:.2}x lower", cmp.baseline.di_dt / cmp.soft.di_dt),
    ]);
    table.add_row(vec![
        "wake time (to 90%)".into(),
        cmp.baseline
            .wake_time
            .map(|t| fmt_si(t, "s"))
            .unwrap_or_else(|| "-".into()),
        cmp.soft
            .wake_time
            .map(|t| fmt_si(t, "s"))
            .unwrap_or_else(|| "-".into()),
        cmp.wake_time_penalty()
            .map(|t| format!("+{}", fmt_si(t, "s")))
            .unwrap_or_else(|| "-".into()),
    ]);
    println!("{table}");
    println!(
        "paper expectation: ~2x lower wake-up current and ~20 mV lower \
         supply droop with the Soft-FET power gate."
    );

    // Wake-ramp sweep: how the droop advantage varies with the sleep
    // controller's ramp rate (routed through the parallel sweep engine).
    let mut sweep_table = Table::new(&["wake ramp", "droop base", "droop soft", "improvement"]);
    let mut sweep_rows = Vec::new();
    let ramp_points = wake_ramp_sweep(&scenario, PtmParams::vo2_default(), &[1e-9, 2e-9, 4e-9])?;
    for p in &ramp_points {
        sweep_table.add_row(vec![
            fmt_si(p.wake_ramp, "s"),
            fmt_si(p.droop_base, "V"),
            fmt_si(p.droop_soft, "V"),
            format!("{:.1} mV", (p.droop_base - p.droop_soft) * 1e3),
        ]);
        sweep_rows.push(format!(
            "{:e},{:e},{:e}",
            p.wake_ramp, p.droop_base, p.droop_soft
        ));
    }
    println!("droop vs wake-ramp rate:");
    println!("{sweep_table}");
    save_rows(
        "fig10_ramp_sweep.csv",
        "wake_ramp,droop_base,droop_soft",
        &sweep_rows,
    );

    save_csv(
        "fig10_baseline.csv",
        &[
            ("rail", &cmp.baseline.rail),
            ("vvdd", &cmp.baseline.v_virtual),
            ("gate", &cmp.baseline.v_gate),
            ("i_rail", &cmp.baseline.i_rail),
        ],
    );
    save_csv(
        "fig10_soft.csv",
        &[
            ("rail", &cmp.soft.rail),
            ("vvdd", &cmp.soft.v_virtual),
            ("gate", &cmp.soft.v_gate),
            ("i_rail", &cmp.soft.i_rail),
        ],
    );
    save_rows(
        "fig10_summary.csv",
        "metric,baseline,soft",
        &[
            format!(
                "droop_v,{:e},{:e}",
                cmp.baseline.droop.droop, cmp.soft.droop.droop
            ),
            format!(
                "peak_inrush_a,{:e},{:e}",
                cmp.baseline.peak_inrush, cmp.soft.peak_inrush
            ),
            format!("di_dt,{:e},{:e}", cmp.baseline.di_dt, cmp.soft.di_dt),
        ],
    );
    Ok(())
}
