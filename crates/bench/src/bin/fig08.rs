//! Fig. 8 — effect of the intrinsic PTM switching time T_PTM on I_MAX,
//! di/dt, delay and the number of phase transitions.

use sfet_bench::{banner, save_rows};
use sfet_devices::ptm::PtmParams;
use softfet::design_space::tptm_sweep;
use softfet::report::{fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 8",
        "Effect of PTM switching time (T_PTM) on I_MAX and di/dt",
    );
    let base = PtmParams::vo2_default();
    let t_ptms: Vec<f64> = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0, 28.0, 40.0]
        .iter()
        .map(|ps| ps * 1e-12)
        .collect();

    let points = tptm_sweep(1.0, base, &t_ptms)?;

    let mut table = Table::new(&["T_PTM", "transitions", "I_MAX", "max di/dt", "delay"]);
    let mut rows = Vec::new();
    for p in &points {
        table.add_row(vec![
            fmt_si(p.t_ptm, "s"),
            p.transitions.to_string(),
            fmt_si(p.i_max, "A"),
            fmt_si(p.di_dt, "A/s"),
            fmt_si(p.delay, "s"),
        ]);
        rows.push(format!(
            "{:e},{},{:e},{:e},{:e}",
            p.t_ptm, p.transitions, p.i_max, p.di_dt, p.delay
        ));
    }
    println!("{table}");

    let min_imax = points
        .iter()
        .min_by(|a, b| a.i_max.total_cmp(&b.i_max))
        .expect("non-empty sweep");
    println!(
        "I_MAX minimum at T_PTM = {} — the paper's 'properly optimized' zone",
        fmt_si(min_imax.t_ptm, "s")
    );
    println!(
        "paper expectation: many transitions at small T_PTM, fewer as T_PTM \
         grows; I_MAX minimised at moderate T_PTM; di/dt trending down with \
         increasing T_PTM."
    );
    save_rows(
        "fig08_tptm.csv",
        "t_ptm,transitions,i_max,di_dt,delay",
        &rows,
    );
    Ok(())
}
