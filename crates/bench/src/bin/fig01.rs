//! Fig. 1 — supply voltage droop in a power delivery network.
//!
//! The paper's motivating illustration: a sudden change in current
//! activity (di/dt) rings the package PDN and the rail droops in the
//! classic first-droop / recovery pattern. This binary reproduces the
//! anatomy with the same lumped PDN the Fig. 10 case study uses and
//! decomposes the droop into its IR and L·di/dt parts.

use sfet_bench::{banner, save_csv};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_pdn::PdnParams;
use sfet_sim::{transient, SimOptions};
use sfet_waveform::measure::droop;
use softfet::report::{fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 1", "Supply voltage droop in a power delivery network");
    let pdn = PdnParams::default();
    println!(
        "PDN: R_pkg={} L_pkg={} C_decap={} (resonance {:.0} MHz)",
        fmt_si(pdn.r_pkg, "Ohm"),
        fmt_si(pdn.l_pkg, "H"),
        fmt_si(pdn.c_decap, "F"),
        pdn.resonance_frequency() / 1e6
    );

    // A 1 A load step in 1 ns on the on-die rail — the "sudden change in
    // current activity" of the paper's Fig. 1.
    let mut ckt = Circuit::new();
    let rail = pdn.attach(&mut ckt, "vdd")?;
    let gnd = Circuit::ground();
    let i_step = 1.0;
    let t_edge = 1e-9;
    ckt.add_current_source(
        "Iload",
        rail,
        gnd,
        SourceWaveform::ramp(0.0, i_step, 5e-9, t_edge),
    )?;

    let tstop = 150e-9;
    let result = transient(&ckt, tstop, &SimOptions::for_duration(tstop, 6000))?;
    let v_rail = result.voltage(&PdnParams::rail_node_name("vdd"))?;
    let report = droop(&v_rail.window(2e-9, tstop)?, pdn.v_nom);

    let ir_drop = i_step * pdn.r_pkg;
    let ldidt = pdn.l_pkg * i_step / t_edge;
    let mut t = Table::new(&["quantity", "value"]);
    t.add_row(vec![
        "steady IR drop (I x R_pkg)".into(),
        fmt_si(ir_drop, "V"),
    ]);
    t.add_row(vec![
        "inductive kick (L x di/dt)".into(),
        fmt_si(ldidt, "V"),
    ]);
    t.add_row(vec![
        "measured first droop".into(),
        fmt_si(report.droop, "V"),
    ]);
    t.add_row(vec![
        "time of worst droop".into(),
        report
            .t_droop
            .map_or_else(|| "n/a (no droop)".into(), |t| fmt_si(t, "s")),
    ]);
    t.add_row(vec![
        "ringing peak-to-peak".into(),
        fmt_si(report.peak_to_peak, "V"),
    ]);
    t.add_row(vec![
        "settled rail".into(),
        fmt_si(v_rail.last_value(), "V"),
    ]);
    println!("{t}");
    println!(
        "paper's point: the droop must be margined in the V_CC spec; the \
         Soft-FET (figs. 10, 11) attacks the di/dt term that dominates it."
    );

    save_csv("fig01_droop.csv", &[("v_rail", &v_rail)]);
    Ok(())
}
