//! Fig. 4 — Soft-FET inverter transient characteristics.
//!
//! Runs the falling-input transition of the paper's Fig. 4 on the
//! baseline CMOS inverter and the Soft-FET inverter, printing the voltage
//! and rail-current waveform summaries and the headline metrics (I_MAX,
//! di/dt, delay).

use sfet_bench::{banner, save_csv};
use sfet_devices::ptm::PtmParams;
use softfet::inverter::{InverterSpec, Topology};
use softfet::metrics::{measure_from_result, run_inverter};
use softfet::report::{fmt_pct, fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 4",
        "Soft-FET inverter: transient voltage and current waveforms",
    );
    let ptm = PtmParams::vo2_default();
    println!(
        "PTM params (paper Fig. 4): V_IMT={} V_MIT={} R_INS={} R_MET={} T_PTM={}",
        fmt_si(ptm.v_imt, "V"),
        fmt_si(ptm.v_mit, "V"),
        fmt_si(ptm.r_ins, "Ohm"),
        fmt_si(ptm.r_met, "Ohm"),
        fmt_si(ptm.t_ptm, "s"),
    );

    let base_spec = InverterSpec::minimum(1.0, Topology::Baseline);
    let soft_spec = InverterSpec::minimum(1.0, Topology::SoftFet(ptm));

    let base_res = run_inverter(&base_spec)?;
    let soft_res = run_inverter(&soft_spec)?;
    let base = measure_from_result(&base_spec, &base_res)?;
    let soft = measure_from_result(&soft_spec, &soft_res)?;

    let mut table = Table::new(&["metric", "baseline", "soft-fet", "change"]);
    table.add_row(vec![
        "I_MAX".into(),
        fmt_si(base.i_max, "A"),
        fmt_si(soft.i_max, "A"),
        fmt_pct(-100.0 * (1.0 - soft.i_max / base.i_max)),
    ]);
    table.add_row(vec![
        "max di/dt".into(),
        fmt_si(base.di_dt, "A/s"),
        fmt_si(soft.di_dt, "A/s"),
        fmt_pct(-100.0 * (1.0 - soft.di_dt / base.di_dt)),
    ]);
    table.add_row(vec![
        "delay (50%->20%)".into(),
        fmt_si(base.delay, "s"),
        fmt_si(soft.delay, "s"),
        fmt_pct(100.0 * (soft.delay / base.delay - 1.0)),
    ]);
    table.add_row(vec![
        "PTM transitions".into(),
        "0".into(),
        soft.transitions.to_string(),
        String::new(),
    ]);
    println!("{table}");

    // Waveform summary at key instants of the soft transition.
    let mut wf = Table::new(&["time", "V_IN", "V_G (soft)", "V_OUT (soft)", "i_vcc (soft)"]);
    for &t in &[
        20e-12, 30e-12, 40e-12, 50e-12, 60e-12, 80e-12, 120e-12, 200e-12, 400e-12,
    ] {
        wf.add_row(vec![
            fmt_si(t, "s"),
            format!("{:.3}", soft.v_in.value_at(t)),
            format!("{:.3}", soft.v_g.value_at(t)),
            format!("{:.3}", soft.v_out.value_at(t)),
            fmt_si(soft.i_rail.value_at(t), "A"),
        ]);
    }
    println!("{wf}");
    println!(
        "paper expectation: Soft-FET peak current well below baseline with a \
         smooth, time-shifted current waveform."
    );

    // Dual transition (rising input): the NMOS sinks the load current into
    // ground; the Soft-FET softens that rail symmetrically (paper: "the
    // input voltage ramp results in weak turn on of the NMOS transistor
    // lowering the current sunk into the ground").
    use softfet::inverter::Edge;
    let base_r_spec = base_spec.clone().with_edge(Edge::Rising);
    let soft_r_spec = soft_spec.clone().with_edge(Edge::Rising);
    let base_r = measure_from_result(&base_r_spec, &run_inverter(&base_r_spec)?)?;
    let soft_r = measure_from_result(&soft_r_spec, &run_inverter(&soft_r_spec)?)?;
    let mut rising = Table::new(&["metric (rising input)", "baseline", "soft-fet", "change"]);
    rising.add_row(vec![
        "I_MAX (ground rail)".into(),
        fmt_si(base_r.i_max, "A"),
        fmt_si(soft_r.i_max, "A"),
        fmt_pct(-100.0 * (1.0 - soft_r.i_max / base_r.i_max)),
    ]);
    rising.add_row(vec![
        "max di/dt".into(),
        fmt_si(base_r.di_dt, "A/s"),
        fmt_si(soft_r.di_dt, "A/s"),
        fmt_pct(-100.0 * (1.0 - soft_r.di_dt / base_r.di_dt)),
    ]);
    rising.add_row(vec![
        "delay".into(),
        fmt_si(base_r.delay, "s"),
        fmt_si(soft_r.delay, "s"),
        fmt_pct(100.0 * (soft_r.delay / base_r.delay - 1.0)),
    ]);
    println!("{rising}");

    save_csv(
        "fig04_soft_waveforms.csv",
        &[
            ("v_in", &soft.v_in),
            ("v_g", &soft.v_g),
            ("v_out", &soft.v_out),
            ("i_vcc", &soft.i_rail),
        ],
    );
    save_csv(
        "fig04_baseline_waveforms.csv",
        &[
            ("v_in", &base.v_in),
            ("v_out", &base.v_out),
            ("i_vcc", &base.i_rail),
        ],
    );
    Ok(())
}
