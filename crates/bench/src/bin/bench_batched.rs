//! Batched-engine throughput benchmark: scalar vs structure-of-arrays
//! evaluation at equal worker counts, with a bitwise equality gate on
//! every compared result. Emits `BENCH_batched.json` (under the figure
//! directory) so CI can archive the numbers per commit.
//!
//! Two levels are measured:
//!
//! * `transient_lanes` — B independent transients through one
//!   [`sfet_sim::transient_batch`] call versus B scalar
//!   [`sfet_sim::transient`] calls (the raw engine win: shared symbolic
//!   analysis, amortized per-analysis overhead, lane-interleaved solves);
//! * `monte_carlo_imax` — the end-to-end rewired Monte-Carlo sweep at lane
//!   width 8 versus a scalar-pipeline sweep of the same samples at the
//!   same worker count.
//!
//! Uses only `std::time` — no Criterion — so it runs in plain CI without
//! the `bench-harness` feature. Pass `--smoke` for a fast low-iteration
//! run that still exercises (and bitwise-checks) every measured path.

use std::time::Instant;

use sfet_bench::figure_dir;
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::exec::{self, task_seed, ExecConfig};
use sfet_sim::{transient, transient_batch, BatchSpec, SimOptions};
use softfet::inverter::{InverterSpec, Topology};
use softfet::metrics::measure_inverter;
use softfet::variation::{monte_carlo_imax_with, PtmVariation, VariationRng};

struct Measurement {
    case: &'static str,
    tasks: usize,
    scalar_ns: f64,
    batched_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.batched_ns
    }
}

fn time_per_iter<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // One untimed pass warms caches and sizes scratch buffers; the
    // minimum over the timed passes is the least-noise estimate on a
    // shared CI box (scheduler preemption only ever inflates a sample).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// A two-pole RC ladder; per-lane element values so no two lanes share a
/// trajectory.
fn rc_ladder(lane: usize) -> Circuit {
    let r = 1e3 * (1.0 + 0.31 * lane as f64);
    let mut ckt = Circuit::new();
    let (a, m, out, gnd) = (
        ckt.node("a"),
        ckt.node("m"),
        ckt.node("out"),
        Circuit::ground(),
    );
    ckt.add_voltage_source("V1", a, gnd, SourceWaveform::ramp(0.0, 1.0, 1e-12, 10e-12))
        .expect("ladder build");
    ckt.add_resistor("R1", a, m, r).expect("ladder build");
    ckt.add_capacitor("C1", m, gnd, 1e-15)
        .expect("ladder build");
    ckt.add_resistor("R2", m, out, 2.0 * r)
        .expect("ladder build");
    ckt.add_capacitor("C2", out, gnd, 0.5e-15)
        .expect("ladder build");
    ckt
}

fn transient_lanes_case(lanes: usize, iters: u32) -> Measurement {
    let tstop = 120e-12;
    let opts = SimOptions::for_duration(tstop, 800);
    let circuits: Vec<Circuit> = (0..lanes).map(rc_ladder).collect();

    // Bitwise gate before timing: every lane must match its scalar twin.
    let specs: Vec<BatchSpec<'_>> = circuits
        .iter()
        .map(|c| BatchSpec {
            circuit: c,
            tstop,
            opts: &opts,
        })
        .collect();
    for (lane, (c, b)) in circuits.iter().zip(transient_batch(&specs)).enumerate() {
        let s = transient(c, tstop, &opts).expect("scalar lane");
        let b = b.expect("batched lane");
        let (vs, vb) = (s.voltage("out").unwrap(), b.voltage("out").unwrap());
        assert_eq!(vs.values().len(), vb.values().len(), "lane {lane}");
        for (a, b) in vs.values().iter().zip(vb.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} diverged");
        }
    }

    let scalar_ns = time_per_iter(iters, || {
        for c in &circuits {
            std::hint::black_box(transient(c, tstop, &opts).expect("scalar lane"));
        }
    });
    let batched_ns = time_per_iter(iters, || {
        std::hint::black_box(transient_batch(&specs));
    });

    Measurement {
        case: "transient_lanes",
        tasks: lanes,
        scalar_ns,
        batched_ns,
    }
}

fn monte_carlo_case(n: usize, workers: usize, iters: u32) -> Measurement {
    let (vdd, base, var, seed) = (1.0, PtmParams::vo2_default(), PtmVariation::default(), 123);

    // The pre-batching pipeline, preserved inline as the baseline: one
    // scalar `measure_inverter` per sample through the scalar `par_map`.
    let indices: Vec<usize> = (0..n).collect();
    let scalar_cfg = ExecConfig::with_workers(workers);
    let scalar_sweep = || {
        let mut values = exec::par_map(&scalar_cfg, &indices, |_, &i| {
            let mut rng = VariationRng::new(task_seed(seed, i as u64));
            let ptm = var.sample(&base, &mut rng);
            measure_inverter(&InverterSpec::minimum(vdd, Topology::SoftFet(ptm))).map(|m| m.i_max)
        })
        .expect("scalar sweep");
        values.sort_by(f64::total_cmp);
        values
    };
    let batched_cfg = ExecConfig::with_workers(workers).with_batch(8);
    let batched_sweep = || {
        monte_carlo_imax_with(&batched_cfg, vdd, base, &var, n, seed, 1e-3)
            .expect("batched sweep")
            .i_max_values
    };

    // Bitwise gate: identical populations, or the speedup is meaningless.
    let (s, b) = (scalar_sweep(), batched_sweep());
    assert_eq!(
        s.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "batched population diverged from scalar"
    );

    let scalar_ns = time_per_iter(iters, || {
        std::hint::black_box(scalar_sweep());
    });
    let batched_ns = time_per_iter(iters, || {
        std::hint::black_box(batched_sweep());
    });

    Measurement {
        case: "monte_carlo_imax",
        tasks: n,
        scalar_ns,
        batched_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: u32 = if smoke { 1 } else { 5 };
    // Equal worker count on both sides; 1 keeps the comparison about the
    // batching itself rather than thread-scheduler noise (CI boxes are
    // often single-core, where extra workers only add context switches).
    let workers = 1;

    let results = if smoke {
        vec![
            transient_lanes_case(4, iters),
            monte_carlo_case(8, workers, iters),
        ]
    } else {
        vec![
            transient_lanes_case(4, iters),
            transient_lanes_case(8, iters),
            monte_carlo_case(16, workers, iters),
        ]
    };

    println!(
        "{:<18} {:>6} {:>14} {:>14} {:>9}",
        "case", "tasks", "scalar/ms", "batched/ms", "speedup"
    );
    let mut entries = Vec::new();
    for m in &results {
        println!(
            "{:<18} {:>6} {:>14.2} {:>14.2} {:>8.2}x",
            m.case,
            m.tasks,
            m.scalar_ns / 1e6,
            m.batched_ns / 1e6,
            m.speedup()
        );
        entries.push(format!(
            "    {{\"case\": \"{}\", \"tasks\": {}, \"workers\": {}, \"scalar_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.3}, \"bitwise\": \"ok\"}}",
            m.case,
            m.tasks,
            workers,
            m.scalar_ns,
            m.batched_ns,
            m.speedup()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"batched_soa_sweep\",\n  \"mode\": \"{}\",\n  \"iters\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        iters,
        entries.join(",\n")
    );
    let path = figure_dir().join("BENCH_batched.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\n[json] {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
