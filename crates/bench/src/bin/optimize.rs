//! Closed-loop design-space optimization over the Soft-FET operating
//! point: reproduce the paper's hand-picked design, then let the
//! optimizer beat it.
//!
//! Runs `sfet-optimize`'s standard run (the paper's design space, the
//! min-worst-corner-droop objective at iso-delay), prints per-generation
//! progress, and emits under the figure directory:
//!
//! * `optimize_frontier.csv` — the Pareto frontier (droop reduction vs
//!   delay penalty vs area ratio) with decoded design values;
//! * `optimize_frontier.md` — the same frontier as a markdown table with
//!   the knee annotated;
//! * `BENCH_optimize.json` — machine-readable run summary for CI.
//!
//! **Reproduce-then-beat gate:** exits non-zero unless the best found
//! point is feasible (within the iso-delay cap) and its worst-corner
//! droop reduction is at least the paper operating point's, measured
//! through the identical pipeline. Pass `--smoke` for a fast
//! low-generation run (gate still enforced), `--algorithm
//! coordinate|evolution` to pick the optimizer, `--seed N` to reseed.

use std::sync::Arc;

use sfet_bench::{banner, figure_dir, save_rows, telemetry_from_args};
use sfet_optimize::{frontier, Algorithm, StandardRun};

fn main() {
    banner("optimize", "closed-loop design-space optimization");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let algorithm = args
        .iter()
        .position(|a| a == "--algorithm")
        .and_then(|i| args.get(i + 1))
        .map(|s| Algorithm::parse(s).unwrap_or_else(|| panic!("unknown --algorithm `{s}`")))
        .unwrap_or(Algorithm::Evolution);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(0x050F_7FE7_u64);

    let mut run = StandardRun::new(1.0, seed);
    run.algorithm = algorithm;
    if smoke {
        run.config.max_generations = 4;
        run.population = 6;
    }
    run.config.exec = run.config.exec.with_telemetry(telemetry_from_args());
    run.config.progress = Some(Arc::new(|s: &sfet_optimize::GenerationSummary| {
        println!(
            "  gen {:>2}: {} candidates / {} lanes, best reduction {:>5.1} %, objective {:.3}{}",
            s.generation,
            s.candidates,
            s.lanes,
            s.best_reduction_pct,
            s.best_objective,
            if s.improved { "  ← improved" } else { "" },
        );
    }));

    let outcome = run.run().unwrap_or_else(|e| {
        eprintln!("optimize run failed: {e}");
        std::process::exit(2);
    });

    let (ref_point, ref_eval) = &outcome.reference;
    println!(
        "\nbaseline worst-corner droop: {:.3} mV",
        outcome.baseline.droop_mv
    );
    println!(
        "paper point ({}): reduction {:.1} %, delay {:.2} ps, area ratio {:.2}",
        format_args!(
            "v_imt={:.2} V, t_ptm={:.0} ps, t_rise={:.0} ps",
            ref_point.ptm.v_imt,
            ref_point.ptm.t_ptm * 1e12,
            ref_point.t_rise * 1e12
        ),
        ref_eval.droop_reduction_pct,
        ref_eval.delay * 1e12,
        ref_eval.area_ratio,
    );
    let best = &outcome.best;
    println!(
        "best found  (gen {}, cand {}): reduction {:.1} %, delay {:.2} ps ({:+.1} % vs cap base), area ratio {:.2}",
        best.generation,
        best.candidate,
        best.eval.droop_reduction_pct,
        best.eval.delay * 1e12,
        best.eval.delay_penalty_pct,
        best.eval.area_ratio,
    );

    // Artifacts.
    let space = sfet_optimize::DesignSpace::soft_fet_standard();
    let names: Vec<&str> = space.axes().iter().map(|a| a.name).collect();
    let front = frontier::pareto_frontier(&outcome.evaluated);
    let csv = frontier::frontier_csv(&names, &front);
    let rows: Vec<String> = csv.lines().skip(1).map(String::from).collect();
    save_rows(
        "optimize_frontier.csv",
        &frontier::frontier_header(&names),
        &rows,
    );
    let md = frontier::frontier_markdown(&names, &front);
    let md_path = figure_dir().join("optimize_frontier.md");
    std::fs::write(&md_path, &md).expect("write optimize_frontier.md");
    println!(
        "wrote {} ({} frontier points)",
        md_path.display(),
        front.len()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"algorithm\": \"{alg}\",\n",
            "  \"seed\": {seed},\n",
            "  \"smoke\": {smoke},\n",
            "  \"generations\": {gens},\n",
            "  \"candidates\": {cands},\n",
            "  \"frontier_points\": {front},\n",
            "  \"baseline_droop_mv\": {base:.6},\n",
            "  \"paper_reduction_pct\": {paper_red:.6},\n",
            "  \"paper_delay_ps\": {paper_delay:.6},\n",
            "  \"best_reduction_pct\": {best_red:.6},\n",
            "  \"best_delay_ps\": {best_delay:.6},\n",
            "  \"best_area_ratio\": {best_area:.6},\n",
            "  \"best_feasible\": {feasible},\n",
            "  \"beats_paper\": {beats}\n",
            "}}\n"
        ),
        alg = outcome.algorithm,
        seed = seed,
        smoke = smoke,
        gens = outcome.history.len(),
        cands = outcome.evaluated.len(),
        front = front.len(),
        base = outcome.baseline.droop_mv,
        paper_red = ref_eval.droop_reduction_pct,
        paper_delay = ref_eval.delay * 1e12,
        best_red = best.eval.droop_reduction_pct,
        best_delay = best.eval.delay * 1e12,
        best_area = best.eval.area_ratio,
        feasible = best.eval.feasible,
        beats = best.eval.droop_reduction_pct >= ref_eval.droop_reduction_pct,
    );
    let json_path = figure_dir().join("BENCH_optimize.json");
    std::fs::write(&json_path, &json).expect("write BENCH_optimize.json");
    println!("wrote {}", json_path.display());

    // Reproduce-then-beat gate.
    if !best.eval.feasible {
        eprintln!("GATE FAILED: best point violates the iso-delay/yield constraints");
        std::process::exit(1);
    }
    if best.eval.droop_reduction_pct < ref_eval.droop_reduction_pct {
        eprintln!(
            "GATE FAILED: best reduction {:.2} % < paper point {:.2} %",
            best.eval.droop_reduction_pct, ref_eval.droop_reduction_pct
        );
        std::process::exit(1);
    }
    println!(
        "gate passed: {:.1} % ≥ paper {:.1} % at iso-delay",
        best.eval.droop_reduction_pct, ref_eval.droop_reduction_pct
    );
}
