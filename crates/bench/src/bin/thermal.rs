//! Supplementary: the Soft-FET thermal design envelope.
//!
//! VO₂'s insulator–metal transition is thermal at heart (T_C ≈ 68 °C);
//! the electrical thresholds the Soft-FET relies on collapse as the
//! ambient approaches it. This sweep quantifies how much of the paper's
//! 1 V peak-current benefit survives across the industrial temperature
//! range — the flip side of the paper's closing remark that "further
//! studies are required for obtaining high quality phase transitions".

use sfet_bench::{banner, save_rows};
use sfet_devices::ptm::PtmParams;
use softfet::design_space::temperature_sweep;
use softfet::report::{fmt_pct, fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Thermal",
        "Soft-FET benefit vs ambient temperature (VO2 T_C = 68 C)",
    );
    let base = PtmParams::vo2_default();
    let points = [0.0, 25.0, 40.0, 50.0, 60.0, 65.0];
    let sweep = temperature_sweep(1.0, base, &points)?;

    let mut table = Table::new(&[
        "ambient",
        "V_IMT (scaled)",
        "I_MAX soft",
        "reduction vs baseline",
        "transitions",
    ]);
    let mut rows = Vec::new();
    for p in &sweep {
        let ptm = base.at_temperature(p.celsius);
        table.add_row(vec![
            format!("{:.0} C", p.celsius),
            fmt_si(ptm.v_imt, "V"),
            fmt_si(p.i_max_soft, "A"),
            fmt_pct(p.reduction_pct),
            p.transitions.to_string(),
        ]);
        rows.push(format!(
            "{},{:e},{:e},{}",
            p.celsius, ptm.v_imt, p.i_max_soft, p.reduction_pct
        ));
    }
    println!("{table}");
    println!(
        "takeaway: the benefit holds through typical operating temperatures \
         and erodes as V_IMT collapses toward T_C — a Soft-FET product needs \
         either thermal headroom or a higher-T_C phase-transition material."
    );
    save_rows(
        "thermal_envelope.csv",
        "celsius,v_imt,i_max_soft,reduction_pct",
        &rows,
    );
    Ok(())
}
