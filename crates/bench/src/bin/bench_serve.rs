//! Loopback load benchmark for the `sfet-serve` job server: an
//! in-process server hammered by concurrent client threads submitting a
//! mixed workload with deliberate duplicates, so one run exercises the
//! whole service contract — queueing, backpressure (429 + retry),
//! result-store dedup, SSE completion, and the bitwise-identity gate
//! between duplicate fetches. Emits `BENCH_serve.json` (under the
//! figure directory) so CI can archive the numbers per commit.
//!
//! Pass `--smoke` for a fast run (fewer clients/jobs, same gates) that
//! suits per-commit CI; the default sizing submits hundreds of jobs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sfet_bench::{banner, figure_dir};
use sfet_serve::{Client, ServeConfig, Server};

struct Load {
    clients: usize,
    submissions_per_client: usize,
    distinct_jobs: usize,
    workers: usize,
    queue_capacity: usize,
}

/// The job body for workload slot `k`: mostly cheap RC steps with
/// distinct resistances, every eighth slot a (shared) power-gate wake —
/// mixed sizes, deterministic content.
fn body_for(k: usize) -> String {
    if k % 8 == 7 {
        r#"{"scenario":"power_gate_wake","params":{"t_stop":6e-9}}"#.to_owned()
    } else {
        format!(
            r#"{{"scenario":"rc_step","params":{{"r":{}.25}}}}"#,
            500 + k
        )
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let load = if smoke {
        Load {
            clients: 4,
            submissions_per_client: 12,
            distinct_jobs: 10,
            workers: 2,
            queue_capacity: 8,
        }
    } else {
        Load {
            clients: 12,
            submissions_per_client: 32,
            distinct_jobs: 48,
            workers: 4,
            queue_capacity: 16,
        }
    };
    let total = load.clients * load.submissions_per_client;
    banner(
        "bench_serve",
        &format!(
            "{} clients x {} submissions ({} total, {} distinct) vs {} workers, queue {}",
            load.clients,
            load.submissions_per_client,
            total,
            load.distinct_jobs,
            load.workers,
            load.queue_capacity
        ),
    );

    let store_dir = std::env::temp_dir().join(format!("sfet-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let cfg = ServeConfig::new(&store_dir)
        .with_workers(load.workers)
        .with_queue_capacity(load.queue_capacity);
    let server = Arc::new(Server::bind("127.0.0.1:0", cfg).expect("bind loopback"));
    let accept = server.spawn();
    let client = Client::new(server.addr());

    let retries_429 = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..load.clients {
        let addr = server.addr();
        let distinct = load.distinct_jobs;
        let per_client = load.submissions_per_client;
        let retries_429 = retries_429.clone();
        handles.push(std::thread::spawn(move || {
            let client = Client::new(addr);
            let mut submit_us: Vec<f64> = Vec::with_capacity(per_client);
            let mut job_ids: Vec<String> = Vec::new();
            for i in 0..per_client {
                // Interleave slots across clients so duplicates arrive
                // from different connections concurrently.
                let slot = (c + i * 7) % distinct;
                let body = body_for(slot);
                loop {
                    let t0 = Instant::now();
                    let resp = client.submit_raw(&body).expect("submit over loopback");
                    submit_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    match resp.status {
                        202 | 200 => {
                            let doc = resp.json().expect("submit response is JSON");
                            job_ids.push(
                                doc.get("job_id")
                                    .and_then(|j| j.as_str())
                                    .expect("job_id")
                                    .to_owned(),
                            );
                            break;
                        }
                        429 => {
                            // Honour the advertised backoff, then retry:
                            // the benchmark's workload must all land.
                            retries_429.fetch_add(1, Ordering::Relaxed);
                            let secs = resp.retry_after.unwrap_or(1);
                            std::thread::sleep(std::time::Duration::from_millis(
                                50.max(secs * 100),
                            ));
                        }
                        other => panic!("unexpected submit status {other}: {}", resp.body),
                    }
                }
            }
            // Follow every job this client submitted to its terminal
            // event, then fetch its result.
            let mut failed = 0u64;
            for id in &job_ids {
                let events = client.follow_events(id).expect("SSE stream");
                match events.last() {
                    Some((name, _)) if name == "done" => {
                        let result = client.result(id).expect("fetch result");
                        assert_eq!(result.status, 200, "{}", result.body);
                    }
                    _ => failed += 1,
                }
            }
            (submit_us, failed)
        }));
    }

    let mut submit_us: Vec<f64> = Vec::with_capacity(total);
    let mut failed_jobs = 0u64;
    for h in handles {
        let (lat, failed) = h.join().expect("client thread");
        submit_us.extend(lat);
        failed_jobs += failed;
    }
    let wall_s = started.elapsed().as_secs_f64();

    // Bitwise dedup gate: the same body fetched twice serves identical
    // bytes, and the store holds exactly the distinct jobs.
    let gate_body = body_for(0);
    let a = client.run_to_result(&gate_body).expect("gate fetch a");
    let b = client.run_to_result(&gate_body).expect("gate fetch b");
    assert_eq!(a, b, "duplicate submissions must serve identical bytes");

    let health = client
        .health()
        .expect("healthz")
        .json()
        .expect("health JSON");
    let stat = |k: &str| -> u64 { health.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64 };
    let sim_attempts = stat("sim_attempts");
    let cache_hits = stat("cache_hits");
    assert!(failed_jobs == 0, "{failed_jobs} jobs failed under load");
    assert!(
        sim_attempts as usize <= load.distinct_jobs + stat("retries") as usize,
        "dedup must cap simulations at the distinct-job count (+retries): \
         {sim_attempts} attempts for {} distinct",
        load.distinct_jobs
    );

    let _ = client.shutdown();
    accept.join().expect("accept loop");

    submit_us.sort_by(|x, y| x.partial_cmp(y).expect("finite latencies"));
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {smoke},\n  \"clients\": {},\n  \
         \"workers\": {},\n  \"queue_capacity\": {},\n  \"submissions\": {},\n  \
         \"distinct_jobs\": {},\n  \"wall_s\": {wall_s:.3},\n  \
         \"jobs_per_s\": {:.1},\n  \"submit_p50_us\": {:.1},\n  \
         \"submit_p90_us\": {:.1},\n  \"submit_p99_us\": {:.1},\n  \
         \"sim_attempts\": {sim_attempts},\n  \"cache_hits\": {cache_hits},\n  \
         \"coalesced\": {},\n  \"rejected_429\": {},\n  \"client_429_retries\": {}\n}}\n",
        load.clients,
        load.workers,
        load.queue_capacity,
        total,
        load.distinct_jobs,
        total as f64 / wall_s,
        percentile(&submit_us, 0.50),
        percentile(&submit_us, 0.90),
        percentile(&submit_us, 0.99),
        stat("coalesced"),
        stat("queue_rejected"),
        retries_429.load(Ordering::Relaxed),
    );
    let path = figure_dir().join("BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    println!("wrote {}", path.display());

    let _ = std::fs::remove_dir_all(&store_dir);
}
