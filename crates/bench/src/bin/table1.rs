//! Table 1 — qualitative comparison of PTM applications.
//!
//! The paper's Table 1 is a qualitative literature survey (no simulation
//! behind it); this binary reprints it and then *demonstrates* the one
//! mechanism all four applications share — the abrupt resistivity change —
//! with the Fig. 2 hysteresis model.

use sfet_bench::banner;
use sfet_devices::ptm::{hysteresis_sweep, PtmParams, PtmPhase};
use softfet::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Table 1", "Qualitative comparison of PTM applications");

    let mut t = Table::new(&[
        "",
        "Hyper-FET (logic)",
        "MTJ (logic)",
        "PCM (memory)",
        "Selector (memory)",
    ]);
    t.add_row(vec![
        "key mechanism".into(),
        "insulator/metal resistivity".into(),
        "insulator/metal bandgap".into(),
        "crystalline/amorphous resistivity".into(),
        "insulator/metal resistivity".into(),
    ]);
    t.add_row(vec![
        "benefit".into(),
        "steep subthreshold swing".into(),
        "tunneling control".into(),
        "dense non-volatile memory".into(),
        "reduced sneak-path current".into(),
    ]);
    t.add_row(vec![
        "this paper".into(),
        "Soft-FET: PTM at the *gate* for soft switching".into(),
        "".into(),
        "".into(),
        "".into(),
    ]);
    println!("{t}");

    // Quantitative hook: the shared mechanism.
    let params = PtmParams::vo2_default();
    let pts = hysteresis_sweep(&params, 1.0, 100)?;
    let metallic = pts.iter().filter(|p| p.phase == PtmPhase::Metallic).count();
    println!(
        "shared mechanism check: {:.0}x resistivity contrast, {} of {} sweep \
         points on the metallic branch (hysteresis loop present)",
        params.r_ins / params.r_met,
        metallic,
        pts.len()
    );
    Ok(())
}
