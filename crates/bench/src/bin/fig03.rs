//! Fig. 3 — soft (staircase) charging of a capacitor through a PTM.
//!
//! Reproduces the paper's illustrative transient: a PTM in series with a
//! capacitor, driven by a voltage ramp. The capacitor voltage rises in a
//! staircase — slow insulating segments punctuated by fast metallic
//! catch-ups — and finally settles to the input level.
//!
//! Pass `--trace <path>` to record the solver's telemetry event stream
//! to a JSONL file (and a summary table to stderr). Pass
//! `--checkpoint <path>` (with optional `--checkpoint-every <n>`) to
//! snapshot the stepper periodically, and `--resume <path>` to restart a
//! killed run from such a snapshot — the resumed waveform is bitwise
//! identical to an uninterrupted run, which the CI kill-and-resume smoke
//! job checks by diffing the emitted CSV.

use sfet_bench::{banner, checkpoint_from_args, save_csv, telemetry_from_args};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::ptm::PtmParams;
use sfet_sim::{transient_resumable, SimOptions};
use softfet::report::{fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 3", "Soft charging using phase transition materials");
    let params = PtmParams::vo2_default();
    let c_load = 0.5e-15;

    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let vc = ckt.node("vc");
    let gnd = Circuit::ground();
    ckt.add_voltage_source(
        "VIN",
        inp,
        gnd,
        SourceWaveform::ramp(0.0, 1.0, 10e-12, 30e-12),
    )?;
    ckt.add_ptm("P1", inp, vc, params)?;
    ckt.add_capacitor("C1", vc, gnd, c_load)?;

    let tstop = 2.5e-9;
    let opts = SimOptions::for_duration(tstop, 5000).with_telemetry(telemetry_from_args());
    let result = transient_resumable(&ckt, tstop, &opts, &checkpoint_from_args())?;

    let v_in = result.voltage("in")?;
    let v_c = result.voltage("vc")?;
    let r_ptm = result.ptm_resistance("P1")?;
    let events = result.ptm_events("P1")?;

    println!(
        "PTM: R_INS*C = {} (vs 30 ps ramp) -> staircase regime",
        fmt_si(params.r_ins * c_load, "s")
    );
    let mut table = Table::new(&["time", "V_IN", "V_C", "V_PTM", "R_PTM"]);
    for &t in &[
        0.0, 10e-12, 20e-12, 30e-12, 40e-12, 60e-12, 100e-12, 200e-12, 500e-12, 1e-9, 2e-9,
    ] {
        table.add_row(vec![
            fmt_si(t, "s"),
            format!("{:.3}", v_in.value_at(t)),
            format!("{:.3}", v_c.value_at(t)),
            format!("{:.3}", v_in.value_at(t) - v_c.value_at(t)),
            fmt_si(r_ptm.value_at(t), "Ohm"),
        ]);
    }
    println!("{table}");

    println!("phase transitions fired: {}", events.len());
    for (i, e) in events.iter().enumerate() {
        println!("  #{i}: t = {} -> {}", fmt_si(e.time, "s"), e.to);
    }
    println!(
        "final V_C = {:.3} V (input 1.000 V) — staircase settles to the rail",
        v_c.last_value()
    );

    save_csv(
        "fig03_staircase.csv",
        &[("v_in", &v_in), ("v_c", &v_c), ("r_ptm", &r_ptm)],
    );
    Ok(())
}
