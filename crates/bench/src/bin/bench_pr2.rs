//! PR-2 solver-path microbenchmark: per-solve cost of the clone-and-factor
//! baseline versus the persistent-workspace refactorisation path, for both
//! MNA backends. Emits `BENCH_pr2.json` (under the figure directory) so CI
//! can archive the numbers per commit.
//!
//! Uses only `std::time` — no Criterion — so it runs in plain CI without
//! the `bench-harness` feature. Pass `--smoke` for a fast low-iteration
//! run that still exercises every measured path.

use std::time::Instant;

use sfet_bench::{figure_dir, legacy};
use sfet_numeric::dense::{DenseMatrix, LuFactors};
use sfet_numeric::sparse::TripletMatrix;

struct Measurement {
    name: &'static str,
    n: usize,
    baseline_ns: f64,
    reuse_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.reuse_ns
    }
}

fn time_per_iter<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // One untimed pass warms caches and sizes scratch buffers.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn dense_case(n: usize, iters: u32) -> Measurement {
    let mut a = DenseMatrix::zeros(n, n);
    let mut seed = 1u64;
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    for r in 0..n {
        for c in 0..n {
            a.set(r, c, next());
        }
        a.add(r, r, 4.0);
    }
    let b0: Vec<f64> = (0..n).map(|i| i as f64).collect();

    // Baseline = the engine's pre-PR2 per-iteration cost (clone + LU from
    // scratch, row-major elimination), preserved in `sfet_bench::legacy`.
    // Benching the *current* `clone().lu()` here would compare the new
    // kernel against itself and hide the hot-loop win.
    let baseline_ns = time_per_iter(iters, || {
        std::hint::black_box(legacy::dense_clone_lu_solve(&a, &b0));
    });

    let mut factors = LuFactors::workspace(n);
    let mut b = b0.clone();
    let mut scratch = Vec::new();
    let reuse_ns = time_per_iter(iters, || {
        factors.refactor(&a).expect("well-conditioned");
        b.copy_from_slice(&b0);
        factors
            .solve_in_place(&mut b, &mut scratch)
            .expect("sized rhs");
        std::hint::black_box(&b);
    });

    Measurement {
        name: "dense",
        n,
        baseline_ns,
        reuse_ns,
    }
}

fn sparse_case(n: usize, iters: u32) -> Measurement {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 3.0);
        if i > 0 {
            t.push(i, i - 1, -1.0);
            t.push(i - 1, i, -1.0);
        }
        if i + 17 < n {
            t.push(i, i + 17, -0.1);
        }
    }
    let a = t.to_csc();
    let b0: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

    let baseline_ns = time_per_iter(iters, || {
        let lu = a.lu().expect("well-conditioned");
        std::hint::black_box(lu.solve(&b0).expect("sized rhs"));
    });

    let mut lu = a.lu().expect("well-conditioned");
    let mut b = b0.clone();
    let mut scratch = Vec::new();
    let reuse_ns = time_per_iter(iters, || {
        lu.refactor(&a).expect("same pattern");
        b.copy_from_slice(&b0);
        lu.solve_in_place(&mut b, &mut scratch).expect("sized rhs");
        std::hint::black_box(&b);
    });

    Measurement {
        name: "sparse",
        n,
        baseline_ns,
        reuse_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: u32 = if smoke { 100 } else { 2000 };

    let results = [
        dense_case(8, iters),
        dense_case(16, iters),
        dense_case(32, iters),
        dense_case(128, iters.min(200)),
        sparse_case(64, iters),
        sparse_case(256, iters),
        sparse_case(1024, iters.min(200)),
    ];

    println!(
        "{:<8} {:>6} {:>16} {:>16} {:>9}",
        "backend", "n", "clone+factor/ns", "refactor/ns", "speedup"
    );
    let mut entries = Vec::new();
    for m in &results {
        println!(
            "{:<8} {:>6} {:>16.0} {:>16.0} {:>8.2}x",
            m.name,
            m.n,
            m.baseline_ns,
            m.reuse_ns,
            m.speedup()
        );
        entries.push(format!(
            "    {{\"backend\": \"{}\", \"n\": {}, \"clone_factor_ns\": {:.1}, \"refactor_ns\": {:.1}, \"speedup\": {:.3}}}",
            m.name,
            m.n,
            m.baseline_ns,
            m.reuse_ns,
            m.speedup()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr2_factor_reuse\",\n  \"mode\": \"{}\",\n  \"iters\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        iters,
        entries.join(",\n")
    );
    let path = figure_dir().join("BENCH_pr2.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\n[json] {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
