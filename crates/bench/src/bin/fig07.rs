//! Fig. 7 — total charge comparison (output + short-circuit) of the
//! Soft-FET inverter against the iso-I_MAX CMOS variants during a falling
//! input transition at V_CC = 1 V.

use sfet_bench::{banner, save_rows};
use sfet_devices::ptm::PtmParams;
use softfet::inverter::{InverterSpec, Topology};
use softfet::iso_imax::calibrate_iso_imax;
use softfet::metrics::measure_inverter;
use softfet::report::{fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 7",
        "Output vs short-circuit charge per topology (falling input, 1 V)",
    );
    let ptm = PtmParams::vo2_default();
    let cal = calibrate_iso_imax(ptm)?;

    let mut topologies: Vec<(String, Topology)> = vec![("baseline".into(), Topology::Baseline)];
    topologies.extend(
        cal.topologies(ptm)
            .into_iter()
            .map(|t| (t.label().to_string(), t)),
    );

    let mut table = Table::new(&[
        "topology",
        "Q_total",
        "Q_output",
        "Q_short-circuit",
        "SC share",
    ]);
    let mut rows = Vec::new();
    for (label, topo) in &topologies {
        let spec = InverterSpec::minimum(1.0, topo.clone()).with_t_stop(6e-9);
        let m = measure_inverter(&spec)?;
        table.add_row(vec![
            label.clone(),
            fmt_si(m.q_total, "C"),
            fmt_si(m.q_out, "C"),
            fmt_si(m.q_sc, "C"),
            format!("{:.0}%", 100.0 * m.q_sc / m.q_total.max(1e-30)),
        ]);
        rows.push(format!(
            "{label},{:e},{:e},{:e}",
            m.q_total, m.q_out, m.q_sc
        ));
    }
    println!("{table}");
    println!(
        "paper expectation: every topology delivers the same output charge \
         (same load swing); the Soft-FET's short-circuit charge is on par \
         with the HVT and series-R variants."
    );
    save_rows("fig07_charge.csv", "topology,q_total,q_out,q_sc", &rows);
    Ok(())
}
