//! Full-chip PDN droop-map benchmark: direct sparse LU versus the
//! preconditioned GMRES path at grid scale, with a correctness gate on
//! every compared map. Emits `BENCH_pdn_grid.json` (under the figure
//! directory) so CI can archive the numbers per commit.
//!
//! Two stages:
//!
//! * `equivalence` — a ~2k-unknown grid solved by both backends; the
//!   per-tile V_min maps must agree within 1e-6 relative (the ISSUE's
//!   acceptance gate) or the run aborts.
//! * `scale` — droop maps at 10⁴-class unknown counts through the
//!   GMRES(m)+ILU(0) path, with wall-clock and iteration counts recorded
//!   per grid (and a direct-LU reference timing on the sizes where direct
//!   is still tractable).
//!
//! Uses only `std::time` — no Criterion — so it runs in plain CI. Pass
//! `--smoke` for a fast small-grid run that still exercises (and gates)
//! both solver paths.

use std::time::Instant;

use sfet_bench::{banner, figure_dir};
use sfet_pdn::{DroopMap, PdnGrid};
use sfet_sim::{SimOptions, SolverPolicy};

struct MapRun {
    grid: String,
    tiles: usize,
    unknowns: usize,
    solver: &'static str,
    wall_ms: f64,
    map: DroopMap,
}

fn run_map(grid: &PdnGrid, policy: SolverPolicy, points: usize, name: &'static str) -> MapRun {
    let opts = SimOptions::for_duration(grid.t_stop, points).with_solver_policy(policy);
    let start = Instant::now();
    let map = grid.droop_map_with(&opts).expect("droop map");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    MapRun {
        grid: format!("{}x{}", grid.nx, grid.ny),
        tiles: grid.tiles(),
        unknowns: grid.unknown_estimate(),
        solver: name,
        wall_ms,
        map,
    }
}

fn json_entry(r: &MapRun, rel_diff: Option<f64>) -> String {
    let s = &r.map.stats.solver;
    let (wx, wy, wv) = r.map.worst();
    let gate = rel_diff
        .map(|d| format!(", \"rel_diff_vs_direct\": {d:.3e}"))
        .unwrap_or_default();
    format!(
        "    {{\"grid\": \"{}\", \"tiles\": {}, \"unknowns\": {}, \"solver\": \"{}\", \
         \"wall_ms\": {:.2}, \"steps\": {}, \"gmres_iters\": {}, \"gmres_restarts\": {}, \
         \"gmres_fallbacks\": {}, \"worst_tile\": [{}, {}], \"worst_vmin\": {:.6}{}}}",
        r.grid,
        r.tiles,
        r.unknowns,
        r.solver,
        r.wall_ms,
        r.map.stats.steps_accepted,
        s.gmres_iterations,
        s.gmres_restarts,
        s.gmres_fallbacks,
        wx,
        wy,
        wv,
        gate
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "PDN grid",
        "Full-chip droop map: sparse LU vs preconditioned GMRES",
    );

    // Stage 1 — equivalence gate. ~2k unknowns in full mode (32×32 →
    // 2054), small in smoke mode; both runs must produce the same map.
    let (gx, gy, points) = if smoke { (12, 12, 150) } else { (32, 32, 300) };
    let gate_grid = PdnGrid::chip(gx, gy);
    let direct = run_map(&gate_grid, SolverPolicy::Direct, points, "direct");
    let iterative = run_map(&gate_grid, SolverPolicy::Iterative, points, "gmres+ilu0");
    let rel = iterative
        .map
        .max_rel_diff(&direct.map)
        .expect("same map shape");
    assert!(
        iterative.map.stats.solver.gmres_iterations > 0,
        "iterative run must actually exercise GMRES"
    );
    assert!(
        rel <= 1e-6,
        "equivalence gate FAILED: GMRES map deviates from direct LU by {rel:.3e} (> 1e-6)"
    );
    println!(
        "[gate] {} tiles={} unknowns={}: |rel diff| = {rel:.3e} <= 1e-6  (direct {:.1} ms, gmres {:.1} ms, {} iters)",
        direct.grid,
        direct.tiles,
        direct.unknowns,
        direct.wall_ms,
        iterative.wall_ms,
        iterative.map.stats.solver.gmres_iterations
    );

    let mut entries = vec![json_entry(&direct, None), json_entry(&iterative, Some(rel))];

    // Stage 2 — scale. 72×72 is 10 374 unknowns: the 10⁴-node class the
    // roadmap targets. Iterative-only: the gate above already pins the
    // map against direct LU (and times both) at the largest size where
    // running direct twice is a reasonable use of a CI minute.
    if !smoke {
        for (nx, ny) in [(48usize, 48usize), (72, 72)] {
            let grid = PdnGrid::chip(nx, ny);
            let it = run_map(&grid, SolverPolicy::Iterative, 200, "gmres+ilu0");
            let s = &it.map.stats.solver;
            println!(
                "[scale] {} tiles={} unknowns={}: {:.1} ms, {} steps, {} gmres iters ({} restarts, {} fallbacks), worst droop {:.1} mV",
                it.grid,
                it.tiles,
                it.unknowns,
                it.wall_ms,
                it.map.stats.steps_accepted,
                s.gmres_iterations,
                s.gmres_restarts,
                s.gmres_fallbacks,
                1e3 * it.map.worst_droop()
            );
            entries.push(json_entry(&it, None));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"pdn_grid_droop_map\",\n  \"mode\": \"{}\",\n  \"gate_rel_tol\": 1e-6,\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        entries.join(",\n")
    );
    let path = figure_dir().join("BENCH_pdn_grid.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\n[json] {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
