//! Fig. 2 — PTM quasi-static I-V hysteresis.
//!
//! Sweeps the bias 0 → 1 V → 0 across a bare PTM device and prints the
//! hysteresis loop: insulating branch, abrupt jump at V_IMT, metallic
//! branch, and the return transition at V_MIT.

use sfet_bench::{banner, save_rows};
use sfet_devices::ptm::{extract_thresholds, hysteresis_sweep, PtmParams, SweepDirection};
use softfet::report::{fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 2", "PTM I-V characteristics (hysteresis loop)");
    let params = PtmParams::vo2_default();
    println!(
        "PTM: V_IMT={} V_MIT={} R_INS={} R_MET={}",
        fmt_si(params.v_imt, "V"),
        fmt_si(params.v_mit, "V"),
        fmt_si(params.r_ins, "Ohm"),
        fmt_si(params.r_met, "Ohm"),
    );

    let points = hysteresis_sweep(&params, 1.0, 200)?;

    // Print a decimated view of the loop.
    let mut table = Table::new(&["direction", "V [V]", "I", "phase"]);
    for p in points.iter().step_by(20) {
        let dir = match p.direction {
            SweepDirection::Up => "up",
            SweepDirection::Down => "down",
        };
        table.add_row(vec![
            dir.into(),
            format!("{:.3}", p.v),
            fmt_si(p.i, "A"),
            p.phase.to_string(),
        ]);
    }
    println!("{table}");

    let (v_up, v_down) = extract_thresholds(&points).expect("loop must transition");
    println!(
        "observed insulator->metal transition at {v_up:.3} V (paper: {})",
        params.v_imt
    );
    println!(
        "observed metal->insulator transition at {v_down:.3} V (paper: {})",
        params.v_mit
    );
    println!(
        "current jump at transition: ~{:.0}x (R_INS/R_MET = {:.0})",
        params.r_ins / params.r_met,
        params.r_ins / params.r_met
    );

    // Cross-validation: trace the same loop through the full circuit
    // engine (DC sweep of a source driving the PTM into a sense resistor).
    {
        use sfet_circuit::{Circuit, SourceWaveform};
        use sfet_sim::{dc_sweep, SimOptions};
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let mid = ckt.node("mid");
        let gnd = Circuit::ground();
        ckt.add_voltage_source("V1", a, gnd, SourceWaveform::Dc(0.0))?;
        ckt.add_ptm("P1", a, mid, params)?;
        ckt.add_resistor("R1", mid, gnd, 1.0)?; // 1 Ohm sense resistor
        let up: Vec<f64> = (0..=100).map(|k| k as f64 * 0.01).collect();
        let mut sweep_pts = up.clone();
        sweep_pts.extend(up.iter().rev());
        let sweep = dc_sweep(&ckt, "V1", &sweep_pts, &SimOptions::default())?;
        // Compare branch currents against the device-level loop at 0.25 V.
        let k_up = 25usize;
        let k_down = sweep_pts.len() - 1 - 25;
        let (i_up, i_down) = (
            sweep.branch_at("V1", k_up)?.abs(),
            sweep.branch_at("V1", k_down)?.abs(),
        );
        println!(
            "circuit-level cross-check at 0.25 V: up-sweep {} (insulating),              down-sweep {} (metallic) — hysteresis confirmed through the full engine",
            fmt_si(i_up, "A"),
            fmt_si(i_down, "A"),
        );
    }

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{:e},{:e},{}",
                match p.direction {
                    SweepDirection::Up => "up",
                    SweepDirection::Down => "down",
                },
                p.v,
                p.i,
                p.phase
            )
        })
        .collect();
    save_rows("fig02_hysteresis.csv", "direction,v,i,phase", &rows);
    Ok(())
}
