//! Fig. 5 — iso-I_MAX comparison of Soft-FET vs CMOS variants.
//!
//! Tunes each CMOS peak-current-reduction technique (HVT threshold shift,
//! constant gate series resistance, 2-stack width) until its I_MAX at
//! V_CC = 1 V matches the Soft-FET's, then sweeps V_CC from 0.6 V to
//! 1.0 V and reports delay and I_MAX for every topology. The paper's
//! claim: the Soft-FET has the smallest delay penalty across the range,
//! with HVT degrading catastrophically at low V_CC.

use sfet_bench::{banner, save_rows};
use sfet_devices::ptm::PtmParams;
use softfet::inverter::{InverterSpec, Topology};
use softfet::iso_imax::calibrate_iso_imax;
use softfet::metrics::measure_inverter;
use softfet::report::{fmt_si, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 5", "Iso-I_MAX delay comparison across V_CC");
    let ptm = PtmParams::vo2_default();

    println!("calibrating variants to the Soft-FET I_MAX at V_CC = 1 V ...");
    let cal = calibrate_iso_imax(ptm)?;
    println!(
        "  target I_MAX       = {}\n  HVT delta-V_T      = {}\n  gate series R      = {}\n  2-stack width scale = {:.2}",
        fmt_si(cal.target_imax, "A"),
        fmt_si(cal.hvt_dvt, "V"),
        fmt_si(cal.series_r, "Ohm"),
        cal.stack_width_scale,
    );

    let topologies: Vec<(String, Topology)> =
        std::iter::once(("baseline".to_string(), Topology::Baseline))
            .chain(
                cal.topologies(ptm)
                    .into_iter()
                    .map(|t| (t.label().to_string(), t)),
            )
            .collect();

    let vccs = [0.6, 0.7, 0.8, 0.9, 1.0];
    let mut delay_table = Table::new(&[
        "V_CC [V]", "baseline", "soft-fet", "hvt", "series-r", "stacked",
    ]);
    let mut imax_table = Table::new(&[
        "V_CC [V]", "baseline", "soft-fet", "hvt", "series-r", "stacked",
    ]);
    let mut rows = Vec::new();

    for &vcc in &vccs {
        let mut delays = vec![format!("{vcc:.1}")];
        let mut imaxes = vec![format!("{vcc:.1}")];
        let mut row = format!("{vcc}");
        for (_, topo) in &topologies {
            let spec = InverterSpec::minimum(vcc, topo.clone()).with_t_stop(6e-9);
            match measure_inverter(&spec) {
                Ok(m) => {
                    delays.push(fmt_si(m.delay, "s"));
                    imaxes.push(fmt_si(m.i_max, "A"));
                    row.push_str(&format!(",{:e},{:e}", m.delay, m.i_max));
                }
                Err(e) => {
                    // An HVT cell can fail to switch at all at very low VCC —
                    // report it as such (that *is* the paper's point).
                    delays.push(format!("fail({e:.0})").chars().take(12).collect());
                    imaxes.push("-".into());
                    row.push_str(",nan,nan");
                }
            }
        }
        delay_table.add_row(delays);
        imax_table.add_row(imaxes);
        rows.push(row);
    }

    println!("\ndelay (50% in -> 20% out):");
    println!("{delay_table}");
    println!("I_MAX:");
    println!("{imax_table}");
    println!(
        "paper expectation: all variants share I_MAX at 1 V; at 0.6 V the HVT \
         delay blows up while the Soft-FET stays closest to baseline."
    );

    save_rows(
        "fig05_iso_imax.csv",
        "vcc,delay_base,imax_base,delay_soft,imax_soft,delay_hvt,imax_hvt,delay_rser,imax_rser,delay_stack,imax_stack",
        &rows,
    );
    Ok(())
}
