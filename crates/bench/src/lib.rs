//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Each `fig*` binary regenerates one figure/table of the paper: it prints
//! the same rows/series the paper plots and drops CSV files under
//! `target/paper_figures/` for external plotting. Run them all with:
//!
//! ```text
//! for f in 02 03 04 05 06 07 08 09 10 11; do cargo run --release -p sfet-bench --bin fig$f; done
//! ```

use std::path::PathBuf;

/// Directory where the figure binaries drop their CSV series.
///
/// Created on first use; defaults to `target/paper_figures` under the
/// workspace, overridable with the `SFET_FIG_DIR` environment variable.
pub fn figure_dir() -> PathBuf {
    let dir = std::env::var_os("SFET_FIG_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/paper_figures"));
    std::fs::create_dir_all(&dir).expect("create figure output dir");
    dir
}

/// Writes CSV columns for a figure and reports the path on stdout.
pub fn save_csv(name: &str, columns: &[(&str, &sfet_waveform::Waveform)]) {
    let path = figure_dir().join(name);
    match sfet_waveform::csv::write_csv(&path, columns) {
        Ok(()) => println!("  [csv] {}", path.display()),
        Err(e) => eprintln!("  [csv] failed to write {}: {e}", path.display()),
    }
}

/// Writes arbitrary text rows as a CSV file and reports the path.
pub fn save_rows(name: &str, header: &str, rows: &[String]) {
    let path = figure_dir().join(name);
    let mut text = String::from(header);
    text.push('\n');
    for row in rows {
        text.push_str(row);
        text.push('\n');
    }
    match std::fs::write(&path, text) {
        Ok(()) => println!("  [csv] {}", path.display()),
        Err(e) => eprintln!("  [csv] failed to write {}: {e}", path.display()),
    }
}

/// Reference implementations of solver paths that the engine no longer
/// uses, preserved so the `factor_reuse` benchmarks compare the current
/// hot loop against what it replaced rather than against itself.
pub mod legacy {
    use sfet_numeric::dense::DenseMatrix;

    /// The dense clone-and-factor solve as the engine ran it before the
    /// persistent-workspace refactorisation path landed: clone the stamped
    /// matrix, allocate a fresh permutation, eliminate row-by-row through
    /// the bounds-checked accessors (row-major traversal of the
    /// column-major storage), then allocate the solution vector.
    #[allow(clippy::needless_range_loop)] // faithful replica of the old loops
    pub fn dense_clone_lu_solve(a: &DenseMatrix, b: &[f64]) -> Vec<f64> {
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            assert!(pivot_val > 0.0, "legacy baseline fed a singular matrix");
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let m = lu.get(r, k) / pivot;
                lu.set(r, k, m);
                if m != 0.0 {
                    for c in (k + 1)..n {
                        lu.add(r, c, -m * lu.get(k, c));
                    }
                }
            }
        }
        let mut x: Vec<f64> = perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= lu.get(r, c) * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= lu.get(r, c) * x[c];
            }
            x[r] = acc / lu.get(r, r);
        }
        x
    }
}

/// Builds a telemetry handle from a `--trace <path>` command-line flag.
///
/// When the invoking binary was passed `--trace trace.jsonl`, the
/// returned handle records [`sfet_telemetry::Level::Step`]-level events
/// to that file as JSONL and prints the aggregate summary table to
/// stderr when the process exits. Without the flag, the disabled
/// (zero-cost) handle is returned. Exits with status 2 on a malformed
/// flag or an uncreatable file — these binaries have no other CLI
/// surface to report through.
pub fn telemetry_from_args() -> sfet_telemetry::Telemetry {
    use sfet_telemetry::{JsonlSink, Level, SummarySink, Tee, Telemetry};

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg != "--trace" {
            continue;
        }
        let Some(path) = args.next() else {
            eprintln!("--trace requires a file path");
            std::process::exit(2);
        };
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("--trace: cannot create {path}: {e}");
                std::process::exit(2);
            }
        };
        println!("  [trace] {path}");
        let tee = Tee::new()
            .with(JsonlSink::new(std::io::BufWriter::new(file)))
            .with(SummarySink::new(std::io::stderr()));
        return Telemetry::with_level(tee, Level::Step);
    }
    Telemetry::disabled()
}

/// Builds a checkpoint policy from `--checkpoint` / `--checkpoint-every`
/// / `--resume` command-line flags.
///
/// `--checkpoint <path>` enables periodic snapshots of the transient
/// stepper to `<path>` (atomically replaced each time); the cadence
/// defaults to every 200 accepted steps and is tuned with
/// `--checkpoint-every <n>`. `--resume <path>` restarts a killed run from
/// an existing snapshot — the resumed waveform is bitwise identical to an
/// uninterrupted run (see `docs/RESILIENCE.md`). Without any of the flags
/// the disabled (zero-cost) policy is returned. Exits with status 2 on a
/// malformed flag, matching [`telemetry_from_args`].
pub fn checkpoint_from_args() -> sfet_sim::CheckpointPolicy {
    use sfet_sim::CheckpointPolicy;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<&str> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        })
    };

    let every = match value_of("--checkpoint-every") {
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--checkpoint-every: expected a positive integer, got {s:?}");
                std::process::exit(2);
            }
        },
        None => 200,
    };
    let mut policy = match value_of("--checkpoint") {
        Some(path) => {
            println!("  [ckpt] writing {path} every {every} accepted steps");
            CheckpointPolicy::write_to(path, every)
        }
        None => CheckpointPolicy::disabled(),
    };
    if let Some(path) = value_of("--resume") {
        println!("  [ckpt] resuming from {path}");
        policy = policy.with_resume_from(path);
    }
    policy
}

/// Prints the standard experiment banner.
pub fn banner(fig: &str, title: &str) {
    println!("==========================================================");
    println!("{fig}: {title}");
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_dir_is_creatable() {
        let d = figure_dir();
        assert!(d.exists());
    }

    #[test]
    fn legacy_dense_solve_matches_current() {
        use sfet_numeric::dense::DenseMatrix;
        let mut a = DenseMatrix::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                a.set(r, c, ((r * 7 + c * 3) % 5) as f64 - 2.0);
            }
            a.add(r, r, 6.0);
        }
        let b = [1.0, -2.0, 0.5, 3.0];
        let x_legacy = legacy::dense_clone_lu_solve(&a, &b);
        let x_now = a.clone().lu().unwrap().solve(&b).unwrap();
        for (l, n) in x_legacy.iter().zip(&x_now) {
            assert!((l - n).abs() < 1e-12, "legacy {l} vs current {n}");
        }
    }

    #[test]
    fn save_rows_roundtrip() {
        save_rows("unit_test.csv", "a,b", &["1,2".to_string()]);
        let text = std::fs::read_to_string(figure_dir().join("unit_test.csv")).unwrap();
        assert!(text.starts_with("a,b\n1,2"));
    }
}
