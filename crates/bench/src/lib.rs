//! Shared helpers for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Each `fig*` binary regenerates one figure/table of the paper: it prints
//! the same rows/series the paper plots and drops CSV files under
//! `target/paper_figures/` for external plotting. Run them all with:
//!
//! ```text
//! for f in 02 03 04 05 06 07 08 09 10 11; do cargo run --release -p sfet-bench --bin fig$f; done
//! ```

use std::path::PathBuf;

/// Directory where the figure binaries drop their CSV series.
///
/// Created on first use; defaults to `target/paper_figures` under the
/// workspace, overridable with the `SFET_FIG_DIR` environment variable.
pub fn figure_dir() -> PathBuf {
    let dir = std::env::var_os("SFET_FIG_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/paper_figures"));
    std::fs::create_dir_all(&dir).expect("create figure output dir");
    dir
}

/// Writes CSV columns for a figure and reports the path on stdout.
pub fn save_csv(name: &str, columns: &[(&str, &sfet_waveform::Waveform)]) {
    let path = figure_dir().join(name);
    match sfet_waveform::csv::write_csv(&path, columns) {
        Ok(()) => println!("  [csv] {}", path.display()),
        Err(e) => eprintln!("  [csv] failed to write {}: {e}", path.display()),
    }
}

/// Writes arbitrary text rows as a CSV file and reports the path.
pub fn save_rows(name: &str, header: &str, rows: &[String]) {
    let path = figure_dir().join(name);
    let mut text = String::from(header);
    text.push('\n');
    for row in rows {
        text.push_str(row);
        text.push('\n');
    }
    match std::fs::write(&path, text) {
        Ok(()) => println!("  [csv] {}", path.display()),
        Err(e) => eprintln!("  [csv] failed to write {}: {e}", path.display()),
    }
}

/// Prints the standard experiment banner.
pub fn banner(fig: &str, title: &str) {
    println!("==========================================================");
    println!("{fig}: {title}");
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_dir_is_creatable() {
        let d = figure_dir();
        assert!(d.exists());
    }

    #[test]
    fn save_rows_roundtrip() {
        save_rows("unit_test.csv", "a,b", &["1,2".to_string()]);
        let text = std::fs::read_to_string(figure_dir().join("unit_test.csv")).unwrap();
        assert!(text.starts_with("a,b\n1,2"));
    }
}
