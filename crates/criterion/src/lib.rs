//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stub implements the subset of the API the workspace's
//! benches use (`criterion_group!` / `criterion_main!`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `Bencher::iter`) as a simple
//! wall-clock smoke-runner: each benchmark body is warmed up once and timed
//! over a small fixed number of iterations, with the mean printed to stdout.
//! There is no statistical analysis, HTML reporting, or baseline storage.

use std::fmt::Display;
use std::time::Instant;

/// Iterations timed per benchmark (after one warm-up run).
const TIMED_ITERS: u32 = 5;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Times `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `group/id`, passing it `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Times `f` under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Timer handed to each benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `TIMED_ITERS` timed iterations.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(f());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / f64::from(TIMED_ITERS));
    }

    fn report(&self, label: &str) {
        match self.mean_ns {
            Some(ns) => println!("bench {label}: {:.1} us/iter (stub harness)", ns / 1e3),
            None => println!("bench {label}: no measurement recorded"),
        }
    }
}

/// Declares a function that runs the listed benchmarks. Both the short
/// form (`criterion_group!(name, target, ...)`) and the configured form
/// (`criterion_group!(name = ...; config = ...; targets = ...)`) are
/// accepted; the stub applies no per-group configuration beyond
/// constructing the provided `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut runs = 0u32;
        Criterion::default().bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, TIMED_ITERS + 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
