//! Property tests for the PDN scenarios: random (but physical) parameter
//! draws must always produce physically sensible outcomes.

use proptest::prelude::*;
use sfet_pdn::io_buffer::IoBufferScenario;
use sfet_pdn::power_gate::PowerGateScenario;
use sfet_pdn::ssn::{energy_efficiency_gain, guardband};
use sfet_pdn::PdnParams;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any physical PDN produces a non-negative droop on wake-up, the rail
    /// never exceeds nominal by more than the droop dynamics allow, and
    /// the domain ends up powered.
    #[test]
    fn power_gate_outcomes_physical(
        l_pkg_ph in 60.0f64..300.0,
        c_dom_nf in 1.0f64..4.0,
        i_active_ma in 20.0f64..80.0,
    ) {
        let scenario = PowerGateScenario {
            pdn: PdnParams {
                l_pkg: l_pkg_ph * 1e-12,
                ..PdnParams::default()
            },
            c_domain: c_dom_nf * 1e-9,
            i_active: i_active_ma * 1e-3,
            ..PowerGateScenario::default()
        };
        let out = scenario.run().unwrap();
        prop_assert!(out.droop.droop >= 0.0);
        prop_assert!(out.peak_inrush > 0.0);
        prop_assert!(out.v_virtual.last_value() > 0.9, "domain powered");
        // Rail stays within a sane band around nominal.
        let (_, v_min) = out.rail.min();
        let (_, v_max) = out.rail.max();
        prop_assert!(v_min > 0.5 && v_max < 1.5, "rail within [{v_min}, {v_max}]");
    }

    /// I/O buffer SSN grows with rail inductance (the L di/dt mechanism).
    #[test]
    fn ssn_monotone_in_inductance(l_lo_ph in 10.0f64..25.0, scale in 2.0f64..4.0) {
        let mk = |l_ph: f64| IoBufferScenario {
            l_vdd: l_ph * 1e-12,
            l_vss: l_ph * 1e-12,
            ..IoBufferScenario::default()
        };
        let small = mk(l_lo_ph).run().unwrap();
        let large = mk(l_lo_ph * scale).run().unwrap();
        prop_assert!(
            large.ssn > small.ssn,
            "SSN must grow with L: {} vs {}",
            large.ssn,
            small.ssn
        );
    }

    /// Guard-band/energy model invariants for arbitrary inputs.
    #[test]
    fn energy_model_invariants(
        b_base in 1e-4f64..0.05,
        improvement in 0.0f64..0.9,
        k in 1.0f64..20.0,
    ) {
        let b_soft = b_base * (1.0 - improvement);
        let gain = energy_efficiency_gain(b_base, b_soft, 1.0, k);
        prop_assert!((0.0..=1.0).contains(&gain));
        // More improvement never reduces the gain.
        let gain2 = energy_efficiency_gain(b_base, b_soft * 0.5, 1.0, k);
        prop_assert!(gain2 >= gain - 1e-12);
        prop_assert!(guardband(b_base, k) >= guardband(b_soft, k));
    }
}
