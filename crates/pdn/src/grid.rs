//! Distributed 2-D PDN grid and full-chip droop maps.
//!
//! The lumped single-π model ([`crate::PdnParams`]) captures the package
//! resonance but not the *spatial* story the Soft-FET targets: hundreds of
//! power-gate/Soft-FET sites switching across a die, each disturbing its
//! neighbourhood through the on-die mesh. [`PdnGrid`] builds that
//! substrate — an `nx × ny` resistive rail mesh fed through the package
//! R/L, a decap (ESR + C) per tile, and `sites` staggered switching sites
//! modelled as ramped current loads — and [`PdnGrid::droop_map`] reduces
//! the transient to a per-tile minimum-voltage map ([`DroopMap`]).
//!
//! # Scale and solver choice
//!
//! A grid tile contributes two unknowns (rail node + decap internal
//! node), so chip-scale grids reach 10⁴–10⁵ MNA unknowns — past the
//! practical range of the dense LU and into territory where the sparse
//! direct factorisation's fill-in dominates runtime. This is the workload
//! the iterative backend exists for: with the default
//! [`SolverPolicy::Auto`](sfet_sim::SolverPolicy) dispatch, grids beyond
//! the size threshold route to GMRES+ILU(0) automatically, and
//! mid-size grids (where LU is still feasible) gate its accuracy — see
//! `bench_pdn_grid` and `docs/SOLVERS.md`.
//!
//! # Site placement and staggering
//!
//! Sites are placed by the R2 low-discrepancy sequence (a 2-D
//! golden-ratio generalisation): deterministic, RNG-free, and spatially
//! well-spread at any count. Site `k` starts switching at
//! `site_start + k·site_stagger` — the stagger is the grid-level
//! abstraction of the Soft-FET's staircase gate drive, which spreads
//! simultaneous turn-on events in time. [`PdnGrid::with_soft_fet_spread`]
//! additionally stretches each site's current ramp, modelling the
//! per-gate di/dt reduction of the staircase edge.

use crate::model::PdnParams;
use crate::{PdnError, Result};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_sim::{transient, SimOptions, TranStats};

/// Distributed PDN-grid scenario description.
///
/// # Example
///
/// ```
/// let grid = sfet_pdn::PdnGrid::default();
/// assert_eq!(grid.tiles(), 8 * 8);
/// assert!(grid.unknown_estimate() > 2 * grid.tiles());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PdnGrid {
    /// Tiles along x.
    pub nx: usize,
    /// Tiles along y.
    pub ny: usize,
    /// Package-level PDN (VRM, R/L loop, bulk decap) feeding the mesh.
    pub pdn: PdnParams,
    /// Mesh-link resistance between adjacent tiles \[Ω\].
    pub r_mesh: f64,
    /// Total on-die tile decap, distributed evenly over the tiles \[F\].
    pub c_tile_total: f64,
    /// Per-tile decap effective series resistance \[Ω\] (each tile's ESR;
    /// the parallel combination across tiles is what the rail sees).
    pub r_tile_esr: f64,
    /// Number of switching (gate/Soft-FET) sites.
    pub sites: usize,
    /// Per-site load-current amplitude \[A\].
    pub i_site: f64,
    /// First site's switch-on time \[s\].
    pub site_start: f64,
    /// Per-site current ramp duration \[s\] (the gate edge).
    pub site_ramp: f64,
    /// Turn-on stagger between consecutive sites \[s\] (the Soft-FET
    /// staircase spreading; `0` makes every site switch simultaneously).
    pub site_stagger: f64,
    /// Simulation stop time \[s\].
    pub t_stop: f64,
}

impl Default for PdnGrid {
    fn default() -> Self {
        PdnGrid {
            nx: 8,
            ny: 8,
            pdn: PdnParams::default(),
            r_mesh: 2e-3,
            c_tile_total: 10e-9,
            r_tile_esr: 50e-3,
            sites: 6,
            i_site: 0.2,
            site_start: 2e-9,
            site_ramp: 0.5e-9,
            site_stagger: 0.0,
            t_stop: 40e-9,
        }
    }
}

impl PdnGrid {
    /// A grid scaled to `nx × ny` tiles with the default per-area
    /// parameters: total decap and site count grow with tile count so
    /// larger grids describe larger dies, not denser ones.
    pub fn chip(nx: usize, ny: usize) -> Self {
        let tiles = nx.saturating_mul(ny).max(1);
        let base = PdnGrid::default();
        let sites = (tiles / 10).clamp(4, 512);
        let site_stagger = 0.2e-9;
        // The staggered switching window grows with the site count; the
        // simulated interval must cover the last ramp (plus settle
        // margin) or `validate` rightly rejects the scenario.
        let window = base.site_start + (sites - 1) as f64 * site_stagger + base.site_ramp;
        PdnGrid {
            nx,
            ny,
            c_tile_total: 10e-9 * tiles as f64 / 64.0,
            sites,
            site_stagger,
            t_stop: base.t_stop.max(window + 10e-9),
            ..base
        }
    }

    /// The Soft-FET variant: every site's current ramp stretched by
    /// `spread` (> 1), the grid-level model of the staircase gate edge.
    pub fn with_soft_fet_spread(&self, spread: f64) -> Self {
        PdnGrid {
            site_ramp: self.site_ramp * spread,
            ..self.clone()
        }
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.nx * self.ny
    }

    /// Estimated MNA unknown count: two nodes per tile (rail + decap
    /// internal), the package nodes, and the source/inductor branch
    /// currents. Used for solver-dispatch sizing and bench reporting.
    pub fn unknown_estimate(&self) -> usize {
        2 * self.tiles() + 4 + 2
    }

    /// The rail-node name of tile `(ix, iy)`.
    pub fn tile_node_name(ix: usize, iy: usize) -> String {
        format!("t{ix}_{iy}")
    }

    /// Deterministic switching-site tiles: the R2 low-discrepancy
    /// sequence over the grid, with collisions resolved by linear
    /// probing. Always returns exactly `self.sites` distinct tiles
    /// (validation caps `sites` at the tile count).
    pub fn site_tiles(&self) -> Vec<(usize, usize)> {
        // 2-D golden-ratio (R2) increments: 1/φ₂ and 1/φ₂² for the
        // plastic number φ₂ ≈ 1.3247.
        const A1: f64 = 0.754_877_666_246_692_7;
        const A2: f64 = 0.569_840_290_998_053_2;
        let mut taken = vec![false; self.tiles()];
        let mut out = Vec::with_capacity(self.sites);
        for k in 0..self.sites {
            let fx = (0.5 + A1 * (k + 1) as f64).fract();
            let fy = (0.5 + A2 * (k + 1) as f64).fract();
            let ix = ((fx * self.nx as f64) as usize).min(self.nx - 1);
            let iy = ((fy * self.ny as f64) as usize).min(self.ny - 1);
            let mut lin = iy * self.nx + ix;
            while taken[lin] {
                lin = (lin + 1) % self.tiles();
            }
            taken[lin] = true;
            out.push((lin % self.nx, lin / self.nx));
        }
        out
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidScenario`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        self.pdn.validate()?;
        if self.nx < 2 || self.ny < 2 {
            return Err(PdnError::InvalidScenario(format!(
                "grid must be at least 2×2, got {}×{}",
                self.nx, self.ny
            )));
        }
        if self.sites == 0 || self.sites > self.tiles() {
            return Err(PdnError::InvalidScenario(format!(
                "sites must be in 1..={}, got {}",
                self.tiles(),
                self.sites
            )));
        }
        for (name, v) in [
            ("r_mesh", self.r_mesh),
            ("c_tile_total", self.c_tile_total),
            ("r_tile_esr", self.r_tile_esr),
            ("i_site", self.i_site),
            ("site_ramp", self.site_ramp),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(PdnError::InvalidScenario(format!(
                    "{name} must be positive and finite, got {v:e}"
                )));
            }
        }
        if !(self.site_stagger >= 0.0 && self.site_stagger.is_finite()) {
            return Err(PdnError::InvalidScenario(format!(
                "site_stagger must be non-negative, got {:e}",
                self.site_stagger
            )));
        }
        let last_on =
            self.site_start + (self.sites - 1) as f64 * self.site_stagger + self.site_ramp;
        if self.t_stop <= last_on {
            return Err(PdnError::InvalidScenario(format!(
                "t_stop {:e} must extend beyond the last site ramp (ends {last_on:e})",
                self.t_stop
            )));
        }
        Ok(())
    }

    /// Builds the grid circuit: package → center-tile entry, `r_mesh`
    /// links between 4-neighbours, per-tile ESR + C decap (initialised to
    /// `v_nom`), and the staggered site loads.
    ///
    /// # Errors
    ///
    /// Propagates validation and circuit-construction failures.
    pub fn build(&self) -> Result<Circuit> {
        self.validate()?;
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let entry = self.pdn.attach(&mut ckt, "pkg")?;

        let c_tile = self.c_tile_total / self.tiles() as f64;
        let mut tile_nodes = Vec::with_capacity(self.tiles());
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let rail = ckt.node(&Self::tile_node_name(ix, iy));
                let dcp = ckt.node(&format!("d{ix}_{iy}"));
                ckt.add_resistor(&format!("Rd{ix}_{iy}"), rail, dcp, self.r_tile_esr)?;
                ckt.add_capacitor_ic(&format!("Cd{ix}_{iy}"), dcp, gnd, c_tile, self.pdn.v_nom)?;
                tile_nodes.push(rail);
            }
        }
        // Mesh links to the right and upward 4-neighbours.
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let here = tile_nodes[iy * self.nx + ix];
                if ix + 1 < self.nx {
                    let right = tile_nodes[iy * self.nx + ix + 1];
                    ckt.add_resistor(&format!("Rh{ix}_{iy}"), here, right, self.r_mesh)?;
                }
                if iy + 1 < self.ny {
                    let up = tile_nodes[(iy + 1) * self.nx + ix];
                    ckt.add_resistor(&format!("Rv{ix}_{iy}"), here, up, self.r_mesh)?;
                }
            }
        }
        // Package entry at the center tile.
        let center = tile_nodes[(self.ny / 2) * self.nx + self.nx / 2];
        ckt.add_resistor("Rentry", entry, center, self.r_mesh)?;

        // Staggered site loads.
        for (k, (ix, iy)) in self.site_tiles().into_iter().enumerate() {
            let start = self.site_start + k as f64 * self.site_stagger;
            ckt.add_current_source(
                &format!("Isite{k}"),
                tile_nodes[iy * self.nx + ix],
                gnd,
                SourceWaveform::ramp(0.0, self.i_site, start, self.site_ramp),
            )?;
        }
        Ok(ckt)
    }

    /// Runs the transient and reduces it to a per-tile minimum-voltage
    /// map, with default options sized for `t_stop`.
    ///
    /// # Errors
    ///
    /// Propagates build and simulation failures;
    /// [`PdnError::NonFiniteMetric`] if any tile's extracted minimum is
    /// NaN/Inf.
    pub fn droop_map(&self) -> Result<DroopMap> {
        self.droop_map_with(&SimOptions::for_duration(self.t_stop, 400))
    }

    /// [`PdnGrid::droop_map`] under explicit simulator options — the hook
    /// for selecting the solver backend/policy and attaching telemetry.
    ///
    /// # Errors
    ///
    /// Propagates build and simulation failures;
    /// [`PdnError::NonFiniteMetric`] if any tile's extracted minimum is
    /// NaN/Inf.
    pub fn droop_map_with(&self, opts: &SimOptions) -> Result<DroopMap> {
        let ckt = self.build()?;
        let result = transient(&ckt, self.t_stop, opts)?;
        let mut v_min = Vec::with_capacity(self.tiles());
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let name = Self::tile_node_name(ix, iy);
                let samples = result.node_samples(&name)?;
                let mut m = f64::INFINITY;
                for &v in samples {
                    if !v.is_finite() {
                        return Err(PdnError::NonFiniteMetric(format!(
                            "tile ({ix}, {iy}) voltage sample is {v}"
                        )));
                    }
                    m = m.min(v);
                }
                v_min.push(m);
            }
        }
        Ok(DroopMap {
            nx: self.nx,
            ny: self.ny,
            v_nom: self.pdn.v_nom,
            v_min,
            stats: result.stats(),
        })
    }
}

/// Per-tile minimum rail voltage over a grid transient — the full-chip
/// droop map (row-major, `[iy * nx + ix]`).
#[derive(Debug, Clone, PartialEq)]
pub struct DroopMap {
    /// Tiles along x.
    pub nx: usize,
    /// Tiles along y.
    pub ny: usize,
    /// Nominal supply \[V\].
    pub v_nom: f64,
    /// Per-tile minimum rail voltage \[V\], row-major.
    pub v_min: Vec<f64>,
    /// Transient engine statistics (includes the solver counters).
    pub stats: TranStats,
}

impl DroopMap {
    /// Minimum voltage of tile `(ix, iy)` \[V\].
    pub fn tile(&self, ix: usize, iy: usize) -> f64 {
        self.v_min[iy * self.nx + ix]
    }

    /// The worst tile: `(ix, iy, v_min)` with the lowest minimum voltage.
    /// Non-finite samples are rejected at extraction, so `total_cmp` here
    /// only orders finite values.
    pub fn worst(&self) -> (usize, usize, f64) {
        let (lin, &v) = self
            .v_min
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("a validated grid has at least 2×2 tiles");
        (lin % self.nx, lin / self.nx, v)
    }

    /// Worst droop below nominal \[V\]: `v_nom - min(v_min)`.
    pub fn worst_droop(&self) -> f64 {
        self.v_nom - self.worst().2
    }

    /// Largest relative per-tile disagreement with `other` — the
    /// iterative-vs-direct equivalence metric used by `bench_pdn_grid`
    /// and the CI solvers job.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidScenario`] on shape mismatch.
    pub fn max_rel_diff(&self, other: &DroopMap) -> Result<f64> {
        if self.nx != other.nx || self.ny != other.ny {
            return Err(PdnError::InvalidScenario(format!(
                "droop-map shapes differ: {}×{} vs {}×{}",
                self.nx, self.ny, other.nx, other.ny
            )));
        }
        let mut worst = 0.0f64;
        for (a, b) in self.v_min.iter().zip(&other.v_min) {
            let denom = a.abs().max(b.abs()).max(1e-30);
            worst = worst.max((a - b).abs() / denom);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfet_sim::{LinearSolver, SolverPolicy};

    #[test]
    fn default_validates_and_builds() {
        let g = PdnGrid::default();
        let ckt = g.build().unwrap();
        ckt.validate().unwrap();
    }

    /// `chip` must stay self-consistent at every scale: large dies get
    /// more staggered sites, and the simulated window has to stretch to
    /// cover the last ramp (a 48×48 chip once failed validation here).
    #[test]
    fn chip_scales_stay_valid() {
        for (nx, ny) in [(8usize, 8usize), (32, 32), (48, 48), (72, 72), (100, 100)] {
            let g = PdnGrid::chip(nx, ny);
            g.validate()
                .unwrap_or_else(|e| panic!("chip({nx}, {ny}): {e}"));
            g.with_soft_fet_spread(4.0)
                .validate()
                .unwrap_or_else(|e| panic!("chip({nx}, {ny}) spread 4: {e}"));
        }
    }

    #[test]
    fn invalid_grids_rejected() {
        let g = PdnGrid {
            nx: 1,
            ..Default::default()
        };
        assert!(g.validate().is_err());
        let g = PdnGrid {
            sites: 0,
            ..Default::default()
        };
        assert!(g.validate().is_err());
        let g = PdnGrid {
            sites: 65,
            ..Default::default()
        };
        assert!(g.validate().is_err(), "more sites than tiles");
        let g = PdnGrid {
            t_stop: 1e-9,
            ..Default::default()
        };
        assert!(g.validate().is_err(), "t_stop inside the ramp window");
    }

    #[test]
    fn site_tiles_are_distinct_and_in_bounds() {
        let g = PdnGrid {
            sites: 40,
            ..PdnGrid::default()
        };
        let sites = g.site_tiles();
        assert_eq!(sites.len(), 40);
        let mut seen = std::collections::HashSet::new();
        for &(ix, iy) in &sites {
            assert!(ix < g.nx && iy < g.ny);
            assert!(seen.insert((ix, iy)), "duplicate site ({ix}, {iy})");
        }
    }

    #[test]
    fn droop_map_shows_load_locality() {
        let g = PdnGrid {
            t_stop: 10e-9,
            ..PdnGrid::default()
        };
        let map = g.droop_map().unwrap();
        assert_eq!(map.v_min.len(), 64);
        let (wx, wy, v_worst) = map.worst();
        // Every tile droops below nominal, the worst visibly so.
        assert!(v_worst < g.pdn.v_nom - 1e-3, "worst tile {v_worst}");
        assert!(map.worst_droop() > 1e-3);
        // The worst tile is one of the load sites (droop is local).
        assert!(
            g.site_tiles().contains(&(wx, wy)),
            "worst tile ({wx}, {wy}) not a site"
        );
        // A far-corner tile droops less than the worst site tile.
        assert!(map.tile(0, 0) > v_worst);
    }

    #[test]
    fn staggering_and_spreading_reduce_worst_droop() {
        let sim = PdnGrid {
            t_stop: 10e-9,
            ..PdnGrid::default()
        };
        let simultaneous = sim.droop_map().unwrap();
        let staggered = PdnGrid {
            site_stagger: 0.5e-9,
            ..sim.clone()
        }
        .droop_map()
        .unwrap();
        let spread = sim.with_soft_fet_spread(8.0).droop_map().unwrap();
        assert!(
            staggered.worst_droop() < simultaneous.worst_droop(),
            "stagger: {:.2} mV vs {:.2} mV",
            staggered.worst_droop() * 1e3,
            simultaneous.worst_droop() * 1e3
        );
        assert!(
            spread.worst_droop() < simultaneous.worst_droop(),
            "spread: {:.2} mV vs {:.2} mV",
            spread.worst_droop() * 1e3,
            simultaneous.worst_droop() * 1e3
        );
    }

    /// The acceptance gate at test scale: GMRES+ILU(0) agrees with the
    /// sparse direct LU within 1e-6 relative per tile.
    #[test]
    fn iterative_map_matches_direct() {
        let g = PdnGrid {
            nx: 10,
            ny: 10,
            t_stop: 10e-9,
            ..PdnGrid::default()
        };
        let opts = SimOptions::for_duration(g.t_stop, 300);
        let direct = g
            .droop_map_with(
                &opts
                    .clone()
                    .with_solver(LinearSolver::Sparse)
                    .with_solver_policy(SolverPolicy::Direct),
            )
            .unwrap();
        let iter = g
            .droop_map_with(&opts.clone().with_solver_policy(SolverPolicy::Iterative))
            .unwrap();
        assert!(iter.stats.solver.gmres_iterations > 0);
        let diff = direct.max_rel_diff(&iter).unwrap();
        assert!(diff < 1e-6, "iterative vs direct per-tile diff {diff:e}");
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = DroopMap {
            nx: 2,
            ny: 2,
            v_nom: 1.0,
            v_min: vec![1.0; 4],
            stats: TranStats::default(),
        };
        let b = DroopMap { nx: 3, ..a.clone() };
        assert!(a.max_rel_diff(&b).is_err());
    }
}
