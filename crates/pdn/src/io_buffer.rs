//! I/O buffer simultaneous-switching-noise scenario (paper Fig. 11).
//!
//! A large output driver discharges/charges a 1 pF pad. Its supply and
//! ground run through bond-wire/package inductance, so the fast edge rings
//! both on-die rails (SSN). The Soft-FET variant slows the *driver input*
//! through a PTM, cutting the peak current and di/dt and with them the
//! bounce.

use crate::{PdnError, Result};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::mosfet::{gate_caps, MosfetModel};
use sfet_devices::ptm::PtmParams;
use sfet_sim::{transient, SimOptions};
use sfet_waveform::measure::{bounce, max_abs_didt, propagation_delay};
use sfet_waveform::Waveform;

/// I/O buffer SSN scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct IoBufferScenario {
    /// Nominal supply \[V\].
    pub v_nom: f64,
    /// Supply-rail package inductance \[H\].
    pub l_vdd: f64,
    /// Ground-rail package inductance \[H\].
    pub l_vss: f64,
    /// Series resistance of each rail path \[Ω\].
    pub r_rail: f64,
    /// On-die decap between the internal rails \[F\].
    pub c_rail: f64,
    /// Driver PMOS width \[m\].
    pub wp: f64,
    /// Driver NMOS width \[m\].
    pub wn: f64,
    /// Driver channel length \[m\].
    pub l: f64,
    /// Pad load capacitance \[F\] (the paper's 1 pF).
    pub c_pad: f64,
    /// Input edge start \[s\].
    pub t_start: f64,
    /// Input transition time \[s\].
    pub input_rise: f64,
    /// Soft-FET input PTM; `None` for the baseline buffer.
    pub ptm: Option<PtmParams>,
    /// Simulation stop time \[s\].
    pub t_stop: f64,
}

impl Default for IoBufferScenario {
    fn default() -> Self {
        IoBufferScenario {
            v_nom: 1.0,
            l_vdd: 30e-12,
            l_vss: 30e-12,
            r_rail: 50e-3,
            c_rail: 5e-12,
            wp: 20e-6,
            wn: 10e-6,
            l: 40e-9,
            c_pad: 1e-12,
            t_start: 0.5e-9,
            input_rise: 150e-12,
            ptm: None,
            t_stop: 6e-9,
        }
    }
}

/// Measured outcome of one I/O transition.
#[derive(Debug, Clone)]
pub struct IoBufferOutcome {
    /// Worst V_CC-rail bounce magnitude \[V\].
    pub vdd_bounce: f64,
    /// Worst V_SS-rail bounce magnitude \[V\].
    pub vss_bounce: f64,
    /// Worst of the two bounces — the paper's SSN figure of merit \[V\].
    pub ssn: f64,
    /// Peak supply current \[A\].
    pub i_peak: f64,
    /// Maximum |di/dt| \[A/s\].
    pub di_dt: f64,
    /// Pad delay, 50 % input to 20 % output swing \[s\].
    pub delay: f64,
    /// Energy drawn from the supply over the whole run \[J\].
    pub energy: f64,
    /// Internal V_DD rail waveform.
    pub vddi: Waveform,
    /// Internal V_SS rail waveform.
    pub vssi: Waveform,
    /// Pad output waveform.
    pub v_pad: Waveform,
    /// Supply current waveform.
    pub i_vdd: Waveform,
}

impl IoBufferScenario {
    /// The Soft-FET variant: the same buffer with the given logic-scale PTM
    /// adapted to this driver per the paper's design rules —
    ///
    /// * resistances scaled to the driver's input capacitance (same
    ///   `R·C : ramp` proportion as the logic-cell experiments; a wider
    ///   PTM via has proportionally lower resistance in both phases), and
    /// * `T_PTM` chosen so the input-slew / T_PTM ratio sits at 3, the top
    ///   of the §IV-E recommended band (1.5–3).
    pub fn with_soft_fet(&self, logic_ptm: PtmParams) -> Self {
        let c_gate = gate_caps(&MosfetModel::pmos_40nm(), self.wp, self.l).total()
            + gate_caps(&MosfetModel::nmos_40nm(), self.wn, self.l).total();
        let reference_ratio = logic_ptm.r_ins * 0.5e-15 / 30e-12;
        // The R·C time constant is referenced to 2/3 of the edge: tuned (as
        // a designer would) so the first transition lands in the weakly-on
        // region of the driver, mirroring the Fig. 6 V_IMT optimum.
        let r_ins_target = reference_ratio * (self.input_rise * 2.0 / 3.0) / c_gate;
        let scale = r_ins_target / logic_ptm.r_ins;
        let tuned = logic_ptm
            .scaled_resistance(scale)
            .with_t_ptm(self.input_rise / 3.0);
        IoBufferScenario {
            ptm: Some(tuned),
            ..self.clone()
        }
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidScenario`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("v_nom", self.v_nom),
            ("l_vdd", self.l_vdd),
            ("l_vss", self.l_vss),
            ("r_rail", self.r_rail),
            ("c_rail", self.c_rail),
            ("c_pad", self.c_pad),
            ("input_rise", self.input_rise),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(PdnError::InvalidScenario(format!(
                    "{name} must be positive, got {v:e}"
                )));
            }
        }
        if self.t_stop <= self.t_start + self.input_rise {
            return Err(PdnError::InvalidScenario(
                "t_stop must extend beyond the input edge".into(),
            ));
        }
        Ok(())
    }

    /// Builds the scenario circuit.
    ///
    /// # Errors
    ///
    /// Propagates validation and circuit-construction failures.
    pub fn build(&self) -> Result<Circuit> {
        self.validate()?;
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let vdd = ckt.node("vdd");
        let vddi = ckt.node("vddi");
        let vssi = ckt.node("vssi");
        let inp = ckt.node("in");
        let gate = ckt.node("g");
        let pad = ckt.node("pad");

        ckt.add_voltage_source("VDD", vdd, gnd, SourceWaveform::Dc(self.v_nom))?;
        // Package parasitics on both rails.
        let vdd_mid = ckt.node("vdd_mid");
        ckt.add_inductor("LVDD", vdd, vdd_mid, self.l_vdd)?;
        ckt.add_resistor("RVDD", vdd_mid, vddi, self.r_rail)?;
        let vss_mid = ckt.node("vss_mid");
        ckt.add_inductor("LVSS", gnd, vss_mid, self.l_vss)?;
        ckt.add_resistor("RVSS", vss_mid, vssi, self.r_rail)?;
        ckt.add_capacitor_ic("CRAIL", vddi, vssi, self.c_rail, self.v_nom)?;

        // Rising input: NMOS discharges the pad, bouncing V_SS.
        ckt.add_voltage_source(
            "VIN",
            inp,
            gnd,
            SourceWaveform::ramp(0.0, self.v_nom, self.t_start, self.input_rise),
        )?;
        match &self.ptm {
            Some(params) => {
                ckt.add_ptm("PIO", inp, gate, *params)?;
            }
            None => {
                ckt.add_resistor("RIO", inp, gate, 0.1)?;
            }
        }

        ckt.add_mosfet(
            "MP",
            pad,
            gate,
            vddi,
            vddi,
            MosfetModel::pmos_40nm(),
            self.wp,
            self.l,
        )?;
        ckt.add_mosfet(
            "MN",
            pad,
            gate,
            vssi,
            vssi,
            MosfetModel::nmos_40nm(),
            self.wn,
            self.l,
        )?;
        ckt.add_capacitor_ic("CPAD", pad, gnd, self.c_pad, self.v_nom)?;
        Ok(ckt)
    }

    /// Runs the scenario and measures the outcome.
    ///
    /// # Errors
    ///
    /// Propagates build, simulation, and measurement failures.
    pub fn run(&self) -> Result<IoBufferOutcome> {
        let ckt = self.build()?;
        let opts = SimOptions::for_duration(self.t_stop, 6000);
        let result = transient(&ckt, self.t_stop, &opts)?;

        let vddi = result.voltage("vddi")?;
        let vssi = result.voltage("vssi")?;
        let v_pad = result.voltage("pad")?;
        let v_in = result.voltage("in")?;
        let i_vdd = result.supply_current("VDD")?;

        let vdd_bounce = bounce(&vddi, self.v_nom);
        let vss_bounce = bounce(&vssi, 0.0);
        let (_, i_peak) = i_vdd.peak_abs();
        let di_dt = max_abs_didt(&i_vdd);
        let delay = propagation_delay(&v_in, &v_pad, self.v_nom)?;
        let energy = self.v_nom * i_vdd.integral().abs();

        Ok(IoBufferOutcome {
            vdd_bounce,
            vss_bounce,
            ssn: vdd_bounce.max(vss_bounce),
            i_peak: i_peak.abs(),
            di_dt,
            delay,
            energy,
            vddi,
            vssi,
            v_pad,
            i_vdd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds() {
        let s = IoBufferScenario::default();
        s.build().unwrap().validate().unwrap();
    }

    #[test]
    fn invalid_rejected() {
        let s = IoBufferScenario {
            c_pad: 0.0,
            ..Default::default()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn baseline_buffer_bounces_rails() {
        let out = IoBufferScenario::default().run().unwrap();
        // Pad discharges fully.
        assert!(out.v_pad.first_value() > 0.95);
        assert!(out.v_pad.last_value() < 0.05);
        // SSN in the tens-of-mV class (paper: ~22 mV).
        assert!(
            out.ssn > 3e-3 && out.ssn < 0.3,
            "SSN out of band: {:.1} mV",
            out.ssn * 1e3
        );
        assert!(out.i_peak > 1e-3);
    }

    #[test]
    fn soft_fet_reduces_ssn() {
        let base = IoBufferScenario::default();
        let soft = base.with_soft_fet(PtmParams::vo2_default());
        let out_b = base.run().unwrap();
        let out_s = soft.run().unwrap();
        assert!(
            out_s.ssn < out_b.ssn,
            "SSN: soft {:.1} mV vs base {:.1} mV",
            out_s.ssn * 1e3,
            out_b.ssn * 1e3
        );
        assert!(out_s.i_peak < out_b.i_peak);
        // The pad still switches.
        assert!(out_s.v_pad.last_value() < 0.05);
    }
}
