//! Power-gate wake-up scenario (paper Fig. 10).
//!
//! A sleeping power domain (its capacitance fully discharged) is woken by
//! ramping the gate of a large PMOS header. The inrush current that
//! recharges the domain flows through the shared PDN and disturbs an
//! active neighbour on the same rail: the voltage droop the paper sets out
//! to mitigate. The Soft-FET variant inserts a PTM between the sleep
//! controller and the header gate, staircase-charging the gate and
//! spreading the inrush.
//!
//! PTM scaling: a header gate is ~10⁴× the capacitance of a logic gate, so
//! the PTM via is correspondingly wider and its resistances lower. The
//! scenario scales `R_INS`/`R_MET` (preserving their ratio) to keep the
//! `R_INS·C_gate` time constant in the same proportion to the gate ramp as
//! in the logic-cell experiments (documented in DESIGN.md).

use crate::model::PdnParams;
use crate::{run_sweep, PdnError, Result};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::mosfet::{gate_caps, MosfetModel};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::exec::ExecConfig;
use sfet_sim::{transient_resumable, CheckpointPolicy, SimOptions};
use sfet_waveform::measure::{crossing_time, droop, CrossDirection, DroopReport};
use sfet_waveform::Waveform;

/// Power-gate wake-up scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGateScenario {
    /// Shared-rail PDN.
    pub pdn: PdnParams,
    /// Header PMOS width \[m\].
    pub pg_width: f64,
    /// Header PMOS length \[m\].
    pub pg_length: f64,
    /// Sleeping-domain capacitance \[F\].
    pub c_domain: f64,
    /// Sleeping-domain leakage path to ground \[Ω\] (discharges the domain
    /// before wake-up and carries the retention current after).
    pub r_domain: f64,
    /// Constant current drawn by the active neighbour on the shared rail \[A\].
    pub i_active: f64,
    /// Wake command start time \[s\].
    pub wake_start: f64,
    /// Sleep-signal ramp duration \[s\].
    pub wake_ramp: f64,
    /// Soft-FET gate PTM; `None` for the baseline direct-drive gate.
    pub ptm: Option<PtmParams>,
    /// Simulation stop time \[s\].
    pub t_stop: f64,
}

impl Default for PowerGateScenario {
    fn default() -> Self {
        PowerGateScenario {
            pdn: PdnParams::default(),
            pg_width: 2e-3,
            pg_length: 40e-9,
            c_domain: 2e-9,
            r_domain: 20.0,
            i_active: 50e-3,
            wake_start: 2e-9,
            wake_ramp: 2e-9,
            ptm: None,
            t_stop: 40e-9,
        }
    }
}

/// Measured outcome of one wake-up.
#[derive(Debug, Clone)]
pub struct PowerGateOutcome {
    /// Disturbance on the shared rail seen by the active neighbour.
    pub droop: DroopReport,
    /// Peak inrush current above the active-neighbour steady state \[A\].
    pub peak_inrush: f64,
    /// Maximum |di/dt| of the rail current \[A/s\].
    pub di_dt: f64,
    /// Time from wake command to the virtual rail reaching 90 % of
    /// nominal \[s\]; `None` if it never does within `t_stop`.
    pub wake_time: Option<f64>,
    /// Shared-rail voltage waveform.
    pub rail: Waveform,
    /// Virtual (gated) rail voltage waveform.
    pub v_virtual: Waveform,
    /// Header gate voltage waveform.
    pub v_gate: Waveform,
    /// Rail current waveform (delivery-positive).
    pub i_rail: Waveform,
}

impl PowerGateScenario {
    /// The Soft-FET variant of this scenario: the same wake-up with the
    /// given *logic-scale* PTM, automatically resistance-scaled to the
    /// header's gate capacitance.
    pub fn with_soft_fet(&self, logic_ptm: PtmParams) -> Self {
        // Logic-cell reference: R_INS·C ≈ 250 ps against a 30 ps ramp.
        // Keep the same R·C : ramp proportion for the header gate.
        let c_gate = gate_caps(&MosfetModel::pmos_40nm(), self.pg_width, self.pg_length).total();
        let reference_ratio = logic_ptm.r_ins * 0.5e-15 / 30e-12;
        let r_ins_target = reference_ratio * self.wake_ramp / c_gate;
        let scale = r_ins_target / logic_ptm.r_ins;
        let scaled = logic_ptm.scaled_resistance(scale);
        PowerGateScenario {
            ptm: Some(scaled),
            ..self.clone()
        }
    }

    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidScenario`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        self.pdn.validate()?;
        for (name, v) in [
            ("pg_width", self.pg_width),
            ("pg_length", self.pg_length),
            ("c_domain", self.c_domain),
            ("r_domain", self.r_domain),
            ("wake_ramp", self.wake_ramp),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(PdnError::InvalidScenario(format!(
                    "{name} must be positive, got {v:e}"
                )));
            }
        }
        if self.t_stop <= self.wake_start + self.wake_ramp {
            return Err(PdnError::InvalidScenario(
                "t_stop must extend beyond the wake ramp".into(),
            ));
        }
        Ok(())
    }

    /// Builds the scenario circuit.
    ///
    /// # Errors
    ///
    /// Propagates validation and circuit-construction failures.
    pub fn build(&self) -> Result<Circuit> {
        self.validate()?;
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let rail = self.pdn.attach(&mut ckt, "vdd")?;
        let vvdd = ckt.node("vvdd");
        let sleep = ckt.node("sleep");
        let gate = ckt.node("pgate");

        // Active neighbour: constant current off the shared rail.
        ckt.add_current_source("Iactive", rail, gnd, SourceWaveform::Dc(self.i_active))?;

        // Sleep controller: gate signal ramps V_nom → 0 at wake.
        ckt.add_voltage_source(
            "VSLEEP",
            sleep,
            gnd,
            SourceWaveform::ramp(self.pdn.v_nom, 0.0, self.wake_start, self.wake_ramp),
        )?;
        match &self.ptm {
            Some(params) => {
                ckt.add_ptm("PPG", sleep, gate, *params)?;
            }
            None => {
                ckt.add_resistor("RPG", sleep, gate, 0.1)?;
            }
        }

        // Header PMOS: source on the shared rail, drain on the virtual rail.
        ckt.add_mosfet(
            "MPG",
            vvdd,
            gate,
            rail,
            rail,
            MosfetModel::pmos_40nm(),
            self.pg_width,
            self.pg_length,
        )?;

        // Sleeping domain: capacitance (starts discharged) + resistive load.
        ckt.add_capacitor_ic("Cdom", vvdd, gnd, self.c_domain, 0.0)?;
        ckt.add_resistor("Rdom", vvdd, gnd, self.r_domain)?;
        Ok(ckt)
    }

    /// Runs the scenario and measures the outcome.
    ///
    /// Equivalent to [`PowerGateScenario::run_with`] with the default
    /// options for this duration (4000 nominal points, telemetry
    /// disabled).
    ///
    /// # Errors
    ///
    /// Propagates build, simulation, and measurement failures.
    pub fn run(&self) -> Result<PowerGateOutcome> {
        self.run_with(&SimOptions::for_duration(self.t_stop, 4000))
    }

    /// Runs the scenario under explicit simulator options — the hook for
    /// attaching telemetry ([`SimOptions::with_telemetry`]) or tightening
    /// tolerances without rebuilding the circuit by hand.
    ///
    /// # Errors
    ///
    /// Propagates build, simulation, and measurement failures.
    pub fn run_with(&self, opts: &SimOptions) -> Result<PowerGateOutcome> {
        self.run_resumable(opts, &CheckpointPolicy::disabled())
    }

    /// [`PowerGateScenario::run_with`] under a checkpoint/restart policy:
    /// with `ckpt.checkpoint_to` set the transient snapshots its state
    /// periodically, and with `ckpt.resume_from` set it continues from a
    /// snapshot — producing an outcome bitwise identical to an
    /// uninterrupted run (see [`sfet_sim::transient_resumable`]). This is
    /// the long-running PDN scenario the resilience layer exists for.
    ///
    /// # Errors
    ///
    /// Everything [`PowerGateScenario::run_with`] raises, plus checkpoint
    /// I/O/format failures and injected-fault crashes.
    pub fn run_resumable(
        &self,
        opts: &SimOptions,
        ckpt: &CheckpointPolicy,
    ) -> Result<PowerGateOutcome> {
        let ckt = self.build()?;
        let result = transient_resumable(&ckt, self.t_stop, opts, ckpt)?;

        let rail = result.voltage(&PdnParams::rail_node_name("vdd"))?;
        let v_virtual = result.voltage("vvdd")?;
        let v_gate = result.voltage("pgate")?;
        let i_rail = result.supply_current("Vvdd")?;

        // Restrict droop measurement to the wake window onward (the initial
        // PDN settling at t=0 is not the phenomenon under study).
        let wake_window = rail.window(self.wake_start * 0.5, self.t_stop)?;
        let droop_report = droop(&wake_window, rail.value_at(self.wake_start * 0.9));

        let i_steady = i_rail.value_at(self.wake_start * 0.9);
        let inrush = i_rail.map(|i| i - i_steady);
        let (_, peak_inrush) = inrush
            .window(self.wake_start * 0.5, self.t_stop)?
            .peak_abs();
        let di_dt = sfet_waveform::measure::max_abs_didt(&i_rail);

        let wake_time = crossing_time(
            &v_virtual,
            0.9 * self.pdn.v_nom,
            CrossDirection::Rising,
            self.wake_start,
        )
        .ok()
        .map(|t| t - self.wake_start);

        Ok(PowerGateOutcome {
            droop: droop_report,
            peak_inrush: peak_inrush.abs(),
            di_dt,
            wake_time,
            rail,
            v_virtual,
            v_gate,
            i_rail,
        })
    }
}

/// One row of the wake-ramp trade-off study: baseline vs Soft-FET at one
/// sleep-signal ramp duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeRampPoint {
    /// Sleep-signal ramp duration \[s\].
    pub wake_ramp: f64,
    /// Baseline shared-rail droop \[V\].
    pub droop_base: f64,
    /// Soft-FET shared-rail droop \[V\].
    pub droop_soft: f64,
    /// Baseline peak inrush \[A\].
    pub inrush_base: f64,
    /// Soft-FET peak inrush \[A\].
    pub inrush_soft: f64,
    /// Soft-FET wake time (command → 90 % of nominal) \[s\], if reached.
    pub wake_time_soft: Option<f64>,
}

/// Sweeps the sleep-signal ramp duration, measuring baseline and Soft-FET
/// wake-ups at each point — the design trade between wake latency and
/// shared-rail disturbance. The PTM is re-scaled per point (the header
/// resistance tracks the ramp, as in [`PowerGateScenario::with_soft_fet`])
/// and `t_stop` is stretched so slow ramps still complete.
///
/// # Errors
///
/// Propagates the first scenario failure as [`PdnError::Sweep`].
pub fn wake_ramp_sweep(
    scenario: &PowerGateScenario,
    logic_ptm: PtmParams,
    wake_ramps: &[f64],
) -> Result<Vec<WakeRampPoint>> {
    wake_ramp_sweep_with(&ExecConfig::from_env(), scenario, logic_ptm, wake_ramps)
}

/// [`wake_ramp_sweep`] with an explicit execution policy.
///
/// # Errors
///
/// Propagates the first scenario failure as [`PdnError::Sweep`].
pub fn wake_ramp_sweep_with(
    cfg: &ExecConfig,
    scenario: &PowerGateScenario,
    logic_ptm: PtmParams,
    wake_ramps: &[f64],
) -> Result<Vec<WakeRampPoint>> {
    run_sweep(
        cfg,
        wake_ramps,
        |r| format!("wake_ramp={r:.4e} s"),
        |_, &wake_ramp| {
            let base = PowerGateScenario {
                wake_ramp,
                ptm: None,
                t_stop: scenario.t_stop.max(scenario.wake_start + 8.0 * wake_ramp),
                ..scenario.clone()
            };
            let soft = base.with_soft_fet(logic_ptm);
            let out_b = base.run()?;
            let out_s = soft.run()?;
            Ok(WakeRampPoint {
                wake_ramp,
                droop_base: out_b.droop.droop,
                droop_soft: out_s.droop.droop,
                inrush_base: out_b.peak_inrush,
                inrush_soft: out_s.peak_inrush,
                wake_time_soft: out_s.wake_time,
            })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_and_builds() {
        let s = PowerGateScenario::default();
        let ckt = s.build().unwrap();
        ckt.validate().unwrap();
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let s = PowerGateScenario {
            c_domain: -1.0,
            ..Default::default()
        };
        assert!(s.validate().is_err());
        let base = PowerGateScenario::default();
        let s = PowerGateScenario {
            t_stop: base.wake_start,
            ..base
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn baseline_wakeup_charges_domain_and_droops_rail() {
        let s = PowerGateScenario::default();
        let out = s.run().unwrap();
        // The domain must actually wake.
        assert!(
            out.v_virtual.last_value() > 0.9 * s.pdn.v_nom,
            "virtual rail reached {}",
            out.v_virtual.last_value()
        );
        assert!(out.wake_time.is_some());
        // The wake-up must disturb the shared rail measurably (tens of mV).
        assert!(
            out.droop.droop > 5e-3,
            "expected a visible droop, got {:.1} mV",
            out.droop.droop * 1e3
        );
        assert!(out.peak_inrush > 10e-3, "inrush {:.3e}", out.peak_inrush);
    }

    #[test]
    fn soft_fet_reduces_droop_and_inrush() {
        let base = PowerGateScenario::default();
        let soft = base.with_soft_fet(PtmParams::vo2_default());
        let out_b = base.run().unwrap();
        let out_s = soft.run().unwrap();
        assert!(
            out_s.peak_inrush < out_b.peak_inrush,
            "inrush: soft {:.3e} vs base {:.3e}",
            out_s.peak_inrush,
            out_b.peak_inrush
        );
        assert!(
            out_s.droop.droop < out_b.droop.droop,
            "droop: soft {:.1} mV vs base {:.1} mV",
            out_s.droop.droop * 1e3,
            out_b.droop.droop * 1e3
        );
        // And the domain still wakes up.
        assert!(out_s.v_virtual.last_value() > 0.9 * base.pdn.v_nom);
    }

    #[test]
    fn wake_ramp_sweep_reports_soft_benefit_per_point() {
        let pts = wake_ramp_sweep(
            &PowerGateScenario::default(),
            PtmParams::vo2_default(),
            &[2e-9, 4e-9],
        )
        .unwrap();
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(
                p.droop_soft < p.droop_base,
                "ramp {:.1e}: soft droop {:.1} mV vs base {:.1} mV",
                p.wake_ramp,
                p.droop_soft * 1e3,
                p.droop_base * 1e3
            );
            assert!(p.wake_time_soft.is_some(), "domain must still wake");
        }
    }

    #[test]
    fn wake_ramp_sweep_error_names_the_point() {
        let err = wake_ramp_sweep(
            &PowerGateScenario::default(),
            PtmParams::vo2_default(),
            &[2e-9, -1.0],
        )
        .expect_err("negative ramp must fail validation");
        match err {
            PdnError::Sweep { index, context, .. } => {
                assert_eq!(index, 1);
                assert!(context.contains("wake_ramp"), "context: {context}");
            }
            other => panic!("expected Sweep, got {other:?}"),
        }
    }

    #[test]
    fn soft_fet_scaling_preserves_contrast() {
        let s = PowerGateScenario::default().with_soft_fet(PtmParams::vo2_default());
        let p = s.ptm.unwrap();
        let r = PtmParams::vo2_default();
        assert!((p.r_ins / p.r_met - r.r_ins / r.r_met).abs() < 1e-6);
        assert!(p.r_ins < r.r_ins, "header PTM must be lower-resistance");
    }
}
