//! Lumped power-delivery-network model.
//!
//! A single-π lumped model of the package + on-die grid, in the parameter
//! regime of Zhang et al., "Characterizing and evaluating voltage noise in
//! multi-core near-threshold processors" (ISLPED 2013) — the paper's PDN
//! reference [19]: a few mΩ of package resistance, tens to hundreds of pH
//! of loop inductance, and nF-class on-die decoupling.

use crate::{run_sweep, PdnError, Result};
use sfet_circuit::{Circuit, NodeId, SourceWaveform};
use sfet_numeric::exec::ExecConfig;

/// Lumped PDN parameters.
///
/// # Example
///
/// ```
/// let pdn = sfet_pdn::PdnParams::default();
/// assert!(pdn.l_pkg > 0.0);
/// // Resonant frequency in the 10-100 MHz band typical of package PDNs.
/// let f0 = 1.0 / (2.0 * std::f64::consts::PI * (pdn.l_pkg * pdn.c_decap).sqrt());
/// assert!(f0 > 1e6 && f0 < 1e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnParams {
    /// Nominal supply voltage \[V\].
    pub v_nom: f64,
    /// Package + board series resistance \[Ω\].
    pub r_pkg: f64,
    /// Package loop inductance \[H\].
    pub l_pkg: f64,
    /// On-die decoupling capacitance \[F\].
    pub c_decap: f64,
    /// Effective series resistance of the decap \[Ω\].
    pub r_decap: f64,
}

impl Default for PdnParams {
    fn default() -> Self {
        // [19]-regime values for a near-threshold multicore power domain.
        PdnParams {
            v_nom: 1.0,
            r_pkg: 5e-3,
            l_pkg: 120e-12,
            c_decap: 20e-9,
            r_decap: 2e-3,
        }
    }
}

impl PdnParams {
    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidScenario`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("v_nom", self.v_nom),
            ("r_pkg", self.r_pkg),
            ("l_pkg", self.l_pkg),
            ("c_decap", self.c_decap),
            ("r_decap", self.r_decap),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(PdnError::InvalidScenario(format!(
                    "{name} must be positive and finite, got {v:e}"
                )));
            }
        }
        Ok(())
    }

    /// Attaches the PDN to a circuit: ideal regulator → `r_pkg` → `l_pkg` →
    /// on-die rail with decap. Returns the on-die rail node. Element names
    /// are prefixed to allow several PDNs per circuit.
    ///
    /// # Errors
    ///
    /// Propagates validation and circuit-construction failures.
    pub fn attach(&self, ckt: &mut Circuit, prefix: &str) -> Result<NodeId> {
        self.validate()?;
        let gnd = Circuit::ground();
        let vrm = ckt.node(&format!("{prefix}_vrm"));
        let pkg = ckt.node(&format!("{prefix}_pkg"));
        let rail = ckt.node(&format!("{prefix}_rail"));
        let dcp = ckt.node(&format!("{prefix}_dcp"));
        ckt.add_voltage_source(
            &format!("V{prefix}"),
            vrm,
            gnd,
            SourceWaveform::Dc(self.v_nom),
        )?;
        ckt.add_resistor(&format!("R{prefix}_pkg"), vrm, pkg, self.r_pkg)?;
        ckt.add_inductor(&format!("L{prefix}_pkg"), pkg, rail, self.l_pkg)?;
        ckt.add_resistor(&format!("R{prefix}_dcp"), rail, dcp, self.r_decap)?;
        ckt.add_capacitor_ic(
            &format!("C{prefix}_dcp"),
            dcp,
            gnd,
            self.c_decap,
            self.v_nom,
        )?;
        Ok(rail)
    }

    /// The rail node name produced by [`PdnParams::attach`] for a prefix.
    pub fn rail_node_name(prefix: &str) -> String {
        format!("{prefix}_rail")
    }

    /// Input impedance |Z(jω)| of the PDN seen from the on-die rail,
    /// computed by AC analysis with a 1 A current-source stimulus.
    ///
    /// Returns `(frequency, |Z|)` pairs. The profile shows the classic
    /// package anti-resonance peak near `1 / (2π√(L_pkg·C_decap))` — the
    /// frequency band where di/dt excitation hurts most, which is exactly
    /// what the Soft-FET's current-spreading attacks.
    ///
    /// # Errors
    ///
    /// Propagates circuit and AC-analysis failures.
    pub fn impedance_profile(&self, freqs: &[f64]) -> Result<Vec<(f64, f64)>> {
        self.impedance_profile_with(&ExecConfig::from_env(), freqs)
    }

    /// [`PdnParams::impedance_profile`] with an explicit execution policy.
    /// Each frequency point is an independent complex solve against the
    /// same stamped matrices, so the parallel profile is bitwise identical
    /// to a serial one.
    ///
    /// # Errors
    ///
    /// Propagates circuit and AC-analysis failures as [`PdnError::Sweep`].
    pub fn impedance_profile_with(
        &self,
        cfg: &ExecConfig,
        freqs: &[f64],
    ) -> Result<Vec<(f64, f64)>> {
        let mut ckt = Circuit::new();
        let rail = self.attach(&mut ckt, "vdd")?;
        let gnd = Circuit::ground();
        ckt.add_current_source("IAC", rail, gnd, SourceWaveform::Dc(0.0))?;
        let rail_name = Self::rail_node_name("vdd");
        let opts = sfet_sim::SimOptions::default();
        run_sweep(
            cfg,
            freqs,
            |f| format!("f={f:.4e} Hz"),
            |idx, &f| {
                let res =
                    sfet_sim::ac_sweep(&ckt, "IAC", &[f], &opts).map_err(crate::PdnError::Sim)?;
                let mags = res.magnitude(&rail_name).map_err(crate::PdnError::Sim)?;
                // A non-finite |Z| becomes a named error here, not a panic
                // in whatever reduction consumes the profile next. The
                // fault plan's `nanmeas@I` entry poisons point `I` to keep
                // this path regression-tested.
                let mut z = mags[0];
                if cfg.fault_plan().is_some_and(|p| p.nan_measurement(idx)) {
                    z = f64::NAN;
                }
                if !z.is_finite() {
                    return Err(PdnError::NonFiniteMetric(format!(
                        "|Z| at f={f:.4e} Hz (point {idx}) is {z}"
                    )));
                }
                Ok((f, z))
            },
        )
    }

    /// The package anti-resonance frequency `1 / (2π√(L_pkg·C_decap))` \[Hz\].
    pub fn resonance_frequency(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (self.l_pkg * self.c_decap).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfet_sim::{transient, SimOptions};

    #[test]
    fn default_validates() {
        PdnParams::default().validate().unwrap();
    }

    #[test]
    fn invalid_rejected() {
        let p = PdnParams {
            l_pkg: 0.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn attach_names_and_connectivity() {
        let mut ckt = Circuit::new();
        let rail = PdnParams::default().attach(&mut ckt, "vdd").unwrap();
        assert_eq!(ckt.node_name(rail), "vdd_rail");
        // Needs a load to be a valid circuit.
        let gnd = Circuit::ground();
        ckt.add_resistor("Rload", rail, gnd, 100.0).unwrap();
        ckt.validate().unwrap();
    }

    #[test]
    fn step_load_produces_droop_and_recovery() {
        // A current step on the rail must droop by roughly L di/dt ringing
        // and settle back near v_nom - I*R_pkg.
        let pdn = PdnParams::default();
        let mut ckt = Circuit::new();
        let rail = pdn.attach(&mut ckt, "vdd").unwrap();
        let gnd = Circuit::ground();
        // 1 A load step in 1 ns.
        ckt.add_current_source(
            "Iload",
            rail,
            gnd,
            SourceWaveform::ramp(0.0, 1.0, 5e-9, 1e-9),
        )
        .unwrap();
        let tstop = 200e-9;
        let r = transient(&ckt, tstop, &SimOptions::for_duration(tstop, 4000)).unwrap();
        let v = r.voltage("vdd_rail").unwrap();
        let (_, v_min) = v.min();
        assert!(v_min < pdn.v_nom - 2e-3, "observable droop, got {v_min}");
        // Settles near IR drop below nominal.
        let v_end = v.last_value();
        let expect = pdn.v_nom - 1.0 * pdn.r_pkg;
        assert!((v_end - expect).abs() < 2e-3, "{v_end} vs {expect}");
    }
}

#[cfg(test)]
mod impedance_tests {
    use super::*;

    /// A fault-injected NaN at one frequency point yields a named
    /// `NonFiniteMetric` error — not a panic in whichever reduction
    /// (peak search, sort) consumes the profile next.
    #[test]
    fn nan_impedance_point_is_named_error_not_panic() {
        use sfet_numeric::fault::FaultPlan;
        let pdn = PdnParams::default();
        let freqs = [1e6, 1e7, 1e8];
        let cfg = ExecConfig::serial().with_fault_plan(FaultPlan::new().with_nan_measurement(1));
        let err = pdn.impedance_profile_with(&cfg, &freqs).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("non-finite") && msg.contains("point 1"),
            "error must name the poisoned point: {msg}"
        );
        // Fault-free on the same config shape still succeeds.
        let profile = pdn
            .impedance_profile_with(&ExecConfig::serial(), &freqs)
            .unwrap();
        assert_eq!(profile.len(), 3);
        assert!(profile.iter().all(|(_, z)| z.is_finite()));
    }

    #[test]
    fn impedance_peaks_at_package_resonance() {
        let pdn = PdnParams::default();
        let f0 = pdn.resonance_frequency();
        let freqs: Vec<f64> = (0..121)
            .map(|k| f0 / 100.0 * 10f64.powf(k as f64 / 30.0))
            .collect();
        let profile = pdn.impedance_profile(&freqs).unwrap();
        let (f_peak, z_peak) = profile
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!(
            (f_peak / f0).log10().abs() < 0.2,
            "peak at {f_peak:.3e} vs resonance {f0:.3e}"
        );
        // At resonance the impedance is far above the DC package resistance.
        assert!(z_peak > 5.0 * pdn.r_pkg, "peak impedance {z_peak}");
        // At DC-ish frequencies Z approaches R_pkg.
        assert!((profile[0].1 - pdn.r_pkg).abs() / pdn.r_pkg < 0.5);
    }
}
