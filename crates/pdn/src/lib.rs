//! Power-delivery-network scenarios for the Soft-FET case studies.
//!
//! The paper's Section V applies Soft-FETs to two droop-sensitive
//! workloads, both of which need a PDN substrate:
//!
//! * [`power_gate`] — a sleeping power domain woken through a large PMOS
//!   header on a rail shared with an active neighbour (Fig. 10). The PDN
//!   parameters follow the lumped package model regime of Zhang et al.
//!   (ISLPED 2013), reference \[19\] of the paper.
//! * [`io_buffer`] — an I/O driver discharging a 1 pF pad behind bond-wire
//!   inductance, producing simultaneous-switching noise on both rails
//!   (Fig. 11), plus the guard-band energy model ([`ssn`]).
//! * [`grid`] — a distributed `nx × ny` on-die rail mesh with per-tile
//!   decap and staggered switching sites, reduced to a full-chip per-tile
//!   droop map ([`DroopMap`]); the chip-scale workload the iterative
//!   (GMRES) solver backend exists for.
//!
//! Both scenarios come in baseline and Soft-FET flavours selected by an
//! optional [`sfet_devices::ptm::PtmParams`].

pub mod grid;
pub mod io_buffer;
pub mod power_gate;
pub mod ssn;

mod error;
mod model;

pub use error::PdnError;
pub use grid::{DroopMap, PdnGrid};
pub use model::PdnParams;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PdnError>;

/// Runs `task` over `items` through the deterministic engine in
/// [`sfet_numeric::exec`], converting a task failure into
/// [`PdnError::Sweep`] with the offending parameters rendered by
/// `describe`.
pub(crate) fn run_sweep<T, U, F, D>(
    cfg: &sfet_numeric::exec::ExecConfig,
    items: &[T],
    describe: D,
    task: F,
) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U> + Sync,
    D: Fn(&T) -> String,
{
    sfet_numeric::exec::par_map(cfg, items, task).map_err(|e| PdnError::Sweep {
        index: e.index,
        context: describe(&items[e.index]),
        source: Box::new(e.source),
    })
}
