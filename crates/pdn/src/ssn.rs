//! Simultaneous-switching-noise guard band and the energy-efficiency model.
//!
//! SSN must be margined in the supply-voltage specification: the operating
//! voltage is raised by a guard band proportional to the worst-case bounce
//! (the proportionality constant `k` captures worst-case alignment across
//! many simultaneously switching drivers — the paper's Fig. 11 case study
//! is one driver, the guard band covers the population). Dynamic energy
//! scales as `V²`, so shaving guard band converts directly into energy
//! efficiency. This is the model behind the paper's "8.8 % improved energy
//! efficiency" claim; `k` is a calibration constant documented in
//! EXPERIMENTS.md.

/// Default guard-band multiplier (worst-case alignment of simultaneously
/// switching I/O against one measured driver's bounce).
///
/// Calibrated so the paper's joint claim — 46 % SSN reduction translating
/// into an 8.8 % energy-efficiency gain at V_CC = 1 V — holds for this
/// testbench's ~8 mV single-driver baseline bounce (the paper's testbench
/// measures ~22 mV; the guard band covers the full simultaneously
/// switching population either way).
pub const DEFAULT_GUARDBAND_K: f64 = 12.2;

/// Supply guard band required for a measured per-driver bounce \[V\].
///
/// # Example
///
/// ```
/// let gb = sfet_pdn::ssn::guardband(8e-3, sfet_pdn::ssn::DEFAULT_GUARDBAND_K);
/// assert!((gb - 0.0976).abs() < 1e-9);
/// ```
pub fn guardband(bounce: f64, k: f64) -> f64 {
    k * bounce.abs()
}

/// Fractional dynamic-energy saving obtained when a bounce reduction lets
/// the supply drop by the released guard band:
/// `1 - ((v_nom - k·(b_base - b_soft)) / v_nom)²`.
///
/// Returns 0 when the "improved" bounce is not actually better.
///
/// # Example
///
/// ```
/// use sfet_pdn::ssn::{energy_efficiency_gain, DEFAULT_GUARDBAND_K};
///
/// // 46% SSN reduction on an 8 mV bounce at 1 V → ~8.8% energy.
/// let gain = energy_efficiency_gain(8e-3, 8e-3 * (1.0 - 0.46), 1.0, DEFAULT_GUARDBAND_K);
/// assert!(gain > 0.07 && gain < 0.11, "gain = {gain}");
/// ```
pub fn energy_efficiency_gain(bounce_base: f64, bounce_soft: f64, v_nom: f64, k: f64) -> f64 {
    let saved = k * (bounce_base - bounce_soft);
    if saved <= 0.0 {
        return 0.0;
    }
    let v_new = (v_nom - saved).max(0.0);
    1.0 - (v_new / v_nom).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guardband_linear_in_bounce() {
        assert_eq!(guardband(0.01, 4.0), 0.04);
        assert_eq!(guardband(-0.01, 4.0), 0.04);
        assert_eq!(guardband(0.0, 4.0), 0.0);
    }

    #[test]
    fn no_gain_when_worse() {
        assert_eq!(energy_efficiency_gain(10e-3, 12e-3, 1.0, 4.0), 0.0);
        assert_eq!(energy_efficiency_gain(10e-3, 10e-3, 1.0, 4.0), 0.0);
    }

    #[test]
    fn gain_monotone_in_reduction() {
        let g1 = energy_efficiency_gain(20e-3, 15e-3, 1.0, 4.0);
        let g2 = energy_efficiency_gain(20e-3, 10e-3, 1.0, 4.0);
        assert!(g2 > g1);
        assert!(g1 > 0.0);
    }

    #[test]
    fn gain_bounded() {
        let g = energy_efficiency_gain(0.5, 0.0, 1.0, 4.0);
        assert!(g <= 1.0);
        // Pathological: guard band exceeds supply → full (clamped) saving.
        let g = energy_efficiency_gain(1.0, 0.0, 1.0, 4.0);
        assert_eq!(g, 1.0);
    }

    #[test]
    fn paper_calibration_point() {
        // The paper reports 46% SSN reduction and 8.8% energy improvement
        // at V_CC = 1 V. With this testbench's ~8 mV baseline bounce that
        // pins k ≈ 12.2.
        let gain = energy_efficiency_gain(8e-3, 8e-3 * (1.0 - 0.46), 1.0, DEFAULT_GUARDBAND_K);
        assert!((gain - 0.088).abs() < 0.01, "gain = {gain}");
    }
}
