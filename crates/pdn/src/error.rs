use std::fmt;

/// Errors from PDN scenario construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// Circuit construction failed.
    Circuit(sfet_circuit::CircuitError),
    /// Simulation failed.
    Sim(sfet_sim::SimError),
    /// Measurement failed.
    Waveform(sfet_waveform::WaveformError),
    /// Scenario parameters are out of domain.
    InvalidScenario(String),
    /// A measured metric came out NaN/Inf; the context names the sample.
    NonFiniteMetric(String),
    /// A parallel sweep task failed: `index` is the task's position in the
    /// sweep and `context` renders the offending parameters.
    Sweep {
        /// Index of the failing task in sweep order.
        index: usize,
        /// Human-readable description of the task's parameters.
        context: String,
        /// The underlying failure.
        source: Box<PdnError>,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::Circuit(e) => write!(f, "circuit error: {e}"),
            PdnError::Sim(e) => write!(f, "simulation error: {e}"),
            PdnError::Waveform(e) => write!(f, "measurement error: {e}"),
            PdnError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            PdnError::NonFiniteMetric(ctx) => write!(f, "non-finite metric: {ctx}"),
            PdnError::Sweep {
                index,
                context,
                source,
            } => write!(f, "sweep task #{index} ({context}) failed: {source}"),
        }
    }
}

impl std::error::Error for PdnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdnError::Circuit(e) => Some(e),
            PdnError::Sim(e) => Some(e),
            PdnError::Waveform(e) => Some(e),
            PdnError::Sweep { source, .. } => Some(&**source),
            PdnError::InvalidScenario(_) | PdnError::NonFiniteMetric(_) => None,
        }
    }
}

impl From<sfet_circuit::CircuitError> for PdnError {
    fn from(e: sfet_circuit::CircuitError) -> Self {
        PdnError::Circuit(e)
    }
}

impl From<sfet_sim::SimError> for PdnError {
    fn from(e: sfet_sim::SimError) -> Self {
        PdnError::Sim(e)
    }
}

impl From<sfet_waveform::WaveformError> for PdnError {
    fn from(e: sfet_waveform::WaveformError) -> Self {
        PdnError::Waveform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: PdnError = sfet_sim::SimError::UnknownSignal("x".into()).into();
        assert!(e.to_string().contains("simulation error"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<PdnError>();
    }
}
