//! Plain-text table rendering for the figure-regeneration binaries.

/// A fixed-width text table.
///
/// # Example
///
/// ```
/// use softfet::report::Table;
///
/// let mut t = Table::new(&["topology", "I_MAX"]);
/// t.add_row(vec!["baseline".into(), "82 uA".into()]);
/// let text = t.to_string();
/// assert!(text.contains("baseline"));
/// assert!(text.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn add_row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a value in engineering units, e.g. `82.3 uA`, `18.4 mV`, `37 ps`.
///
/// # Example
///
/// ```
/// assert_eq!(softfet::report::fmt_si(82.3e-6, "A"), "82.30 uA");
/// assert_eq!(softfet::report::fmt_si(0.0, "V"), "0 V");
/// ```
pub fn fmt_si(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    const SCALES: [(f64, &str); 9] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = value.abs();
    let (scale, prefix) = if mag < 0.9995e-12 {
        (1e-15, "f")
    } else {
        *SCALES
            .iter()
            .find(|(s, _)| mag >= *s * 0.9995)
            .unwrap_or(&(1e-12, "p"))
    };
    format!("{:.2} {}{}", value / scale, prefix, unit)
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(value: f64) -> String {
    format!("{value:.1}%")
}

/// Renders one sweep's execution statistics as a single summary line for
/// the figure binaries, e.g.
/// `sweep: 121/121 tasks, 8 workers, 1.24 s wall, 93% utilization`.
///
/// # Example
///
/// ```
/// let stats = sfet_numeric::exec::ExecStats {
///     tasks_completed: 4,
///     tasks_total: 4,
///     workers: 2,
///     wall: std::time::Duration::from_millis(10),
///     busy: std::time::Duration::from_millis(18),
/// };
/// let line = softfet::report::fmt_exec_stats(&stats);
/// assert!(line.contains("4/4 tasks") && line.contains("2 workers"));
/// ```
pub fn fmt_exec_stats(stats: &sfet_numeric::exec::ExecStats) -> String {
    format!(
        "sweep: {}/{} tasks, {} worker{}, {} wall, {:.0}% utilization",
        stats.tasks_completed,
        stats.tasks_total,
        stats.workers,
        if stats.workers == 1 { "" } else { "s" },
        fmt_si(stats.wall.as_secs_f64(), "s"),
        100.0 * stats.utilization(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.add_row(vec!["xx".into(), "y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines share the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.add_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let _ = t.to_string();
    }

    #[test]
    fn si_formatting() {
        assert_eq!(fmt_si(1.5e3, "Ohm"), "1.50 kOhm");
        assert_eq!(fmt_si(-20e-3, "V"), "-20.00 mV");
        assert_eq!(fmt_si(10e-12, "s"), "10.00 ps");
        assert_eq!(fmt_si(0.5e-15, "F"), "0.50 fF");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(46.04), "46.0%");
    }
}
