//! PTM design-space exploration (paper Figs. 6, 8, 9).
//!
//! All sweeps are embarrassingly parallel across parameter points and route
//! through the shared deterministic engine in [`sfet_numeric::exec`]: every
//! sweep produces bitwise-identical results at any worker count (including
//! serial), honours the `SFET_THREADS` override, and cancels on the first
//! failing point, reporting it as [`SoftFetError::Sweep`] with the
//! offending parameters. Each public sweep has a `*_with` variant taking an
//! explicit [`ExecConfig`]; the plain variant uses [`ExecConfig::from_env`].
//!
//! Single-transient sweeps (the V_IMT × V_MIT grid and the T_PTM sweep)
//! additionally tile their points into structure-of-arrays lanes and run
//! through the batched transient engine (`SFET_BATCH` lanes per tile; see
//! `docs/BATCHING.md`) — without changing any result bit, per the batched
//! engine's determinism contract.

use crate::inverter::{InverterSpec, Topology};
use crate::metrics::{
    inverter_sim_options, measure_inverter, measure_inverter_batch, InverterMetrics,
};
use crate::Result;
use crate::SoftFetError;
use sfet_devices::ptm::PtmParams;
use sfet_numeric::exec::{self, ExecConfig, ExecStats};
use sfet_sim::SimOptions;

/// One point of the V_IMT × V_MIT grid (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Insulator→metal threshold \[V\].
    pub v_imt: f64,
    /// Metal→insulator threshold \[V\].
    pub v_mit: f64,
    /// Peak rail current \[A\].
    pub i_max: f64,
    /// Maximum |di/dt| \[A/s\].
    pub di_dt: f64,
    /// Propagation delay \[s\].
    pub delay: f64,
    /// Number of PTM phase transitions during the edge.
    pub transitions: usize,
}

/// One point of the T_PTM sweep (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TptmPoint {
    /// PTM switching time \[s\].
    pub t_ptm: f64,
    /// Peak rail current \[A\].
    pub i_max: f64,
    /// Maximum |di/dt| \[A/s\].
    pub di_dt: f64,
    /// Propagation delay \[s\].
    pub delay: f64,
    /// Number of PTM phase transitions.
    pub transitions: usize,
}

/// One point of the input-slew sweep (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlewPoint {
    /// Input ramp duration \[s\].
    pub t_rise: f64,
    /// Soft-FET peak current \[A\].
    pub i_max_soft: f64,
    /// Baseline peak current at the same slew \[A\].
    pub i_max_base: f64,
    /// Peak-current reduction, percent.
    pub reduction_pct: f64,
    /// Soft-FET max |di/dt| \[A/s\].
    pub di_dt_soft: f64,
    /// Baseline max |di/dt| \[A/s\].
    pub di_dt_base: f64,
    /// Soft-FET delay \[s\].
    pub delay_soft: f64,
    /// Baseline delay \[s\].
    pub delay_base: f64,
    /// PTM transitions observed.
    pub transitions: usize,
}

/// Runs `task` over `items` through the shared engine, converting a task
/// failure into [`SoftFetError::Sweep`] with the offending parameters
/// rendered by `describe`.
pub(crate) fn run_sweep<T, U, F, D>(
    cfg: &ExecConfig,
    items: &[T],
    describe: D,
    task: F,
) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U> + Sync,
    D: Fn(&T) -> String,
{
    exec::par_map(cfg, items, task).map_err(|e| SoftFetError::Sweep {
        index: e.index,
        context: describe(&items[e.index]),
        source: Box::new(e.source),
    })
}

/// Measures a Soft-FET inverter for one PTM parameter set at the paper's
/// standard conditions (minimum inverter, V_CC = 1 V, 30 ps edge).
fn soft_metrics(vdd: f64, ptm: PtmParams) -> Result<InverterMetrics> {
    measure_inverter(&InverterSpec::minimum(vdd, Topology::SoftFet(ptm)))
}

/// Batched counterpart of [`run_sweep`] for sweeps whose task is "build one
/// inverter spec, measure it, project a point from the metrics": items are
/// tiled into lanes of [`ExecConfig::resolved_batch`] width and each tile
/// runs through [`measure_inverter_batch`] in one structure-of-arrays
/// transient pass. Every lane is bitwise identical to the scalar pipeline
/// (the batched engine's determinism contract), so sweep results are
/// independent of the `SFET_BATCH` setting. Per-lane failures (including
/// spec/PTM validation errors at circuit build) surface as
/// [`SoftFetError::Sweep`] with the failing *task* index and `describe`d
/// parameters, exactly like the scalar path.
fn run_metric_sweep_batched<T, U, D, S, P>(
    cfg: &ExecConfig,
    items: &[T],
    describe: D,
    spec_of: S,
    point_of: P,
) -> Result<(Vec<U>, ExecStats)>
where
    T: Sync,
    U: Send,
    D: Fn(&T) -> String,
    S: Fn(&T) -> InverterSpec + Sync,
    P: Fn(&T, &InverterMetrics) -> U + Sync,
{
    let (result, stats) = exec::par_map_batched_with_stats(cfg, items, |_start, tile| {
        let lanes: Vec<(InverterSpec, SimOptions)> = tile
            .iter()
            .map(|item| {
                let spec = spec_of(item);
                let opts = inverter_sim_options(&spec);
                (spec, opts)
            })
            .collect();
        let refs: Vec<(&InverterSpec, &SimOptions)> = lanes.iter().map(|(s, o)| (s, o)).collect();
        measure_inverter_batch(&refs)
            .into_iter()
            .zip(tile)
            .map(|(r, item)| r.map(|m| point_of(item, &m)))
            .collect()
    });
    let points = result.map_err(|e| SoftFetError::Sweep {
        index: e.index,
        context: describe(&items[e.index]),
        source: Box::new(e.source),
    })?;
    Ok((points, stats))
}

/// Sweeps the V_IMT × V_MIT grid (Fig. 6). Grid points with
/// `v_mit >= v_imt` are physically impossible and are skipped.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
///
/// # Example
///
/// ```no_run
/// let pts = softfet::design_space::vimt_vmit_grid(
///     1.0,
///     sfet_devices::ptm::PtmParams::vo2_default(),
///     &[0.3, 0.4, 0.5],
///     &[0.1],
/// )?;
/// assert_eq!(pts.len(), 3);
/// # Ok::<(), softfet::SoftFetError>(())
/// ```
pub fn vimt_vmit_grid(
    vdd: f64,
    base: PtmParams,
    v_imts: &[f64],
    v_mits: &[f64],
) -> Result<Vec<GridPoint>> {
    vimt_vmit_grid_with(&ExecConfig::from_env(), vdd, base, v_imts, v_mits)
}

/// [`vimt_vmit_grid`] with an explicit execution policy.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn vimt_vmit_grid_with(
    cfg: &ExecConfig,
    vdd: f64,
    base: PtmParams,
    v_imts: &[f64],
    v_mits: &[f64],
) -> Result<Vec<GridPoint>> {
    vimt_vmit_grid_stats(cfg, vdd, base, v_imts, v_mits).map(|(points, _)| points)
}

/// [`vimt_vmit_grid`] variant that also reports engine statistics, for the
/// figure binaries. Runs through the batched structure-of-arrays engine
/// (docs/BATCHING.md); all [`ExecStats`] counts stay per-*point*, not
/// per-tile.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn vimt_vmit_grid_stats(
    cfg: &ExecConfig,
    vdd: f64,
    base: PtmParams,
    v_imts: &[f64],
    v_mits: &[f64],
) -> Result<(Vec<GridPoint>, ExecStats)> {
    let mut combos = Vec::new();
    for &v_imt in v_imts {
        for &v_mit in v_mits {
            if v_mit < v_imt {
                combos.push((v_imt, v_mit));
            }
        }
    }
    run_metric_sweep_batched(
        cfg,
        &combos,
        |&(v_imt, v_mit)| format!("v_imt={v_imt:.4} V, v_mit={v_mit:.4} V"),
        |&(v_imt, v_mit)| {
            InverterSpec::minimum(vdd, Topology::SoftFet(base.with_thresholds(v_imt, v_mit)))
        },
        |&(v_imt, v_mit), m| GridPoint {
            v_imt,
            v_mit,
            i_max: m.i_max,
            di_dt: m.di_dt,
            delay: m.delay,
            transitions: m.transitions,
        },
    )
}

/// Sweeps the intrinsic switching time T_PTM (Fig. 8).
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn tptm_sweep(vdd: f64, base: PtmParams, t_ptms: &[f64]) -> Result<Vec<TptmPoint>> {
    tptm_sweep_with(&ExecConfig::from_env(), vdd, base, t_ptms)
}

/// [`tptm_sweep`] with an explicit execution policy. Runs through the
/// batched structure-of-arrays engine (docs/BATCHING.md).
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn tptm_sweep_with(
    cfg: &ExecConfig,
    vdd: f64,
    base: PtmParams,
    t_ptms: &[f64],
) -> Result<Vec<TptmPoint>> {
    run_metric_sweep_batched(
        cfg,
        t_ptms,
        |t| format!("t_ptm={t:.4e} s"),
        |&t_ptm| InverterSpec::minimum(vdd, Topology::SoftFet(base.with_t_ptm(t_ptm))),
        |&t_ptm, m| TptmPoint {
            t_ptm,
            i_max: m.i_max,
            di_dt: m.di_dt,
            delay: m.delay,
            transitions: m.transitions,
        },
    )
    .map(|(points, _)| points)
}

/// Sweeps the input slew (Fig. 9), measuring Soft-FET and baseline at each
/// point so the percentage reduction is slew-consistent.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn slew_sweep(vdd: f64, ptm: PtmParams, t_rises: &[f64]) -> Result<Vec<SlewPoint>> {
    slew_sweep_with(&ExecConfig::from_env(), vdd, ptm, t_rises)
}

/// [`slew_sweep`] with an explicit execution policy. Stays on the scalar
/// engine: each task runs *two* transients (Soft-FET and baseline) with
/// slew-dependent durations, which doesn't map onto fixed-shape lanes.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn slew_sweep_with(
    cfg: &ExecConfig,
    vdd: f64,
    ptm: PtmParams,
    t_rises: &[f64],
) -> Result<Vec<SlewPoint>> {
    run_sweep(
        cfg,
        t_rises,
        |t| format!("t_rise={t:.4e} s"),
        |_, &t_rise| {
            // Stretch the window so slow edges still settle.
            let t_stop = (20e-12 + t_rise) * 2.0 + 600e-12;
            let soft = measure_inverter(
                &InverterSpec::minimum(vdd, Topology::SoftFet(ptm))
                    .with_t_rise(t_rise)
                    .with_t_stop(t_stop),
            )?;
            let base = measure_inverter(
                &InverterSpec::minimum(vdd, Topology::Baseline)
                    .with_t_rise(t_rise)
                    .with_t_stop(t_stop),
            )?;
            Ok(SlewPoint {
                t_rise,
                i_max_soft: soft.i_max,
                i_max_base: base.i_max,
                reduction_pct: 100.0 * (1.0 - soft.i_max / base.i_max),
                di_dt_soft: soft.di_dt,
                di_dt_base: base.di_dt,
                delay_soft: soft.delay,
                delay_base: base.delay,
                transitions: soft.transitions,
            })
        },
    )
}

/// One point of the V_CC-dependence study: the V_IMT that minimises I_MAX
/// at a given supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalVimtPoint {
    /// Supply voltage \[V\].
    pub vdd: f64,
    /// The I_MAX-minimising V_IMT among the candidates \[V\].
    pub best_v_imt: f64,
    /// I_MAX at the optimum \[A\].
    pub i_max: f64,
    /// I_MAX of the baseline inverter at the same V_CC \[A\].
    pub i_max_baseline: f64,
}

/// Finds the I_MAX-optimal V_IMT at each supply voltage — the paper's
/// §IV-E remark that the optimum "is a strong function of V_CC" made
/// quantitative. Candidates are scanned as fractions of V_CC.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn optimal_vimt_vs_vcc(
    base: PtmParams,
    vdds: &[f64],
    vimt_fractions: &[f64],
) -> Result<Vec<OptimalVimtPoint>> {
    optimal_vimt_vs_vcc_with(&ExecConfig::from_env(), base, vdds, vimt_fractions)
}

/// [`optimal_vimt_vs_vcc`] with an explicit execution policy.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn optimal_vimt_vs_vcc_with(
    cfg: &ExecConfig,
    base: PtmParams,
    vdds: &[f64],
    vimt_fractions: &[f64],
) -> Result<Vec<OptimalVimtPoint>> {
    run_sweep(
        cfg,
        vdds,
        |v| format!("vdd={v:.3} V"),
        |_, &vdd| {
            let baseline = measure_inverter(&InverterSpec::minimum(vdd, Topology::Baseline))?;
            let mut best: Option<(f64, f64)> = None;
            for &frac in vimt_fractions {
                let v_imt = frac * vdd;
                let v_mit = (base.v_mit).min(0.5 * v_imt);
                let m = soft_metrics(vdd, base.with_thresholds(v_imt, v_mit))?;
                if best.is_none_or(|(_, imax)| m.i_max < imax) {
                    best = Some((v_imt, m.i_max));
                }
            }
            let (best_v_imt, i_max) = best.expect("candidate list is non-empty");
            Ok(OptimalVimtPoint {
                vdd,
                best_v_imt,
                i_max,
                i_max_baseline: baseline.i_max,
            })
        },
    )
}

/// One point of the ambient-temperature study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperaturePoint {
    /// Ambient temperature [°C].
    pub celsius: f64,
    /// Soft-FET peak current with the temperature-adjusted PTM \[A\].
    pub i_max_soft: f64,
    /// Baseline peak current (temperature model applies to the PTM only;
    /// the MOSFET cards stay at their nominal corner) \[A\].
    pub i_max_base: f64,
    /// Peak-current reduction, percent.
    pub reduction_pct: f64,
    /// PTM transitions observed.
    pub transitions: usize,
}

/// Sweeps ambient temperature through the PTM thermal model
/// ([`PtmParams::at_temperature`]): as the ambient approaches VO₂'s
/// T_C ≈ 68 °C the thresholds collapse and the soft-switching benefit
/// erodes — the thermal design envelope of a Soft-FET product.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn temperature_sweep(
    vdd: f64,
    base: PtmParams,
    celsius_points: &[f64],
) -> Result<Vec<TemperaturePoint>> {
    temperature_sweep_with(&ExecConfig::from_env(), vdd, base, celsius_points)
}

/// [`temperature_sweep`] with an explicit execution policy.
///
/// # Errors
///
/// Propagates the first simulation failure as [`SoftFetError::Sweep`].
pub fn temperature_sweep_with(
    cfg: &ExecConfig,
    vdd: f64,
    base: PtmParams,
    celsius_points: &[f64],
) -> Result<Vec<TemperaturePoint>> {
    let baseline = measure_inverter(&InverterSpec::minimum(vdd, Topology::Baseline))?;
    run_sweep(
        cfg,
        celsius_points,
        |c| format!("ambient={c:.1} C"),
        |_, &celsius| {
            let m = soft_metrics(vdd, base.at_temperature(celsius))?;
            Ok(TemperaturePoint {
                celsius,
                i_max_soft: m.i_max,
                i_max_base: baseline.i_max,
                reduction_pct: 100.0 * (1.0 - m.i_max / baseline.i_max),
                transitions: m.transitions,
            })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_skips_impossible_combos() {
        let pts = vimt_vmit_grid(1.0, PtmParams::vo2_default(), &[0.3], &[0.1, 0.3, 0.5]).unwrap();
        // Only v_mit = 0.1 < v_imt = 0.3 survives.
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].v_mit, 0.1);
        assert!(pts[0].i_max > 0.0);
    }

    #[test]
    fn imax_dips_near_optimal_vimt() {
        // Fig. 6's headline: I_MAX(V_IMT=0.4) below both 0.25 and 0.55.
        let pts =
            vimt_vmit_grid(1.0, PtmParams::vo2_default(), &[0.25, 0.4, 0.55], &[0.1]).unwrap();
        let imax_of = |v: f64| {
            pts.iter()
                .find(|p| (p.v_imt - v).abs() < 1e-9)
                .expect("point exists")
                .i_max
        };
        let (lo, opt, hi) = (imax_of(0.25), imax_of(0.4), imax_of(0.55));
        assert!(opt < lo, "I_MAX dip: 0.4 ({opt:.3e}) vs 0.25 ({lo:.3e})");
        assert!(opt < hi, "I_MAX dip: 0.4 ({opt:.3e}) vs 0.55 ({hi:.3e})");
    }

    #[test]
    fn optimal_vimt_tracks_vcc() {
        // The optimum V_IMT moves down with V_CC (paper §IV-E: "strong
        // function of V_CC").
        let pts = optimal_vimt_vs_vcc(PtmParams::vo2_default(), &[0.7, 1.0], &[0.3, 0.4, 0.5, 0.6])
            .unwrap();
        assert!(pts[0].best_v_imt <= pts[1].best_v_imt + 1e-9);
        // And at the per-V_CC optimum the Soft-FET beats baseline at both
        // supplies.
        for p in &pts {
            assert!(
                p.i_max < p.i_max_baseline,
                "at vdd={}: soft {} vs base {}",
                p.vdd,
                p.i_max,
                p.i_max_baseline
            );
        }
    }

    #[test]
    fn slew_sweep_benefit_shrinks_for_slow_edges() {
        // Fig. 9: soft-switching benefit vanishes with decreasing slew rate.
        let pts = slew_sweep(1.0, PtmParams::vo2_default(), &[30e-12, 600e-12]).unwrap();
        assert!(
            pts[0].reduction_pct > pts[1].reduction_pct,
            "fast {:.1}% vs slow {:.1}%",
            pts[0].reduction_pct,
            pts[1].reduction_pct
        );
    }

    #[test]
    fn invalid_point_reports_sweep_context() {
        // A non-physical PTM (t_ptm <= 0) fails validation inside the sweep;
        // the error must carry the task index and the parameters.
        let err = tptm_sweep(1.0, PtmParams::vo2_default(), &[10e-12, -1.0])
            .expect_err("negative t_ptm must fail");
        match err {
            SoftFetError::Sweep { index, context, .. } => {
                assert_eq!(index, 1);
                assert!(context.contains("t_ptm"), "context: {context}");
            }
            other => panic!("expected Sweep error, got {other:?}"),
        }
    }

    #[test]
    fn grid_stats_cover_all_points() {
        let (pts, stats) = vimt_vmit_grid_stats(
            &ExecConfig::with_workers(2),
            1.0,
            PtmParams::vo2_default(),
            &[0.3, 0.4],
            &[0.1],
        )
        .unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(stats.tasks_completed, 2);
        assert_eq!(stats.workers, 2);
        assert!(stats.wall.as_nanos() > 0);
    }
}

#[cfg(test)]
mod temperature_tests {
    use super::*;

    #[test]
    fn benefit_erodes_near_transition_temperature() {
        let pts = temperature_sweep(1.0, PtmParams::vo2_default(), &[25.0, 45.0, 62.0]).unwrap();
        // Nominal ambient keeps the headline benefit.
        assert!(
            pts[0].reduction_pct > 40.0,
            "25C: {:.1}%",
            pts[0].reduction_pct
        );
        // Near T_C the thresholds collapse and the benefit erodes.
        assert!(
            pts[2].reduction_pct < pts[0].reduction_pct,
            "62C ({:.1}%) must be worse than 25C ({:.1}%)",
            pts[2].reduction_pct,
            pts[0].reduction_pct
        );
        // The inverter still functions at every point.
        assert!(pts
            .iter()
            .all(|p| p.i_max_soft.is_finite() && p.i_max_soft > 0.0));
    }
}
