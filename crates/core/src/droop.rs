//! Full-chip droop-map metrics over the distributed PDN grid.
//!
//! The cell- and scenario-level experiments measure droop at a single
//! rail; the grid scenario ([`sfet_pdn::PdnGrid`]) produces a spatial
//! *map* of per-tile minimum voltages. This module reduces such maps to
//! the paper-style summary quantities (worst/mean/95th-percentile droop,
//! guard-band violations) and compares a baseline grid against its
//! Soft-FET variant, mirroring [`crate::power_gate`]'s role for the
//! lumped scenario.
//!
//! All reductions validate their samples: a NaN/Inf tile voltage surfaces
//! as [`SoftFetError::NonFinite`] naming the tile, never as a sort panic
//! mid-sweep.

use crate::report::{fmt_pct, fmt_si, Table};
use crate::{Result, SoftFetError};
use sfet_pdn::{DroopMap, PdnGrid};
use sfet_sim::SimOptions;

/// Summary metrics of one droop map.
#[derive(Debug, Clone, PartialEq)]
pub struct DroopMapMetrics {
    /// Tiles in the map.
    pub tiles: usize,
    /// Worst (largest) droop below nominal \[V\].
    pub worst_droop: f64,
    /// Tile `(ix, iy)` with the worst droop.
    pub worst_tile: (usize, usize),
    /// Mean droop across tiles \[V\].
    pub mean_droop: f64,
    /// 95th-percentile droop across tiles \[V\].
    pub p95_droop: f64,
    /// Tiles whose droop exceeds `guard_band` \[count\].
    pub violations: usize,
    /// The guard band the violation count was measured against \[V\].
    pub guard_band: f64,
}

/// Reduces a droop map to its summary metrics against `guard_band`.
///
/// # Errors
///
/// [`SoftFetError::NonFinite`] naming the first non-finite tile sample;
/// [`SoftFetError::InvalidSpec`] for an empty map.
///
/// # Example
///
/// ```no_run
/// use softfet::droop::droop_metrics;
/// use sfet_pdn::PdnGrid;
///
/// # fn main() -> Result<(), softfet::SoftFetError> {
/// let map = PdnGrid::default().droop_map()?;
/// let m = droop_metrics(&map, 0.05)?;
/// assert!(m.worst_droop >= m.p95_droop && m.p95_droop >= 0.0);
/// # Ok(())
/// # }
/// ```
pub fn droop_metrics(map: &DroopMap, guard_band: f64) -> Result<DroopMapMetrics> {
    if map.v_min.is_empty() {
        return Err(SoftFetError::InvalidSpec("empty droop map".into()));
    }
    let mut droops = Vec::with_capacity(map.v_min.len());
    for (lin, &v) in map.v_min.iter().enumerate() {
        if !v.is_finite() {
            return Err(SoftFetError::NonFinite(format!(
                "droop map tile ({}, {}) minimum voltage is {v}",
                lin % map.nx,
                lin / map.nx
            )));
        }
        droops.push(map.v_nom - v);
    }
    let (wx, wy, v_worst) = map.worst();
    let mean = droops.iter().sum::<f64>() / droops.len() as f64;
    droops.sort_by(f64::total_cmp);
    let p95 = percentile_sorted(&droops, 95.0);
    let violations = droops.iter().filter(|&&d| d > guard_band).count();
    Ok(DroopMapMetrics {
        tiles: droops.len(),
        worst_droop: map.v_nom - v_worst,
        worst_tile: (wx, wy),
        mean_droop: mean,
        p95_droop: p95,
        violations,
        guard_band,
    })
}

/// Linear-interpolation percentile of an ascending-sorted slice.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    let pos = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi.min(sorted.len() - 1)] * frac
}

/// Baseline-vs-Soft-FET grid comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GridComparison {
    /// Baseline (hard-switching sites) metrics.
    pub base: DroopMapMetrics,
    /// Soft-FET (spread-edge sites) metrics.
    pub soft: DroopMapMetrics,
    /// Worst-droop reduction, `(base - soft) / base` \[%\].
    pub reduction_pct: f64,
}

/// Runs `grid` baseline and with the Soft-FET spread, and summarises both
/// maps against `guard_band`.
///
/// # Errors
///
/// Propagates grid build/simulation failures and non-finite metrics.
pub fn compare_grid(
    grid: &PdnGrid,
    spread: f64,
    guard_band: f64,
    opts: &SimOptions,
) -> Result<GridComparison> {
    let base_map = grid.droop_map_with(opts)?;
    let soft_map = grid.with_soft_fet_spread(spread).droop_map_with(opts)?;
    let base = droop_metrics(&base_map, guard_band)?;
    let soft = droop_metrics(&soft_map, guard_band)?;
    let reduction_pct = if base.worst_droop > 0.0 {
        (base.worst_droop - soft.worst_droop) / base.worst_droop * 100.0
    } else {
        0.0
    };
    Ok(GridComparison {
        base,
        soft,
        reduction_pct,
    })
}

/// Renders a comparison as a two-row summary table for the experiment
/// binaries.
pub fn comparison_table(cmp: &GridComparison) -> Table {
    let mut t = Table::new(&[
        "variant",
        "worst droop",
        "worst tile",
        "mean droop",
        "p95 droop",
        "violations",
    ]);
    for (name, m) in [("baseline", &cmp.base), ("soft-fet", &cmp.soft)] {
        t.add_row(vec![
            name.into(),
            fmt_si(m.worst_droop, "V"),
            format!("({}, {})", m.worst_tile.0, m.worst_tile.1),
            fmt_si(m.mean_droop, "V"),
            fmt_si(m.p95_droop, "V"),
            format!("{}/{}", m.violations, m.tiles),
        ]);
    }
    t.add_row(vec![
        "reduction".into(),
        fmt_pct(cmp.reduction_pct),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfet_sim::TranStats;

    fn map(nx: usize, ny: usize, v: Vec<f64>) -> DroopMap {
        DroopMap {
            nx,
            ny,
            v_nom: 1.0,
            v_min: v,
            stats: TranStats::default(),
        }
    }

    #[test]
    fn metrics_on_uniform_map() {
        let m = droop_metrics(&map(2, 2, vec![0.95; 4]), 0.1).unwrap();
        assert!((m.worst_droop - 0.05).abs() < 1e-12);
        assert!((m.mean_droop - 0.05).abs() < 1e-12);
        assert!((m.p95_droop - 0.05).abs() < 1e-12);
        assert_eq!(m.violations, 0);
    }

    #[test]
    fn metrics_rank_tiles_and_count_violations() {
        let m = droop_metrics(&map(2, 2, vec![0.99, 0.85, 0.97, 0.96]), 0.1).unwrap();
        assert!((m.worst_droop - 0.15).abs() < 1e-12);
        assert_eq!(m.worst_tile, (1, 0));
        assert_eq!(m.violations, 1);
        assert!(m.p95_droop <= m.worst_droop && m.p95_droop > m.mean_droop);
    }

    #[test]
    fn non_finite_tile_is_a_named_error() {
        let bad = map(2, 2, vec![0.99, f64::NAN, 0.97, 0.96]);
        match droop_metrics(&bad, 0.1) {
            Err(SoftFetError::NonFinite(msg)) => {
                assert!(msg.contains("(1, 0)"), "names the tile: {msg}");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn empty_map_rejected() {
        assert!(droop_metrics(&map(0, 0, vec![]), 0.1).is_err());
    }

    #[test]
    fn grid_comparison_shows_soft_fet_benefit() {
        let grid = PdnGrid {
            nx: 6,
            ny: 6,
            t_stop: 10e-9,
            ..PdnGrid::default()
        };
        let opts = SimOptions::for_duration(grid.t_stop, 200);
        let cmp = compare_grid(&grid, 8.0, 0.05, &opts).unwrap();
        assert!(
            cmp.soft.worst_droop < cmp.base.worst_droop,
            "soft {:.2} mV vs base {:.2} mV",
            cmp.soft.worst_droop * 1e3,
            cmp.base.worst_droop * 1e3
        );
        assert!(cmp.reduction_pct > 0.0);
        let table = comparison_table(&cmp);
        assert_eq!(table.len(), 3);
    }
}
