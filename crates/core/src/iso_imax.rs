//! Iso-I_MAX calibration (paper Fig. 5).
//!
//! The paper's comparison is only fair at equal peak current: each CMOS
//! variant's knob (HVT threshold shift, gate series resistance, stack
//! width) is tuned so its I_MAX at V_CC = 1 V matches the Soft-FET's.
//! Every knob is monotone in I_MAX, so bisection suffices.

use crate::inverter::{InverterSpec, Topology};
use crate::{Result, SoftFetError};
use sfet_devices::ptm::PtmParams;

/// Calibrated variant parameters that all hit the same I_MAX at 1 V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoImaxCalibration {
    /// The Soft-FET peak current everything is matched to \[A\].
    pub target_imax: f64,
    /// HVT threshold shift \[V\].
    pub hvt_dvt: f64,
    /// Gate series resistance \[Ω\].
    pub series_r: f64,
    /// Width multiplier for the 2-stack variant.
    pub stack_width_scale: f64,
}

impl IsoImaxCalibration {
    /// The calibrated topology set, in the paper's Fig. 5 order
    /// (Soft-FET, HVT, series-R, stacked).
    pub fn topologies(&self, ptm: PtmParams) -> Vec<Topology> {
        vec![
            Topology::SoftFet(ptm),
            Topology::Hvt(self.hvt_dvt),
            Topology::SeriesR(self.series_r),
            Topology::Stacked {
                n: 2,
                width_scale: self.stack_width_scale,
            },
        ]
    }
}

/// Measures I_MAX of one topology at the given supply.
///
/// Unlike the full [`measure_inverter`](crate::metrics::measure_inverter)
/// pipeline this only needs the rail
/// current, so it works even for variants too slow to finish switching
/// inside the standard window (a mis-calibrated series-R can have an RC
/// constant of nanoseconds).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn imax_of(vdd: f64, topology: Topology) -> Result<f64> {
    let spec = InverterSpec::minimum(vdd, topology);
    let result = crate::metrics::run_inverter(&spec)?;
    let i_rail = result.supply_current("VDD")?;
    Ok(i_rail.peak_abs().1.abs())
}

/// Bisects a monotone scalar knob until `imax(knob)` matches `target`
/// within `rel_tol`.
///
/// `increasing` states whether I_MAX grows with the knob.
fn bisect_knob<F>(
    mut eval: F,
    mut lo: f64,
    mut hi: f64,
    target: f64,
    increasing: bool,
    rel_tol: f64,
) -> Result<f64>
where
    F: FnMut(f64) -> Result<f64>,
{
    let f_lo = eval(lo)?;
    let f_hi = eval(hi)?;
    let (mut bracket_lo, mut bracket_hi) = (f_lo, f_hi);
    if increasing {
        if !(bracket_lo <= target && target <= bracket_hi) {
            return Err(SoftFetError::Calibration(format!(
                "target {target:.3e} outside knob range [{bracket_lo:.3e}, {bracket_hi:.3e}]"
            )));
        }
    } else if !(bracket_hi <= target && target <= bracket_lo) {
        return Err(SoftFetError::Calibration(format!(
            "target {target:.3e} outside knob range [{bracket_hi:.3e}, {bracket_lo:.3e}]"
        )));
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let f_mid = eval(mid)?;
        if (f_mid - target).abs() <= rel_tol * target {
            return Ok(mid);
        }
        let go_up = if increasing {
            f_mid < target
        } else {
            f_mid > target
        };
        if go_up {
            lo = mid;
            bracket_lo = f_mid;
        } else {
            hi = mid;
            bracket_hi = f_mid;
        }
        let _ = (bracket_lo, bracket_hi);
    }
    Ok(0.5 * (lo + hi))
}

/// Calibrates all three CMOS variants to the Soft-FET's I_MAX at
/// `V_CC = 1 V` for the given PTM.
///
/// # Errors
///
/// [`SoftFetError::Calibration`] if a knob's range cannot bracket the
/// target; simulation errors propagate.
///
/// # Example
///
/// ```no_run
/// use softfet::iso_imax::calibrate_iso_imax;
/// use sfet_devices::ptm::PtmParams;
///
/// # fn main() -> Result<(), softfet::SoftFetError> {
/// let cal = calibrate_iso_imax(PtmParams::vo2_default())?;
/// assert!(cal.hvt_dvt > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn calibrate_iso_imax(ptm: PtmParams) -> Result<IsoImaxCalibration> {
    let target = imax_of(1.0, Topology::SoftFet(ptm))?;
    let rel_tol = 0.02;

    let hvt_dvt = bisect_knob(
        |dvt| imax_of(1.0, Topology::Hvt(dvt)),
        0.0,
        0.40,
        target,
        false,
        rel_tol,
    )?;
    // Bisect the series resistance in log space (the response spans decades).
    let log_r = bisect_knob(
        |lr| imax_of(1.0, Topology::SeriesR(10f64.powf(lr))),
        3.0,
        7.5,
        target,
        false,
        rel_tol,
    )?;
    let stack_width_scale = bisect_knob(
        |ws| {
            imax_of(
                1.0,
                Topology::Stacked {
                    n: 2,
                    width_scale: ws,
                },
            )
        },
        0.1,
        4.0,
        target,
        true,
        rel_tol,
    )?;

    Ok(IsoImaxCalibration {
        target_imax: target,
        hvt_dvt,
        series_r: 10f64.powf(log_r),
        stack_width_scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_knob_increasing() {
        let r = bisect_knob(|x| Ok(x * x), 0.0, 10.0, 25.0, true, 1e-6).unwrap();
        assert!((r - 5.0).abs() < 1e-3);
    }

    #[test]
    fn bisect_knob_decreasing() {
        let r = bisect_knob(|x| Ok(100.0 - x), 0.0, 100.0, 30.0, false, 1e-9).unwrap();
        assert!((r - 70.0).abs() < 1e-3);
    }

    #[test]
    fn bisect_unbracketed_target_fails() {
        assert!(matches!(
            bisect_knob(Ok, 0.0, 1.0, 5.0, true, 1e-6),
            Err(SoftFetError::Calibration(_))
        ));
    }

    /// Full calibration: slow-ish (dozens of transients) but the linchpin
    /// of Fig. 5, so it runs in the unit tier.
    #[test]
    fn calibration_matches_targets() {
        let ptm = PtmParams::vo2_default();
        let cal = calibrate_iso_imax(ptm).unwrap();
        assert!(cal.hvt_dvt > 0.0 && cal.hvt_dvt < 0.4);
        assert!(cal.series_r > 1e3 && cal.series_r < 3e7);
        for topo in cal.topologies(ptm) {
            let imax = imax_of(1.0, topo.clone()).unwrap();
            assert!(
                (imax - cal.target_imax).abs() < 0.08 * cal.target_imax,
                "{}: {:.3e} vs target {:.3e}",
                topo.label(),
                imax,
                cal.target_imax
            );
        }
    }
}
