//! Soft-FET power-gate comparison (paper Fig. 10).

use crate::Result;
use sfet_devices::ptm::PtmParams;
use sfet_pdn::power_gate::{PowerGateOutcome, PowerGateScenario};
use sfet_sim::SimOptions;

/// Baseline vs Soft-FET power-gate wake-up on the same PDN.
#[derive(Debug, Clone)]
pub struct PowerGateComparison {
    /// Direct-drive header outcome.
    pub baseline: PowerGateOutcome,
    /// PTM-gated header outcome.
    pub soft: PowerGateOutcome,
}

impl PowerGateComparison {
    /// Droop improvement in millivolts (positive = Soft-FET better), the
    /// paper's "~20 mV lower supply droop".
    pub fn droop_improvement_mv(&self) -> f64 {
        (self.baseline.droop.droop - self.soft.droop.droop) * 1e3
    }

    /// Peak inrush reduction factor (paper: "reduces the current by 2X").
    pub fn current_reduction_factor(&self) -> f64 {
        self.baseline.peak_inrush / self.soft.peak_inrush
    }

    /// Wake-time penalty of the Soft-FET header \[s\], when both woke.
    pub fn wake_time_penalty(&self) -> Option<f64> {
        match (self.soft.wake_time, self.baseline.wake_time) {
            (Some(s), Some(b)) => Some(s - b),
            _ => None,
        }
    }
}

/// Runs the baseline and Soft-FET variants of a power-gate scenario.
///
/// # Errors
///
/// Propagates scenario and simulation failures.
///
/// # Example
///
/// ```no_run
/// use sfet_pdn::power_gate::PowerGateScenario;
/// use sfet_devices::ptm::PtmParams;
///
/// # fn main() -> Result<(), softfet::SoftFetError> {
/// let cmp = softfet::power_gate::compare_power_gate(
///     &PowerGateScenario::default(),
///     PtmParams::vo2_default(),
/// )?;
/// assert!(cmp.droop_improvement_mv() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn compare_power_gate(
    scenario: &PowerGateScenario,
    logic_ptm: PtmParams,
) -> Result<PowerGateComparison> {
    compare_power_gate_with_options(
        scenario,
        logic_ptm,
        &SimOptions::for_duration(scenario.t_stop, 4000),
    )
}

/// [`compare_power_gate`] under explicit simulator options — attach a
/// telemetry sink via [`SimOptions::with_telemetry`] to trace both runs
/// into one stream (the baseline transient completes before the Soft-FET
/// one begins, so the two `transient` spans never interleave).
///
/// # Errors
///
/// Propagates scenario and simulation failures.
pub fn compare_power_gate_with_options(
    scenario: &PowerGateScenario,
    logic_ptm: PtmParams,
    opts: &SimOptions,
) -> Result<PowerGateComparison> {
    let baseline_scenario = PowerGateScenario {
        ptm: None,
        ..scenario.clone()
    };
    let soft_scenario = scenario.with_soft_fet(logic_ptm);
    let baseline = baseline_scenario.run_with(opts)?;
    let soft = soft_scenario.run_with(opts)?;
    Ok(PowerGateComparison { baseline, soft })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_shows_paper_trends() {
        let cmp =
            compare_power_gate(&PowerGateScenario::default(), PtmParams::vo2_default()).unwrap();
        assert!(
            cmp.droop_improvement_mv() > 0.0,
            "droop improved by {:.1} mV",
            cmp.droop_improvement_mv()
        );
        assert!(
            cmp.current_reduction_factor() > 1.2,
            "inrush reduction {:.2}x",
            cmp.current_reduction_factor()
        );
        // Soft gating trades wake latency.
        if let Some(penalty) = cmp.wake_time_penalty() {
            assert!(penalty > 0.0, "soft wake should be slower");
        }
    }
}
