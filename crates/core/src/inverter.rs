//! Soft-FET inverter and baseline CMOS variants (paper Figs. 4, 5, 7).
//!
//! All topologies share a common harness: a V_CC supply, an input ramp,
//! the inverter under test, and a fixed FO4 load capacitance. Node names
//! are standardised so the measurement pipeline can probe any variant:
//!
//! * `in` — the stimulus node;
//! * `g` — the (possibly PTM-decoupled) common gate node;
//! * `out` — the inverter output;
//! * supply source `VDD`, input source `VIN`, load `CL`.

use crate::{Result, SoftFetError};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::mosfet::{gate_caps, Corner, MosfetModel};
use sfet_devices::ptm::PtmParams;

/// Input edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Input ramps 0 → V_CC (output falls; N_1 conducts the load current).
    Rising,
    /// Input ramps V_CC → 0 (output rises; P_1 draws the V_CC current —
    /// the paper's Fig. 4 analysis case).
    Falling,
}

/// Inverter topology under test.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Plain CMOS inverter.
    Baseline,
    /// CMOS inverter with a PTM in series with the common gate — the
    /// proposed Soft-FET.
    SoftFet(PtmParams),
    /// High-V_T variant: both devices' thresholds shifted by the given
    /// amount \[V\].
    Hvt(f64),
    /// Constant series resistance at the gate \[Ω\].
    SeriesR(f64),
    /// `n`-high stacked NMOS and PMOS (n ≥ 2), devices upsized by the
    /// given width multiplier to partially recover drive.
    Stacked {
        /// Stack height (number of series devices per network).
        n: usize,
        /// Width multiplier applied to every stacked device.
        width_scale: f64,
    },
}

impl Topology {
    /// Short label used in report tables.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Baseline => "baseline",
            Topology::SoftFet(_) => "soft-fet",
            Topology::Hvt(_) => "hvt",
            Topology::SeriesR(_) => "series-r",
            Topology::Stacked { .. } => "stacked",
        }
    }
}

/// Full specification of one inverter experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct InverterSpec {
    /// Supply voltage \[V\].
    pub vdd: f64,
    /// PMOS width \[m\].
    pub wp: f64,
    /// NMOS width \[m\].
    pub wn: f64,
    /// Channel length \[m\].
    pub l: f64,
    /// Load capacitance \[F\]; [`InverterSpec::minimum`] uses an FO4 load.
    pub c_load: f64,
    /// Input edge direction.
    pub edge: Edge,
    /// Input ramp start time \[s\].
    pub t_start: f64,
    /// Input ramp duration \[s\] (the paper's 30 ps default).
    pub t_rise: f64,
    /// Topology under test.
    pub topology: Topology,
    /// Global process corner applied to both devices.
    pub corner: Corner,
    /// Simulation stop time \[s\]; must cover the transition plus the slow
    /// Soft-FET gate settling tail.
    pub t_stop: f64,
}

impl InverterSpec {
    /// Minimum-size 40 nm-class inverter with an FO4 load and the paper's
    /// 30 ps input ramp, falling edge (the Fig. 4 case).
    pub fn minimum(vdd: f64, topology: Topology) -> Self {
        let (wp, wn, l) = (240e-9, 120e-9, 40e-9);
        let cin = gate_caps(&MosfetModel::pmos_40nm(), wp, l).total()
            + gate_caps(&MosfetModel::nmos_40nm(), wn, l).total();
        InverterSpec {
            vdd,
            wp,
            wn,
            l,
            c_load: 4.0 * cin,
            edge: Edge::Falling,
            t_start: 20e-12,
            t_rise: 30e-12,
            topology,
            corner: Corner::Typical,
            t_stop: 600e-12,
        }
    }

    /// Returns a copy with a different input ramp duration.
    pub fn with_t_rise(mut self, t_rise: f64) -> Self {
        self.t_rise = t_rise;
        self
    }

    /// Returns a copy with a different edge direction.
    pub fn with_edge(mut self, edge: Edge) -> Self {
        self.edge = edge;
        self
    }

    /// Returns a copy with a different stop time.
    pub fn with_t_stop(mut self, t_stop: f64) -> Self {
        self.t_stop = t_stop;
        self
    }

    /// Returns a copy at a different process corner.
    pub fn with_corner(mut self, corner: Corner) -> Self {
        self.corner = corner;
        self
    }

    /// Input waveform implied by the spec.
    pub fn input_wave(&self) -> SourceWaveform {
        match self.edge {
            Edge::Rising => SourceWaveform::ramp(0.0, self.vdd, self.t_start, self.t_rise),
            Edge::Falling => SourceWaveform::ramp(self.vdd, 0.0, self.t_start, self.t_rise),
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// [`SoftFetError::InvalidSpec`] describing the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if !(self.vdd > 0.0 && self.vdd <= 2.0) {
            return Err(SoftFetError::InvalidSpec(format!(
                "vdd must be in (0, 2] V, got {}",
                self.vdd
            )));
        }
        if !(self.t_rise > 0.0 && self.t_stop > self.t_start + self.t_rise) {
            return Err(SoftFetError::InvalidSpec(
                "need t_rise > 0 and t_stop beyond the input edge".into(),
            ));
        }
        if let Topology::Stacked { n, width_scale } = &self.topology {
            if *n < 2 || *width_scale <= 0.0 {
                return Err(SoftFetError::InvalidSpec(
                    "stacked topology needs n >= 2 and width_scale > 0".into(),
                ));
            }
        }
        if let Topology::SeriesR(r) = &self.topology {
            if *r <= 0.0 {
                return Err(SoftFetError::InvalidSpec(
                    "series resistance must be positive".into(),
                ));
            }
        }
        Ok(())
    }

    /// Builds the test-bench circuit for this spec.
    ///
    /// # Errors
    ///
    /// Propagates circuit-construction failures.
    pub fn build(&self) -> Result<Circuit> {
        self.validate()?;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        let gnd = Circuit::ground();

        let vssm = ckt.node("vssm");
        ckt.add_voltage_source("VDD", vdd, gnd, SourceWaveform::Dc(self.vdd))?;
        // 0 V ammeter in the NMOS source path: i(VSSM) is the current sunk
        // into ground (the rising-edge rail current of Fig. 4's dual case).
        ckt.add_voltage_source("VSSM", vssm, gnd, SourceWaveform::Dc(0.0))?;
        ckt.add_voltage_source("VIN", inp, gnd, self.input_wave())?;
        ckt.add_capacitor("CL", out, gnd, self.c_load)?;

        let (pmodel, nmodel) = match &self.topology {
            Topology::Hvt(dvt) => (
                MosfetModel::pmos_40nm().with_vt_shift(*dvt),
                MosfetModel::nmos_40nm().with_vt_shift(*dvt),
            ),
            _ => (MosfetModel::pmos_40nm(), MosfetModel::nmos_40nm()),
        };
        let (pmodel, nmodel) = (pmodel.at_corner(self.corner), nmodel.at_corner(self.corner));

        // Gate coupling: direct, through a PTM, or through a resistor.
        match &self.topology {
            Topology::SoftFet(params) => {
                ckt.add_ptm("PG1", inp, gate, *params)?;
            }
            Topology::SeriesR(r) => {
                ckt.add_resistor("RG1", inp, gate, *r)?;
            }
            _ => {
                // Tie gate to input with a negligible resistance so the node
                // naming stays uniform across topologies.
                ckt.add_resistor("RG1", inp, gate, 0.1)?;
            }
        }

        match &self.topology {
            Topology::Stacked { n, width_scale } => {
                let wp = self.wp * width_scale;
                let wn = self.wn * width_scale;
                // PMOS stack from vdd to out.
                let mut upper = vdd;
                for k in 0..*n {
                    let lower = if k + 1 == *n {
                        out
                    } else {
                        ckt.node(&format!("ps{k}"))
                    };
                    ckt.add_mosfet(
                        &format!("MP{k}"),
                        lower,
                        gate,
                        upper,
                        vdd,
                        pmodel.clone(),
                        wp,
                        self.l,
                    )?;
                    upper = lower;
                }
                // NMOS stack from out to the ground ammeter.
                let mut upper_n = out;
                for k in 0..*n {
                    let lower = if k + 1 == *n {
                        vssm
                    } else {
                        ckt.node(&format!("ns{k}"))
                    };
                    ckt.add_mosfet(
                        &format!("MN{k}"),
                        upper_n,
                        gate,
                        lower,
                        gnd,
                        nmodel.clone(),
                        wn,
                        self.l,
                    )?;
                    upper_n = lower;
                }
            }
            _ => {
                ckt.add_mosfet("MP1", out, gate, vdd, vdd, pmodel, self.wp, self.l)?;
                ckt.add_mosfet("MN1", out, gate, vssm, gnd, nmodel, self.wn, self.l)?;
            }
        }
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_spec_validates_and_builds() {
        for topo in [
            Topology::Baseline,
            Topology::SoftFet(PtmParams::vo2_default()),
            Topology::Hvt(0.15),
            Topology::SeriesR(100e3),
            Topology::Stacked {
                n: 2,
                width_scale: 1.5,
            },
        ] {
            let spec = InverterSpec::minimum(1.0, topo);
            let ckt = spec.build().unwrap();
            ckt.validate().unwrap();
        }
    }

    #[test]
    fn fo4_load_scales_with_input_cap() {
        let spec = InverterSpec::minimum(1.0, Topology::Baseline);
        assert!(
            spec.c_load > 1e-15 && spec.c_load < 5e-15,
            "{}",
            spec.c_load
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = InverterSpec::minimum(1.0, Topology::Baseline);
        s.vdd = 0.0;
        assert!(s.validate().is_err());
        let mut s = InverterSpec::minimum(
            1.0,
            Topology::Stacked {
                n: 1,
                width_scale: 1.0,
            },
        );
        assert!(s.validate().is_err());
        s = InverterSpec::minimum(1.0, Topology::SeriesR(-5.0));
        assert!(s.validate().is_err());
        let mut s = InverterSpec::minimum(1.0, Topology::Baseline);
        s.t_stop = s.t_start;
        assert!(s.validate().is_err());
    }

    #[test]
    fn input_wave_directions() {
        let f = InverterSpec::minimum(1.0, Topology::Baseline);
        assert_eq!(f.input_wave().eval(0.0), 1.0);
        let r = f.clone().with_edge(Edge::Rising);
        assert_eq!(r.input_wave().eval(0.0), 0.0);
    }

    #[test]
    fn stacked_creates_intermediate_nodes() {
        let spec = InverterSpec::minimum(
            1.0,
            Topology::Stacked {
                n: 3,
                width_scale: 2.0,
            },
        );
        let ckt = spec.build().unwrap();
        assert!(ckt.find_node("ps0").is_some());
        assert!(ckt.find_node("ns1").is_some());
        assert_eq!(
            ckt.elements()
                .iter()
                .filter(|e| matches!(e, sfet_circuit::Element::Mosfet(_)))
                .count(),
            6
        );
    }

    #[test]
    fn corner_spec_builds() {
        let spec = InverterSpec::minimum(1.0, Topology::Baseline).with_corner(Corner::Slow);
        spec.build().unwrap().validate().unwrap();
    }

    #[test]
    fn labels_stable() {
        assert_eq!(Topology::Baseline.label(), "baseline");
        assert_eq!(
            Topology::SoftFet(PtmParams::vo2_default()).label(),
            "soft-fet"
        );
    }
}
