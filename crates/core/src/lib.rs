//! # Soft-FET: PTM-assisted soft-switching transistors
//!
//! Reproduction of *"Soft-FET: Phase transition material assisted Soft
//! switching Field Effect Transistor for supply voltage droop mitigation"*
//! (Teja & Kulkarni, DAC 2018).
//!
//! A Soft-FET places a phase-transition-material (PTM) device in series
//! with a MOSFET gate. The PTM's abrupt, hysteretic insulator↔metal
//! resistance switch turns the gate into a staircase-charged capacitor, so
//! the transistor turns on *softly*: lower peak switching current
//! (`I_MAX`), lower `di/dt`, and therefore smaller supply-voltage droop —
//! at a smaller delay cost than high-V_T cells, gate series resistance, or
//! transistor stacking.
//!
//! The crate exposes the paper's entire experimental apparatus:
//!
//! * [`inverter`] — Soft-FET inverter and the baseline CMOS variants
//!   (Figs. 4, 5, 7);
//! * [`metrics`] — the measurement pipeline (I_MAX, di/dt, delay, charge);
//! * [`iso_imax`] — iso-peak-current calibration of the variants (Fig. 5);
//! * [`design_space`] — PTM parameter sweeps (V_IMT × V_MIT grids, T_PTM,
//!   input slew — Figs. 6, 8, 9);
//! * [`recommend`] — the §IV-E slew/T_PTM design-recommendation analysis;
//! * [`power_gate`] / [`io_buffer`] — the voltage-droop application case
//!   studies (Figs. 10, 11) built on `sfet-pdn`;
//! * [`droop`] — full-chip droop-map metrics over the distributed PDN
//!   grid (`sfet_pdn::PdnGrid`), the spatial extension of the droop
//!   story the iterative solver backend unlocks;
//! * [`report`] — plain-text table rendering for the experiment binaries.
//!
//! # Quickstart
//!
//! Compare a Soft-FET inverter against the baseline at V_CC = 1 V:
//!
//! ```
//! use softfet::inverter::{InverterSpec, Topology};
//! use softfet::metrics::measure_inverter;
//! use sfet_devices::ptm::PtmParams;
//!
//! # fn main() -> Result<(), softfet::SoftFetError> {
//! let base = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline))?;
//! let soft = measure_inverter(&InverterSpec::minimum(
//!     1.0,
//!     Topology::SoftFet(PtmParams::vo2_default()),
//! ))?;
//! assert!(soft.i_max < base.i_max); // the headline claim
//! # Ok(())
//! # }
//! ```

pub mod cells;
pub mod design_space;
pub mod droop;
pub mod inverter;
pub mod io_buffer;
pub mod iso_imax;
pub mod metrics;
pub mod power_gate;
pub mod recommend;
pub mod report;
pub mod variation;

mod error;

pub use error::SoftFetError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SoftFetError>;
