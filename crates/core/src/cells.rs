//! Soft-FET logic cells beyond the inverter.
//!
//! The paper demonstrates the mechanism on an inverter and argues it
//! generalises ("Soft-FET based logic circuits can exhibit reduced peak
//! switching current"). This module provides NAND2/NOR2 gates and an
//! inverter chain with optional Soft-FET input coupling so that claim can
//! be exercised on multi-transistor cells and multi-stage paths.

use crate::{Result, SoftFetError};
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::mosfet::{gate_caps, MosfetModel};
use sfet_devices::ptm::PtmParams;
use sfet_sim::{transient, SimOptions};
use sfet_waveform::measure::{max_abs_didt, propagation_delay};
use sfet_waveform::Waveform;

/// Two-input gate types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// 2-input NAND (series NMOS, parallel PMOS).
    Nand2,
    /// 2-input NOR (parallel NMOS, series PMOS).
    Nor2,
}

impl GateKind {
    /// Cell name for reports.
    pub fn label(&self) -> &'static str {
        match self {
            GateKind::Nand2 => "nand2",
            GateKind::Nor2 => "nor2",
        }
    }
}

/// Specification of a switching experiment on a two-input gate: input A
/// toggles (optionally through a PTM), input B is tied to the
/// non-controlling level so A's edge propagates.
#[derive(Debug, Clone, PartialEq)]
pub struct GateSpec {
    /// Supply voltage \[V\].
    pub vdd: f64,
    /// Per-device PMOS width \[m\].
    pub wp: f64,
    /// Per-device NMOS width \[m\].
    pub wn: f64,
    /// Channel length \[m\].
    pub l: f64,
    /// Load capacitance \[F\].
    pub c_load: f64,
    /// Gate type.
    pub kind: GateKind,
    /// Soft-FET PTM on input A; `None` for the baseline gate.
    pub soft: Option<PtmParams>,
    /// Input edge start \[s\].
    pub t_start: f64,
    /// Input edge duration \[s\].
    pub t_rise: f64,
    /// Simulation stop time \[s\].
    pub t_stop: f64,
}

impl GateSpec {
    /// Minimum-size gate with an FO4-class load and the paper's 30 ps edge.
    pub fn minimum(vdd: f64, kind: GateKind, soft: Option<PtmParams>) -> Self {
        let (wp, wn, l) = (240e-9, 120e-9, 40e-9);
        let cin = gate_caps(&MosfetModel::pmos_40nm(), wp, l).total()
            + gate_caps(&MosfetModel::nmos_40nm(), wn, l).total();
        GateSpec {
            vdd,
            wp,
            wn,
            l,
            c_load: 4.0 * cin,
            kind,
            soft,
            t_start: 20e-12,
            t_rise: 30e-12,
            t_stop: 800e-12,
        }
    }

    /// Builds the test bench. Node names: `in` (stimulus), `ga` (input A's
    /// gate node), `out`; sources `VDD`, `VIN`.
    ///
    /// Input A switches so the output toggles:
    /// * NAND2: B tied high; A falls ⇒ out rises (PMOS A conducts).
    /// * NOR2: B tied low; A rises ⇒ out falls (NMOS A conducts).
    ///
    /// # Errors
    ///
    /// [`SoftFetError::InvalidSpec`] for out-of-domain values; propagates
    /// circuit-construction failures.
    pub fn build(&self) -> Result<Circuit> {
        if !(self.vdd > 0.0 && self.t_rise > 0.0 && self.t_stop > self.t_start + self.t_rise) {
            return Err(SoftFetError::InvalidSpec(
                "gate spec needs vdd > 0, t_rise > 0, t_stop beyond the edge".into(),
            ));
        }
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let ga = ckt.node("ga");
        let out = ckt.node("out");
        let gnd = Circuit::ground();
        let vssm = ckt.node("vssm");
        ckt.add_voltage_source("VDD", vdd, gnd, SourceWaveform::Dc(self.vdd))?;
        // 0 V ammeter in the pull-down path (the switching rail of NOR2).
        ckt.add_voltage_source("VSSM", vssm, gnd, SourceWaveform::Dc(0.0))?;

        let wave = match self.kind {
            GateKind::Nand2 => SourceWaveform::ramp(self.vdd, 0.0, self.t_start, self.t_rise),
            GateKind::Nor2 => SourceWaveform::ramp(0.0, self.vdd, self.t_start, self.t_rise),
        };
        ckt.add_voltage_source("VIN", inp, gnd, wave)?;
        match &self.soft {
            Some(params) => {
                ckt.add_ptm("PA", inp, ga, *params)?;
            }
            None => {
                ckt.add_resistor("RA", inp, ga, 0.1)?;
            }
        }

        let pmos = MosfetModel::pmos_40nm();
        let nmos = MosfetModel::nmos_40nm();
        match self.kind {
            GateKind::Nand2 => {
                // B tied high: PMOS B off, NMOS B on.
                let gb = vdd;
                let mid = ckt.node("nmid");
                ckt.add_mosfet("MPA", out, ga, vdd, vdd, pmos.clone(), self.wp, self.l)?;
                ckt.add_mosfet("MPB", out, gb, vdd, vdd, pmos, self.wp, self.l)?;
                ckt.add_mosfet("MNA", out, ga, mid, gnd, nmos.clone(), self.wn, self.l)?;
                ckt.add_mosfet("MNB", mid, gb, vssm, gnd, nmos, self.wn, self.l)?;
            }
            GateKind::Nor2 => {
                // B tied low: NMOS B off, PMOS B on.
                let mid = ckt.node("pmid");
                // PMOS series: B on top (gate low = on), A below.
                let gb = gnd;
                ckt.add_mosfet("MPB", mid, gb, vdd, vdd, pmos.clone(), self.wp, self.l)?;
                ckt.add_mosfet("MPA", out, ga, mid, vdd, pmos, self.wp, self.l)?;
                ckt.add_mosfet("MNA", out, ga, vssm, gnd, nmos.clone(), self.wn, self.l)?;
                ckt.add_mosfet("MNB", out, gb, vssm, gnd, nmos, self.wn, self.l)?;
            }
        }
        ckt.add_capacitor("CL", out, gnd, self.c_load)?;
        Ok(ckt)
    }
}

/// Measured behaviour of one gate transition.
#[derive(Debug, Clone)]
pub struct GateMetrics {
    /// Peak V_CC-rail current \[A\].
    pub i_max: f64,
    /// Maximum |di/dt| \[A/s\].
    pub di_dt: f64,
    /// Propagation delay \[s\].
    pub delay: f64,
    /// PTM transitions fired.
    pub transitions: usize,
    /// Output waveform.
    pub v_out: Waveform,
}

/// Runs and measures a gate spec.
///
/// # Errors
///
/// Propagates build, simulation, and measurement failures.
pub fn measure_gate(spec: &GateSpec) -> Result<GateMetrics> {
    let ckt = spec.build()?;
    let opts = SimOptions::default().with_dtmax((spec.t_rise / 100.0).min(2e-12));
    let result = transient(&ckt, spec.t_stop, &opts)?;
    let v_in = result.voltage("in")?;
    let v_out = result.voltage("out")?;
    // The switching rail: NAND2's output rises (V_CC delivers the charge);
    // NOR2's output falls (the pull-down sinks it to ground).
    let i_rail = match spec.kind {
        GateKind::Nand2 => result.supply_current("VDD")?,
        GateKind::Nor2 => result.branch_current("VSSM")?,
    };
    let (_, i_max) = i_rail.peak_abs();
    let transitions = if spec.soft.is_some() {
        result.ptm_events("PA")?.len()
    } else {
        0
    };
    Ok(GateMetrics {
        i_max: i_max.abs(),
        di_dt: max_abs_didt(&i_rail),
        delay: propagation_delay(&v_in, &v_out, spec.vdd)?,
        transitions,
        v_out,
    })
}

/// An N-stage inverter chain, optionally with a Soft-FET coupling on the
/// first stage's gate. Later stages see the progressively sharpened edges
/// a real logic path produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSpec {
    /// Supply \[V\].
    pub vdd: f64,
    /// Number of stages (≥ 1); each stage is the minimum inverter.
    pub stages: usize,
    /// Soft-FET PTM on the first gate; `None` for baseline.
    pub soft: Option<PtmParams>,
    /// Input edge start \[s\].
    pub t_start: f64,
    /// Input edge duration \[s\].
    pub t_rise: f64,
    /// Simulation stop time \[s\].
    pub t_stop: f64,
}

impl ChainSpec {
    /// A chain of `stages` minimum inverters at `vdd`.
    pub fn new(vdd: f64, stages: usize, soft: Option<PtmParams>) -> Self {
        ChainSpec {
            vdd,
            stages,
            soft,
            t_start: 20e-12,
            t_rise: 30e-12,
            t_stop: 800e-12 + stages as f64 * 100e-12,
        }
    }

    /// Builds the chain. Stage outputs are nodes `s1 .. sN`; the stimulus
    /// is `in`, the first gate node `g0`.
    ///
    /// # Errors
    ///
    /// [`SoftFetError::InvalidSpec`] if `stages == 0`; propagates circuit
    /// errors.
    pub fn build(&self) -> Result<Circuit> {
        if self.stages == 0 {
            return Err(SoftFetError::InvalidSpec("chain needs >= 1 stage".into()));
        }
        let (wp, wn, l) = (240e-9, 120e-9, 40e-9);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let gnd = Circuit::ground();
        ckt.add_voltage_source("VDD", vdd, gnd, SourceWaveform::Dc(self.vdd))?;
        ckt.add_voltage_source(
            "VIN",
            inp,
            gnd,
            SourceWaveform::ramp(self.vdd, 0.0, self.t_start, self.t_rise),
        )?;
        let g0 = ckt.node("g0");
        match &self.soft {
            Some(params) => {
                ckt.add_ptm("P0", inp, g0, *params)?;
            }
            None => {
                ckt.add_resistor("R0", inp, g0, 0.1)?;
            }
        }
        let mut gate = g0;
        for k in 0..self.stages {
            let out = ckt.node(&format!("s{}", k + 1));
            ckt.add_mosfet(
                &format!("MP{k}"),
                out,
                gate,
                vdd,
                vdd,
                MosfetModel::pmos_40nm(),
                wp,
                l,
            )?;
            ckt.add_mosfet(
                &format!("MN{k}"),
                out,
                gate,
                gnd,
                gnd,
                MosfetModel::nmos_40nm(),
                wn,
                l,
            )?;
            gate = out;
        }
        // Terminal FO4-class load.
        let cin = gate_caps(&MosfetModel::pmos_40nm(), wp, l).total()
            + gate_caps(&MosfetModel::nmos_40nm(), wn, l).total();
        ckt.add_capacitor("CL", gate, gnd, 4.0 * cin)?;
        Ok(ckt)
    }

    /// Runs the chain and returns (peak V_CC current, end-to-end delay,
    /// PTM transition count).
    ///
    /// # Errors
    ///
    /// Propagates build, simulation, and measurement failures.
    pub fn measure(&self) -> Result<(f64, f64, usize)> {
        let ckt = self.build()?;
        let opts = SimOptions::default().with_dtmax(1e-12);
        let result = transient(&ckt, self.t_stop, &opts)?;
        let v_in = result.voltage("in")?;
        let v_last = result.voltage(&format!("s{}", self.stages))?;
        let i_rail = result.supply_current("VDD")?;
        let (_, i_max) = i_rail.peak_abs();
        let delay = propagation_delay(&v_in, &v_last, self.vdd).or_else(|_| {
            // Even-stage chains end on the same polarity as the input; fall
            // back to 50%-to-50% crossing distance.
            use sfet_waveform::measure::{crossing_time, CrossDirection};
            let t_in = crossing_time(&v_in, 0.5 * self.vdd, CrossDirection::Either, 0.0)?;
            let t_out = crossing_time(&v_last, 0.5 * self.vdd, CrossDirection::Either, t_in)?;
            Ok::<f64, sfet_waveform::WaveformError>(t_out - t_in)
        })?;
        let transitions = if self.soft.is_some() {
            result.ptm_events("P0")?.len()
        } else {
            0
        };
        Ok((i_max.abs(), delay, transitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand2_switches_and_soft_reduces_imax() {
        let base = measure_gate(&GateSpec::minimum(1.0, GateKind::Nand2, None)).unwrap();
        let soft = measure_gate(&GateSpec::minimum(
            1.0,
            GateKind::Nand2,
            Some(PtmParams::vo2_default()),
        ))
        .unwrap();
        // NAND2 with falling A and B high: output rises.
        assert!(base.v_out.first_value() < 0.05);
        assert!(base.v_out.last_value() > 0.95);
        assert!(
            soft.i_max < base.i_max,
            "soft {} vs base {}",
            soft.i_max,
            base.i_max
        );
        assert!(soft.transitions >= 1);
        assert!(soft.delay > base.delay);
    }

    #[test]
    fn nor2_switches_and_soft_reduces_imax() {
        let base = measure_gate(&GateSpec::minimum(1.0, GateKind::Nor2, None)).unwrap();
        let soft = measure_gate(&GateSpec::minimum(
            1.0,
            GateKind::Nor2,
            Some(PtmParams::vo2_default()),
        ))
        .unwrap();
        // NOR2 with rising A and B low: output falls.
        assert!(base.v_out.first_value() > 0.95);
        assert!(base.v_out.last_value() < 0.05);
        assert!(soft.i_max < base.i_max);
        assert!(soft.transitions >= 1);
    }

    #[test]
    fn chain_propagates_and_soft_first_stage_survives() {
        let base = ChainSpec::new(1.0, 3, None).measure().unwrap();
        let soft = ChainSpec::new(1.0, 3, Some(PtmParams::vo2_default()))
            .measure()
            .unwrap();
        // Chain I_MAX is dominated by internal stages with sharp edges, so
        // the first-stage Soft-FET mainly adds delay; it must still work.
        assert!(soft.2 >= 1, "PTM fired");
        assert!(soft.1 > base.1, "soft chain slower");
        assert!(soft.0 <= base.0 * 1.5, "no pathological current blow-up");
    }

    #[test]
    fn even_chain_delay_measurable() {
        let (i_max, delay, _) = ChainSpec::new(1.0, 2, None).measure().unwrap();
        assert!(delay > 0.0);
        assert!(i_max > 0.0);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(ChainSpec::new(1.0, 0, None).build().is_err());
        let mut s = GateSpec::minimum(1.0, GateKind::Nand2, None);
        s.t_stop = 0.0;
        assert!(s.build().is_err());
    }

    #[test]
    fn gate_labels() {
        assert_eq!(GateKind::Nand2.label(), "nand2");
        assert_eq!(GateKind::Nor2.label(), "nor2");
    }
}
