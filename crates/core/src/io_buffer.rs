//! Soft-FET I/O buffer comparison (paper Fig. 11).

use crate::design_space::run_sweep;
use crate::Result;
use sfet_devices::ptm::PtmParams;
use sfet_numeric::exec::ExecConfig;
use sfet_pdn::io_buffer::{IoBufferOutcome, IoBufferScenario};
use sfet_pdn::ssn::{energy_efficiency_gain, DEFAULT_GUARDBAND_K};

/// Baseline vs Soft-FET I/O buffer on the same parasitics.
#[derive(Debug, Clone)]
pub struct IoBufferComparison {
    /// Directly driven buffer outcome.
    pub baseline: IoBufferOutcome,
    /// PTM-driven buffer outcome.
    pub soft: IoBufferOutcome,
}

impl IoBufferComparison {
    /// SSN reduction in percent (paper: "46% lower ground bounce").
    pub fn ssn_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.soft.ssn / self.baseline.ssn)
    }

    /// Energy-efficiency gain from the released guard band (paper: "8.8%
    /// improved energy efficiency"), using the default guard-band
    /// multiplier.
    pub fn energy_gain_pct(&self, v_nom: f64) -> f64 {
        100.0 * energy_efficiency_gain(self.baseline.ssn, self.soft.ssn, v_nom, DEFAULT_GUARDBAND_K)
    }

    /// Delay penalty of the Soft-FET buffer \[s\].
    pub fn delay_penalty(&self) -> f64 {
        self.soft.delay - self.baseline.delay
    }
}

/// One row of the SSN-vs-input-transition-time study (Fig. 11 inset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsnVsSlewPoint {
    /// Input transition time \[s\].
    pub input_rise: f64,
    /// Baseline SSN \[V\].
    pub ssn_base: f64,
    /// Soft-FET SSN \[V\].
    pub ssn_soft: f64,
    /// SSN improvement, percent.
    pub improvement_pct: f64,
}

/// Runs the baseline and Soft-FET variants of an I/O buffer scenario.
///
/// # Errors
///
/// Propagates scenario and simulation failures.
pub fn compare_io_buffer(
    scenario: &IoBufferScenario,
    logic_ptm: PtmParams,
) -> Result<IoBufferComparison> {
    let baseline_scenario = IoBufferScenario {
        ptm: None,
        ..scenario.clone()
    };
    let soft_scenario = scenario.with_soft_fet(logic_ptm);
    let baseline = baseline_scenario.run()?;
    let soft = soft_scenario.run()?;
    Ok(IoBufferComparison { baseline, soft })
}

/// Sweeps the input transition time and reports the SSN improvement at
/// each point (the paper finds the improvement grows with transition
/// time).
///
/// # Errors
///
/// Propagates simulation failures as [`crate::SoftFetError::Sweep`].
pub fn ssn_vs_slew(
    scenario: &IoBufferScenario,
    logic_ptm: PtmParams,
    input_rises: &[f64],
) -> Result<Vec<SsnVsSlewPoint>> {
    ssn_vs_slew_with(&ExecConfig::from_env(), scenario, logic_ptm, input_rises)
}

/// [`ssn_vs_slew`] with an explicit execution policy.
///
/// # Errors
///
/// Propagates simulation failures as [`crate::SoftFetError::Sweep`].
pub fn ssn_vs_slew_with(
    cfg: &ExecConfig,
    scenario: &IoBufferScenario,
    logic_ptm: PtmParams,
    input_rises: &[f64],
) -> Result<Vec<SsnVsSlewPoint>> {
    // Fix the PTM once (scaled for the scenario's nominal transition time,
    // as a real design would be) and only vary the input edge — the
    // paper's Fig. 11 inset keeps the device constant.
    let soft_template = scenario.with_soft_fet(logic_ptm);
    run_sweep(
        cfg,
        input_rises,
        |t| format!("input_rise={t:.4e} s"),
        |_, &input_rise| {
            let base = IoBufferScenario {
                input_rise,
                ptm: None,
                ..scenario.clone()
            }
            .run()?;
            let soft = IoBufferScenario {
                input_rise,
                ..soft_template.clone()
            }
            .run()?;
            Ok(SsnVsSlewPoint {
                input_rise,
                ssn_base: base.ssn,
                ssn_soft: soft.ssn,
                improvement_pct: 100.0 * (1.0 - soft.ssn / base.ssn),
            })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_shows_paper_trends() {
        let cmp =
            compare_io_buffer(&IoBufferScenario::default(), PtmParams::vo2_default()).unwrap();
        assert!(
            cmp.ssn_reduction_pct() > 0.0,
            "SSN reduced by {:.1}%",
            cmp.ssn_reduction_pct()
        );
        assert!(cmp.energy_gain_pct(1.0) > 0.0);
        assert!(cmp.delay_penalty() > 0.0, "soft switching costs delay");
    }
}
