//! The inverter measurement pipeline.
//!
//! Runs one transient per [`InverterSpec`] and extracts every quantity the
//! paper's figures report: peak rail current (`I_MAX`), maximum `di/dt`,
//! propagation delay, and the total/output/short-circuit charge split.

use crate::inverter::{Edge, InverterSpec, Topology};
use crate::Result;
use sfet_sim::{transient, transient_batch, BatchSpec, SimOptions, TranResult};
use sfet_waveform::measure::{charge_split, max_abs_didt, propagation_delay};
use sfet_waveform::Waveform;

/// Measured behaviour of one inverter transition.
#[derive(Debug, Clone)]
pub struct InverterMetrics {
    /// Peak magnitude of the switching rail current \[A\]: the paper's I_MAX.
    pub i_max: f64,
    /// Time of the current peak \[s\].
    pub t_peak: f64,
    /// Maximum |di/dt| of the rail current \[A/s\].
    pub di_dt: f64,
    /// Propagation delay, 50 % input → 20 % output swing \[s\].
    pub delay: f64,
    /// Total charge drawn from the switching rail during the transition \[C\].
    pub q_total: f64,
    /// Charge delivered to the load capacitance \[C\].
    pub q_out: f64,
    /// Short-circuit (crowbar) charge \[C\].
    pub q_sc: f64,
    /// Number of PTM phase transitions fired (0 for non-Soft-FET).
    pub transitions: usize,
    /// Switching-rail current waveform (V_CC current for a falling input,
    /// ground current for a rising input), delivery-positive.
    pub i_rail: Waveform,
    /// Input waveform.
    pub v_in: Waveform,
    /// Gate-node waveform (equals the input for directly-driven variants).
    pub v_g: Waveform,
    /// Output waveform.
    pub v_out: Waveform,
}

/// Simulation options used for inverter measurements: the time resolution
/// tracks the input edge (and the engine further refines around PTM
/// events).
pub fn inverter_sim_options(spec: &InverterSpec) -> SimOptions {
    let dtmax = (spec.t_rise / 100.0).min(2e-12);
    SimOptions::default().with_dtmax(dtmax)
}

/// Runs the transient for a spec and returns the raw result (exposed for
/// the figure binaries that need full waveforms).
///
/// # Errors
///
/// Propagates build and simulation failures.
pub fn run_inverter(spec: &InverterSpec) -> Result<TranResult> {
    run_inverter_with(spec, &inverter_sim_options(spec))
}

/// [`run_inverter`] with explicit simulation options. Fault-tolerant
/// sweeps use this to pass [`SimOptions::escalated`] options on retries
/// without perturbing first-try tasks.
///
/// # Errors
///
/// Propagates build and simulation failures.
pub fn run_inverter_with(spec: &InverterSpec, opts: &SimOptions) -> Result<TranResult> {
    let ckt = spec.build()?;
    Ok(transient(&ckt, spec.t_stop, opts)?)
}

/// Runs and measures one inverter transition.
///
/// # Errors
///
/// Propagates simulation failures; measurement failures (e.g. an output
/// that never switches) surface as
/// [`SoftFetError::Waveform`](crate::SoftFetError::Waveform).
///
/// # Example
///
/// ```
/// use softfet::inverter::{InverterSpec, Topology};
/// use softfet::metrics::measure_inverter;
///
/// # fn main() -> Result<(), softfet::SoftFetError> {
/// let m = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline))?;
/// assert!(m.i_max > 0.0 && m.delay > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn measure_inverter(spec: &InverterSpec) -> Result<InverterMetrics> {
    let result = run_inverter(spec)?;
    measure_from_result(spec, &result)
}

/// [`measure_inverter`] with explicit simulation options (see
/// [`run_inverter_with`]).
///
/// # Errors
///
/// Propagates simulation and measurement failures.
pub fn measure_inverter_with(spec: &InverterSpec, opts: &SimOptions) -> Result<InverterMetrics> {
    let result = run_inverter_with(spec, opts)?;
    measure_from_result(spec, &result)
}

/// Measures a whole batch of inverter lanes through the batched
/// structure-of-arrays transient engine ([`sfet_sim::transient_batch`]).
///
/// Each lane's metrics are **bitwise identical** to
/// [`measure_inverter_with`] on the same `(spec, opts)` pair — the batched
/// engine's determinism contract — so sweep drivers can tile their tasks
/// into lanes freely. Per-lane failures (circuit build, simulation, or
/// measurement) are returned in place without aborting sibling lanes.
pub fn measure_inverter_batch(
    lanes: &[(&InverterSpec, &SimOptions)],
) -> Vec<Result<InverterMetrics>> {
    let built: Vec<Result<sfet_circuit::Circuit>> =
        lanes.iter().map(|(spec, _)| spec.build()).collect();
    let mut batch = Vec::with_capacity(lanes.len());
    let mut batch_to_lane = Vec::with_capacity(lanes.len());
    for (i, ckt) in built.iter().enumerate() {
        if let Ok(ckt) = ckt {
            batch.push(BatchSpec {
                circuit: ckt,
                tstop: lanes[i].0.t_stop,
                opts: lanes[i].1,
            });
            batch_to_lane.push(i);
        }
    }
    let sim = transient_batch(&batch);

    let mut out: Vec<Option<Result<InverterMetrics>>> =
        built.into_iter().map(|b| b.err().map(Err)).collect();
    for (k, r) in sim.into_iter().enumerate() {
        let i = batch_to_lane[k];
        out[i] = Some(match r {
            Ok(result) => measure_from_result(lanes[i].0, &result),
            Err(e) => Err(e.into()),
        });
    }
    out.into_iter()
        .map(|o| o.expect("every lane is either built or failed"))
        .collect()
}

/// Extracts metrics from an existing transient result (lets callers reuse
/// one simulation for several measurements).
///
/// # Errors
///
/// Propagates measurement failures.
pub fn measure_from_result(spec: &InverterSpec, result: &TranResult) -> Result<InverterMetrics> {
    let v_in = result.voltage("in")?;
    let v_g = result.voltage("g")?;
    let v_out = result.voltage("out")?;
    // Switching rail: V_CC current for a falling input (PMOS charges the
    // load), ground-ammeter current for a rising input (NMOS discharges).
    let i_rail = match spec.edge {
        Edge::Falling => result.supply_current("VDD")?,
        Edge::Rising => result.branch_current("VSSM")?,
    };

    let (t_peak, i_max) = i_rail.peak_abs();
    let di_dt = max_abs_didt(&i_rail);
    let delay = propagation_delay(&v_in, &v_out, spec.vdd)?;
    let q = charge_split(&i_rail, &v_out, spec.c_load, spec.t_start, spec.t_stop);
    let transitions = match &spec.topology {
        Topology::SoftFet(_) => result.ptm_events("PG1")?.len(),
        _ => 0,
    };

    Ok(InverterMetrics {
        i_max: i_max.abs(),
        t_peak,
        di_dt,
        delay,
        q_total: q.total,
        q_out: q.output,
        q_sc: q.short_circuit,
        transitions,
        i_rail,
        v_in,
        v_g,
        v_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfet_devices::ptm::PtmParams;

    #[test]
    fn baseline_metrics_sane() {
        let m = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline)).unwrap();
        // Minimum 40nm-class inverter: peak in the tens of µA, ps delays.
        assert!(m.i_max > 10e-6 && m.i_max < 500e-6, "i_max={:.3e}", m.i_max);
        assert!(
            m.delay > 0.1e-12 && m.delay < 100e-12,
            "delay={:.3e}",
            m.delay
        );
        assert!(m.q_total >= m.q_out, "charge accounting");
        assert_eq!(m.transitions, 0);
        // Output swings fully.
        assert!(m.v_out.first_value() < 0.05);
        assert!(m.v_out.last_value() > 0.95);
    }

    #[test]
    fn softfet_reduces_peak_current_and_didt() {
        let base = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline)).unwrap();
        let soft = measure_inverter(&InverterSpec::minimum(
            1.0,
            Topology::SoftFet(PtmParams::vo2_default()),
        ))
        .unwrap();
        assert!(
            soft.i_max < 0.8 * base.i_max,
            "I_MAX: soft {:.3e} vs base {:.3e}",
            soft.i_max,
            base.i_max
        );
        assert!(
            soft.di_dt < base.di_dt,
            "di/dt: soft {:.3e} vs base {:.3e}",
            soft.di_dt,
            base.di_dt
        );
        assert!(soft.transitions >= 1, "soft switching must fire the PTM");
        // Soft-FET pays some delay for the benefit.
        assert!(soft.delay > base.delay);
    }

    #[test]
    fn rising_edge_measures_ground_current() {
        let spec =
            InverterSpec::minimum(1.0, Topology::Baseline).with_edge(crate::inverter::Edge::Rising);
        let m = measure_inverter(&spec).unwrap();
        assert!(m.i_max > 10e-6, "ground-rail peak {:.3e}", m.i_max);
        assert!(m.v_out.first_value() > 0.95);
        assert!(m.v_out.last_value() < 0.05);
    }

    #[test]
    fn hvt_reduces_current_with_delay_penalty() {
        let base = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline)).unwrap();
        let hvt = measure_inverter(&InverterSpec::minimum(1.0, Topology::Hvt(0.2))).unwrap();
        assert!(hvt.i_max < base.i_max);
        assert!(hvt.delay > base.delay);
    }

    #[test]
    fn series_r_reduces_current() {
        let base = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline)).unwrap();
        let ser = measure_inverter(&InverterSpec::minimum(1.0, Topology::SeriesR(200e3))).unwrap();
        assert!(ser.i_max < base.i_max);
        assert!(ser.delay > base.delay);
    }

    #[test]
    fn stacked_reduces_current() {
        let base = measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline)).unwrap();
        let stk = measure_inverter(&InverterSpec::minimum(
            1.0,
            Topology::Stacked {
                n: 2,
                width_scale: 1.0,
            },
        ))
        .unwrap();
        assert!(stk.i_max < base.i_max);
    }
}

#[cfg(test)]
mod corner_tests {
    use super::*;
    use sfet_devices::mosfet::Corner;
    use sfet_devices::ptm::PtmParams;

    /// The Soft-FET benefit must survive SS and FF process corners — the
    /// designer's version of the paper's parameter-sensitivity concern.
    #[test]
    fn softfet_benefit_robust_across_corners() {
        for corner in [Corner::Slow, Corner::Typical, Corner::Fast] {
            let base = measure_inverter(
                &InverterSpec::minimum(1.0, Topology::Baseline).with_corner(corner),
            )
            .unwrap();
            let soft = measure_inverter(
                &InverterSpec::minimum(1.0, Topology::SoftFet(PtmParams::vo2_default()))
                    .with_corner(corner),
            )
            .unwrap();
            assert!(
                soft.i_max < 0.8 * base.i_max,
                "{corner:?}: soft {:.3e} vs base {:.3e}",
                soft.i_max,
                base.i_max
            );
        }
    }

    /// FF silicon switches harder: baseline I_MAX must order SS < TT < FF.
    #[test]
    fn corner_imax_ordering() {
        let imax = |c: Corner| {
            measure_inverter(&InverterSpec::minimum(1.0, Topology::Baseline).with_corner(c))
                .unwrap()
                .i_max
        };
        let (ss, tt, ff) = (
            imax(Corner::Slow),
            imax(Corner::Typical),
            imax(Corner::Fast),
        );
        assert!(
            ss < tt && tt < ff,
            "ordering: ss {ss:.3e}, tt {tt:.3e}, ff {ff:.3e}"
        );
    }
}
