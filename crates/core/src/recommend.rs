//! Design recommendations (paper §IV-E).
//!
//! The paper recommends keeping the ratio of input slew time to PTM
//! switching time around 1.5–3 for the best peak-current reduction. This
//! module sweeps that ratio (by varying T_PTM under a fixed input edge)
//! and reports where the benefit actually peaks.

use crate::design_space::tptm_sweep;
use crate::inverter::{InverterSpec, Topology};
use crate::metrics::measure_inverter;
use crate::Result;
use sfet_devices::ptm::PtmParams;

/// The paper's recommended slew-time : T_PTM ratio band.
pub const RECOMMENDED_RATIO: (f64, f64) = (1.5, 3.0);

/// One point of the ratio analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioPoint {
    /// Input slew time / T_PTM.
    pub ratio: f64,
    /// T_PTM used \[s\].
    pub t_ptm: f64,
    /// Peak-current reduction vs the baseline inverter, percent.
    pub reduction_pct: f64,
    /// Number of phase transitions.
    pub transitions: usize,
}

/// Sweeps the slew/T_PTM ratio at a fixed input edge.
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Example
///
/// ```no_run
/// let pts = softfet::recommend::ratio_sweep(
///     1.0,
///     sfet_devices::ptm::PtmParams::vo2_default(),
///     30e-12,
///     &[1.0, 2.0, 4.0],
/// )?;
/// assert_eq!(pts.len(), 3);
/// # Ok::<(), softfet::SoftFetError>(())
/// ```
pub fn ratio_sweep(
    vdd: f64,
    base: PtmParams,
    t_rise: f64,
    ratios: &[f64],
) -> Result<Vec<RatioPoint>> {
    let base_imax =
        measure_inverter(&InverterSpec::minimum(vdd, Topology::Baseline).with_t_rise(t_rise))?
            .i_max;
    let t_ptms: Vec<f64> = ratios.iter().map(|r| t_rise / r).collect();
    let sweep = tptm_sweep(vdd, base, &t_ptms)?;
    Ok(sweep
        .iter()
        .zip(ratios)
        .map(|(p, &ratio)| RatioPoint {
            ratio,
            t_ptm: p.t_ptm,
            reduction_pct: 100.0 * (1.0 - p.i_max / base_imax),
            transitions: p.transitions,
        })
        .collect())
}

/// The ratio with the largest peak-current reduction.
///
/// **Tie-break:** among points with equal reduction the *smallest* ratio
/// wins. A larger slew/T_PTM ratio means a faster (smaller-T_PTM, more
/// expensive) PTM device, so on a benefit plateau the recommendation must
/// name the cheapest device that reaches it — not whichever plateau point
/// the sweep happened to visit last. The `sfet-optimize` Pareto-frontier
/// knee selection reuses this same cheapest-on-a-plateau rule.
///
/// Returns `None` for an empty sweep.
pub fn best_ratio(points: &[RatioPoint]) -> Option<f64> {
    points
        .iter()
        // A NaN reduction (diverged sample) must not panic the
        // recommendation pass — and must not win it either (positive NaN
        // sorts above +inf under total order), so NaNs are demoted below
        // every finite value before the total-order comparison. Equal
        // reductions fall through to the ratio key, inverted so that the
        // smaller (cheaper) ratio compares as greater and wins `max_by`.
        .max_by(
            |a, b| match (a.reduction_pct.is_nan(), b.reduction_pct.is_nan()) {
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                _ => a
                    .reduction_pct
                    .total_cmp(&b.reduction_pct)
                    .then(b.ratio.total_cmp(&a.ratio)),
            },
        )
        .map(|p| p.ratio)
}

/// Whether a ratio falls in the paper's recommended band.
pub fn in_recommended_band(ratio: f64) -> bool {
    ratio >= RECOMMENDED_RATIO.0 && ratio <= RECOMMENDED_RATIO.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_membership() {
        assert!(in_recommended_band(2.0));
        assert!(!in_recommended_band(0.5));
        assert!(!in_recommended_band(10.0));
    }

    #[test]
    fn best_ratio_picks_max() {
        let pts = vec![
            RatioPoint {
                ratio: 1.0,
                t_ptm: 30e-12,
                reduction_pct: 10.0,
                transitions: 1,
            },
            RatioPoint {
                ratio: 2.0,
                t_ptm: 15e-12,
                reduction_pct: 30.0,
                transitions: 1,
            },
        ];
        assert_eq!(best_ratio(&pts), Some(2.0));
        assert_eq!(best_ratio(&[]), None);
    }

    fn plateau_point(ratio: f64, reduction_pct: f64) -> RatioPoint {
        RatioPoint {
            ratio,
            t_ptm: 30e-12 / ratio,
            reduction_pct,
            transitions: 1,
        }
    }

    #[test]
    fn best_ratio_plateau_prefers_cheapest_device() {
        // Regression: `max_by` keeps the *last* maximum, so a reduction
        // plateau used to recommend the largest ratio — the smallest,
        // most expensive T_PTM. The cheapest plateau member must win,
        // wherever it sits in sweep order.
        let pts = vec![
            plateau_point(1.0, 12.0),
            plateau_point(1.5, 30.0),
            plateau_point(2.0, 30.0),
            plateau_point(4.0, 30.0),
        ];
        assert_eq!(best_ratio(&pts), Some(1.5));
        // Sweep order must not matter.
        let mut rev = pts.clone();
        rev.reverse();
        assert_eq!(best_ratio(&rev), Some(1.5));
    }

    #[test]
    fn best_ratio_demotes_nan_reductions() {
        let pts = vec![
            plateau_point(1.0, 20.0),
            plateau_point(2.0, f64::NAN),
            plateau_point(3.0, 20.0),
        ];
        // NaN never wins; the plateau tie-break still applies.
        assert_eq!(best_ratio(&pts), Some(1.0));
        let all_nan = vec![plateau_point(1.0, f64::NAN), plateau_point(2.0, f64::NAN)];
        // All-NaN sweeps still return *something* (cheapest device).
        assert_eq!(best_ratio(&all_nan), Some(1.0));
    }
}
