use std::fmt;

/// Errors from the Soft-FET experiment layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftFetError {
    /// Circuit construction failed.
    Circuit(sfet_circuit::CircuitError),
    /// Simulation failed.
    Sim(sfet_sim::SimError),
    /// A waveform measurement failed.
    Waveform(sfet_waveform::WaveformError),
    /// A calibration loop (e.g. iso-I_MAX tuning) could not bracket or
    /// converge on its target.
    Calibration(String),
    /// An experiment was configured with out-of-domain parameters.
    InvalidSpec(String),
    /// A parallel sweep task failed. Produced by the sweeps in
    /// [`crate::design_space`] and [`crate::variation`] when a point of the
    /// parameter grid fails: `index` is the task's position in the sweep and
    /// `context` renders the offending parameters.
    Sweep {
        /// Index of the failing task in sweep order.
        index: usize,
        /// Human-readable description of the task's parameters.
        context: String,
        /// The underlying failure.
        source: Box<SoftFetError>,
    },
    /// Sweep-manifest I/O or format failure during a resumable sweep.
    Manifest(String),
    /// A measured sample or reduced metric came out NaN/Inf; the message
    /// names the offending sample/task so a poisoned point in a
    /// fault-tolerant sweep reports *where* it diverged instead of
    /// unwinding the whole sweep with a panic.
    NonFinite(String),
}

impl fmt::Display for SoftFetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoftFetError::Circuit(e) => write!(f, "circuit error: {e}"),
            SoftFetError::Sim(e) => write!(f, "simulation error: {e}"),
            SoftFetError::Waveform(e) => write!(f, "measurement error: {e}"),
            SoftFetError::Calibration(msg) => write!(f, "calibration failed: {msg}"),
            SoftFetError::InvalidSpec(msg) => write!(f, "invalid experiment spec: {msg}"),
            SoftFetError::Sweep {
                index,
                context,
                source,
            } => write!(f, "sweep task #{index} ({context}) failed: {source}"),
            SoftFetError::Manifest(msg) => write!(f, "sweep manifest error: {msg}"),
            SoftFetError::NonFinite(msg) => write!(f, "non-finite sample: {msg}"),
        }
    }
}

impl std::error::Error for SoftFetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoftFetError::Circuit(e) => Some(e),
            SoftFetError::Sim(e) => Some(e),
            SoftFetError::Waveform(e) => Some(e),
            SoftFetError::Sweep { source, .. } => Some(&**source),
            _ => None,
        }
    }
}

impl From<sfet_circuit::CircuitError> for SoftFetError {
    fn from(e: sfet_circuit::CircuitError) -> Self {
        SoftFetError::Circuit(e)
    }
}

impl From<sfet_sim::SimError> for SoftFetError {
    fn from(e: sfet_sim::SimError) -> Self {
        SoftFetError::Sim(e)
    }
}

impl From<sfet_waveform::WaveformError> for SoftFetError {
    fn from(e: sfet_waveform::WaveformError) -> Self {
        SoftFetError::Waveform(e)
    }
}

impl From<sfet_pdn::PdnError> for SoftFetError {
    fn from(e: sfet_pdn::PdnError) -> Self {
        match e {
            sfet_pdn::PdnError::Circuit(c) => SoftFetError::Circuit(c),
            sfet_pdn::PdnError::Sim(s) => SoftFetError::Sim(s),
            sfet_pdn::PdnError::Waveform(w) => SoftFetError::Waveform(w),
            sfet_pdn::PdnError::InvalidScenario(m) => SoftFetError::InvalidSpec(m),
            sfet_pdn::PdnError::NonFiniteMetric(m) => SoftFetError::NonFinite(m),
            sfet_pdn::PdnError::Sweep {
                index,
                context,
                source,
            } => SoftFetError::Sweep {
                index,
                context,
                source: Box::new((*source).into()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = SoftFetError::Calibration("no bracket".into());
        assert!(e.to_string().contains("calibration"));
        assert!(e.source().is_none());
        let e = SoftFetError::Sim(sfet_sim::SimError::UnknownSignal("x".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SoftFetError>();
    }
}
