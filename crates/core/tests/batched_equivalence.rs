//! Differential-testing harness gating scalar/batched equivalence.
//!
//! The batched structure-of-arrays engine ([`sfet_sim::transient_batch`]
//! and the `par_map_batched*` sweep entry points it plugs into) promises
//! **bitwise identity** with the scalar path: every lane executes the same
//! sequence of floating-point operations as its scalar twin, for any lane
//! width, worker count, tiling, or co-resident lane behaviour — including
//! lanes that diverge and retry. This suite is the gate on that promise:
//!
//! * every verify golden-scenario circuit (the analytic catalog, PTM
//!   staircase included) compared scalar-vs-batched across all three
//!   integration methods;
//! * randomized circuit × method × batch-width differential property
//!   tests, including tiles with injected per-lane Newton faults;
//! * the rewired core sweeps (`monte_carlo_imax`, the V_IMT × V_MIT grid)
//!   replayed across batch widths, worker counts, ragged tails and
//!   B > task-count configurations;
//! * fault-plan lane isolation: failed lanes surface as
//!   [`SweepOutcome::Failed`] with scalar-exact attempt counts while their
//!   tile siblings stay untouched;
//! * per-task accounting: `exec.*` telemetry totals and [`ExecStats`]
//!   agree with each other and with a scalar run of the same sweep.

use proptest::prelude::*;
use sfet_circuit::{Circuit, SourceWaveform};
use sfet_devices::ptm::PtmParams;
use sfet_numeric::exec::{task_seed, ExecConfig, SweepOutcome};
use sfet_numeric::fault::FaultPlan;
use sfet_numeric::integrate::Method;
use sfet_sim::{transient, transient_batch, BatchSpec, SimOptions, TranResult};
use sfet_telemetry::{names, SharedAggregator, Telemetry};
use sfet_verify::analytic::catalog;
use softfet::design_space::{vimt_vmit_grid_stats, vimt_vmit_grid_with};
use softfet::inverter::{InverterSpec, Topology};
use softfet::metrics::measure_inverter;
use softfet::variation::{
    monte_carlo_imax_outcomes, monte_carlo_imax_with, PtmVariation, VariationRng,
};

/// Bitwise comparison of two transient results: time axis, every node
/// voltage, and the full statistics block (Newton iterations, rejections,
/// solver counters — everything except wall-clock timing, which the stats
/// equality deliberately excludes).
fn assert_tran_bitwise(a: &TranResult, b: &TranResult, what: &str) {
    assert_eq!(a.times().len(), b.times().len(), "{what}: sample counts");
    for (ta, tb) in a.times().iter().zip(b.times()) {
        assert_eq!(ta.to_bits(), tb.to_bits(), "{what}: time axis");
    }
    let mut node_names: Vec<String> = a.node_names().map(str::to_owned).collect();
    node_names.sort();
    for name in &node_names {
        let (wa, wb) = (a.voltage(name).unwrap(), b.voltage(name).unwrap());
        assert_eq!(wa.values().len(), wb.values().len(), "{what}: v({name})");
        for (va, vb) in wa.values().iter().zip(wb.values()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}: v({name})");
        }
    }
    assert_eq!(a.stats(), b.stats(), "{what}: stats");
}

/// Every verify golden-scenario circuit — the analytic catalog the golden
/// waveforms and convergence-order gates are built on, PTM staircase
/// included — must produce bitwise-identical results through the batched
/// engine, for all three integration methods. Lanes run the *same* circuit
/// at *different* resolutions (the reference's division ladder), so each
/// lane follows a genuinely different trajectory through shared
/// factorizations.
#[test]
fn golden_scenario_circuits_scalar_vs_batched_bitwise() {
    for reference in catalog().unwrap() {
        for method in [Method::BackwardEuler, Method::Trapezoidal, Method::Gear2] {
            // The two coarsest rungs keep the suite fast while still giving
            // every lane a distinct step-size trajectory.
            let rungs: Vec<usize> = reference.divisions.iter().copied().take(2).collect();
            let opts: Vec<SimOptions> = rungs
                .iter()
                .map(|&d| reference.options(d, method))
                .collect();
            let scalar: Vec<TranResult> = opts
                .iter()
                .map(|o| transient(reference.circuit(), reference.tstop, o).unwrap())
                .collect();
            let specs: Vec<BatchSpec<'_>> = opts
                .iter()
                .map(|o| BatchSpec {
                    circuit: reference.circuit(),
                    tstop: reference.tstop,
                    opts: o,
                })
                .collect();
            let batched = transient_batch(&specs);
            for (lane, (s, b)) in scalar.iter().zip(&batched).enumerate() {
                assert_tran_bitwise(
                    s,
                    b.as_ref().unwrap(),
                    &format!("{} {method:?} lane {lane}", reference.name),
                );
            }
        }
    }
}

/// A parameterised RC ladder for the randomized differentials: two poles,
/// so trajectories are method-sensitive, and per-lane element values so no
/// two lanes share a matrix.
fn rc_ladder(r: f64, c: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let (a, m, out, gnd) = (
        ckt.node("a"),
        ckt.node("m"),
        ckt.node("out"),
        Circuit::ground(),
    );
    ckt.add_voltage_source("V1", a, gnd, SourceWaveform::ramp(0.0, 1.0, 1e-12, 10e-12))
        .unwrap();
    ckt.add_resistor("R1", a, m, r).unwrap();
    ckt.add_capacitor("C1", m, gnd, c).unwrap();
    ckt.add_resistor("R2", m, out, 2.0 * r).unwrap();
    ckt.add_capacitor("C2", out, gnd, 0.5 * c).unwrap();
    ckt
}

const LADDER_TSTOP: f64 = 60e-12;

fn ladder_opts(method: Method) -> SimOptions {
    SimOptions::for_duration(LADDER_TSTOP, 400).with_method(method)
}

fn method_of(idx: usize) -> Method {
    [Method::BackwardEuler, Method::Trapezoidal, Method::Gear2][idx % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized circuit × method × B ∈ {1..8}: every lane of a batched
    /// run over B distinct circuits is bitwise identical to its scalar run.
    #[test]
    fn randomized_lanes_bitwise_identical(
        r_kohm in 0.2f64..5.0,
        c_ff in 0.2f64..2.0,
        method_idx in 0usize..3,
        width in 1usize..9,
    ) {
        let method = method_of(method_idx);
        let opts = ladder_opts(method);
        let circuits: Vec<Circuit> = (0..width)
            .map(|i| rc_ladder(r_kohm * 1e3 * (1.0 + 0.37 * i as f64), c_ff * 1e-15))
            .collect();
        let specs: Vec<BatchSpec<'_>> = circuits
            .iter()
            .map(|c| BatchSpec { circuit: c, tstop: LADDER_TSTOP, opts: &opts })
            .collect();
        let batched = transient_batch(&specs);
        for (lane, (c, b)) in circuits.iter().zip(&batched).enumerate() {
            let scalar = transient(c, LADDER_TSTOP, &opts).unwrap();
            assert_tran_bitwise(
                &scalar,
                b.as_ref().unwrap(),
                &format!("{method:?} B={width} lane {lane}"),
            );
        }
    }

    /// Per-lane convergence-mask isolation: `newton@STEP` faults injected
    /// into a strict subset of lanes leave the unaffected lanes bitwise
    /// identical to the fault-free batched run, and each faulted lane
    /// bitwise identical to its own scalar faulted run (the recovery —
    /// quarter step, forced backward-Euler — replays exactly per lane).
    #[test]
    fn randomized_lane_fault_subsets_are_isolated(
        method_idx in 0usize..3,
        fault_mask in 1usize..15, // strict non-empty subset of 4 lanes
        step in 3u64..12,
    ) {
        let method = method_of(method_idx);
        let clean = ladder_opts(method);
        let faulty = ladder_opts(method)
            .with_fault_plan(FaultPlan::new().with_newton_failure(step));
        let circuits: Vec<Circuit> = (0..4)
            .map(|i| rc_ladder(1e3 * (1.0 + 0.5 * i as f64), 1e-15))
            .collect();
        let lane_opts: Vec<&SimOptions> = (0..4)
            .map(|i| if fault_mask & (1 << i) != 0 { &faulty } else { &clean })
            .collect();

        fn spec_with<'a>(
            circuits: &'a [Circuit],
            opts_by_lane: &[&'a SimOptions],
        ) -> Vec<BatchSpec<'a>> {
            circuits
                .iter()
                .zip(opts_by_lane)
                .map(|(c, o)| BatchSpec { circuit: c, tstop: LADDER_TSTOP, opts: o })
                .collect()
        }
        let faulted_run = transient_batch(&spec_with(&circuits, &lane_opts));
        let clean_run = transient_batch(&spec_with(&circuits, &[&clean; 4]));

        for lane in 0..4 {
            let got = faulted_run[lane].as_ref().unwrap();
            if fault_mask & (1 << lane) != 0 {
                let scalar = transient(&circuits[lane], LADDER_TSTOP, &faulty).unwrap();
                assert_tran_bitwise(&scalar, got, &format!("faulted lane {lane}"));
                prop_assert!(
                    got.stats().steps_rejected
                        > clean_run[lane].as_ref().unwrap().stats().steps_rejected,
                    "lane {lane}: the injected failure must cost a rejection"
                );
            } else {
                assert_tran_bitwise(
                    clean_run[lane].as_ref().unwrap(),
                    got,
                    &format!("unaffected lane {lane} (mask {fault_mask:#b})"),
                );
            }
        }
    }
}

/// The scalar Monte-Carlo population, computed sample-by-sample through
/// the public scalar pipeline — the reference every batched configuration
/// must hit bit-for-bit.
fn scalar_mc_population(
    vdd: f64,
    base: PtmParams,
    var: &PtmVariation,
    n: usize,
    seed: u64,
) -> Vec<f64> {
    let mut values: Vec<f64> = (0..n)
        .map(|i| {
            let mut rng = VariationRng::new(task_seed(seed, i as u64));
            let ptm = var.sample(&base, &mut rng);
            measure_inverter(&InverterSpec::minimum(vdd, Topology::SoftFet(ptm)))
                .unwrap()
                .i_max
        })
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values
}

/// Batch-size edge cases on the rewired Monte-Carlo sweep: B = 1 equals
/// the scalar pipeline bitwise, a ragged tail (n not divisible by B), and
/// B > task count all produce the identical population at any worker
/// count.
#[test]
fn monte_carlo_population_invariant_across_widths_and_workers() {
    let (vdd, base, var, n, seed) = (
        1.0,
        PtmParams::vo2_default(),
        PtmVariation::default(),
        6,
        42,
    );
    let expected = scalar_mc_population(vdd, base, &var, n, seed);
    for (workers, batch) in [(1, 1), (2, 2), (2, 4), (1, 64), (8, 3)] {
        let cfg = ExecConfig::with_workers(workers).with_batch(batch);
        let summary = monte_carlo_imax_with(&cfg, vdd, base, &var, n, seed, 1e-3).unwrap();
        assert_eq!(
            summary
                .i_max_values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "population must be bitwise invariant at workers={workers}, batch={batch}"
        );
    }
}

/// The rewired V_IMT × V_MIT grid sweep is bitwise invariant across batch
/// widths (including ragged tiles and B > point count).
#[test]
fn grid_sweep_invariant_across_widths() {
    let base = PtmParams::vo2_default();
    let (v_imts, v_mits) = ([0.3, 0.4, 0.5], [0.1]);
    let reference = vimt_vmit_grid_with(
        &ExecConfig::serial().with_batch(1),
        1.0,
        base,
        &v_imts,
        &v_mits,
    )
    .unwrap();
    for (workers, batch) in [(2, 2), (2, 8), (1, 3)] {
        let cfg = ExecConfig::with_workers(workers).with_batch(batch);
        let pts = vimt_vmit_grid_with(&cfg, 1.0, base, &v_imts, &v_mits).unwrap();
        assert_eq!(
            pts, reference,
            "grid points must be invariant at workers={workers}, batch={batch}"
        );
    }
}

/// Fault-plan lane isolation on the batched outcome sweep: lanes the plan
/// fails surface as [`SweepOutcome::Failed`] with scalar-exact attempt
/// counts, recovered lanes report their retries, and every first-try lane
/// in the same tiles is bitwise identical to a fault-free serial run.
#[test]
fn batched_outcomes_fail_lanes_alone_with_scalar_attempt_counts() {
    let (base, var) = (PtmParams::vo2_default(), PtmVariation::default());
    // Tasks 1 and 5 fail once then recover; task 3 fails every attempt —
    // all three land in different tiles at width 3 (tiles {0,1,2} {3,4,5}
    // {6,7}) so both ragged and full tiles see a failure.
    let plan = FaultPlan::new()
        .with_task_failure(1, 1)
        .with_task_failure(3, usize::MAX)
        .with_task_failure(5, 1);
    let agg = SharedAggregator::new();
    let cfg = ExecConfig::with_workers(2)
        .with_batch(3)
        .with_retries(1)
        .with_fault_plan(plan)
        .with_telemetry(Telemetry::new(agg.clone()));
    let outcomes = monte_carlo_imax_outcomes(&cfg, 1.0, base, &var, 8, 123);
    assert_eq!(outcomes.len(), 8);
    assert!(outcomes[1].is_ok() && outcomes[1].attempts() == 2);
    assert!(outcomes[5].is_ok() && outcomes[5].attempts() == 2);
    match &outcomes[3] {
        SweepOutcome::Failed { attempts, error } => {
            assert_eq!(*attempts, 2, "retry budget of 1 means 2 attempts");
            assert!(error.to_string().contains("injected"), "{error}");
        }
        other => panic!("task 3 must fail terminally, got {other:?}"),
    }
    // Lanes untouched by the plan are bitwise identical to a fault-free
    // serial (and batch-free) sweep.
    let clean =
        monte_carlo_imax_outcomes(&ExecConfig::serial().with_batch(1), 1.0, base, &var, 8, 123);
    for i in [0usize, 2, 4, 6, 7] {
        assert_eq!(
            outcomes[i].value().unwrap().to_bits(),
            clean[i].value().unwrap().to_bits(),
            "first-try lane {i} must be untouched by its tile's failures"
        );
    }
    let counts = agg.snapshot();
    assert_eq!(counts.counter(names::EXEC_BATCH_LANE_FAILURES), 1);
    assert_eq!(counts.counter(names::EXEC_TASKS_RETRIED), 3);
}

/// Per-task accounting regression: a batched sweep's telemetry totals must
/// equal its own [`ExecStats`](sfet_numeric::exec::ExecStats) *and* the
/// totals a scalar-shaped run of the same sweep emits — tiles must never
/// leak into `exec.tasks_*`, and `stats.workers` reports the task-based
/// resolution a scalar sweep would.
#[test]
fn grid_stats_and_telemetry_count_tasks_not_tiles() {
    let base = PtmParams::vo2_default();
    let (v_imts, v_mits) = ([0.3, 0.4, 0.5], [0.1]); // 3 points, width 2: ragged
    let run = |cfg: &ExecConfig| {
        let agg = SharedAggregator::new();
        let cfg = cfg.clone().with_telemetry(Telemetry::new(agg.clone()));
        let (pts, stats) = vimt_vmit_grid_stats(&cfg, 1.0, base, &v_imts, &v_mits).unwrap();
        assert_eq!(pts.len(), 3);
        (agg.snapshot(), stats)
    };

    let (batched_counts, batched_stats) = run(&ExecConfig::with_workers(2).with_batch(2));
    let (narrow_counts, narrow_stats) = run(&ExecConfig::with_workers(2).with_batch(1));

    for stats in [&batched_stats, &narrow_stats] {
        assert_eq!(stats.tasks_total, 3);
        assert_eq!(stats.tasks_completed, 3);
        assert_eq!(
            stats.workers, 2,
            "workers must resolve against tasks, not tiles"
        );
    }
    for (counts, stats) in [
        (&batched_counts, &batched_stats),
        (&narrow_counts, &narrow_stats),
    ] {
        assert_eq!(
            counts.counter(names::EXEC_TASKS_TOTAL),
            stats.tasks_total as u64
        );
        assert_eq!(
            counts.counter(names::EXEC_TASKS_COMPLETED),
            stats.tasks_completed as u64
        );
    }
    assert_eq!(batched_counts.counter(names::EXEC_BATCH_TILES), 2);
    assert_eq!(batched_counts.counter(names::EXEC_BATCH_WIDTH), 2);
}
