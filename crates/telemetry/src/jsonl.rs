//! [`JsonlSink`]: streams events as JSON Lines.
//!
//! The JSON is hand-rolled (the workspace is dependency-free by policy);
//! the emitted subset is deliberately tiny: objects with string, integer,
//! and float fields only. Non-finite floats — which JSON cannot
//! represent — are written as `null`.

use std::io::Write;

use crate::event::{Event, TelemetrySink, SCHEMA_VERSION};

/// Sink that writes one JSON object per line to a writer.
///
/// The first line is a header carrying [`SCHEMA_VERSION`] and whether
/// timing fields are present. With
/// [`with_timings(false)`](JsonlSink::with_timings), the `t_ns`/`dur_ns`
/// fields are omitted
/// entirely, making the stream a pure function of the simulation — the
/// determinism tests diff such streams bitwise across thread counts.
///
/// Writes are best-effort: after the first I/O error the sink goes
/// silent rather than failing the simulation it observes.
///
/// # Examples
///
/// ```
/// use sfet_telemetry::{Event, JsonlSink, TelemetrySink};
///
/// let mut sink = JsonlSink::new(Vec::new()).with_timings(false);
/// sink.record(&Event::Counter { name: "tran.steps_accepted", delta: 2 });
/// sink.flush();
/// let text = String::from_utf8(sink.into_inner()).unwrap();
/// let mut lines = text.lines();
/// assert_eq!(lines.next().unwrap(), r#"{"type":"header","schema":1,"timings":false}"#);
/// assert_eq!(
///     lines.next().unwrap(),
///     r#"{"type":"counter","name":"tran.steps_accepted","delta":2}"#
/// );
/// ```
pub struct JsonlSink<W: Write + Send> {
    out: W,
    timings: bool,
    header_written: bool,
    failed: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A JSONL sink writing to `out`, with timing fields included.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            timings: true,
            header_written: false,
            failed: false,
        }
    }

    /// Sets whether timing fields (`t_ns`, `dur_ns`) are written.
    /// Disable them to get a bitwise-reproducible stream.
    pub fn with_timings(mut self, timings: bool) -> Self {
        self.timings = timings;
        self
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn write_line(&mut self, line: &str) {
        if self.failed {
            return;
        }
        if writeln!(self.out, "{line}").is_err() {
            self.failed = true;
        }
    }

    fn ensure_header(&mut self) {
        if !self.header_written {
            self.header_written = true;
            let line = format!(
                r#"{{"type":"header","schema":{},"timings":{}}}"#,
                SCHEMA_VERSION, self.timings
            );
            self.write_line(&line);
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for NaN/±inf).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        // `{:?}` prints the shortest round-trippable form, which is
        // valid JSON for finite values.
        format!("{value:?}")
    } else {
        "null".to_owned()
    }
}

impl<W: Write + Send> TelemetrySink for JsonlSink<W> {
    fn record(&mut self, event: &Event<'_>) {
        self.ensure_header();
        let line = match *event {
            Event::SpanBegin { name, id, t_ns } => {
                if self.timings {
                    format!(
                        r#"{{"type":"span_begin","name":"{}","id":{},"t_ns":{}}}"#,
                        escape(name),
                        id,
                        t_ns
                    )
                } else {
                    format!(
                        r#"{{"type":"span_begin","name":"{}","id":{}}}"#,
                        escape(name),
                        id
                    )
                }
            }
            Event::SpanEnd {
                name,
                id,
                t_ns,
                dur_ns,
            } => {
                if self.timings {
                    format!(
                        r#"{{"type":"span_end","name":"{}","id":{},"t_ns":{},"dur_ns":{}}}"#,
                        escape(name),
                        id,
                        t_ns,
                        dur_ns
                    )
                } else {
                    format!(
                        r#"{{"type":"span_end","name":"{}","id":{}}}"#,
                        escape(name),
                        id
                    )
                }
            }
            Event::Counter { name, delta } => format!(
                r#"{{"type":"counter","name":"{}","delta":{}}}"#,
                escape(name),
                delta
            ),
            Event::Histogram { name, value } => format!(
                r#"{{"type":"histogram","name":"{}","value":{}}}"#,
                escape(name),
                json_f64(value)
            ),
        };
        self.write_line(&line);
    }

    fn flush(&mut self) {
        self.ensure_header();
        if !self.failed && self.out.flush().is_err() {
            self.failed = true;
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("timings", &self.timings)
            .field("failed", &self.failed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(sink: JsonlSink<Vec<u8>>) -> Vec<String> {
        String::from_utf8(sink.into_inner())
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn header_first_then_events_with_timings() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&Event::SpanBegin {
            name: "dc",
            id: 0,
            t_ns: 5,
        });
        sink.record(&Event::SpanEnd {
            name: "dc",
            id: 0,
            t_ns: 9,
            dur_ns: 4,
        });
        let lines = lines_of(sink);
        assert_eq!(lines[0], r#"{"type":"header","schema":1,"timings":true}"#);
        assert_eq!(
            lines[1],
            r#"{"type":"span_begin","name":"dc","id":0,"t_ns":5}"#
        );
        assert_eq!(
            lines[2],
            r#"{"type":"span_end","name":"dc","id":0,"t_ns":9,"dur_ns":4}"#
        );
    }

    #[test]
    fn timings_disabled_strips_clock_fields() {
        let mut sink = JsonlSink::new(Vec::new()).with_timings(false);
        sink.record(&Event::SpanBegin {
            name: "dc",
            id: 1,
            t_ns: 123,
        });
        sink.record(&Event::SpanEnd {
            name: "dc",
            id: 1,
            t_ns: 456,
            dur_ns: 333,
        });
        let lines = lines_of(sink);
        for line in &lines {
            assert!(!line.contains("t_ns"), "unexpected timing field in {line}");
            assert!(
                !line.contains("dur_ns"),
                "unexpected timing field in {line}"
            );
        }
    }

    #[test]
    fn floats_round_trip_and_nonfinite_become_null() {
        let mut sink = JsonlSink::new(Vec::new()).with_timings(false);
        sink.record(&Event::Histogram {
            name: "h",
            value: 1.5e-12,
        });
        sink.record(&Event::Histogram {
            name: "h",
            value: f64::NAN,
        });
        let lines = lines_of(sink);
        assert_eq!(
            lines[1],
            r#"{"type":"histogram","name":"h","value":1.5e-12}"#
        );
        assert_eq!(lines[2], r#"{"type":"histogram","name":"h","value":null}"#);
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), r"x\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn flush_alone_still_emits_header() {
        let mut sink = JsonlSink::new(Vec::new()).with_timings(false);
        sink.flush();
        let lines = lines_of(sink);
        assert_eq!(
            lines,
            vec![r#"{"type":"header","schema":1,"timings":false}"#]
        );
    }
}
