//! The [`Telemetry`] handle that instrumented code holds and emits
//! through.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, Level, TelemetrySink};

struct Inner {
    sink: Mutex<Box<dyn TelemetrySink>>,
    level: Level,
    epoch: Instant,
    next_span: AtomicU64,
}

/// A cheaply clonable handle to a telemetry sink — the single type
/// instrumented code interacts with.
///
/// The default handle is *disabled*: every emit method is an immediate
/// early return on a `None` check, with no clock read, no lock, and no
/// allocation, so instrumentation can stay in hot loops unconditionally.
/// An enabled handle wraps an `Arc<Mutex<dyn TelemetrySink>>` plus a
/// monotonic epoch; clones share the sink, which is how per-analysis
/// emissions from nested calls land in one stream.
///
/// # Examples
///
/// ```
/// use sfet_telemetry::{Aggregator, Level, SharedAggregator, Telemetry};
///
/// let agg = SharedAggregator::new();
/// let tel = Telemetry::new(agg.clone());
/// {
///     let _span = tel.span(Level::Analysis, "transient");
///     tel.counter("tran.steps_accepted", 3);
///     tel.histogram("tran.dt_seconds", 1e-12);
/// }
/// let snap: Aggregator = agg.snapshot();
/// assert_eq!(snap.counter("tran.steps_accepted"), 3);
/// assert_eq!(snap.span("transient").unwrap().count, 1);
///
/// // The disabled handle swallows everything at zero cost.
/// let off = Telemetry::disabled();
/// assert!(!off.is_enabled());
/// off.counter("tran.steps_accepted", 99); // no-op
/// ```
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A disabled handle (same as [`Telemetry::default`]): all emit
    /// methods are no-ops.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle driving `sink`, emitting spans up to
    /// [`Level::Analysis`].
    pub fn new(sink: impl TelemetrySink + 'static) -> Self {
        Self::with_level(sink, Level::Analysis)
    }

    /// An enabled handle driving `sink`, emitting spans up to and
    /// including `level`.
    pub fn with_level(sink: impl TelemetrySink + 'static, level: Level) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(Box::new(sink)),
                level,
                epoch: Instant::now(),
                next_span: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle forwards events to a sink.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The maximum span level this handle emits, or `None` when
    /// disabled.
    pub fn level(&self) -> Option<Level> {
        self.inner.as_ref().map(|i| i.level)
    }

    /// Whether a span at `level` would be emitted (cheap pre-check for
    /// call sites that compute span payloads).
    #[inline]
    pub fn spans_at(&self, level: Level) -> bool {
        match &self.inner {
            Some(i) => level <= i.level,
            None => false,
        }
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            if delta != 0 {
                inner.record(&Event::Counter { name, delta });
            }
        }
    }

    /// Records one observation `value` under the histogram `name`.
    #[inline]
    pub fn histogram(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.record(&Event::Histogram { name, value });
        }
    }

    /// Opens a span named `name` at `level`; the returned guard closes
    /// it on drop.
    ///
    /// Returns an inert guard (no events emitted) when the handle is
    /// disabled or `level` is finer than the handle's level.
    #[inline]
    pub fn span(&self, level: Level, name: &'static str) -> SpanGuard {
        match &self.inner {
            Some(inner) if level <= inner.level => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let t_ns = inner.now_ns();
                inner.record(&Event::SpanBegin { name, id, t_ns });
                SpanGuard {
                    inner: Some(OpenSpan {
                        tel: Arc::clone(inner),
                        name,
                        id,
                        begin_ns: t_ns,
                    }),
                }
            }
            _ => SpanGuard { inner: None },
        }
    }

    /// Flushes the underlying sink (no-op when disabled).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Ok(mut sink) = inner.sink.lock() {
                sink.flush();
            }
        }
    }
}

impl Inner {
    fn now_ns(&self) -> u64 {
        // Saturating: a run longer than ~584 years overflows u64 nanos.
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn record(&self, event: &Event<'_>) {
        if let Ok(mut sink) = self.sink.lock() {
            sink.record(event);
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Telemetry");
        d.field("enabled", &self.is_enabled());
        if let Some(level) = self.level() {
            d.field("level", &level);
        }
        d.finish()
    }
}

/// Compares *enabledness only* — two enabled handles are equal even if
/// they drive different sinks. This keeps derived `PartialEq` on option
/// structs (e.g. `SimOptions`) meaningful: options differing only in
/// where diagnostics go still compare equal in configuration.
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        self.is_enabled() == other.is_enabled()
    }
}

struct OpenSpan {
    tel: Arc<Inner>,
    name: &'static str,
    id: u64,
    begin_ns: u64,
}

/// RAII guard returned by [`Telemetry::span`]; emits the matching
/// `SpanEnd` when dropped.
#[must_use = "a span closes when its guard drops; binding to `_` closes it immediately"]
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    /// Whether this guard will emit a `SpanEnd` on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            let t_ns = open.tel.now_ns();
            open.tel.record(&Event::SpanEnd {
                name: open.name,
                id: open.id,
                t_ns,
                dur_ns: t_ns.saturating_sub(open.begin_ns),
            });
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("recording", &self.is_recording())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SharedAggregator;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.level(), None);
        tel.counter("c", 1);
        tel.histogram("h", 1.0);
        let guard = tel.span(Level::Analysis, "s");
        assert!(!guard.is_recording());
        drop(guard);
        tel.flush();
    }

    #[test]
    fn level_gates_spans_but_not_counters() {
        let agg = SharedAggregator::new();
        let tel = Telemetry::with_level(agg.clone(), Level::Analysis);
        assert!(tel.spans_at(Level::Analysis));
        assert!(!tel.spans_at(Level::Step));
        let fine = tel.span(Level::Iteration, "newton_iter");
        assert!(!fine.is_recording());
        drop(fine);
        tel.counter("c", 2);
        let snap = agg.snapshot();
        assert_eq!(snap.counter("c"), 2);
        assert!(snap.span("newton_iter").is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let agg = SharedAggregator::new();
        let tel = Telemetry::new(agg.clone());
        let tel2 = tel.clone();
        tel.counter("c", 1);
        tel2.counter("c", 1);
        assert_eq!(agg.snapshot().counter("c"), 2);
    }

    #[test]
    fn partial_eq_compares_enabledness_only() {
        let a = Telemetry::new(SharedAggregator::new());
        let b = Telemetry::new(SharedAggregator::new());
        assert_eq!(a, b);
        assert_ne!(a, Telemetry::disabled());
        assert_eq!(Telemetry::disabled(), Telemetry::default());
    }

    #[test]
    fn zero_delta_counters_are_suppressed() {
        let agg = SharedAggregator::new();
        let tel = Telemetry::new(agg.clone());
        tel.counter("c", 0);
        assert!(agg.snapshot().is_empty());
    }

    #[test]
    fn span_durations_accumulate() {
        let agg = SharedAggregator::new();
        let tel = Telemetry::new(agg.clone());
        for _ in 0..3 {
            let _span = tel.span(Level::Analysis, "dc");
        }
        let snap = agg.snapshot();
        let s = snap.span("dc").unwrap();
        assert_eq!(s.count, 3);
    }
}
