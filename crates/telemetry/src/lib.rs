//! Zero-cost-when-disabled observability for the Soft-FET simulation
//! stack.
//!
//! The paper's claims (peak current, di/dt, droop) are measurements over
//! transient dynamics; this crate makes the *solver* side of those runs
//! observable: hierarchical spans (analysis → timestep → Newton
//! iteration) with monotonic timing, counters for step accepts/rejects,
//! factor-reuse hits, pivot fallbacks, and PTM IMT/MIT transition
//! events, plus histograms for step sizes and iteration counts.
//!
//! # Design
//!
//! - Instrumented code holds a [`Telemetry`] handle. The default handle
//!   is **disabled** and every emit method is a branch on a `None` —
//!   no clock read, no lock, no allocation — so instrumentation lives
//!   in hot loops unconditionally (enforced by a counting-allocator
//!   test in `sfet-numeric`).
//! - Enabled handles drive a [`TelemetrySink`]. Three sinks ship:
//!   [`Aggregator`] / [`SharedAggregator`] (in-memory totals with
//!   deterministic [`merge`](Aggregator::merge) for parallel sweeps),
//!   [`JsonlSink`] (streaming JSON Lines trace), and [`SummarySink`]
//!   (human-readable end-of-run table). [`Tee`] fans out to several.
//! - Span volume is bounded by [`Level`]: per-step and per-iteration
//!   spans are only emitted when explicitly requested.
//! - Determinism: wall-clock time appears **only** in span timing
//!   fields. Counter deltas and histogram values are pure simulation
//!   quantities, so a [`JsonlSink`] with timings disabled produces
//!   bitwise-identical streams regardless of thread count.
//!
//! The stable event names live in [`names`]; the schema is documented
//! in `docs/TELEMETRY.md` at the repository root.
//!
//! # Examples
//!
//! Aggregate a few events and render the summary table:
//!
//! ```
//! use sfet_telemetry::{names, Level, SharedAggregator, Telemetry};
//!
//! let agg = SharedAggregator::new();
//! let tel = Telemetry::new(agg.clone());
//!
//! {
//!     let _run = tel.span(Level::Analysis, names::SPAN_TRANSIENT);
//!     tel.counter(names::TRAN_STEPS_ACCEPTED, 128);
//!     tel.counter(names::TRAN_STEPS_REJECTED, 3);
//!     tel.histogram(names::H_TRAN_DT, 2.5e-12);
//! }
//! tel.flush();
//!
//! let snapshot = agg.snapshot();
//! assert_eq!(snapshot.counter(names::TRAN_STEPS_ACCEPTED), 128);
//! let table = snapshot.render_table();
//! assert!(table.contains("tran.steps_accepted"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod aggregate;
mod event;
mod handle;
mod jsonl;

pub use aggregate::{
    Aggregator, HistogramSummary, SharedAggregator, SpanSummary, SummarySink, Tee,
};
pub use event::{names, Event, Level, TelemetrySink, SCHEMA_VERSION};
pub use handle::{SpanGuard, Telemetry};
pub use jsonl::JsonlSink;
