//! In-memory aggregation sinks: [`Aggregator`], its thread-shareable
//! wrapper [`SharedAggregator`], the end-of-run [`SummarySink`], and the
//! fan-out [`Tee`].

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::{Event, TelemetrySink};

/// Running summary of one histogram: count, sum, and extrema.
///
/// Deliberately moment-based rather than bucketed so that merging
/// per-task summaries from a parallel sweep is exact and
/// order-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramSummary {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean of the observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Running summary of one span name: completions and total wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSummary {
    /// Number of completed (begin + end) spans.
    pub count: u64,
    /// Total wall time across completed spans \[ns\].
    pub total_ns: u64,
}

/// In-memory sink that folds the event stream into per-name totals.
///
/// Counters sum their deltas, histograms keep [`HistogramSummary`]
/// moments, spans keep completion counts and total duration. All maps
/// are `BTreeMap`s so iteration order — and therefore
/// [`render_table`](Aggregator::render_table) output — is deterministic.
///
/// # Examples
///
/// ```
/// use sfet_telemetry::{Aggregator, Event, TelemetrySink};
///
/// let mut agg = Aggregator::default();
/// agg.record(&Event::Counter { name: "tran.steps_accepted", delta: 2 });
/// agg.record(&Event::Histogram { name: "tran.dt_seconds", value: 1e-12 });
/// assert_eq!(agg.counter("tran.steps_accepted"), 2);
/// assert_eq!(agg.histogram("tran.dt_seconds").unwrap().count, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregator {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
    spans: BTreeMap<String, SpanSummary>,
}

impl Aggregator {
    /// A fresh, empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total of the counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of the histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Summary of the span `name`, if any span completed.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histogram summaries in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSummary)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All span summaries in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanSummary)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Folds another aggregator into this one.
    ///
    /// Merging is associative and commutative over counter and histogram
    /// contents, which is what lets a parallel sweep aggregate per-task
    /// and roll up in deterministic task-index order afterwards.
    pub fn merge(&mut self, other: &Aggregator) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        for (name, span) in &other.spans {
            let entry = self.spans.entry(name.clone()).or_default();
            entry.count += span.count;
            entry.total_ns += span.total_ns;
        }
    }

    /// Renders the aggregate as a fixed-width, human-readable table
    /// (what [`SummarySink`] prints at end of run).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("── telemetry summary ──────────────────────────────────────────\n");
        if self.is_empty() {
            out.push_str("  (no events recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("  counters\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("    {name:<42} {value:>14}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms                                  count          mean           min           max\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "    {:<40} {:>9} {:>13.4e} {:>13.4e} {:>13.4e}\n",
                    name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("  spans                                       count         total\n");
            for (name, s) in &self.spans {
                out.push_str(&format!(
                    "    {:<40} {:>9} {:>13}\n",
                    name,
                    s.count,
                    fmt_duration_ns(s.total_ns)
                ));
            }
        }
        out
    }
}

fn fmt_duration_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl TelemetrySink for Aggregator {
    fn record(&mut self, event: &Event<'_>) {
        match *event {
            Event::Counter { name, delta } => {
                *self.counters.entry(name.to_owned()).or_insert(0) += delta;
            }
            Event::Histogram { name, value } => {
                self.histograms
                    .entry(name.to_owned())
                    .or_default()
                    .record(value);
            }
            Event::SpanEnd { name, dur_ns, .. } => {
                let entry = self.spans.entry(name.to_owned()).or_default();
                entry.count += 1;
                entry.total_ns += dur_ns;
            }
            Event::SpanBegin { .. } => {}
        }
    }
}

/// A clonable, thread-safe handle to an [`Aggregator`].
///
/// Pass one clone to [`Telemetry::new`](crate::Telemetry::new) as the
/// sink and keep another to [`snapshot`](SharedAggregator::snapshot) the
/// totals after the run.
#[derive(Debug, Clone, Default)]
pub struct SharedAggregator {
    inner: Arc<Mutex<Aggregator>>,
}

impl SharedAggregator {
    /// A fresh, empty shared aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the current totals.
    pub fn snapshot(&self) -> Aggregator {
        self.inner.lock().map(|a| a.clone()).unwrap_or_default()
    }
}

impl TelemetrySink for SharedAggregator {
    fn record(&mut self, event: &Event<'_>) {
        if let Ok(mut agg) = self.inner.lock() {
            agg.record(event);
        }
    }
}

/// Sink that aggregates in memory and writes the summary table to a
/// writer when flushed (and, as a safety net, when dropped).
///
/// This is the "human-readable end-of-run summary" sink: hand it
/// `std::io::stderr()` and the table appears once, after the run.
pub struct SummarySink<W: Write + Send> {
    agg: Aggregator,
    out: W,
    written: bool,
}

impl<W: Write + Send> SummarySink<W> {
    /// A summary sink writing its table to `out`.
    pub fn new(out: W) -> Self {
        SummarySink {
            agg: Aggregator::default(),
            out,
            written: false,
        }
    }

    fn write_table(&mut self) {
        // Best-effort: a failed write to stderr should not fail the run.
        let _ = self.out.write_all(self.agg.render_table().as_bytes());
        let _ = self.out.flush();
        self.written = true;
    }
}

impl<W: Write + Send> TelemetrySink for SummarySink<W> {
    fn record(&mut self, event: &Event<'_>) {
        self.written = false;
        self.agg.record(event);
    }

    fn flush(&mut self) {
        if !self.written {
            self.write_table();
        }
    }
}

impl<W: Write + Send> Drop for SummarySink<W> {
    fn drop(&mut self) {
        if !self.written && !self.agg.is_empty() {
            self.write_table();
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for SummarySink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SummarySink")
            .field("events_pending", &!self.written)
            .finish()
    }
}

/// Fan-out sink: forwards every event to each inner sink in order.
///
/// Lets one run feed both a JSONL trace file and an end-of-run summary
/// table (the `--trace` flag on the bench binaries does exactly this).
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl Tee {
    /// An empty tee (events are dropped until a sink is added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink to the fan-out, builder style.
    pub fn with(mut self, sink: impl TelemetrySink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }
}

impl TelemetrySink for Tee {
    fn record(&mut self, event: &Event<'_>) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

impl std::fmt::Debug for Tee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tee")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aggregator {
        let mut agg = Aggregator::default();
        agg.record(&Event::Counter {
            name: "c",
            delta: 2,
        });
        agg.record(&Event::Counter {
            name: "c",
            delta: 3,
        });
        agg.record(&Event::Histogram {
            name: "h",
            value: 1.0,
        });
        agg.record(&Event::Histogram {
            name: "h",
            value: 3.0,
        });
        agg.record(&Event::SpanBegin {
            name: "s",
            id: 0,
            t_ns: 10,
        });
        agg.record(&Event::SpanEnd {
            name: "s",
            id: 0,
            t_ns: 25,
            dur_ns: 15,
        });
        agg
    }

    #[test]
    fn aggregates_match_hand_counts() {
        let agg = sample();
        assert_eq!(agg.counter("c"), 5);
        assert_eq!(agg.counter("missing"), 0);
        let h = agg.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.mean(), 2.0);
        let s = agg.span("s").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.total_ns, 15);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("c"), 10);
        assert_eq!(a.histogram("h").unwrap().count, 4);
        assert_eq!(a.histogram("h").unwrap().sum, 8.0);
        assert_eq!(a.span("s").unwrap().total_ns, 30);
    }

    #[test]
    fn merge_into_empty_equals_clone() {
        let mut empty = Aggregator::default();
        let full = sample();
        empty.merge(&full);
        assert_eq!(empty, full);
    }

    #[test]
    fn render_table_lists_all_names() {
        let table = sample().render_table();
        assert!(table.contains("telemetry summary"));
        assert!(table.contains('c'));
        assert!(table.contains('h'));
        assert!(table.contains('s'));
        assert!(Aggregator::default().render_table().contains("no events"));
    }

    #[test]
    fn summary_sink_writes_once_on_flush() {
        let buf: Vec<u8> = Vec::new();
        let mut sink = SummarySink::new(buf);
        sink.record(&Event::Counter {
            name: "c",
            delta: 1,
        });
        sink.flush();
        sink.flush(); // second flush without new events: no duplicate
        assert_eq!(
            String::from_utf8(sink.out.clone())
                .unwrap()
                .matches("telemetry summary")
                .count(),
            1
        );
    }

    #[test]
    fn tee_forwards_to_all() {
        let a = SharedAggregator::new();
        let b = SharedAggregator::new();
        let mut tee = Tee::new().with(a.clone()).with(b.clone());
        tee.record(&Event::Counter {
            name: "c",
            delta: 7,
        });
        assert_eq!(a.snapshot().counter("c"), 7);
        assert_eq!(b.snapshot().counter("c"), 7);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_ns(500), "500 ns");
        assert_eq!(fmt_duration_ns(1_500), "1.500 µs");
        assert_eq!(fmt_duration_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_duration_ns(3_000_000_000), "3.000 s");
    }
}
