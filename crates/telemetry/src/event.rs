//! The telemetry event model: what instrumented code emits and sinks
//! consume.
//!
//! An event stream is a flat sequence; span hierarchy (analysis →
//! timestep → Newton iteration) is encoded by *bracketing* — a span's
//! children are the events between its `SpanBegin` and `SpanEnd` — so no
//! parent pointers need to be threaded through the hot loops.

/// Version of the event schema.
///
/// Written into the header line of every JSONL stream. Bumped when an
/// event field or a documented name in [`names`] changes meaning;
/// *adding* counters/histograms/spans is not a schema change.
pub const SCHEMA_VERSION: u32 = 1;

/// Span verbosity level, ordered from coarsest to finest.
///
/// A [`Telemetry`](crate::Telemetry) handle carries a maximum level;
/// span requests above it are dropped before they reach the sink, so a
/// trace of a million-step transient stays bounded unless per-step or
/// per-iteration detail is explicitly requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Level {
    /// One span per analysis (DC solve, transient, sweep). The default.
    #[default]
    Analysis,
    /// Additionally one span per transient timestep attempt.
    Step,
    /// Additionally one span per Newton iteration.
    Iteration,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Analysis => "analysis",
            Level::Step => "step",
            Level::Iteration => "iteration",
        })
    }
}

/// One telemetry event, borrowed from the emitting call site.
///
/// Timing fields (`t_ns`, `dur_ns`) are nanoseconds on the monotonic
/// clock of the emitting [`Telemetry`](crate::Telemetry) handle (zero at
/// handle creation). All *non*-timing payloads — counter deltas and
/// histogram values — are deterministic simulation quantities, which is
/// what makes a timing-stripped stream reproducible bit-for-bit (see
/// `docs/TELEMETRY.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event<'a> {
    /// A span opened. Events until the matching `SpanEnd` (same `id`)
    /// are its children.
    SpanBegin {
        /// Span name (see [`names`]).
        name: &'a str,
        /// Stream-unique span id, used to match the `SpanEnd`.
        id: u64,
        /// Monotonic begin time \[ns\].
        t_ns: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Span name (same as the matching `SpanBegin`).
        name: &'a str,
        /// Id of the matching `SpanBegin`.
        id: u64,
        /// Monotonic end time \[ns\].
        t_ns: u64,
        /// Span duration \[ns\].
        dur_ns: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Counter name (see [`names`]).
        name: &'a str,
        /// Amount added to the counter.
        delta: u64,
    },
    /// One observation of a distribution-valued quantity.
    Histogram {
        /// Histogram name (see [`names`]).
        name: &'a str,
        /// The observed value, in the unit the name documents.
        value: f64,
    },
}

/// A sink consumes telemetry events.
///
/// Sinks are driven behind a mutex by the [`Telemetry`](crate::Telemetry)
/// handle, so implementations need no interior synchronisation; they must
/// be `Send` because sweeps move handles across worker threads.
pub trait TelemetrySink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &Event<'_>);

    /// Flushes any buffered output (end of analysis / program).
    fn flush(&mut self) {}
}

/// Stable event names emitted by the Soft-FET stack.
///
/// The constants below are the public contract between the simulator and
/// trace consumers; `docs/TELEMETRY.md` documents each one's meaning and
/// unit. Solver counters are emitted with an analysis prefix
/// (`dc.` / `tran.` / `ac.`) joined with a `.` — e.g.
/// `tran.solver.refactorizations`.
pub mod names {
    // --- Spans. ---
    /// Analysis span: one DC operating-point solve (all strategies).
    pub const SPAN_DC: &str = "dc";
    /// Analysis span: one transient run.
    pub const SPAN_TRANSIENT: &str = "transient";
    /// Analysis span: one quasi-static DC sweep.
    pub const SPAN_DC_SWEEP: &str = "dc_sweep";
    /// Analysis span: one AC small-signal sweep.
    pub const SPAN_AC_SWEEP: &str = "ac_sweep";
    /// Step-level span: one transient timestep attempt.
    pub const SPAN_TIMESTEP: &str = "timestep";
    /// Iteration-level span: one Newton iteration (linearise + solve).
    pub const SPAN_NEWTON_ITER: &str = "newton_iter";
    /// Analysis span: one `par_map` sweep execution.
    pub const SPAN_PAR_MAP: &str = "exec.par_map";

    // --- Transient counters (totals match `TranStats`). ---
    /// Transient step attempts (accepted + rejected).
    pub const TRAN_STEPS_ATTEMPTED: &str = "tran.steps_attempted";
    /// Accepted transient steps.
    pub const TRAN_STEPS_ACCEPTED: &str = "tran.steps_accepted";
    /// Rejected transient step attempts (all causes).
    pub const TRAN_STEPS_REJECTED: &str = "tran.steps_rejected";
    /// Newton iterations across all transient solves.
    pub const TRAN_NEWTON_ITERATIONS: &str = "tran.newton_iterations";
    /// PTM phase transitions fired during the transient.
    pub const TRAN_PTM_TRANSITIONS: &str = "tran.ptm_transitions";
    /// Steps rejected by the local-truncation-error controller.
    pub const TRAN_LTE_REJECTIONS: &str = "tran.lte_rejections";
    /// Accepted steps after which `dt` was grown.
    pub const TRAN_DT_GROWTHS: &str = "tran.dt_growths";
    /// Accepted steps after which `dt` was shrunk.
    pub const TRAN_DT_SHRINKS: &str = "tran.dt_shrinks";

    // --- DC counters (totals match `DcStats`). ---
    /// Newton iterations across all DC escalation strategies.
    pub const DC_NEWTON_ITERATIONS: &str = "dc.newton_iterations";
    /// Gmin-stepping continuation solves attempted.
    pub const DC_GMIN_STEPS: &str = "dc.gmin_steps";
    /// Source-stepping continuation solves attempted.
    pub const DC_SOURCE_STEPS: &str = "dc.source_steps";

    // --- PTM device counters. ---
    /// Insulator→metal transitions fired (IMT).
    pub const PTM_IMT_EVENTS: &str = "ptm.imt_events";
    /// Metal→insulator transitions fired (MIT).
    pub const PTM_MIT_EVENTS: &str = "ptm.mit_events";

    // --- Sweep-engine counters (emitted once, after the join, from the
    // --- coordinator thread; the worker count is deliberately *not*
    // --- emitted so traces stay identical across `SFET_THREADS`). ---
    /// Tasks that ran to completion in a sweep.
    pub const EXEC_TASKS_COMPLETED: &str = "exec.tasks_completed";
    /// Tasks submitted to a sweep.
    pub const EXEC_TASKS_TOTAL: &str = "exec.tasks_total";
    /// Retry attempts consumed across a fault-tolerant sweep
    /// (`par_map_outcomes`); zero when every task succeeded first try.
    pub const EXEC_TASKS_RETRIED: &str = "exec.task.retried";

    // --- Batched-sweep counters (`par_map_batched*`): emitted once per
    // --- sweep from the coordinator, alongside the per-*task* counters
    // --- above (which keep their scalar meaning — totals match a scalar
    // --- run of the same sweep). ---
    /// Tiles a batched sweep was split into (`ceil(tasks / width)`).
    pub const EXEC_BATCH_TILES: &str = "exec.batch.tiles";
    /// Resolved lane width of a batched sweep.
    pub const EXEC_BATCH_WIDTH: &str = "exec.batch.width";
    /// Lanes that exhausted their retry budget in a batched outcome sweep
    /// and were reported as `SweepOutcome::Failed`.
    pub const EXEC_BATCH_LANE_FAILURES: &str = "exec.batch.lane_failures";

    // --- Job-server counters (`sfet-serve`). ---
    /// Jobs accepted by the server (cache hits, coalesced, and enqueued).
    pub const SERVE_JOBS_SUBMITTED: &str = "serve.jobs.submitted";
    /// Submissions answered from the on-disk result store without
    /// re-simulation.
    pub const SERVE_CACHE_HIT: &str = "serve.cache.hit";
    /// Submissions that had no stored result and were enqueued (or
    /// coalesced onto an in-flight run) for simulation.
    pub const SERVE_CACHE_MISS: &str = "serve.cache.miss";
    /// Submissions coalesced onto an already queued/running job with the
    /// same cache key (a subset of `serve.cache.miss`).
    pub const SERVE_JOBS_COALESCED: &str = "serve.jobs.coalesced";
    /// Jobs that ran a simulation to completion on the worker pool.
    pub const SERVE_JOBS_COMPLETED: &str = "serve.jobs.completed";
    /// Jobs that exhausted their retry budget and were reported failed.
    pub const SERVE_JOBS_FAILED: &str = "serve.jobs.failed";
    /// Retry attempts consumed by jobs on the worker pool.
    pub const SERVE_JOB_RETRIED: &str = "serve.job.retried";
    /// Submissions rejected with HTTP 429 because the job queue was full.
    pub const SERVE_QUEUE_REJECTED: &str = "serve.queue.rejected";

    // --- Design-space optimizer counters (`sfet-optimize`). ---
    /// Optimizer generations completed (one batched sweep each).
    pub const OPT_GENERATIONS: &str = "opt.generations";
    /// Candidate design points scored across all generations.
    pub const OPT_CANDIDATES: &str = "opt.candidates";
    /// Simulation lanes evaluated (corners + Monte-Carlo samples summed
    /// over candidates).
    pub const OPT_LANES: &str = "opt.lanes";
    /// Candidates rejected as constraint-infeasible (iso-delay or yield).
    pub const OPT_INFEASIBLE: &str = "opt.infeasible";
    /// Candidates whose evaluation failed terminally (a lane exhausted
    /// its retry budget).
    pub const OPT_FAILED: &str = "opt.failed";
    /// Generations that improved the incumbent best objective.
    pub const OPT_IMPROVED: &str = "opt.improved";

    // --- Checkpoint/restart counters (`sfet_sim::transient`). ---
    /// Transient checkpoint snapshots written to disk.
    pub const CHECKPOINT_WRITTEN: &str = "checkpoint.written";
    /// Transient runs resumed from an on-disk snapshot.
    pub const CHECKPOINT_RESUMED: &str = "checkpoint.resumed";

    // --- Generic Newton driver (`sfet_numeric::newton`). ---
    /// Completed `newton::solve` calls.
    pub const NEWTON_SOLVES: &str = "newton.solves";
    /// Iterations consumed by `newton::solve` calls.
    pub const NEWTON_ITERATIONS: &str = "newton.iterations";

    // --- Linear-solver counter suffixes (prefix with `dc.`/`tran.`/`ac.`). ---
    /// Full factorisations (symbolic + pivot search + numeric).
    pub const SOLVER_FULL_FACTORIZATIONS: &str = "solver.full_factorizations";
    /// Numeric-only refactorisations along a cached pivot order.
    pub const SOLVER_REFACTORIZATIONS: &str = "solver.refactorizations";
    /// Forward/back-substitution solves.
    pub const SOLVER_SOLVES: &str = "solver.solves";
    /// Sparse stamp-pattern compilations.
    pub const SOLVER_PATTERN_REBUILDS: &str = "solver.pattern_rebuilds";
    /// Refactorisations rejected for pivot degradation and retried fully.
    pub const SOLVER_PIVOT_FALLBACKS: &str = "solver.pivot_fallbacks";
    /// GMRES inner (Arnoldi) iterations across all iterative solves.
    pub const SOLVER_GMRES_ITERS: &str = "solver.gmres.iters";
    /// GMRES restart cycles beyond the first per solve.
    pub const SOLVER_GMRES_RESTARTS: &str = "solver.gmres.restarts";
    /// Iterative solves that stagnated and fell back to a direct LU.
    pub const SOLVER_GMRES_FALLBACKS: &str = "solver.gmres.fallbacks";

    // --- Histograms. ---
    /// Accepted transient step sizes \[s\].
    pub const H_TRAN_DT: &str = "tran.dt_seconds";
    /// Newton iterations per accepted transient step.
    pub const H_TRAN_STEP_ITERS: &str = "tran.newton_iters_per_step";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_coarse_to_fine() {
        assert!(Level::Analysis < Level::Step);
        assert!(Level::Step < Level::Iteration);
        assert_eq!(Level::default(), Level::Analysis);
        assert_eq!(Level::Step.to_string(), "step");
    }

    #[test]
    fn schema_version_pinned() {
        assert_eq!(SCHEMA_VERSION, 1);
    }
}
