//! Loopback integration suite: a real `Server` on 127.0.0.1, exercised
//! through the real `Client` over TCP — the acceptance tests for the
//! service contract:
//!
//! * a served result is **bitwise identical** to the direct
//!   `sfet_sim::transient` call,
//! * duplicate submissions are answered from the result store with
//!   **exactly one** simulation run,
//! * a full queue answers 429 + `Retry-After` instead of blocking,
//! * malformed input gets a named 4xx, never a panic or a hang,
//! * graceful shutdown drains in-flight jobs,
//! * `docs/SERVE.md` documents every endpoint the router answers.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use sfet_pdn::power_gate::PowerGateScenario;
use sfet_serve::{encode_tran_result, Client, ServeConfig, Server, ENDPOINTS};
use sfet_sim::{transient, SimOptions};

fn start(
    name: &str,
    workers: usize,
    queue: usize,
) -> (
    Arc<Server>,
    std::thread::JoinHandle<()>,
    Client,
    std::path::PathBuf,
) {
    let dir = std::env::temp_dir().join(format!("sfet-loopback-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig::new(&dir)
        .with_workers(workers)
        .with_queue_capacity(queue);
    let server = Arc::new(Server::bind("127.0.0.1:0", cfg).expect("bind loopback"));
    let handle = server.spawn();
    let client = Client::new(server.addr());
    (server, handle, client, dir)
}

fn stop(handle: std::thread::JoinHandle<()>, client: &Client, dir: &std::path::Path) {
    let _ = client.shutdown();
    handle.join().expect("accept loop");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn served_power_gate_result_is_bitwise_identical_to_direct_call() {
    let (_server, handle, client, dir) = start("bitwise", 2, 16);
    let body = r#"{"scenario":"power_gate_wake","params":{"t_stop":6e-9}}"#;

    // Through the service: submit, follow SSE to the terminal event,
    // fetch the result document.
    let submitted = client.submit_raw(body).unwrap();
    assert_eq!(
        submitted.status, 202,
        "fresh job is accepted: {}",
        submitted.body
    );
    let response = submitted.json().unwrap();
    let job_id = response.get("job_id").unwrap().as_str().unwrap().to_owned();
    assert_eq!(response.get("cached").unwrap().as_bool(), Some(false));

    let events = client.follow_events(&job_id).unwrap();
    let (terminal, _) = events.last().expect("stream has events");
    assert_eq!(terminal, "done", "events: {events:?}");
    assert!(
        events.iter().any(|(name, _)| name == "telemetry"),
        "simulation telemetry reaches the SSE stream: {events:?}"
    );

    let served = client.result(&job_id).unwrap();
    assert_eq!(served.status, 200);

    // Direct library call, same inputs the scenario resolver uses.
    let scenario = PowerGateScenario {
        t_stop: 6e-9,
        ..PowerGateScenario::default()
    };
    let circuit = scenario.build().unwrap();
    let opts = SimOptions::for_duration(scenario.t_stop, 4000);
    let direct = transient(&circuit, scenario.t_stop, &opts).unwrap();

    assert_eq!(
        served.body,
        encode_tran_result(&direct),
        "served result document must be byte-identical to the direct call"
    );

    // Belt and braces: spot-check a waveform's samples bit-for-bit
    // through the JSON round trip.
    let doc = served.json().unwrap();
    let nodes = doc.get("nodes").unwrap();
    let (name, samples) = match nodes {
        sfet_serve::json::Json::Obj(pairs) => (&pairs[0].0, &pairs[0].1),
        other => panic!("nodes is {other:?}"),
    };
    let direct_samples = direct.node_samples(name).unwrap();
    let served_bits: Vec<u64> = samples
        .as_arr()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap().to_bits())
        .collect();
    let direct_bits: Vec<u64> = direct_samples.iter().map(|v| v.to_bits()).collect();
    assert_eq!(served_bits, direct_bits, "node {name} differs bitwise");

    stop(handle, &client, &dir);
}

#[test]
fn duplicate_submission_is_a_cache_hit_with_exactly_one_simulation() {
    let (server, handle, client, dir) = start("dedup", 2, 16);
    let body = r#"{"scenario":"rc_step","params":{"r":4700.0}}"#;

    let first = client.submit_raw(body).unwrap();
    assert_eq!(first.status, 202);
    let first_id = first
        .json()
        .unwrap()
        .get("job_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    client.follow_events(&first_id).unwrap();

    let second = client.submit_raw(body).unwrap();
    assert_eq!(second.status, 200, "cache hit answers 200 immediately");
    let doc = second.json().unwrap();
    assert_eq!(doc.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
    let second_id = doc.get("job_id").unwrap().as_str().unwrap().to_owned();

    // Exactly one simulation ran across both submissions.
    let stats = server.scheduler().stats();
    assert_eq!(stats.sim_attempts.load(Ordering::Relaxed), 1);
    assert_eq!(stats.cache_hits.load(Ordering::Relaxed), 1);

    // Both jobs serve byte-identical documents.
    let a = client.result(&first_id).unwrap();
    let b = client.result(&second_id).unwrap();
    assert_eq!(a.status, 200);
    assert_eq!(a.body, b.body);

    // And the health endpoint reflects the counters.
    let health = client.health().unwrap().json().unwrap();
    assert_eq!(health.get("cache_hits").unwrap().as_f64(), Some(1.0));

    stop(handle, &client, &dir);
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let (_server, handle, client, dir) = start("backpressure", 1, 1);
    let mut rejected = None;
    for i in 0..40 {
        // Distinct params defeat both the store and in-flight coalescing.
        let body = format!(r#"{{"scenario":"rc_step","params":{{"r":{}.5}}}}"#, 100 + i);
        let resp = client.submit_raw(&body).unwrap();
        if resp.status == 429 {
            rejected = Some(resp);
            break;
        }
        assert_eq!(resp.status, 202, "non-429 submissions are accepted");
    }
    let resp = rejected.expect("a 40-job burst against queue=1 must see backpressure");
    assert_eq!(resp.retry_after, Some(1), "429 advertises Retry-After");
    let err = resp.as_api_error().unwrap();
    assert_eq!(err.code, "queue_full");

    stop(handle, &client, &dir);
}

#[test]
fn malformed_requests_get_named_errors_never_hangs() {
    let (server, handle, client, dir) = start("malformed", 1, 8);

    let cases: &[(&str, u16, &str)] = &[
        ("{not json", 400, "invalid_json"),
        ("[1,2,3]", 400, "invalid_request"),
        ("{}", 400, "invalid_request"),
        (r#"{"scenario":"warp_drive"}"#, 400, "unknown_scenario"),
        (
            r#"{"scenario":"rc_step","options":{"bogus":1}}"#,
            400,
            "invalid_options",
        ),
        (r#"{"netlist":"R1 a b 1k\n.end"}"#, 400, "netlist_error"),
        // A netlist value that saturates f64 to infinity must be named
        // at submit, not handed to the solver.
        (
            r#"{"netlist":"V1 in 0 DC 1e999\nR1 in 0 1k\n.tran 1p 2n\n.end"}"#,
            400,
            "netlist_error",
        ),
        // An impossible analysis window must not burn a worker slot.
        (
            r#"{"netlist":"V1 in 0 DC 1\nR1 in 0 1k\n.tran 1p -2n\n.end"}"#,
            400,
            "netlist_error",
        ),
        // Optimize-job parameter validation.
        (
            r#"{"optimize":{"algorithm":"annealing"}}"#,
            400,
            "invalid_request",
        ),
        (r#"{"optimize":{"population":1}}"#, 400, "invalid_request"),
        (
            r#"{"optimize":{"generations":1e18}}"#,
            400,
            "invalid_request",
        ),
        (
            r#"{"optimize":{},"options":{"reltol":1e-6}}"#,
            400,
            "invalid_request",
        ),
        (
            r#"{"optimize":{},"scenario":"rc_step"}"#,
            400,
            "invalid_request",
        ),
    ];
    for (body, status, code) in cases {
        let resp = client.submit_raw(body).unwrap();
        assert_eq!(resp.status, *status, "body {body:?} -> {}", resp.body);
        assert_eq!(resp.as_api_error().unwrap().code, *code, "body {body:?}");
    }

    // Routing errors.
    let resp = client.status("j-999999").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(resp.as_api_error().unwrap().code, "not_found");
    let resp = client.result("definitely-not-an-id").unwrap();
    assert_eq!(resp.status, 404);

    // Raw non-HTTP bytes are answered (with a 400), not hung on.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(client_addr(&server)).unwrap();
        raw.write_all(b"\x00\x01\x02 total garbage\r\n\r\n")
            .unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = String::new();
        raw.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply}");
    }

    // The server is still alive and serving after all of the above.
    assert_eq!(client.health().unwrap().status, 200);

    stop(handle, &client, &dir);
}

fn client_addr(server: &Arc<Server>) -> std::net::SocketAddr {
    server.addr()
}

#[test]
fn shutdown_drains_inflight_jobs_before_exiting() {
    let (server, handle, client, _dir) = start("drain", 1, 16);
    let mut ids = Vec::new();
    for i in 0..4 {
        let body = format!(r#"{{"scenario":"rc_step","params":{{"c":{}e-15}}}}"#, i + 2);
        let resp = client.submit_raw(&body).unwrap();
        assert_eq!(resp.status, 202);
        ids.push(
            resp.json()
                .unwrap()
                .get("job_id")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned(),
        );
    }

    let ack = client.shutdown().unwrap();
    assert_eq!(ack.status, 202);
    handle.join().expect("accept loop exits after drain");

    // Every queued job ran to completion before the server stopped.
    for id in &ids {
        let numeric: u64 = id.trim_start_matches("j-").parse().unwrap();
        let job = server.scheduler().job(numeric).expect("job survives drain");
        assert!(
            matches!(job.state(), sfet_serve::JobState::Done { .. }),
            "{id} ended as {:?}",
            job.state()
        );
    }
    assert_eq!(
        server.scheduler().stats().completed.load(Ordering::Relaxed),
        4
    );
}

#[test]
fn optimize_job_streams_generations_and_dedups_deterministically() {
    let (server, handle, client, dir) = start("optimize", 2, 16);
    let body = r#"{"optimize":{"generations":2,"population":4,"seed":7}}"#;

    let submitted = client.submit_raw(body).unwrap();
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let response = submitted.json().unwrap();
    let job_id = response.get("job_id").unwrap().as_str().unwrap().to_owned();

    // The SSE stream carries one `generation` event per generation plus
    // the engine's telemetry, ending in `done`.
    let events = client.follow_events(&job_id).unwrap();
    let (terminal, _) = events.last().expect("stream has events");
    assert_eq!(terminal, "done", "events: {events:?}");
    let generations: Vec<&(String, String)> = events
        .iter()
        .filter(|(name, _)| name == "generation")
        .collect();
    assert_eq!(generations.len(), 2, "events: {events:?}");
    for (i, (_, data)) in generations.iter().enumerate() {
        let doc = sfet_serve::json::Json::parse(data).unwrap();
        assert_eq!(doc.get("generation").unwrap().as_f64(), Some(i as f64));
        assert!(doc.get("best_reduction_pct").unwrap().as_f64().is_some());
    }
    assert!(
        events.iter().any(|(name, _)| name == "telemetry"),
        "optimizer telemetry reaches the SSE stream: {events:?}"
    );

    // The result document is the versioned optimize encoding.
    let served = client.result(&job_id).unwrap();
    assert_eq!(served.status, 200);
    let doc = served.json().unwrap();
    assert_eq!(
        doc.get("result").and_then(sfet_serve::json::Json::as_str),
        Some(sfet_serve::OPTIMIZE_RESULT_VERSION)
    );
    assert_eq!(doc.get("generations").unwrap().as_f64(), Some(2.0));
    assert!(doc
        .get("best")
        .unwrap()
        .get("droop_reduction_pct")
        .is_some());
    assert!(doc.get("frontier").unwrap().as_arr().is_some());

    // An identical resubmission is a cache hit — the run is a pure
    // function of its parameters, so no second optimization happens.
    let second = client.submit_raw(body).unwrap();
    assert_eq!(second.status, 200, "cache hit answers 200 immediately");
    let second_doc = second.json().unwrap();
    assert_eq!(second_doc.get("cached").unwrap().as_bool(), Some(true));
    let second_id = second_doc
        .get("job_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    let replay = client.result(&second_id).unwrap();
    assert_eq!(served.body, replay.body, "dedup must serve identical bytes");
    assert_eq!(
        server
            .scheduler()
            .stats()
            .sim_attempts
            .load(Ordering::Relaxed),
        1
    );

    // A different seed is a different job.
    let reseeded = client
        .submit_raw(r#"{"optimize":{"generations":2,"population":4,"seed":8}}"#)
        .unwrap();
    assert_eq!(reseeded.status, 202, "{}", reseeded.body);

    stop(handle, &client, &dir);
}

#[test]
fn docs_cover_every_endpoint_the_router_answers() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVE.md");
    let doc = std::fs::read_to_string(doc_path)
        .expect("docs/SERVE.md exists (the API reference is part of the service contract)");
    for endpoint in ENDPOINTS {
        let (method, path) = endpoint.split_once(' ').unwrap();
        assert!(
            doc.contains(path),
            "docs/SERVE.md is missing endpoint path {path}"
        );
        assert!(
            doc.contains(method),
            "docs/SERVE.md is missing method {method}"
        );
    }
    // The SSE grammar and the error codes table are load-bearing parts
    // of the reference.
    for needle in ["text/event-stream", "queue_full", "Retry-After", "cache"] {
        assert!(doc.contains(needle), "docs/SERVE.md is missing {needle:?}");
    }
}
