//! Server-side error model: every failure a client can observe maps to
//! one named error code and one HTTP status, documented in
//! `docs/SERVE.md`.

use std::fmt;

use crate::json::build::{obj, s};
use crate::json::Json;

/// A client-visible API error: HTTP status + stable machine-readable
/// code + human message.
///
/// # Example
///
/// ```
/// use sfet_serve::ApiError;
///
/// let err = ApiError::invalid_json("expected ':' at byte 7");
/// assert_eq!(err.status, 400);
/// assert_eq!(err.code, "invalid_json");
/// assert!(err.to_body().contains("\"error\""));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable error code (see `docs/SERVE.md` for the full table).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Constructs an error from its parts.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code,
            message: message.into(),
        }
    }

    /// 400 `invalid_json`: the request body failed to parse as JSON.
    pub fn invalid_json(detail: impl Into<String>) -> Self {
        Self::new(400, "invalid_json", detail)
    }

    /// 400 `invalid_request`: well-formed JSON with the wrong shape.
    pub fn invalid_request(detail: impl Into<String>) -> Self {
        Self::new(400, "invalid_request", detail)
    }

    /// 400 `unknown_scenario`: the scenario name is not registered.
    pub fn unknown_scenario(name: &str, known: &[&str]) -> Self {
        Self::new(
            400,
            "unknown_scenario",
            format!("unknown scenario {name:?}; known: {}", known.join(", ")),
        )
    }

    /// 400 `netlist_error`: the submitted netlist failed to parse/build.
    pub fn netlist_error(detail: impl fmt::Display) -> Self {
        Self::new(400, "netlist_error", detail.to_string())
    }

    /// 400 `invalid_options`: the `SimOptions` patch failed validation.
    pub fn invalid_options(detail: impl fmt::Display) -> Self {
        Self::new(400, "invalid_options", detail.to_string())
    }

    /// 404 `not_found`: no such route or job.
    pub fn not_found(detail: impl Into<String>) -> Self {
        Self::new(404, "not_found", detail)
    }

    /// 405 `method_not_allowed`.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        Self::new(
            405,
            "method_not_allowed",
            format!("{method} is not supported on {path}"),
        )
    }

    /// 409 `job_not_done`: the result was requested before completion.
    pub fn job_not_done(state: &str) -> Self {
        Self::new(
            409,
            "job_not_done",
            format!("job is {state}; fetch the result once it is done"),
        )
    }

    /// 409 `job_failed`: the job exhausted its retries; the message
    /// carries the final simulation error.
    pub fn job_failed(detail: impl Into<String>) -> Self {
        Self::new(409, "job_failed", detail)
    }

    /// 413 `payload_too_large`.
    pub fn payload_too_large(limit: usize) -> Self {
        Self::new(
            413,
            "payload_too_large",
            format!("request body exceeds {limit} bytes"),
        )
    }

    /// 429 `queue_full`: backpressure; retry after the advertised delay.
    pub fn queue_full(capacity: usize) -> Self {
        Self::new(
            429,
            "queue_full",
            format!("job queue is at capacity ({capacity}); retry later"),
        )
    }

    /// 503 `shutting_down`: the server is draining and accepts no new
    /// work.
    pub fn shutting_down() -> Self {
        Self::new(
            503,
            "shutting_down",
            "server is draining; resubmit elsewhere",
        )
    }

    /// The JSON body for this error:
    /// `{"error":{"code":"...","message":"..."}}`.
    pub fn to_body(&self) -> String {
        obj(vec![(
            "error",
            obj(vec![("code", s(self.code)), ("message", s(&self.message))]),
        )])
        .to_json()
    }

    /// `Retry-After` seconds to advertise, for statuses that carry one.
    pub fn retry_after(&self) -> Option<u64> {
        match self.status {
            429 => Some(1),
            503 => Some(5),
            _ => None,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

/// Parses an error body produced by [`ApiError::to_body`] back into its
/// (code, message) parts — the client-side helper tests use.
pub fn parse_error_body(body: &str) -> Option<(String, String)> {
    let v = Json::parse(body).ok()?;
    let e = v.get("error")?;
    Some((
        e.get("code")?.as_str()?.to_owned(),
        e.get("message")?.as_str()?.to_owned(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_round_trips() {
        let err = ApiError::queue_full(8);
        let (code, msg) = parse_error_body(&err.to_body()).unwrap();
        assert_eq!(code, "queue_full");
        assert!(msg.contains('8'));
        assert_eq!(err.retry_after(), Some(1));
        assert_eq!(ApiError::not_found("x").retry_after(), None);
    }
}
