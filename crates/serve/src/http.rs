//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the job API, hand-rolled because the workspace is dependency-free.
//!
//! Supported: request-line + header parsing, `Content-Length` bodies
//! (bounded by [`MAX_BODY_BYTES`]), fixed-length and chunked responses,
//! and `Connection: close` semantics (every exchange is one
//! request/response; no keep-alive state machine to get wrong). Anything
//! outside that — upgrade requests, transfer-encoded bodies, pipelining —
//! is answered with a named 4xx rather than guessed at.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::ApiError;

/// Hard cap on request bodies (netlists are text; 1 MiB is generous).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// A parsed HTTP request: method, path (query string stripped), body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, without any `?query` suffix.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request off `stream`.
    ///
    /// # Errors
    ///
    /// A 4xx [`ApiError`] for malformed framing, oversized heads or
    /// bodies, or unsupported transfer encodings. I/O errors (client
    /// hung up) surface as `invalid_request`.
    pub fn read_from(stream: &mut TcpStream) -> Result<Request, ApiError> {
        let mut reader = BufReader::new(stream);
        let request_line = read_line_bounded(&mut reader)?;
        let mut parts = request_line.split_whitespace();
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) => (m, t, v),
            _ => return Err(ApiError::invalid_request("malformed HTTP request line")),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ApiError::invalid_request(format!(
                "unsupported protocol version {version}"
            )));
        }

        let mut content_length: usize = 0;
        let mut head_bytes = request_line.len();
        loop {
            let line = read_line_bounded(&mut reader)?;
            head_bytes += line.len() + 2;
            if head_bytes > MAX_HEAD_BYTES {
                return Err(ApiError::invalid_request("request head too large"));
            }
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(ApiError::invalid_request("malformed header line"));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| ApiError::invalid_request("unparseable Content-Length"))?;
                    if content_length > MAX_BODY_BYTES {
                        return Err(ApiError::payload_too_large(MAX_BODY_BYTES));
                    }
                }
                "transfer-encoding" => {
                    return Err(ApiError::invalid_request(
                        "transfer-encoded request bodies are not supported; \
                         send Content-Length",
                    ));
                }
                _ => {}
            }
        }

        let mut body = vec![0u8; content_length];
        reader
            .read_exact(&mut body)
            .map_err(|e| ApiError::invalid_request(format!("short request body: {e}")))?;

        let path = target.split('?').next().unwrap_or(target).to_owned();
        Ok(Request {
            method: method.to_ascii_uppercase(),
            path,
            body,
        })
    }

    /// The body parsed as UTF-8 (the JSON layer takes it from here).
    ///
    /// # Errors
    ///
    /// 400 `invalid_request` on non-UTF-8 bytes.
    pub fn body_utf8(&self) -> Result<&str, ApiError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ApiError::invalid_request("request body is not valid UTF-8"))
    }
}

/// Reads one CRLF-terminated line, rejecting lines past the head cap.
///
/// The read itself is capped (`Read::take`), not just the resulting
/// length: a client streaming an endless newline-free "line" is cut off
/// after `MAX_HEAD_BYTES + 1` bytes instead of growing the buffer until
/// memory runs out.
fn read_line_bounded(reader: &mut BufReader<&mut TcpStream>) -> Result<String, ApiError> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_HEAD_BYTES as u64 + 1)
        .read_line(&mut line)
        .map_err(|e| ApiError::invalid_request(format!("reading request: {e}")))?;
    if n == 0 {
        return Err(ApiError::invalid_request("connection closed mid-request"));
    }
    if line.len() > MAX_HEAD_BYTES || !line.ends_with('\n') && n > MAX_HEAD_BYTES {
        return Err(ApiError::invalid_request("request line too long"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reason phrases for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a fixed-length response and flushes. `extra_headers` are
/// pre-formatted `Name: value` lines.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[String],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a JSON response.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response(stream, status, "application/json", &[], body)
}

/// Writes an [`ApiError`] response, advertising `Retry-After` when the
/// status carries one.
pub fn write_error(stream: &mut TcpStream, err: &ApiError) -> std::io::Result<()> {
    let mut extra = Vec::new();
    if let Some(secs) = err.retry_after() {
        extra.push(format!("Retry-After: {secs}"));
    }
    write_response(
        stream,
        err.status,
        "application/json",
        &extra,
        &err.to_body(),
    )
}

/// Starts a Server-Sent-Events response: status line + headers only;
/// the caller streams `event:`/`data:` blocks afterwards and closes the
/// connection to end the stream.
pub fn begin_sse(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Cache-Control: no-store\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `client_bytes` against a parse on the accept side.
    fn parse_raw(client_bytes: &[u8]) -> Result<Request, ApiError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = client_bytes.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&bytes).unwrap();
            s.flush().unwrap();
            // Half-close so a short body reads EOF instead of hanging,
            // then hold the read side until the server is done parsing.
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = Request::read_from(&mut stream);
        drop(stream);
        client.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse_raw(b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body_utf8().unwrap(), "{}");
    }

    #[test]
    fn strips_query_and_upcases_method() {
        let req = parse_raw(b"get /v1/healthz?probe=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
    }

    #[test]
    fn rejects_bad_framing_with_named_errors() {
        assert_eq!(
            parse_raw(b"nonsense\r\n\r\n").unwrap_err().code,
            "invalid_request"
        );
        assert_eq!(
            parse_raw(b"GET / SPDY/3\r\n\r\n").unwrap_err().code,
            "invalid_request"
        );
        assert_eq!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n")
                .unwrap_err()
                .code,
            "invalid_request"
        );
        assert_eq!(
            parse_raw(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .code,
            "invalid_request"
        );
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        assert_eq!(
            parse_raw(huge.as_bytes()).unwrap_err().code,
            "payload_too_large"
        );
    }

    #[test]
    fn endless_headerless_line_is_cut_off_not_buffered() {
        // A client streaming a newline-free "request line" while holding
        // the connection open must be rejected after the head cap — not
        // buffered without bound until it deigns to send a newline.
        // Pre-fix this test times out: the parse blocks (and grows its
        // buffer) for as long as the client keeps writing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = tx.send(Request::read_from(&mut stream));
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let junk = vec![b'A'; MAX_HEAD_BYTES + 4096];
        client.write_all(&junk).unwrap();
        client.flush().unwrap();
        // No shutdown: the write side stays open, so only the byte cap
        // can end the server's read.
        let result = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("server must reject the oversized line promptly");
        assert_eq!(result.unwrap_err().code, "invalid_request");
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn short_body_is_an_error_not_a_hang() {
        assert_eq!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}")
                .unwrap_err()
                .code,
            "invalid_request"
        );
    }
}
