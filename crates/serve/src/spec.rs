//! Job specification: from a submit-request JSON body to a runnable
//! work item plus its dedup cache key.
//!
//! Three job sources exist:
//!
//! * **Built-in scenarios** (`"scenario"` field): named circuit
//!   generators with a small parameter object — the paper's workloads
//!   exposed as a service. See [`SCENARIOS`].
//! * **Netlists** (`"netlist"` field): a SPICE-like deck parsed by
//!   `sfet-circuit`; its `.tran` directive supplies `dtmax` and `tstop`.
//! * **Optimize runs** (`"optimize"` field): a closed-loop
//!   design-space optimization over the Soft-FET operating point —
//!   `sfet-optimize`'s standard run exposed as a job type, with
//!   per-generation SSE progress.
//!
//! For transient jobs the cache key combines the SFCK circuit-shape
//! fingerprint ([`sfet_sim::circuit_fingerprint`]) with a
//! canonicalisation of every result-relevant input the fingerprint
//! cannot see (element values via the scenario parameterisation or the
//! netlist text, tolerances, step bounds). Optimize runs are bitwise
//! deterministic functions of their parameters, so their key hashes the
//! canonical parameter string directly — see [`JobSpec::cache_key`].

use sfet_circuit::parse::{parse_netlist, Analysis};
use sfet_circuit::Circuit;
use sfet_devices::ptm::PtmParams;
use sfet_optimize::Algorithm;
use sfet_pdn::power_gate::PowerGateScenario;
use sfet_sim::{circuit_fingerprint, SimOptions};

use crate::error::ApiError;
use crate::json::{fmt_f64, Json};
use crate::protocol::{canonical_options, OptionsPatch, OPTIMIZE_RESULT_VERSION};

/// Names of the built-in scenarios a job may request.
pub const SCENARIOS: &[&str] = &["rc_step", "power_gate_wake"];

/// Hard cap on request execution policy so one job cannot hog a worker
/// with an absurd retry ladder.
pub const MAX_RETRIES: usize = 8;

/// Hard cap on `optimize.generations` — one optimize job may not hog a
/// worker indefinitely.
pub const MAX_GENERATIONS: usize = 32;

/// Hard cap on `optimize.population`.
pub const MAX_POPULATION: usize = 32;

/// A transient-simulation work item: one circuit, one analysis window.
#[derive(Debug, Clone)]
pub struct TranWork {
    /// The circuit to simulate.
    pub circuit: Circuit,
    /// Transient stop time \[s\].
    pub tstop: f64,
    /// Resolved simulation options (defaults + client patch applied).
    pub options: SimOptions,
    /// Write a checkpoint every this many accepted steps (0 disables);
    /// retries resume from the last snapshot.
    pub checkpoint_every: usize,
}

/// A closed-loop optimize work item: `sfet-optimize`'s standard run
/// (the paper's design space, the min-worst-corner-droop objective at
/// iso-delay) parameterised by the request.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeWork {
    /// Optimizer selection (`coordinate` | `evolution`).
    pub algorithm: Algorithm,
    /// Run seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Generation budget.
    pub generations: usize,
    /// Population size per generation (evolution only).
    pub population: usize,
    /// Nominal supply \[V\].
    pub vdd: f64,
}

/// What a job executes: a transient simulation or an optimize run.
// One JobWork exists per in-flight HTTP job, never in bulk arrays, so
// the Tran/Optimize size disparity costs nothing worth a Box indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum JobWork {
    /// Simulate one circuit over one analysis window.
    Tran(TranWork),
    /// Run the closed-loop design-space optimizer.
    Optimize(OptimizeWork),
}

/// A fully resolved, runnable job specification.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label (scenario name, `netlist`, or `optimize`),
    /// for status reporting.
    pub label: String,
    /// The work item to execute.
    pub work: JobWork,
    /// Retry budget. Transient jobs: attempt `k` reruns the whole
    /// simulation under `options.escalated(k)`. Optimize jobs: the
    /// per-lane retry budget of the batched sweep engine.
    pub retries: usize,
    /// Canonicalised value-level inputs (scenario parameters, netlist
    /// text digest, or optimize parameters) folded into the cache key
    /// alongside the shape fingerprint.
    value_canon: String,
}

impl JobSpec {
    /// Parses and resolves a submit-request body.
    ///
    /// # Errors
    ///
    /// A 4xx [`ApiError`] naming what was wrong (`invalid_request`,
    /// `unknown_scenario`, `netlist_error`, or `invalid_options`).
    pub fn from_request(body: &Json) -> Result<JobSpec, ApiError> {
        if !matches!(body, Json::Obj(_)) {
            return Err(ApiError::invalid_request("request body must be an object"));
        }
        let patch = OptionsPatch::from_json(body.get("options"))?;
        let retries = uint_field(body, "retries", 1)?;
        if retries > MAX_RETRIES {
            return Err(ApiError::invalid_request(format!(
                "retries must be at most {MAX_RETRIES}"
            )));
        }
        let checkpoint_every = uint_field(body, "checkpoint_every", 0)?;

        let mut spec = match (
            body.get("scenario"),
            body.get("netlist"),
            body.get("optimize"),
        ) {
            (Some(_), Some(_), _) | (Some(_), _, Some(_)) | (_, Some(_), Some(_)) => {
                return Err(ApiError::invalid_request(
                    "submit exactly one of \"scenario\", \"netlist\", or \"optimize\"",
                ));
            }
            (Some(name), None, None) => {
                let name = name
                    .as_str()
                    .ok_or_else(|| ApiError::invalid_request("\"scenario\" must be a string"))?;
                scenario_spec(name, body.get("params"), &patch)?
            }
            (None, Some(text), None) => {
                let text = text
                    .as_str()
                    .ok_or_else(|| ApiError::invalid_request("\"netlist\" must be a string"))?;
                netlist_spec(text, &patch)?
            }
            (None, None, Some(params)) => {
                // Simulation options and checkpoints belong to transient
                // jobs; silently ignoring them here would mislead.
                for field in ["options", "checkpoint_every", "params"] {
                    if body.get(field).is_some() {
                        return Err(ApiError::invalid_request(format!(
                            "optimize jobs take no {field:?} field"
                        )));
                    }
                }
                optimize_spec(params)?
            }
            (None, None, None) => {
                return Err(ApiError::invalid_request(
                    "request needs a \"scenario\", \"netlist\", or \"optimize\" field",
                ));
            }
        };
        spec.retries = retries;
        if let JobWork::Tran(tran) = &mut spec.work {
            tran.checkpoint_every = checkpoint_every;
        }
        Ok(spec)
    }

    /// The content-addressed cache key of this job:
    /// `"{shape_fingerprint:016x}-{value_hash:016x}"`.
    ///
    /// Transient jobs: the first half is the SFCK fingerprint of
    /// (circuit shape, tstop, method), the second an FNV-1a hash over
    /// the canonicalised resolved options plus the value-level inputs.
    /// Execution policy (retries, checkpoint cadence) is excluded: it
    /// cannot change the stored result (a stored transient document is
    /// always the first successful attempt, which is identical whatever
    /// the budget).
    ///
    /// Optimize jobs: both halves are FNV-1a — structure (algorithm,
    /// budgets) on the left, full parameter canon on the right. Here
    /// `retries` IS part of the key: lane failures are *scored*, not
    /// raised, and a larger per-lane budget can rescue a lane with
    /// escalated solver options, changing the outcome document.
    pub fn cache_key(&self) -> String {
        match &self.work {
            JobWork::Tran(tran) => {
                let shape = circuit_fingerprint(&tran.circuit, tran.tstop, tran.options.method);
                let canon = canonical_options(&tran.options, tran.tstop, &self.value_canon);
                format!("{shape:016x}-{:016x}", fnv1a(canon.as_bytes()))
            }
            JobWork::Optimize(work) => {
                let shape = fnv1a(
                    format!(
                        "{OPTIMIZE_RESULT_VERSION};alg={};generations={};population={}",
                        work.algorithm.name(),
                        work.generations,
                        work.population
                    )
                    .as_bytes(),
                );
                let canon = format!("{};retries={}", self.value_canon, self.retries);
                format!("{shape:016x}-{:016x}", fnv1a(canon.as_bytes()))
            }
        }
    }
}

/// FNV-1a over a byte string (the same construction the SFCK checkpoint
/// fingerprint uses, applied to the value-level canonical string).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn uint_field(body: &Json, key: &str, default: usize) -> Result<usize, ApiError> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v.as_f64().ok_or_else(|| {
                ApiError::invalid_request(format!("{key} must be a non-negative integer"))
            })?;
            if n < 0.0 || n.fract() != 0.0 || n > 1e15 {
                return Err(ApiError::invalid_request(format!(
                    "{key} must be a non-negative integer"
                )));
            }
            Ok(n as usize)
        }
    }
}

fn num_param(params: Option<&Json>, key: &str, default: f64) -> Result<f64, ApiError> {
    match params.and_then(|p| p.get(key)) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ApiError::invalid_request(format!("params.{key} must be a number"))),
    }
}

fn bool_param(params: Option<&Json>, key: &str, default: bool) -> Result<bool, ApiError> {
    match params.and_then(|p| p.get(key)) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ApiError::invalid_request(format!("params.{key} must be a boolean"))),
    }
}

fn check_params(params: Option<&Json>, scenario: &str, accepted: &[&str]) -> Result<(), ApiError> {
    let Some(params) = params else {
        return Ok(());
    };
    let Json::Obj(pairs) = params else {
        return Err(ApiError::invalid_request("\"params\" must be an object"));
    };
    for (key, _) in pairs {
        if !accepted.contains(&key.as_str()) {
            return Err(ApiError::invalid_request(format!(
                "scenario {scenario:?} has no parameter {key:?} (accepted: {})",
                accepted.join(", ")
            )));
        }
    }
    Ok(())
}

fn scenario_spec(
    name: &str,
    params: Option<&Json>,
    patch: &OptionsPatch,
) -> Result<JobSpec, ApiError> {
    match name {
        "rc_step" => rc_step_spec(params, patch),
        "power_gate_wake" => power_gate_spec(params, patch),
        other => Err(ApiError::unknown_scenario(other, SCENARIOS)),
    }
}

/// `rc_step`: a single-pole RC low-pass driven by a ramped step — the
/// cheap smoke/load-test workload. Parameters: `r` \[Ω\], `c` \[F\],
/// `v` (step target \[V\]), `t_ramp` \[s\], `tstop` \[s\].
fn rc_step_spec(params: Option<&Json>, patch: &OptionsPatch) -> Result<JobSpec, ApiError> {
    check_params(params, "rc_step", &["r", "c", "v", "t_ramp", "tstop"])?;
    let r = num_param(params, "r", 1e3)?;
    let c = num_param(params, "c", 1e-15)?;
    let v = num_param(params, "v", 1.0)?;
    let t_ramp = num_param(params, "t_ramp", 1e-12)?;
    let tstop = num_param(params, "tstop", 10e-12)?;
    if !(r > 0.0 && c > 0.0 && t_ramp > 0.0 && tstop > 0.0) {
        return Err(ApiError::invalid_request(
            "rc_step needs positive r, c, t_ramp, tstop",
        ));
    }
    let mut ckt = Circuit::new();
    let (inp, out, gnd) = (ckt.node("in"), ckt.node("out"), Circuit::ground());
    let build = (|| {
        ckt.add_voltage_source(
            "V1",
            inp,
            gnd,
            sfet_circuit::SourceWaveform::ramp(0.0, v, 0.0, t_ramp),
        )?;
        ckt.add_resistor("R1", inp, out, r)?;
        ckt.add_capacitor("C1", out, gnd, c)
    })();
    build.map_err(ApiError::netlist_error)?;
    let options = patch.apply(SimOptions::for_duration(tstop, 400))?;
    Ok(JobSpec {
        label: "rc_step".into(),
        work: JobWork::Tran(TranWork {
            circuit: ckt,
            tstop,
            options,
            checkpoint_every: 0,
        }),
        retries: 0,
        value_canon: format!(
            "rc_step;r={};c={};v={};t_ramp={}",
            fmt_f64(r),
            fmt_f64(c),
            fmt_f64(v),
            fmt_f64(t_ramp)
        ),
    })
}

/// `power_gate_wake`: the paper's Fig. 10 power-gate wake-up on a shared
/// PDN ([`PowerGateScenario`]). Parameters: `wake_ramp` \[s\],
/// `t_stop` \[s\], `i_active` \[A\], and `soft` (boolean — insert the
/// scaled VO₂ Soft-FET header gate PTM).
fn power_gate_spec(params: Option<&Json>, patch: &OptionsPatch) -> Result<JobSpec, ApiError> {
    check_params(
        params,
        "power_gate_wake",
        &["wake_ramp", "t_stop", "i_active", "soft"],
    )?;
    let base = PowerGateScenario::default();
    let wake_ramp = num_param(params, "wake_ramp", base.wake_ramp)?;
    let t_stop = num_param(params, "t_stop", base.t_stop)?;
    let i_active = num_param(params, "i_active", base.i_active)?;
    let soft = bool_param(params, "soft", false)?;
    let mut scenario = PowerGateScenario {
        wake_ramp,
        t_stop,
        i_active,
        ..base
    };
    if soft {
        scenario = scenario.with_soft_fet(PtmParams::vo2_default());
    }
    let circuit = scenario.build().map_err(ApiError::netlist_error)?;
    // Same default density as `PowerGateScenario::run`.
    let options = patch.apply(SimOptions::for_duration(scenario.t_stop, 4000))?;
    Ok(JobSpec {
        label: "power_gate_wake".into(),
        work: JobWork::Tran(TranWork {
            circuit,
            tstop: scenario.t_stop,
            options,
            checkpoint_every: 0,
        }),
        retries: 0,
        value_canon: format!(
            "power_gate_wake;wake_ramp={};t_stop={};i_active={};soft={soft}",
            fmt_f64(wake_ramp),
            fmt_f64(t_stop),
            fmt_f64(i_active)
        ),
    })
}

fn netlist_spec(text: &str, patch: &OptionsPatch) -> Result<JobSpec, ApiError> {
    let parsed = parse_netlist(text).map_err(ApiError::netlist_error)?;
    // The job server runs transient jobs; take the first `.tran` directive
    // and ignore any `.dc` sweeps the deck also carries.
    let Some((dtmax, tstop)) = parsed.analyses.iter().find_map(|a| match a {
        Analysis::Tran { dtmax, tstop } => Some((*dtmax, *tstop)),
        _ => None,
    }) else {
        return Err(ApiError::netlist_error(
            "netlist needs a `.tran <dtmax> <tstop>` directive",
        ));
    };
    // Reject impossible analysis windows at submission instead of letting
    // the job burn a worker slot and fail inside the engine.
    if !(tstop > 0.0 && tstop.is_finite() && dtmax > 0.0 && dtmax.is_finite()) {
        return Err(ApiError::netlist_error(format!(
            ".tran needs positive, finite <dtmax> <tstop>, got {dtmax:e} {tstop:e}"
        )));
    }
    let mut base = SimOptions::for_duration(tstop, 16);
    base.dtmax = dtmax;
    let options = patch.apply(base)?;
    Ok(JobSpec {
        label: "netlist".into(),
        work: JobWork::Tran(TranWork {
            circuit: parsed.circuit,
            tstop,
            options,
            checkpoint_every: 0,
        }),
        retries: 0,
        // The netlist text itself is the value-level identity: two decks
        // that differ only in comments/whitespace hash differently — a
        // conservative (never wrongly-shared) cache.
        value_canon: format!(
            "netlist;sha={:016x};len={}",
            fnv1a(text.as_bytes()),
            text.len()
        ),
    })
}

/// `optimize`: the closed-loop design-space optimization job. Parameters
/// (all optional): `algorithm` (`"coordinate"` | `"evolution"`), `seed`,
/// `generations` (1..=[`MAX_GENERATIONS`]), `population`
/// (2..=[`MAX_POPULATION`]), `vdd` \[V\].
fn optimize_spec(params: &Json) -> Result<JobSpec, ApiError> {
    check_params(
        Some(params),
        "optimize",
        &["algorithm", "seed", "generations", "population", "vdd"],
    )?;
    let algorithm = match params.get("algorithm") {
        None => Algorithm::Evolution,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| ApiError::invalid_request("optimize.algorithm must be a string"))?;
            Algorithm::parse(name).ok_or_else(|| {
                ApiError::invalid_request(format!(
                    "unknown optimize.algorithm {name:?} (accepted: coordinate, evolution)"
                ))
            })?
        }
    };
    // JSON numbers are f64; seeds are exact up to 2^53, which the
    // integer check in `uint_field` already enforces (n <= 1e15).
    let seed = uint_field(params, "seed", 0x050F_7FE7)? as u64;
    let generations = uint_field(params, "generations", 12)?;
    if !(1..=MAX_GENERATIONS).contains(&generations) {
        return Err(ApiError::invalid_request(format!(
            "optimize.generations must be in 1..={MAX_GENERATIONS}"
        )));
    }
    let population = uint_field(params, "population", 8)?;
    if !(2..=MAX_POPULATION).contains(&population) {
        return Err(ApiError::invalid_request(format!(
            "optimize.population must be in 2..={MAX_POPULATION}"
        )));
    }
    let vdd = match params.get("vdd") {
        None => 1.0,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ApiError::invalid_request("optimize.vdd must be a number"))?,
    };
    // The standard design space and objective are built around ~1 V
    // supplies; a wild vdd just wastes a worker on meaningless sims.
    if !(vdd.is_finite() && (0.2..=2.0).contains(&vdd)) {
        return Err(ApiError::invalid_request(
            "optimize.vdd must be a finite supply in [0.2, 2.0] V",
        ));
    }
    let work = OptimizeWork {
        algorithm,
        seed,
        generations,
        population,
        vdd,
    };
    let value_canon = format!(
        "optimize;alg={};seed={};generations={};population={};vdd={}",
        work.algorithm.name(),
        work.seed,
        work.generations,
        work.population,
        fmt_f64(work.vdd)
    );
    Ok(JobSpec {
        label: "optimize".into(),
        work: JobWork::Optimize(work),
        retries: 0,
        value_canon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<JobSpec, ApiError> {
        JobSpec::from_request(&Json::parse(body).unwrap())
    }

    fn tran(spec: &JobSpec) -> &TranWork {
        match &spec.work {
            JobWork::Tran(t) => t,
            other => panic!("expected a transient work item, got {other:?}"),
        }
    }

    #[test]
    fn rc_step_resolves_with_defaults() {
        let spec = parse(r#"{"scenario":"rc_step"}"#).unwrap();
        assert_eq!(spec.label, "rc_step");
        assert_eq!(tran(&spec).tstop, 10e-12);
        assert_eq!(spec.retries, 1);
        assert_eq!(tran(&spec).circuit.elements().len(), 3);
    }

    #[test]
    fn identical_requests_share_a_cache_key() {
        let a = parse(r#"{"scenario":"rc_step","params":{"r":2000.0}}"#).unwrap();
        let b = parse(r#"{"scenario":"rc_step","params":{"r":2e3},"retries":3}"#).unwrap();
        assert_eq!(
            a.cache_key(),
            b.cache_key(),
            "retries must not split the cache"
        );
        // Spelling out a default == omitting it.
        let c = parse(r#"{"scenario":"rc_step","params":{"r":2e3,"c":1e-15}}"#).unwrap();
        assert_eq!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn value_changes_split_the_cache_key() {
        let a = parse(r#"{"scenario":"rc_step"}"#).unwrap();
        let b = parse(r#"{"scenario":"rc_step","params":{"r":999.0}}"#).unwrap();
        let c = parse(r#"{"scenario":"rc_step","options":{"reltol":1e-6}}"#).unwrap();
        let d = parse(r#"{"scenario":"rc_step","params":{"tstop":2e-11}}"#).unwrap();
        let keys = [a.cache_key(), b.cache_key(), c.cache_key(), d.cache_key()];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} must differ");
            }
        }
    }

    #[test]
    fn power_gate_soft_flag_changes_circuit_and_key() {
        let hard = parse(r#"{"scenario":"power_gate_wake","params":{"t_stop":8e-9}}"#).unwrap();
        let soft = parse(r#"{"scenario":"power_gate_wake","params":{"t_stop":8e-9,"soft":true}}"#)
            .unwrap();
        assert_ne!(hard.cache_key(), soft.cache_key());
        assert!(!tran(&soft).circuit.elements().is_empty());
    }

    #[test]
    fn netlist_takes_tran_directive() {
        let deck = "V1 in 0 DC 1.0\nR1 in out 1k\nC1 out 0 2f\n.tran 0.1p 50p\n.end";
        let spec = parse(&format!(
            r#"{{"netlist":{}}}"#,
            Json::Str(deck.into()).to_json()
        ))
        .unwrap();
        assert_eq!(tran(&spec).tstop, 50e-12);
        assert_eq!(tran(&spec).options.dtmax, 0.1e-12);
    }

    #[test]
    fn optimize_resolves_with_defaults_and_keys_on_every_parameter() {
        let spec = parse(r#"{"optimize":{}}"#).unwrap();
        assert_eq!(spec.label, "optimize");
        let JobWork::Optimize(work) = &spec.work else {
            panic!("expected optimize work, got {:?}", spec.work);
        };
        assert_eq!(work.algorithm, Algorithm::Evolution);
        assert_eq!(work.generations, 12);
        assert_eq!(work.population, 8);
        assert_eq!(work.vdd, 1.0);

        // Spelling out a default == omitting it.
        let explicit = parse(
            r#"{"optimize":{"algorithm":"evolution","generations":12,
                "population":8,"vdd":1.0}}"#,
        )
        .unwrap();
        assert_eq!(spec.cache_key(), explicit.cache_key());

        // Every parameter — and, unlike transient jobs, the retry
        // budget — splits the key.
        for other in [
            r#"{"optimize":{"algorithm":"coordinate"}}"#,
            r#"{"optimize":{"seed":99}}"#,
            r#"{"optimize":{"generations":6}}"#,
            r#"{"optimize":{"population":4}}"#,
            r#"{"optimize":{"vdd":0.9}}"#,
            r#"{"optimize":{},"retries":3}"#,
        ] {
            assert_ne!(
                spec.cache_key(),
                parse(other).unwrap().cache_key(),
                "{other} must split the cache"
            );
        }
    }

    #[test]
    fn optimize_rejects_bad_parameters_with_named_errors() {
        for body in [
            r#"{"optimize":{"algorithm":"annealing"}}"#,
            r#"{"optimize":{"algorithm":7}}"#,
            r#"{"optimize":{"generations":0}}"#,
            r#"{"optimize":{"generations":1000}}"#,
            r#"{"optimize":{"population":1}}"#,
            r#"{"optimize":{"seed":-1}}"#,
            r#"{"optimize":{"vdd":50.0}}"#,
            r#"{"optimize":{"vdd":"high"}}"#,
            r#"{"optimize":{"bogus":1}}"#,
            r#"{"optimize":7}"#,
            // Transient-only fields and other job sources don't mix in.
            r#"{"optimize":{},"options":{"reltol":1e-6}}"#,
            r#"{"optimize":{},"checkpoint_every":5}"#,
            r#"{"optimize":{},"params":{"r":1.0}}"#,
            r#"{"optimize":{},"scenario":"rc_step"}"#,
            r#"{"optimize":{},"netlist":"x"}"#,
        ] {
            let err = parse(body).unwrap_err();
            assert_eq!(err.code, "invalid_request", "{body} -> {}", err.message);
            assert_eq!(err.status, 400, "{body}");
        }
    }

    #[test]
    fn impossible_tran_windows_are_rejected_at_submit() {
        // Pre-fix these parsed fine and failed later inside the engine,
        // wasting a queue slot and a sim attempt on an impossible job.
        for deck in [
            "V1 in 0 DC 1\nR1 in 0 1k\n.tran 1p -2n\n.end",
            "V1 in 0 DC 1\nR1 in 0 1k\n.tran 1p 0\n.end",
        ] {
            let body = format!(r#"{{"netlist":{}}}"#, Json::Str(deck.into()).to_json());
            let err = parse(&body).unwrap_err();
            assert_eq!(err.code, "netlist_error", "{deck}");
            assert_eq!(err.status, 400);
        }
    }

    #[test]
    fn nonfinite_netlist_values_are_rejected_at_submit() {
        // "1e999" saturates to +inf in `f64::from_str`; an infinite
        // source value can only poison the solve. `parse_eng` names it.
        let deck = "V1 in 0 DC 1e999\nR1 in 0 1k\n.tran 1p 2n\n.end";
        let body = format!(r#"{{"netlist":{}}}"#, Json::Str(deck.into()).to_json());
        let err = parse(&body).unwrap_err();
        assert_eq!(err.code, "netlist_error");
        assert!(err.message.contains("non-finite"), "{}", err.message);
    }

    #[test]
    fn bad_requests_get_named_errors() {
        assert_eq!(parse(r#"{}"#).unwrap_err().code, "invalid_request");
        assert_eq!(
            parse(r#"{"scenario":"nope"}"#).unwrap_err().code,
            "unknown_scenario"
        );
        assert_eq!(
            parse(r#"{"netlist":"R1 a b 1k\n.end"}"#).unwrap_err().code,
            "netlist_error"
        );
        assert_eq!(
            parse(r#"{"netlist":"garbage card\n.tran 1p 2p"}"#)
                .unwrap_err()
                .code,
            "netlist_error"
        );
        assert_eq!(
            parse(r#"{"scenario":"rc_step","params":{"r":-5.0}}"#)
                .unwrap_err()
                .code,
            "invalid_request"
        );
        assert_eq!(
            parse(r#"{"scenario":"rc_step","params":{"bogus":1}}"#)
                .unwrap_err()
                .code,
            "invalid_request"
        );
        assert_eq!(
            parse(r#"{"scenario":"rc_step","options":{"dtmax":-1.0}}"#)
                .unwrap_err()
                .code,
            "invalid_options"
        );
        assert_eq!(
            parse(r#"{"scenario":"rc_step","retries":99}"#)
                .unwrap_err()
                .code,
            "invalid_request"
        );
        assert_eq!(
            parse(r#"{"scenario":"rc_step","netlist":"x"}"#)
                .unwrap_err()
                .code,
            "invalid_request"
        );
    }
}
