//! Content-addressed on-disk result store.
//!
//! One file per distinct simulation: `<dir>/<cache-key>.json`, holding
//! the encoded result document exactly as `GET /v1/jobs/{id}/result`
//! serves it. Writes go through a sibling `.tmp` and an atomic rename —
//! the same torn-write discipline as the SFCK checkpoints — so a crash
//! mid-write never leaves a corrupt entry, and concurrent writers of the
//! same key are harmless (both write identical bytes; the last rename
//! wins).
//!
//! The store is the *single* source of result bytes: even the job that
//! just ran a simulation serves its result by reading its own store
//! entry back, so a cache hit and a fresh run are byte-identical by
//! construction.

use std::path::{Path, PathBuf};

/// On-disk result store rooted at one directory.
///
/// # Example
///
/// ```no_run
/// use sfet_serve::store::ResultStore;
///
/// let store = ResultStore::open("/tmp/sfet-results")?;
/// store.put("0123456789abcdef-fedcba9876543210", "{\"result\":\"tran.v1\"}")?;
/// assert!(store.contains("0123456789abcdef-fedcba9876543210"));
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// The directory-creation failure, if any.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key` (hex cache key; see
    /// [`crate::spec::JobSpec::cache_key`]).
    pub fn path_for(&self, key: &str) -> PathBuf {
        debug_assert!(
            key.bytes().all(|b| b.is_ascii_hexdigit() || b == b'-'),
            "cache keys are hex"
        );
        self.dir.join(format!("{key}.json"))
    }

    /// Scratch path for per-job checkpoints (retries resume from here);
    /// cleaned up by the scheduler once the job finishes.
    pub fn checkpoint_path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.ckpt"))
    }

    /// `true` when a result for `key` is stored.
    pub fn contains(&self, key: &str) -> bool {
        self.path_for(key).exists()
    }

    /// Reads the stored result document for `key`.
    ///
    /// # Errors
    ///
    /// The underlying I/O error (`NotFound` when the key is absent).
    pub fn get(&self, key: &str) -> std::io::Result<String> {
        std::fs::read_to_string(self.path_for(key))
    }

    /// Stores `document` under `key` atomically (tmp + rename).
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn put(&self, key: &str, document: &str) -> std::io::Result<()> {
        let path = self.path_for(key);
        let mut tmp_os = path.as_os_str().to_os_string();
        tmp_os.push(".tmp");
        let tmp = PathBuf::from(tmp_os);
        std::fs::write(&tmp, document)?;
        std::fs::rename(&tmp, &path)
    }

    /// Number of stored entries (diagnostic; walks the directory).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().map(|x| x == "json").unwrap_or(false))
                    .count()
            })
            .unwrap_or(0)
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("sfet-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let store = tmp_store("roundtrip");
        let key = "00aa-11bb";
        assert!(!store.contains(key));
        store.put(key, "{\"x\":1}").unwrap();
        assert!(store.contains(key));
        assert_eq!(store.get(key).unwrap(), "{\"x\":1}");
        assert_eq!(store.len(), 1);
        // Overwrite is atomic and last-wins.
        store.put(key, "{\"x\":2}").unwrap();
        assert_eq!(store.get(key).unwrap(), "{\"x\":2}");
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_key_is_not_found() {
        let store = tmp_store("missing");
        assert_eq!(
            store.get("dead-beef").unwrap_err().kind(),
            std::io::ErrorKind::NotFound
        );
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn tmp_files_do_not_count_as_entries() {
        let store = tmp_store("tmpfiles");
        std::fs::write(store.dir().join("abc.json.tmp"), "partial").unwrap();
        assert_eq!(store.len(), 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
