//! `sfet-serve`: simulation-as-a-service for the Soft-FET repro.
//!
//! A dependency-free (std-only, thread-per-connection) HTTP/1.1 job
//! server in front of the `sfet-sim` execution engine:
//!
//! * **Wire format** ([`protocol`]): versioned hand-written JSON — jobs
//!   name a built-in scenario or carry a SPICE-like netlist, plus an
//!   optional `SimOptions` patch and execution policy.
//! * **Scheduling** ([`scheduler`]): a bounded queue and a worker pool
//!   with per-job retries (escalating solver options) and checkpoint
//!   resume; backpressure is HTTP 429 + `Retry-After`, shutdown drains
//!   in-flight jobs.
//! * **Progress** ([`progress`]): a `TelemetrySink` adapter fans the
//!   engine's counters and spans out to Server-Sent Events on
//!   `GET /v1/jobs/{id}/events`.
//! * **Dedup** ([`store`], [`spec`]): results are content-addressed by
//!   (circuit fingerprint, canonicalised options); duplicate submissions
//!   are cache hits served from disk without re-simulation, and a served
//!   result is bitwise-identical to the direct library call.
//!
//! The full API reference lives in `docs/SERVE.md`; the architecture
//! overview in `docs/ARCHITECTURE.md`.
//!
//! # Quickstart
//!
//! ```no_run
//! use sfet_serve::{Client, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let server = Arc::new(Server::bind(
//!     "127.0.0.1:0",
//!     ServeConfig::new("/tmp/sfet-results").with_workers(4),
//! )?);
//! let handle = server.spawn();
//!
//! let client = Client::new(server.addr());
//! let result = client.run_to_result(r#"{"scenario":"power_gate_wake"}"#)?;
//! assert!(result.contains("\"result\":\"tran.v1\""));
//!
//! client.shutdown()?;
//! handle.join().unwrap();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod progress;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod spec;
pub mod store;

pub use client::{Client, HttpResponse};
pub use error::ApiError;
pub use protocol::{
    encode_optimize_result, encode_tran_result, API_VERSION, OPTIMIZE_RESULT_VERSION,
    RESULT_VERSION,
};
pub use scheduler::{JobState, Scheduler, ServeConfig, SubmitReceipt};
pub use server::{Server, ENDPOINTS};
pub use spec::{JobSpec, JobWork, OptimizeWork, TranWork, SCENARIOS};
pub use store::ResultStore;
