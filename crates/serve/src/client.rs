//! A minimal blocking client for the job API, used by the loopback
//! tests, the `bench_serve` harness, and scripts that want the server
//! without hand-writing HTTP.
//!
//! One `TcpStream` per request (the server is `Connection: close`), so a
//! `Client` is just an address and is freely cloneable across threads.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use crate::error::ApiError;
use crate::json::Json;

/// A parsed HTTP response: status code, `Retry-After` (when present),
/// body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` header value, seconds, when the server sent one.
    pub retry_after: Option<u64>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// The parse error text for non-JSON bodies.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body)
    }

    /// Converts an error response back into the [`ApiError`] shape the
    /// server raised (status + code + message).
    pub fn as_api_error(&self) -> Option<ApiError> {
        let (code, message) = crate::error::parse_error_body(&self.body)?;
        // Leak-free static lookup: match the known codes back to their
        // `&'static str` spellings.
        let code: &'static str = match code.as_str() {
            "invalid_json" => "invalid_json",
            "invalid_request" => "invalid_request",
            "unknown_scenario" => "unknown_scenario",
            "netlist_error" => "netlist_error",
            "invalid_options" => "invalid_options",
            "not_found" => "not_found",
            "method_not_allowed" => "method_not_allowed",
            "job_not_done" => "job_not_done",
            "job_failed" => "job_failed",
            "payload_too_large" => "payload_too_large",
            "queue_full" => "queue_full",
            "shutting_down" => "shutting_down",
            "store_error" => "store_error",
            "io_error" => "io_error",
            _ => "unknown",
        };
        Some(ApiError::new(self.status, code, message))
    }
}

/// Blocking client for one server address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr }
    }

    /// `POST /v1/jobs` with a raw JSON body.
    ///
    /// # Errors
    ///
    /// Transport failures only — HTTP-level errors come back as the
    /// response's status/body.
    pub fn submit_raw(&self, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", "/v1/jobs", Some(body))
    }

    /// `GET /v1/jobs/{id}`.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn status(&self, job_id: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", &format!("/v1/jobs/{job_id}"), None)
    }

    /// `GET /v1/jobs/{id}/result`.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn result(&self, job_id: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", &format!("/v1/jobs/{job_id}/result"), None)
    }

    /// `GET /v1/healthz`.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn health(&self) -> std::io::Result<HttpResponse> {
        self.request("GET", "/v1/healthz", None)
    }

    /// `POST /v1/shutdown` (graceful drain).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&self) -> std::io::Result<HttpResponse> {
        self.request("POST", "/v1/shutdown", None)
    }

    /// `GET /v1/jobs/{id}/events`: reads the SSE stream to its end and
    /// returns every `(event, data)` pair in order. Blocks until the
    /// job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-SSE response (e.g. a 404 for an
    /// unknown job) surfaced as `InvalidData` with the body text.
    pub fn follow_events(&self, job_id: &str) -> std::io::Result<Vec<(String, String)>> {
        let mut stream = TcpStream::connect(self.addr)?;
        write!(
            stream,
            "GET /v1/jobs/{job_id}/events HTTP/1.1\r\nHost: sfet\r\n\
             Accept: text/event-stream\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);

        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let is_sse = {
            let mut content_type = String::new();
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-type") {
                        content_type = value.trim().to_owned();
                    }
                }
            }
            content_type.starts_with("text/event-stream")
        };
        if !is_sse {
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, body));
        }

        let mut events = Vec::new();
        let mut pending_event = String::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Ok(events);
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if let Some(name) = line.strip_prefix("event: ") {
                pending_event = name.to_owned();
            } else if let Some(data) = line.strip_prefix("data: ") {
                events.push((std::mem::take(&mut pending_event), data.to_owned()));
            }
        }
    }

    /// Submits, waits for the terminal SSE event, and fetches the
    /// result document — the whole happy path in one call.
    ///
    /// # Errors
    ///
    /// Transport failures, a rejected submission, or a failed job, all
    /// as `InvalidData` errors carrying the server's message.
    pub fn run_to_result(&self, body: &str) -> std::io::Result<String> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let submitted = self.submit_raw(body)?;
        if submitted.status >= 400 {
            return Err(bad(submitted.body));
        }
        let response = submitted.json().map_err(bad)?;
        let job_id = response
            .get("job_id")
            .and_then(|j| j.as_str())
            .ok_or_else(|| bad("submit response missing job_id".into()))?
            .to_owned();
        let events = self.follow_events(&job_id)?;
        if let Some((name, data)) = events.last() {
            if name == "failed" {
                return Err(bad(format!("job failed: {data}")));
            }
        }
        let result = self.result(&job_id)?;
        if result.status != 200 {
            return Err(bad(result.body));
        }
        Ok(result.body)
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let mut stream = TcpStream::connect(self.addr)?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: sfet\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
        stream.flush()?;
        read_response(stream)
    }
}

/// Parses a fixed-length (or to-EOF) HTTP response off `stream`.
fn read_response(stream: TcpStream) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.parse().ok(),
                "retry-after" => retry_after = value.parse().ok(),
                _ => {}
            }
        }
    }

    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| bad("non-UTF-8 response body"))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(HttpResponse {
        status,
        retry_after,
        body,
    })
}
