//! The versioned JSON wire format: request parsing, options
//! canonicalisation, and deterministic result encoding.
//!
//! Everything here is a pure function of its inputs; the HTTP layer
//! (`server`) does transport, the scheduler does execution, and this
//! module defines *what the bytes mean*. The full schema narrative lives
//! in `docs/SERVE.md`.

use sfet_numeric::integrate::Method;
use sfet_optimize::{pareto_frontier, DesignSpace, OptimizeOutcome};
use sfet_sim::{SimOptions, TranResult};

use crate::error::ApiError;
use crate::json::build::{obj, u};
use crate::json::{fmt_f64, Json};
use crate::spec::OptimizeWork;

/// API version; the path prefix of every route (`/v1/...`). Bumped on
/// any incompatible change to a request or response shape.
pub const API_VERSION: &str = "v1";

/// Version tag of the encoded transient result document (`"result"` field).
pub const RESULT_VERSION: &str = "tran.v1";

/// Version tag of the encoded optimize result document.
pub const OPTIMIZE_RESULT_VERSION: &str = "optimize.v1";

/// Client-supplied subset of [`SimOptions`] accepted on job submission.
///
/// Every field is optional; unset fields take the job type's defaults
/// (see `docs/SERVE.md#options`). The *resolved* options — after
/// defaults are applied — are what the cache key canonicalises, so a
/// request that spells out a default and one that omits it dedup onto
/// the same stored result.
///
/// # Example
///
/// ```
/// use sfet_serve::protocol::OptionsPatch;
/// use sfet_serve::json::Json;
///
/// let body = Json::parse(r#"{"reltol":1e-5,"method":"be"}"#).unwrap();
/// let patch = OptionsPatch::from_json(Some(&body)).unwrap();
/// assert_eq!(patch.reltol, Some(1e-5));
/// let opts = patch.apply(sfet_sim::SimOptions::default()).unwrap();
/// assert_eq!(opts.reltol, 1e-5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptionsPatch {
    /// Relative convergence tolerance (`reltol`).
    pub reltol: Option<f64>,
    /// Absolute voltage tolerance \[V\] (`vntol`).
    pub vntol: Option<f64>,
    /// Absolute current tolerance \[A\] (`abstol`).
    pub abstol: Option<f64>,
    /// Maximum time step \[s\] (`dtmax`).
    pub dtmax: Option<f64>,
    /// Integration method: `"be"`, `"trap"`, or `"gear2"`.
    pub method: Option<Method>,
    /// Hard cap on attempted steps (`max_steps`).
    pub max_steps: Option<usize>,
    /// Nonlinear-device shunt conductance \[S\] (`gmin`).
    pub gmin: Option<f64>,
}

impl OptionsPatch {
    /// Parses the `"options"` object of a submit request. `None` (field
    /// absent) yields the empty patch.
    ///
    /// # Errors
    ///
    /// [`ApiError::invalid_options`] naming the offending field.
    pub fn from_json(value: Option<&Json>) -> Result<OptionsPatch, ApiError> {
        let mut patch = OptionsPatch::default();
        let Some(value) = value else {
            return Ok(patch);
        };
        let Json::Obj(pairs) = value else {
            return Err(ApiError::invalid_options("\"options\" must be an object"));
        };
        for (key, v) in pairs {
            match key.as_str() {
                "reltol" => patch.reltol = Some(num_field(v, key)?),
                "vntol" => patch.vntol = Some(num_field(v, key)?),
                "abstol" => patch.abstol = Some(num_field(v, key)?),
                "dtmax" => patch.dtmax = Some(num_field(v, key)?),
                "gmin" => patch.gmin = Some(num_field(v, key)?),
                "max_steps" => {
                    let n = num_field(v, key)?;
                    if n < 1.0 || n.fract() != 0.0 || n > 1e15 {
                        return Err(ApiError::invalid_options(
                            "max_steps must be a positive integer",
                        ));
                    }
                    patch.max_steps = Some(n as usize);
                }
                "method" => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| ApiError::invalid_options("method must be a string"))?;
                    patch.method = Some(parse_method(name)?);
                }
                other => {
                    return Err(ApiError::invalid_options(format!(
                        "unknown option {other:?} (accepted: reltol, vntol, abstol, \
                         dtmax, method, max_steps, gmin)"
                    )));
                }
            }
        }
        Ok(patch)
    }

    /// Applies the patch over `base` and validates the result.
    ///
    /// # Errors
    ///
    /// [`ApiError::invalid_options`] with the violated constraint.
    pub fn apply(&self, mut base: SimOptions) -> Result<SimOptions, ApiError> {
        if let Some(v) = self.reltol {
            base.reltol = v;
        }
        if let Some(v) = self.vntol {
            base.vntol = v;
        }
        if let Some(v) = self.abstol {
            base.abstol = v;
        }
        if let Some(v) = self.dtmax {
            base.dtmax = v;
        }
        if let Some(v) = self.method {
            base.method = v;
        }
        if let Some(v) = self.max_steps {
            base.max_steps = v;
        }
        if let Some(v) = self.gmin {
            base.gmin = v;
        }
        base.validate().map_err(ApiError::invalid_options)?;
        Ok(base)
    }
}

fn num_field(v: &Json, key: &str) -> Result<f64, ApiError> {
    v.as_f64()
        .ok_or_else(|| ApiError::invalid_options(format!("{key} must be a number")))
}

/// Parses a wire method name (`"be"` / `"trap"` / `"gear2"`).
///
/// # Errors
///
/// [`ApiError::invalid_options`] for anything else.
pub fn parse_method(name: &str) -> Result<Method, ApiError> {
    match name {
        "be" => Ok(Method::BackwardEuler),
        "trap" => Ok(Method::Trapezoidal),
        "gear2" => Ok(Method::Gear2),
        other => Err(ApiError::invalid_options(format!(
            "unknown method {other:?} (accepted: be, trap, gear2)"
        ))),
    }
}

/// The wire name of an integration method (inverse of [`parse_method`]).
pub fn method_name(method: Method) -> &'static str {
    match method {
        Method::BackwardEuler => "be",
        Method::Trapezoidal => "trap",
        Method::Gear2 => "gear2",
    }
}

/// Canonical string of *resolved* simulation options — the
/// cache-key half that captures element values and tolerances the
/// circuit-shape fingerprint cannot see. Fixed field order, every field
/// present, floats in shortest round-trip form: two option sets
/// canonicalise identically iff every covered field is bitwise equal.
///
/// Execution policy (retries, checkpoint cadence, telemetry) is
/// deliberately *not* covered: it cannot change the result, so it must
/// not split the cache.
pub fn canonical_options(opts: &SimOptions, tstop: f64, extra: &str) -> String {
    format!(
        "reltol={};vntol={};abstol={};dtmax={};method={};max_steps={};gmin={};\
         dtmin={};max_newton_iter={};tstop={};extra={extra}",
        fmt_f64(opts.reltol),
        fmt_f64(opts.vntol),
        fmt_f64(opts.abstol),
        fmt_f64(opts.dtmax),
        method_name(opts.method),
        opts.max_steps,
        fmt_f64(opts.gmin),
        fmt_f64(opts.dtmin),
        opts.max_newton_iter,
        fmt_f64(tstop),
    )
}

/// Encodes a [`TranResult`] as the versioned, **deterministic** result
/// document served by `GET /v1/jobs/{id}/result`.
///
/// Determinism contract: signal names are emitted sorted, every float
/// uses the shortest round-trippable form, and the only non-deterministic
/// engine statistic (`solve_time_ns`) is excluded — so two bitwise-equal
/// simulations encode to byte-identical documents. The loopback
/// integration suite pins served bytes against a direct library call
/// through this same function.
pub fn encode_tran_result(result: &TranResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"result\":\"");
    out.push_str(RESULT_VERSION);
    out.push_str("\",\"times\":");
    write_f64_array(&mut out, result.times());

    out.push_str(",\"nodes\":{");
    let mut nodes: Vec<&str> = result.node_names().collect();
    nodes.sort_unstable();
    for (i, name) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(&mut out, name);
        let samples = result
            .node_samples(name)
            .expect("name came from node_names");
        write_f64_array(&mut out, samples);
    }

    out.push_str("},\"branches\":{");
    let mut branches: Vec<&str> = result.branch_names().collect();
    branches.sort_unstable();
    for (i, name) in branches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(&mut out, name);
        let wave = result
            .branch_current(name)
            .expect("name came from branch_names");
        write_f64_array(&mut out, wave.values());
    }

    out.push_str("},\"ptm\":{");
    let mut ptms: Vec<&str> = result.ptm_names().collect();
    ptms.sort_unstable();
    for (i, name) in ptms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(&mut out, name);
        let events = result.ptm_events(name).expect("name came from ptm_names");
        let resistance = result
            .ptm_resistance(name)
            .expect("name came from ptm_names");
        out.push_str("{\"resistance\":");
        write_f64_array(&mut out, resistance.values());
        out.push_str(",\"events\":[");
        for (j, ev) in events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"time\":");
            out.push_str(&fmt_f64(ev.time));
            out.push_str(",\"to\":\"");
            out.push_str(if ev.is_imt() {
                "metallic"
            } else {
                "insulating"
            });
            out.push_str("\"}");
        }
        out.push_str("]}");
    }

    let st = result.stats();
    out.push_str("},\"stats\":");
    let stats = obj(vec![
        ("steps_attempted", u(st.steps_attempted as u64)),
        ("steps_accepted", u(st.steps_accepted as u64)),
        ("steps_rejected", u(st.steps_rejected as u64)),
        ("newton_iterations", u(st.newton_iterations as u64)),
        ("ptm_transitions", u(st.ptm_transitions as u64)),
        (
            "solver",
            obj(vec![
                ("full_factorizations", u(st.solver.full_factorizations)),
                ("refactorizations", u(st.solver.refactorizations)),
                ("solves", u(st.solver.solves)),
                ("pattern_rebuilds", u(st.solver.pattern_rebuilds)),
                ("pivot_fallbacks", u(st.solver.pivot_fallbacks)),
                ("factor_nnz", u(st.solver.factor_nnz as u64)),
                ("gmres_iters", u(st.solver.gmres_iterations)),
                ("gmres_restarts", u(st.solver.gmres_restarts)),
                ("gmres_fallbacks", u(st.solver.gmres_fallbacks)),
            ]),
        ),
    ]);
    out.push_str(&stats.to_json());
    out.push('}');
    out
}

/// Encodes an [`OptimizeOutcome`] as the versioned, **deterministic**
/// result document served for `optimize` jobs.
///
/// Determinism contract: the optimizer itself is bitwise reproducible
/// across thread/batch configuration (pinned by `sfet-optimize`'s
/// determinism suite), every float here uses the shortest round-trippable
/// form, and nothing time- or environment-dependent is included — so two
/// submissions with the same parameters dedup onto byte-identical
/// documents.
pub fn encode_optimize_result(work: &OptimizeWork, outcome: &OptimizeOutcome) -> String {
    let space = DesignSpace::soft_fet_standard();
    let axes: Vec<&str> = space.axes().iter().map(|a| a.name).collect();
    let (_, ref_eval) = &outcome.reference;
    let best = &outcome.best;
    let frontier = pareto_frontier(&outcome.evaluated);

    let mut out = String::with_capacity(4096);
    out.push_str("{\"result\":\"");
    out.push_str(OPTIMIZE_RESULT_VERSION);
    out.push_str("\",\"algorithm\":\"");
    out.push_str(outcome.algorithm);
    out.push_str("\",\"seed\":");
    out.push_str(&work.seed.to_string());
    out.push_str(",\"generations\":");
    out.push_str(&outcome.history.len().to_string());
    out.push_str(",\"population\":");
    out.push_str(&work.population.to_string());
    out.push_str(",\"vdd\":");
    out.push_str(&fmt_f64(work.vdd));
    out.push_str(",\"axes\":[");
    for (i, name) in axes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&Json::Str((*name).to_owned()).to_json());
    }
    out.push_str("],\"baseline\":{\"droop_mv\":");
    out.push_str(&fmt_f64(outcome.baseline.droop_mv));
    out.push_str("},\"reference\":{\"droop_reduction_pct\":");
    out.push_str(&fmt_f64(ref_eval.droop_reduction_pct));
    out.push_str(",\"delay\":");
    out.push_str(&fmt_f64(ref_eval.delay));
    out.push_str(",\"area_ratio\":");
    out.push_str(&fmt_f64(ref_eval.area_ratio));
    out.push_str("},\"best\":");
    write_point(&mut out, best);
    out.push_str(",\"beats_reference\":");
    out.push_str(
        if best.eval.feasible && best.eval.droop_reduction_pct >= ref_eval.droop_reduction_pct {
            "true"
        } else {
            "false"
        },
    );
    out.push_str(",\"frontier\":[");
    for (i, point) in frontier.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_point(&mut out, point);
    }
    out.push_str("],\"history\":[");
    for (i, g) in outcome.history.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let row = obj(vec![
            ("generation", u(g.generation as u64)),
            ("candidates", u(g.candidates as u64)),
            ("lanes", u(g.lanes as u64)),
            ("failed_lanes", u(g.failed_lanes as u64)),
            ("infeasible", u(g.infeasible as u64)),
            ("best_objective", Json::Num(g.best_objective)),
            ("best_reduction_pct", Json::Num(g.best_reduction_pct)),
            ("improved", Json::Bool(g.improved)),
        ]);
        out.push_str(&row.to_json());
    }
    out.push_str("]}");
    out
}

/// One evaluated candidate in the optimize result document.
fn write_point(out: &mut String, point: &sfet_optimize::EvaluatedPoint) {
    out.push_str("{\"generation\":");
    out.push_str(&point.generation.to_string());
    out.push_str(",\"candidate\":");
    out.push_str(&point.candidate.to_string());
    out.push_str(",\"values\":");
    write_f64_array(out, &point.values);
    out.push_str(",\"objective\":");
    out.push_str(&fmt_f64(point.eval.objective));
    out.push_str(",\"droop_mv\":");
    out.push_str(&fmt_f64(point.eval.droop_mv));
    out.push_str(",\"droop_reduction_pct\":");
    out.push_str(&fmt_f64(point.eval.droop_reduction_pct));
    out.push_str(",\"delay\":");
    out.push_str(&fmt_f64(point.eval.delay));
    out.push_str(",\"delay_penalty_pct\":");
    out.push_str(&fmt_f64(point.eval.delay_penalty_pct));
    out.push_str(",\"area_ratio\":");
    out.push_str(&fmt_f64(point.eval.area_ratio));
    out.push_str(",\"feasible\":");
    out.push_str(if point.eval.feasible { "true" } else { "false" });
    out.push('}');
}

fn write_key(out: &mut String, name: &str) {
    // Signal names come from the circuit builder, which rejects exotic
    // characters, but escape anyway: the encoder must never emit invalid
    // JSON.
    out.push_str(&Json::Str(name.to_owned()).to_json());
    out.push(':');
}

fn write_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(v));
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfet_circuit::{Circuit, SourceWaveform};
    use sfet_sim::transient;

    fn rc_result() -> TranResult {
        let mut ckt = Circuit::new();
        let (inp, out, gnd) = (ckt.node("in"), ckt.node("out"), Circuit::ground());
        ckt.add_voltage_source("V1", inp, gnd, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-12))
            .unwrap();
        ckt.add_resistor("R1", inp, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-15).unwrap();
        transient(&ckt, 5e-12, &SimOptions::default()).unwrap()
    }

    #[test]
    fn encoding_is_deterministic_and_parses() {
        let r = rc_result();
        let a = encode_tran_result(&r);
        let b = encode_tran_result(&r);
        assert_eq!(a, b);
        let v = Json::parse(&a).unwrap();
        assert_eq!(v.get("result").and_then(Json::as_str), Some(RESULT_VERSION));
        let times = v.get("times").and_then(Json::as_arr).unwrap();
        assert_eq!(times.len(), r.times().len());
        // Samples round-trip bitwise through the JSON text.
        let out = v
            .get("nodes")
            .and_then(|n| n.get("out"))
            .and_then(Json::as_arr)
            .unwrap();
        let direct = r.node_samples("out").unwrap();
        for (enc, raw) in out.iter().zip(direct) {
            assert_eq!(enc.as_f64().unwrap().to_bits(), raw.to_bits());
        }
        assert!(v
            .get("stats")
            .and_then(|s| s.get("steps_accepted"))
            .is_some());
    }

    #[test]
    fn options_patch_parses_applies_and_rejects() {
        let body = Json::parse(r#"{"dtmax":1e-13,"method":"gear2","max_steps":500}"#).unwrap();
        let patch = OptionsPatch::from_json(Some(&body)).unwrap();
        let opts = patch.apply(SimOptions::default()).unwrap();
        assert_eq!(opts.dtmax, 1e-13);
        assert_eq!(opts.method, Method::Gear2);
        assert_eq!(opts.max_steps, 500);

        let bad = Json::parse(r#"{"reltol":5.0}"#).unwrap();
        let patch = OptionsPatch::from_json(Some(&bad)).unwrap();
        assert_eq!(
            patch.apply(SimOptions::default()).unwrap_err().code,
            "invalid_options"
        );
        let unknown = Json::parse(r#"{"frobnicate":1}"#).unwrap();
        assert!(OptionsPatch::from_json(Some(&unknown)).is_err());
        let badmethod = Json::parse(r#"{"method":"rk4"}"#).unwrap();
        assert!(OptionsPatch::from_json(Some(&badmethod)).is_err());
    }

    #[test]
    fn canonical_options_separates_only_result_relevant_fields() {
        let base = SimOptions::default();
        let a = canonical_options(&base, 1e-9, "");
        assert_eq!(a, canonical_options(&base.clone(), 1e-9, ""));
        // Telemetry attachment must not split the cache.
        let with_tel = base.clone().with_telemetry(sfet_telemetry::Telemetry::new(
            sfet_telemetry::SharedAggregator::new(),
        ));
        assert_eq!(a, canonical_options(&with_tel, 1e-9, ""));
        // tstop and dtmax do.
        assert_ne!(a, canonical_options(&base, 2e-9, ""));
        assert_ne!(
            a,
            canonical_options(&base.clone().with_dtmax(1e-13), 1e-9, "")
        );
        assert_ne!(a, canonical_options(&base, 1e-9, "soft=true"));
    }

    #[test]
    fn method_names_round_trip() {
        for m in [Method::BackwardEuler, Method::Trapezoidal, Method::Gear2] {
            assert_eq!(parse_method(method_name(m)).unwrap(), m);
        }
    }
}
