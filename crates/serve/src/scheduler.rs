//! Job scheduling: a bounded queue, a worker-thread pool driving the
//! `sfet-sim` exec engine, per-job retries with checkpoint resume, and
//! the dedup paths (store hit, in-flight coalescing).
//!
//! Concurrency model: one registry of `Arc<Job>`s, one bounded
//! `VecDeque` feeding `workers` plain `std::thread` workers through a
//! condvar. Submissions holding the pending-key lock see either a
//! stored result (hit) or an in-flight job with the same key (coalesce)
//! — a worker publishes to the store *before* retiring its pending key,
//! so the window where an identical job could slip into a duplicate run
//! is closed. Graceful shutdown stops intake (503), drains the queue
//! *and* in-flight jobs to completion, then joins the pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sfet_numeric::exec::ExecConfig;
use sfet_optimize::{GenerationSummary, StandardRun};
use sfet_sim::{transient_resumable, CheckpointPolicy, SimOptions};
use sfet_telemetry::{names, Telemetry};

use crate::error::ApiError;
use crate::json::build::{b, n, obj, s, u};
use crate::json::Json;
use crate::progress::{EventHub, HubSink};
use crate::protocol::{encode_optimize_result, encode_tran_result};
use crate::spec::{JobSpec, JobWork, OptimizeWork, TranWork};
use crate::store::ResultStore;

/// Scheduler configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads running simulations.
    pub workers: usize,
    /// Bounded queue depth; a submission past it gets HTTP 429.
    pub queue_capacity: usize,
    /// Result-store directory.
    pub store_dir: std::path::PathBuf,
    /// Server-side telemetry handle for the `serve.*` counters
    /// (disabled by default; the in-process stats in
    /// [`Scheduler::stats`] are always maintained).
    pub telemetry: Telemetry,
}

impl ServeConfig {
    /// A config with `store_dir` and the defaults: 2 workers, queue
    /// capacity 64, telemetry disabled.
    pub fn new(store_dir: impl Into<std::path::PathBuf>) -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            store_dir: store_dir.into(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Builder-style worker-count override (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style queue-capacity override (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builder-style telemetry attachment.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ServeConfig {
        self.telemetry = telemetry;
        self
    }
}

/// Lifecycle state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// On a worker; `attempt` is 0-based.
    Running {
        /// Current attempt number (0 = first try).
        attempt: usize,
    },
    /// Finished; the result document is in the store.
    Done {
        /// `true` when the submission was answered from the store
        /// without running a simulation.
        cached: bool,
    },
    /// Exhausted its retry budget.
    Failed {
        /// Final simulation error, verbatim.
        error: String,
    },
}

impl JobState {
    /// Wire name of the state (`queued` / `running` / `done` / `failed`).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
        }
    }
}

/// One submitted job.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id (the wire form is `j-<id>`).
    pub id: u64,
    /// Content-addressed cache key (see [`JobSpec::cache_key`]).
    pub key: String,
    /// The resolved specification.
    pub spec: JobSpec,
    state: Mutex<JobState>,
    /// SSE event log.
    pub hub: Arc<EventHub>,
}

impl Job {
    /// Current lifecycle state (cloned snapshot).
    pub fn state(&self) -> JobState {
        self.state.lock().expect("job lock").clone()
    }

    fn set_state(&self, new: JobState) {
        *self.state.lock().expect("job lock") = new;
    }

    /// The status document served by `GET /v1/jobs/{id}`.
    pub fn status_json(&self) -> Json {
        let state = self.state();
        let mut pairs = vec![
            ("job_id", s(format!("j-{}", self.id))),
            ("state", s(state.name())),
            ("label", s(&self.spec.label)),
            ("cache_key", s(&self.key)),
        ];
        match &state {
            JobState::Running { attempt } => pairs.push(("attempt", u(*attempt as u64))),
            JobState::Done { cached } => pairs.push(("cached", b(*cached))),
            JobState::Failed { error } => pairs.push(("error", s(error))),
            JobState::Queued => {}
        }
        obj(pairs)
    }
}

/// Monotonic in-process counters mirrored by the `serve.*` telemetry
/// names and exposed on `GET /v1/healthz`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Jobs accepted (hits + coalesced + enqueued).
    pub submitted: AtomicU64,
    /// Submissions answered from the result store.
    pub cache_hits: AtomicU64,
    /// Submissions that needed a simulation (enqueued or coalesced).
    pub cache_misses: AtomicU64,
    /// Submissions coalesced onto an in-flight job.
    pub coalesced: AtomicU64,
    /// Jobs that completed a simulation.
    pub completed: AtomicU64,
    /// Jobs that failed terminally.
    pub failed: AtomicU64,
    /// Retry attempts consumed.
    pub retried: AtomicU64,
    /// Submissions rejected with 429.
    pub rejected: AtomicU64,
    /// Transient executions started (first attempts + retries).
    pub sim_attempts: AtomicU64,
}

struct Pool {
    queue: VecDeque<Arc<Job>>,
    in_flight: usize,
}

struct Shared {
    cfg: ServeConfig,
    store: ResultStore,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    /// cache key → job id of the queued/running run for that key.
    pending: Mutex<HashMap<String, u64>>,
    pool: Mutex<Pool>,
    pool_cv: Condvar,
    next_id: AtomicU64,
    draining: AtomicBool,
    stats: ServeStats,
}

/// What a submission was answered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The job to poll (`j-<id>` on the wire).
    pub job_id: u64,
    /// Job state at submission time.
    pub state: &'static str,
    /// Served from the result store without simulation.
    pub cached: bool,
    /// Coalesced onto an already in-flight identical job.
    pub coalesced: bool,
}

/// The job scheduler: registry + bounded queue + worker pool.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Opens the result store and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// The store-directory creation failure, if any.
    pub fn new(cfg: ServeConfig) -> std::io::Result<Scheduler> {
        let store = ResultStore::open(&cfg.store_dir)?;
        let shared = Arc::new(Shared {
            store,
            jobs: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            pool: Mutex::new(Pool {
                queue: VecDeque::new(),
                in_flight: 0,
            }),
            pool_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            stats: ServeStats::default(),
            cfg,
        });
        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers.max(1) {
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sfet-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }
        Ok(Scheduler {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Submits a parsed request body; the dedup and backpressure entry
    /// point.
    ///
    /// # Errors
    ///
    /// 4xx for malformed requests, 429 [`ApiError::queue_full`] under
    /// backpressure, 503 [`ApiError::shutting_down`] while draining.
    pub fn submit(&self, body: &Json) -> Result<SubmitReceipt, ApiError> {
        let sh = &self.shared;
        if sh.draining.load(Ordering::SeqCst) {
            return Err(ApiError::shutting_down());
        }
        let spec = JobSpec::from_request(body)?;
        let key = spec.cache_key();
        let tel = &sh.cfg.telemetry;
        sh.stats.submitted.fetch_add(1, Ordering::Relaxed);
        tel.counter(names::SERVE_JOBS_SUBMITTED, 1);

        // Hold the pending lock across the store probe: a worker
        // publishes to the store *before* retiring its pending entry, so
        // under this lock every identical in-flight or finished run is
        // visible one way or the other.
        let mut pending = sh.pending.lock().expect("pending lock");
        if sh.store.contains(&key) {
            sh.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            tel.counter(names::SERVE_CACHE_HIT, 1);
            drop(pending);
            let job = self.register(key, spec, JobState::Done { cached: true });
            job.hub.finish(
                "done",
                &obj(vec![("state", s("done")), ("cached", b(true))]).to_json(),
            );
            return Ok(SubmitReceipt {
                job_id: job.id,
                state: "done",
                cached: true,
                coalesced: false,
            });
        }
        sh.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        tel.counter(names::SERVE_CACHE_MISS, 1);

        if let Some(&existing) = pending.get(&key) {
            sh.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            tel.counter(names::SERVE_JOBS_COALESCED, 1);
            let state = self
                .job(existing)
                .map(|j| j.state().name())
                .unwrap_or("queued");
            return Ok(SubmitReceipt {
                job_id: existing,
                state,
                cached: false,
                coalesced: true,
            });
        }

        let mut pool = sh.pool.lock().expect("pool lock");
        if pool.queue.len() >= sh.cfg.queue_capacity {
            sh.stats.rejected.fetch_add(1, Ordering::Relaxed);
            tel.counter(names::SERVE_QUEUE_REJECTED, 1);
            return Err(ApiError::queue_full(sh.cfg.queue_capacity));
        }
        let job = self.register(key.clone(), spec, JobState::Queued);
        job.hub
            .push("status", &obj(vec![("state", s("queued"))]).to_json());
        pending.insert(key, job.id);
        pool.queue.push_back(job.clone());
        drop(pool);
        drop(pending);
        sh.pool_cv.notify_all();
        Ok(SubmitReceipt {
            job_id: job.id,
            state: "queued",
            cached: false,
            coalesced: false,
        })
    }

    fn register(&self, key: String, spec: JobSpec, state: JobState) -> Arc<Job> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            id,
            key,
            spec,
            state: Mutex::new(state),
            hub: EventHub::new(),
        });
        self.shared
            .jobs
            .lock()
            .expect("jobs lock")
            .insert(id, job.clone());
        job
    }

    /// Looks a job up by numeric id.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.shared
            .jobs
            .lock()
            .expect("jobs lock")
            .get(&id)
            .cloned()
    }

    /// Reads a finished job's result document from the store.
    ///
    /// # Errors
    ///
    /// 409 while the job is queued/running or failed; 500-shaped I/O
    /// errors surface as `job_failed` (the entry should exist for every
    /// `Done` job).
    pub fn result_document(&self, job: &Job) -> Result<String, ApiError> {
        match job.state() {
            JobState::Done { .. } => self.shared.store.get(&job.key).map_err(|e| {
                ApiError::new(500, "store_error", format!("reading stored result: {e}"))
            }),
            JobState::Failed { error } => Err(ApiError::job_failed(error)),
            other => Err(ApiError::job_not_done(other.name())),
        }
    }

    /// The live stats the health endpoint reports.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// The health/stats document for `GET /v1/healthz`.
    pub fn health_json(&self) -> Json {
        let sh = &self.shared;
        let pool = sh.pool.lock().expect("pool lock");
        let st = &sh.stats;
        obj(vec![
            ("status", s("ok")),
            ("api", s(crate::protocol::API_VERSION)),
            ("draining", b(sh.draining.load(Ordering::SeqCst))),
            ("workers", u(sh.cfg.workers as u64)),
            ("queue_depth", u(pool.queue.len() as u64)),
            ("in_flight", u(pool.in_flight as u64)),
            ("queue_capacity", u(sh.cfg.queue_capacity as u64)),
            ("jobs_submitted", u(st.submitted.load(Ordering::Relaxed))),
            ("cache_hits", u(st.cache_hits.load(Ordering::Relaxed))),
            ("cache_misses", u(st.cache_misses.load(Ordering::Relaxed))),
            ("coalesced", u(st.coalesced.load(Ordering::Relaxed))),
            ("jobs_completed", u(st.completed.load(Ordering::Relaxed))),
            ("jobs_failed", u(st.failed.load(Ordering::Relaxed))),
            ("retries", u(st.retried.load(Ordering::Relaxed))),
            ("queue_rejected", u(st.rejected.load(Ordering::Relaxed))),
            ("sim_attempts", u(st.sim_attempts.load(Ordering::Relaxed))),
        ])
    }

    /// `true` once [`Scheduler::shutdown`] started.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop intake, drain the queue and in-flight
    /// jobs to completion, join the workers. Idempotent.
    pub fn shutdown(&self) {
        let sh = &self.shared;
        sh.draining.store(true, Ordering::SeqCst);
        sh.pool_cv.notify_all();
        {
            let mut pool = sh.pool.lock().expect("pool lock");
            while !(pool.queue.is_empty() && pool.in_flight == 0) {
                pool = sh.pool_cv.wait(pool).expect("pool lock");
            }
        }
        let mut workers = self.workers.lock().expect("workers lock");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        sh.cfg.telemetry.flush();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut pool = shared.pool.lock().expect("pool lock");
            loop {
                if let Some(job) = pool.queue.pop_front() {
                    pool.in_flight += 1;
                    break job;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                pool = shared.pool_cv.wait(pool).expect("pool lock");
            }
        };
        run_job(shared, &job);
        let mut pool = shared.pool.lock().expect("pool lock");
        pool.in_flight -= 1;
        drop(pool);
        // Wake both idle workers and a draining `shutdown`.
        shared.pool_cv.notify_all();
    }
}

/// Runs one job to a terminal state, dispatching on its work kind.
fn run_job(shared: &Arc<Shared>, job: &Arc<Job>) {
    match &job.spec.work {
        JobWork::Tran(work) => run_tran_job(shared, job, work),
        JobWork::Optimize(work) => run_optimize_job(shared, job, work),
    }
}

/// Publishes a finished result document and retires the job as `Done`.
/// Returns the store error, if any, for the caller's retry ladder.
fn publish_result(shared: &Arc<Shared>, job: &Arc<Job>, document: &str) -> Result<(), String> {
    // Publish order matters: the store entry must be visible before the
    // pending key retires (see `submit`).
    shared
        .store
        .put(&job.key, document)
        .map_err(|e| format!("storing result: {e}"))?;
    shared
        .pending
        .lock()
        .expect("pending lock")
        .remove(&job.key);
    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
    shared.cfg.telemetry.counter(names::SERVE_JOBS_COMPLETED, 1);
    job.set_state(JobState::Done { cached: false });
    job.hub.finish(
        "done",
        &obj(vec![("state", s("done")), ("cached", b(false))]).to_json(),
    );
    Ok(())
}

/// Retires a job as terminally `Failed`.
fn fail_job(shared: &Arc<Shared>, job: &Arc<Job>, error: String) {
    shared
        .pending
        .lock()
        .expect("pending lock")
        .remove(&job.key);
    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
    shared.cfg.telemetry.counter(names::SERVE_JOBS_FAILED, 1);
    job.set_state(JobState::Failed {
        error: error.clone(),
    });
    job.hub.finish(
        "failed",
        &obj(vec![("state", s("failed")), ("error", s(&error))]).to_json(),
    );
}

/// Runs one transient job: the retry ladder over
/// `options.escalated(attempt)`, checkpoint-resume between attempts,
/// store publication, and the SSE terminal event.
fn run_tran_job(shared: &Arc<Shared>, job: &Arc<Job>, work: &TranWork) {
    let tel = &shared.cfg.telemetry;
    let ckpt_path = shared.store.checkpoint_path_for(&job.key);
    let mut last_error = String::new();

    for attempt in 0..=job.spec.retries {
        job.set_state(JobState::Running { attempt });
        job.hub.push(
            "status",
            &obj(vec![
                ("state", s("running")),
                ("attempt", u(attempt as u64)),
            ])
            .to_json(),
        );
        shared.stats.sim_attempts.fetch_add(1, Ordering::Relaxed);
        if attempt > 0 {
            shared.stats.retried.fetch_add(1, Ordering::Relaxed);
            tel.counter(names::SERVE_JOB_RETRIED, 1);
        }

        let opts: SimOptions = work
            .options
            .escalated(attempt)
            .with_telemetry(Telemetry::new(HubSink::new(job.hub.clone())));
        let ckpt = if work.checkpoint_every > 0 {
            CheckpointPolicy::write_to(&ckpt_path, work.checkpoint_every)
                .resume_if_exists(&ckpt_path)
        } else {
            CheckpointPolicy::disabled()
        };

        match transient_resumable(&work.circuit, work.tstop, &opts, &ckpt) {
            Ok(result) => {
                let document = encode_tran_result(&result);
                let _ = std::fs::remove_file(&ckpt_path);
                match publish_result(shared, job, &document) {
                    Ok(()) => return,
                    Err(e) => last_error = e,
                }
            }
            Err(e) => last_error = e.to_string(),
        }
        job.hub.push(
            "status",
            &obj(vec![
                ("state", s("retrying")),
                ("attempt", u(attempt as u64)),
                ("error", s(&last_error)),
            ])
            .to_json(),
        );
    }

    let _ = std::fs::remove_file(&ckpt_path);
    fail_job(shared, job, last_error);
}

/// Runs one optimize job: `sfet-optimize`'s standard run with the job's
/// parameters, per-generation SSE progress on the job's event hub, and
/// the deterministic `optimize.v1` result document.
///
/// There is no job-level retry ladder here — `retries` becomes the
/// *per-lane* budget of the batched sweep engine, which escalates solver
/// options lane by lane instead of rerunning whole generations.
fn run_optimize_job(shared: &Arc<Shared>, job: &Arc<Job>, work: &OptimizeWork) {
    job.set_state(JobState::Running { attempt: 0 });
    job.hub.push(
        "status",
        &obj(vec![("state", s("running")), ("attempt", u(0))]).to_json(),
    );
    shared.stats.sim_attempts.fetch_add(1, Ordering::Relaxed);

    let mut run = StandardRun::new(work.vdd, work.seed);
    run.algorithm = work.algorithm;
    run.population = work.population;
    run.config.max_generations = work.generations;
    // The engine's `opt.*`/`exec.*` counters fan out to the same SSE
    // stream the transient jobs use.
    run.config.exec = ExecConfig::from_env()
        .with_retries(job.spec.retries)
        .with_telemetry(Telemetry::new(HubSink::new(job.hub.clone())));
    let hub = job.hub.clone();
    run.config.progress = Some(Arc::new(move |g: &GenerationSummary| {
        hub.push(
            "generation",
            &obj(vec![
                ("generation", u(g.generation as u64)),
                ("candidates", u(g.candidates as u64)),
                ("lanes", u(g.lanes as u64)),
                ("failed_lanes", u(g.failed_lanes as u64)),
                ("infeasible", u(g.infeasible as u64)),
                ("best_objective", n(g.best_objective)),
                ("best_reduction_pct", n(g.best_reduction_pct)),
                ("improved", b(g.improved)),
            ])
            .to_json(),
        );
    }));

    match run.run() {
        Ok(outcome) => {
            let document = encode_optimize_result(work, &outcome);
            if let Err(e) = publish_result(shared, job, &document) {
                fail_job(shared, job, e);
            }
        }
        Err(e) => fail_job(shared, job, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sfet-sched-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn submit(sched: &Scheduler, body: &str) -> Result<SubmitReceipt, ApiError> {
        sched.submit(&Json::parse(body).unwrap())
    }

    fn wait_done(sched: &Scheduler, id: u64) -> JobState {
        let job = sched.job(id).unwrap();
        loop {
            match job.state() {
                JobState::Done { .. } | JobState::Failed { .. } => return job.state(),
                _ => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        }
    }

    #[test]
    fn submit_run_dedup_lifecycle() {
        let dir = tmp_dir("lifecycle");
        let sched = Scheduler::new(ServeConfig::new(&dir)).unwrap();
        let r1 = submit(&sched, r#"{"scenario":"rc_step"}"#).unwrap();
        assert!(!r1.cached);
        let st = wait_done(&sched, r1.job_id);
        assert_eq!(st, JobState::Done { cached: false });

        // Identical resubmission is a store hit; no new simulation.
        let r2 = submit(&sched, r#"{"scenario":"rc_step"}"#).unwrap();
        assert!(r2.cached);
        assert_eq!(sched.stats().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(sched.stats().sim_attempts.load(Ordering::Relaxed), 1);

        // Both jobs serve byte-identical documents.
        let j1 = sched.job(r1.job_id).unwrap();
        let j2 = sched.job(r2.job_id).unwrap();
        assert_eq!(
            sched.result_document(&j1).unwrap(),
            sched.result_document(&j2).unwrap()
        );
        sched.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_full_is_backpressure_not_blocking() {
        let dir = tmp_dir("backpressure");
        let sched = Scheduler::new(
            ServeConfig::new(&dir)
                .with_workers(1)
                .with_queue_capacity(1),
        )
        .unwrap();
        // Distinct params defeat coalescing; enough submissions must
        // trip the bounded queue whatever the worker's progress.
        let mut rejected = 0;
        for i in 0..24 {
            let body = format!(
                r#"{{"scenario":"rc_step","params":{{"r":{}.0}}}}"#,
                1000 + i
            );
            match submit(&sched, &body) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.code, "queue_full");
                    assert_eq!(e.status, 429);
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "bounded queue must reject under burst");
        sched.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let dir = tmp_dir("drain");
        let sched = Scheduler::new(ServeConfig::new(&dir).with_workers(1)).unwrap();
        let mut ids = Vec::new();
        for i in 0..4 {
            let body = format!(r#"{{"scenario":"rc_step","params":{{"c":{}e-15}}}}"#, i + 1);
            ids.push(submit(&sched, &body).unwrap().job_id);
        }
        sched.shutdown();
        for id in ids {
            assert!(matches!(
                sched.job(id).unwrap().state(),
                JobState::Done { .. }
            ));
        }
        // Post-shutdown intake is refused.
        assert_eq!(
            submit(&sched, r#"{"scenario":"rc_step"}"#)
                .unwrap_err()
                .code,
            "shutting_down"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_job_reports_the_simulation_error() {
        let dir = tmp_dir("failure");
        let sched = Scheduler::new(ServeConfig::new(&dir)).unwrap();
        // A dtmax far above dtmin with a tiny step budget exhausts
        // max_steps deterministically.
        let r = submit(
            &sched,
            r#"{"scenario":"rc_step","params":{"tstop":1e-9},
                "options":{"dtmax":1e-17,"max_steps":50},"retries":1}"#,
        )
        .unwrap();
        let st = wait_done(&sched, r.job_id);
        let JobState::Failed { error } = st else {
            panic!("expected failure, got {st:?}");
        };
        assert!(!error.is_empty());
        assert_eq!(sched.stats().retried.load(Ordering::Relaxed), 1);
        let job = sched.job(r.job_id).unwrap();
        assert_eq!(sched.result_document(&job).unwrap_err().code, "job_failed");
        sched.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
