//! `sfet-serve` — run the simulation job server from the command line.
//!
//! ```text
//! sfet-serve [--addr 127.0.0.1:8787] [--workers N] [--queue N] \
//!            [--store DIR] [--telemetry FILE.jsonl]
//! ```
//!
//! Blocks until `POST /v1/shutdown` (or process signal), draining
//! in-flight jobs before exiting. See `docs/SERVE.md` for the API.

use std::sync::Arc;

use sfet_serve::{ServeConfig, Server};
use sfet_telemetry::{JsonlSink, Telemetry};

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    store: String,
    telemetry: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sfet-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--store DIR] [--telemetry FILE.jsonl]\n\
         defaults: --addr 127.0.0.1:8787 --workers <cores> --queue 64 --store ./sfet-results"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8787".into(),
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
        queue: 64,
        store: "./sfet-results".into(),
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--store" => args.store = value("--store"),
            "--telemetry" => args.telemetry = Some(value("--telemetry")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let telemetry = match &args.telemetry {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Telemetry::new(JsonlSink::new(std::io::BufWriter::new(file))),
            Err(e) => {
                eprintln!("cannot open telemetry sink {path}: {e}");
                std::process::exit(1)
            }
        },
        None => Telemetry::disabled(),
    };
    let cfg = ServeConfig::new(&args.store)
        .with_workers(args.workers)
        .with_queue_capacity(args.queue)
        .with_telemetry(telemetry);
    let server = match Server::bind(&args.addr, cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cannot start server on {}: {e}", args.addr);
            std::process::exit(1)
        }
    };
    eprintln!(
        "sfet-serve listening on http://{} (workers={}, queue={}, store={})",
        server.addr(),
        args.workers,
        args.queue,
        args.store
    );
    server.serve();
    eprintln!("sfet-serve drained and stopped");
}
