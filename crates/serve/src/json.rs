//! Minimal hand-rolled JSON: the exact subset the wire protocol needs.
//!
//! The workspace is dependency-free by policy (the build environment is
//! offline), so — like `sfet-telemetry`'s JSONL sink — the server rolls
//! its own JSON. The model is deliberately small: numbers are `f64`,
//! objects preserve insertion order (which makes serialisation
//! deterministic — the result store depends on that), and parsing is a
//! plain recursive-descent scanner with a depth cap.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; beyond it the input is
/// rejected rather than risking a stack overflow on hostile payloads.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// # Example
///
/// ```
/// use sfet_serve::json::Json;
///
/// let v = Json::parse(r#"{"scenario":"rc_step","params":{"tstop":1e-11}}"#).unwrap();
/// assert_eq!(v.get("scenario").and_then(Json::as_str), Some("rc_step"));
/// assert_eq!(
///     v.get("params").and_then(|p| p.get("tstop")).and_then(Json::as_f64),
///     Some(1e-11)
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order (serialisation is
    /// deterministic, and duplicate keys are rejected at parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value to compact JSON. Object order is preserved;
    /// floats use Rust's shortest round-trippable form (so a value
    /// serialised and re-parsed is bitwise the same `f64`); non-finite
    /// floats become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => out.push_str(&fmt_f64(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats an `f64` as a JSON number: shortest round-trippable form for
/// finite values (integers gain a `.0` in Rust's `{:?}`, which JSON
/// accepts), `null` for NaN/±inf.
pub fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        let mut text = format!("{value:?}");
        // `{:?}` spells integral values `5.0`; the bare integer is one
        // byte shorter, reads better in counters, and parses back to the
        // same bits (`-0` included), so trim the suffix.
        if text.ends_with(".0") {
            text.truncate(text.len() - 2);
        }
        text
    } else {
        "null".to_owned()
    }
}

/// Appends `s` as a quoted, escaped JSON string literal.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c).ok_or("invalid surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                char::from_u32(cp).ok_or("invalid \\u escape")?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                _ => {
                    // Re-scan from the byte position as UTF-8: step back
                    // and take the full multi-byte character.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    if (ch as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|_| "invalid \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape")?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        let value: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !value.is_finite() {
            return Err(format!("number {text:?} overflows f64"));
        }
        Ok(Json::Num(value))
    }
}

/// Builder helpers for assembling response objects without repeating
/// `Json::` noise at every call site.
pub mod build {
    use super::Json;

    /// An object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// A numeric value.
    pub fn n(v: f64) -> Json {
        Json::Num(v)
    }

    /// An unsigned integer as a JSON number (exact up to 2^53).
    pub fn u(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A boolean value.
    pub fn b(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0.5",
            "-3.25e-12",
            r#""hi there""#,
            r#"[1.0,2.0,[true,null]]"#,
            r#"{"a":1.0,"b":{"c":"d"},"e":[]}"#,
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_json()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for x in [
            1.5e-12,
            0.1,
            f64::MIN_POSITIVE,
            1234567890.123456,
            // Integral values render without the `.0` suffix but must
            // still round-trip exactly — signed zero included.
            5.0,
            -3.0,
            0.0,
            -0.0,
            1e300,
        ] {
            let v = Json::parse(&fmt_f64(x)).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(-0.0), "-0");
        assert_eq!(fmt_f64(1e300), "1e300");
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            r#"{"a":1,"a":2}"#,
            "nul",
            "1.0 x",
            "\"\\q\"",
            "\"unterminated",
            "1e999",
            "[,]",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\nd \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nd é 😀");
        let back = Json::parse(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn object_lookup_and_order() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.get("z").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("missing"), None);
        // Serialisation preserves insertion order, not sort order.
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
    }
}
