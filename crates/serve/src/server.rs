//! The HTTP front end: a `TcpListener` accept loop dispatching
//! thread-per-connection onto the [`Scheduler`].
//!
//! Endpoint surface (also exported as [`ENDPOINTS`] so tests can assert
//! the docs cover everything):
//!
//! | Method | Path                  | Purpose                              |
//! |--------|-----------------------|--------------------------------------|
//! | POST   | `/v1/jobs`            | submit a job (dedup + backpressure)  |
//! | GET    | `/v1/jobs/{id}`       | job status                           |
//! | GET    | `/v1/jobs/{id}/result`| fetch the result document            |
//! | GET    | `/v1/jobs/{id}/events`| Server-Sent-Events progress stream   |
//! | GET    | `/v1/healthz`         | liveness + queue/cache statistics    |
//! | POST   | `/v1/shutdown`        | graceful drain-and-stop              |
//!
//! Every connection is one request/response (`Connection: close`); a
//! panic in a handler is confined to its connection thread and answered
//! by the OS closing the socket, never by taking the server down.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::ApiError;
use crate::http::{begin_sse, write_error, write_json, Request};
use crate::json::build::{b, obj, s};
use crate::json::Json;
use crate::scheduler::{Scheduler, ServeConfig};

/// Every route the server answers, as `"METHOD path-template"` strings.
/// `docs/SERVE.md` must document each one (the loopback suite asserts
/// it).
pub const ENDPOINTS: &[&str] = &[
    "POST /v1/jobs",
    "GET /v1/jobs/{id}",
    "GET /v1/jobs/{id}/result",
    "GET /v1/jobs/{id}/events",
    "GET /v1/healthz",
    "POST /v1/shutdown",
];

/// A running job server bound to a local address.
///
/// # Example
///
/// ```no_run
/// use sfet_serve::{Server, ServeConfig};
///
/// let server = Server::bind("127.0.0.1:0", ServeConfig::new("/tmp/sfet-results"))?;
/// println!("listening on {}", server.addr());
/// server.serve(); // blocks until POST /v1/shutdown
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    stopping: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and spawns the worker pool. Use port 0 to let
    /// the OS pick a free port (see [`Server::addr`]).
    ///
    /// # Errors
    ///
    /// Socket bind or store-directory creation failures.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let scheduler = Arc::new(Scheduler::new(cfg)?);
        Ok(Server {
            listener,
            addr,
            scheduler,
            stopping: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler behind this server (tests inspect its stats).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Runs the accept loop on the calling thread until a
    /// `POST /v1/shutdown` arrives, then drains in-flight jobs and
    /// returns.
    pub fn serve(&self) {
        for conn in self.listener.incoming() {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let scheduler = self.scheduler.clone();
            let stopping = self.stopping.clone();
            let addr = self.addr;
            std::thread::spawn(move || {
                let mut stream = stream;
                handle_connection(&mut stream, &scheduler, &stopping, addr);
            });
        }
        self.scheduler.shutdown();
    }

    /// Runs [`Server::serve`] on a background thread, returning a handle
    /// that joins it. The caller keeps using `self` through the `Arc`.
    pub fn spawn(self: &Arc<Server>) -> std::thread::JoinHandle<()> {
        let server = self.clone();
        std::thread::Builder::new()
            .name("sfet-serve-accept".into())
            .spawn(move || server.serve())
            .expect("spawn accept loop")
    }

    /// Requests shutdown from inside the process: flips the stop flag
    /// and unblocks the accept loop with a throwaway self-connection.
    pub fn stop(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    scheduler: &Arc<Scheduler>,
    stopping: &AtomicBool,
    addr: SocketAddr,
) {
    let request = match Request::read_from(stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_error(stream, &e);
            return;
        }
    };
    match route(&request, scheduler, stream) {
        Ok(Response::Json { status, body }) => {
            let _ = write_json(stream, status, &body);
        }
        Ok(Response::Streamed) => {}
        Ok(Response::Shutdown { body }) => {
            // Acknowledge, then flip the stop flag and poke the accept
            // loop with a throwaway connection so it notices.
            let _ = write_json(stream, 202, &body);
            if !stopping.swap(true, Ordering::SeqCst) {
                let _ = TcpStream::connect(addr);
            }
        }
        Err(e) => {
            let _ = write_error(stream, &e);
        }
    }
}

enum Response {
    Json {
        status: u16,
        body: String,
    },
    /// The handler already wrote the response (SSE).
    Streamed,
    /// 202 + drain after the response goes out.
    Shutdown {
        body: String,
    },
}

fn route(
    req: &Request,
    scheduler: &Arc<Scheduler>,
    stream: &mut TcpStream,
) -> Result<Response, ApiError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "jobs"]) => submit(req, scheduler),
        ("GET", ["v1", "jobs", id]) => status(scheduler, id),
        ("GET", ["v1", "jobs", id, "result"]) => result(scheduler, id),
        ("GET", ["v1", "jobs", id, "events"]) => events(scheduler, id, stream),
        ("GET", ["v1", "healthz"]) => Ok(Response::Json {
            status: 200,
            body: scheduler.health_json().to_json(),
        }),
        ("POST", ["v1", "shutdown"]) => Ok(Response::Shutdown {
            body: obj(vec![("status", s("draining"))]).to_json(),
        }),
        (_, ["v1", "jobs"])
        | (_, ["v1", "jobs", ..])
        | (_, ["v1", "healthz"])
        | (_, ["v1", "shutdown"]) => Err(ApiError::method_not_allowed(&req.method, &req.path)),
        _ => Err(ApiError::not_found(format!("no route for {}", req.path))),
    }
}

fn submit(req: &Request, scheduler: &Arc<Scheduler>) -> Result<Response, ApiError> {
    let text = req.body_utf8()?;
    let body = Json::parse(text).map_err(ApiError::invalid_json)?;
    let receipt = scheduler.submit(&body)?;
    let doc = obj(vec![
        ("api", s(crate::protocol::API_VERSION)),
        ("job_id", s(format!("j-{}", receipt.job_id))),
        ("state", s(receipt.state)),
        ("cached", b(receipt.cached)),
        ("coalesced", b(receipt.coalesced)),
    ]);
    Ok(Response::Json {
        status: if receipt.cached { 200 } else { 202 },
        body: doc.to_json(),
    })
}

/// Parses a `j-<n>` wire id (bare `<n>` is accepted too).
fn parse_job_id(raw: &str) -> Result<u64, ApiError> {
    raw.strip_prefix("j-")
        .unwrap_or(raw)
        .parse()
        .map_err(|_| ApiError::not_found(format!("malformed job id {raw:?}")))
}

fn lookup(scheduler: &Scheduler, raw: &str) -> Result<Arc<crate::scheduler::Job>, ApiError> {
    scheduler
        .job(parse_job_id(raw)?)
        .ok_or_else(|| ApiError::not_found(format!("no job {raw:?}")))
}

fn status(scheduler: &Arc<Scheduler>, raw: &str) -> Result<Response, ApiError> {
    let job = lookup(scheduler, raw)?;
    Ok(Response::Json {
        status: 200,
        body: job.status_json().to_json(),
    })
}

fn result(scheduler: &Arc<Scheduler>, raw: &str) -> Result<Response, ApiError> {
    let job = lookup(scheduler, raw)?;
    let document = scheduler.result_document(&job)?;
    Ok(Response::Json {
        status: 200,
        body: document,
    })
}

/// Streams the job's event log as SSE: full replay, then live tail,
/// closing after the terminal `done`/`failed` block.
fn events(
    scheduler: &Arc<Scheduler>,
    raw: &str,
    stream: &mut TcpStream,
) -> Result<Response, ApiError> {
    use std::io::Write as _;
    let job = lookup(scheduler, raw)?;
    begin_sse(stream).map_err(|e| ApiError::new(500, "io_error", e.to_string()))?;
    let mut cursor = 0usize;
    loop {
        let (blocks, closed) = job.hub.wait_from(cursor);
        cursor += blocks.len();
        for block in &blocks {
            if stream.write_all(block.as_bytes()).is_err() {
                // Subscriber went away; the job keeps running.
                return Ok(Response::Streamed);
            }
        }
        let _ = stream.flush();
        // Once closed, the next wait returns instantly: loop until the
        // replay catches the terminal event, then end the stream.
        if closed && blocks.is_empty() {
            return Ok(Response::Streamed);
        }
    }
}
