//! Per-job progress streaming: a [`TelemetrySink`] adapter fanning the
//! simulation's counters and spans out to Server-Sent Events.
//!
//! Each job owns an [`EventHub`]: an append-only, bounded log of
//! pre-formatted SSE blocks plus a condvar. The worker thread appends
//! (through [`HubSink`], attached to the job's `SimOptions` telemetry
//! handle); any number of `GET /jobs/{id}/events` connections replay the
//! log from the start and then block for new entries, so a subscriber
//! that arrives late still sees the full history. The stream ends with
//! a terminal `done` or `failed` event, after which the hub is closed
//! and subscribers drain and disconnect.
//!
//! Volume control: spans and counters pass through one-to-one (the
//! transient emits its counter totals once, at the analysis boundary),
//! but per-step histogram observations — tens of thousands for a long
//! run — are *sampled*: every [`PROGRESS_EVERY`]-th observation becomes
//! one `progress` event carrying the cumulative observation count, which
//! doubles as a live steps-completed gauge. The SSE grammar is
//! documented in `docs/SERVE.md#events`.

use std::sync::{Arc, Condvar, Mutex};

use sfet_telemetry::{Event, TelemetrySink};

use crate::json::build::{obj, s, u};

/// Emit one `progress` event per this many histogram observations.
pub const PROGRESS_EVERY: u64 = 1024;

/// Hard cap on retained SSE blocks per job; beyond it non-terminal
/// events are dropped (a `truncated` event marks the gap once).
pub const MAX_EVENTS: usize = 16_384;

#[derive(Debug, Default)]
struct HubState {
    events: Vec<String>,
    truncated: bool,
    closed: bool,
}

/// The per-job event log SSE subscribers replay.
#[derive(Debug, Default)]
pub struct EventHub {
    state: Mutex<HubState>,
    cv: Condvar,
}

impl EventHub {
    /// A fresh, open hub.
    pub fn new() -> Arc<EventHub> {
        Arc::new(EventHub::default())
    }

    /// Appends one SSE block (`event:` name + `data:` JSON payload).
    pub fn push(&self, event: &str, data: &str) {
        let mut st = self.state.lock().expect("hub lock");
        if st.closed {
            return;
        }
        if st.events.len() >= MAX_EVENTS {
            if !st.truncated {
                st.truncated = true;
                st.events.push(sse_block("truncated", "{\"dropped\":true}"));
            }
            return;
        }
        st.events.push(sse_block(event, data));
        drop(st);
        self.cv.notify_all();
    }

    /// Appends a terminal block and closes the hub: subscribers drain
    /// what remains and disconnect; later pushes are ignored.
    pub fn finish(&self, event: &str, data: &str) {
        let mut st = self.state.lock().expect("hub lock");
        if st.closed {
            return;
        }
        // The terminal event always fits, even on a truncated stream.
        st.events.push(sse_block(event, data));
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }

    /// `true` once [`EventHub::finish`] ran.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("hub lock").closed
    }

    /// Blocks until more blocks than `from` exist or the hub closes;
    /// returns the new blocks and whether the stream is over. Subscriber
    /// loop: start at 0, write what you get, repeat until `closed` and
    /// nothing new.
    pub fn wait_from(&self, from: usize) -> (Vec<String>, bool) {
        let mut st = self.state.lock().expect("hub lock");
        while st.events.len() <= from && !st.closed {
            st = self.cv.wait(st).expect("hub lock");
        }
        let fresh = st.events.get(from..).unwrap_or(&[]).to_vec();
        (fresh, st.closed)
    }

    /// Blocks of the whole log so far (diagnostic/testing helper).
    pub fn snapshot(&self) -> Vec<String> {
        self.state.lock().expect("hub lock").events.clone()
    }
}

/// Formats one SSE block: `event: <name>\ndata: <payload>\n\n`.
pub fn sse_block(event: &str, data: &str) -> String {
    // SSE data lines must not embed raw newlines; the payloads here are
    // single-line JSON by construction, but guard anyway.
    let data = data.replace('\n', " ");
    format!("event: {event}\ndata: {data}\n\n")
}

/// [`TelemetrySink`] that forwards simulation telemetry into an
/// [`EventHub`] as the `telemetry` / `progress` SSE events.
#[derive(Debug)]
pub struct HubSink {
    hub: Arc<EventHub>,
    observations: u64,
}

impl HubSink {
    /// A sink feeding `hub`.
    pub fn new(hub: Arc<EventHub>) -> HubSink {
        HubSink {
            hub,
            observations: 0,
        }
    }
}

impl TelemetrySink for HubSink {
    fn record(&mut self, event: &Event<'_>) {
        match *event {
            Event::SpanBegin { name, .. } => {
                self.hub.push(
                    "telemetry",
                    &obj(vec![("type", s("span_begin")), ("name", s(name))]).to_json(),
                );
            }
            Event::SpanEnd { name, .. } => {
                self.hub.push(
                    "telemetry",
                    &obj(vec![("type", s("span_end")), ("name", s(name))]).to_json(),
                );
            }
            Event::Counter { name, delta } => {
                self.hub.push(
                    "telemetry",
                    &obj(vec![
                        ("type", s("counter")),
                        ("name", s(name)),
                        ("delta", u(delta)),
                    ])
                    .to_json(),
                );
            }
            Event::Histogram { .. } => {
                // Sampled: one progress heartbeat per PROGRESS_EVERY
                // observations. (`tran.dt_seconds` observes once per
                // accepted step, so the count tracks steps completed.)
                self.observations += 1;
                if self.observations.is_multiple_of(PROGRESS_EVERY) {
                    self.hub.push(
                        "progress",
                        &obj(vec![("observations", u(self.observations))]).to_json(),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_then_live_then_close() {
        let hub = EventHub::new();
        hub.push("status", "{\"state\":\"queued\"}");
        let (first, closed) = hub.wait_from(0);
        assert_eq!(first.len(), 1);
        assert!(!closed);
        assert!(first[0].starts_with("event: status\ndata: "));

        hub.finish("done", "{}");
        let (rest, closed) = hub.wait_from(1);
        assert_eq!(rest, vec!["event: done\ndata: {}\n\n"]);
        assert!(closed);
        // Pushes after close are ignored.
        hub.push("status", "{}");
        assert_eq!(hub.snapshot().len(), 2);
    }

    #[test]
    fn histograms_are_sampled_not_forwarded() {
        let hub = EventHub::new();
        let mut sink = HubSink::new(hub.clone());
        for _ in 0..(PROGRESS_EVERY * 2) {
            sink.record(&Event::Histogram {
                name: "tran.dt_seconds",
                value: 1e-12,
            });
        }
        let events = hub.snapshot();
        assert_eq!(events.len(), 2, "one progress block per PROGRESS_EVERY");
        assert!(events[0].starts_with("event: progress\n"));
        assert!(events[1].contains("\"observations\":2048"));
    }

    #[test]
    fn counters_and_spans_pass_through() {
        let hub = EventHub::new();
        let mut sink = HubSink::new(hub.clone());
        sink.record(&Event::SpanBegin {
            name: "transient",
            id: 1,
            t_ns: 0,
        });
        sink.record(&Event::Counter {
            name: "tran.steps_accepted",
            delta: 42,
        });
        sink.record(&Event::SpanEnd {
            name: "transient",
            id: 1,
            t_ns: 9,
            dur_ns: 9,
        });
        let events = hub.snapshot();
        assert_eq!(events.len(), 3);
        assert!(events[1].contains("\"delta\":42"));
        assert!(!events[1].contains("t_ns"), "wall-clock stays out of SSE");
    }

    #[test]
    fn truncation_is_marked_once_and_terminal_event_survives() {
        let hub = EventHub::new();
        for i in 0..(MAX_EVENTS + 10) {
            hub.push("telemetry", &format!("{{\"i\":{i}}}"));
        }
        let n = hub.snapshot().len();
        assert_eq!(n, MAX_EVENTS + 1, "cap + one truncated marker");
        hub.finish("done", "{}");
        assert_eq!(hub.snapshot().len(), n + 1);
    }
}
