//! The refactor + solve hot path must be allocation-free: every Newton
//! iteration of the simulator runs through it, and a per-iteration heap
//! allocation would dominate small-circuit solve time.
//!
//! A counting global allocator observes the steady-state loop after a
//! warm-up pass (the warm-up sizes the persistent workspaces).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sfet_numeric::dense::{DenseMatrix, LuFactors};
use sfet_numeric::sparse::TripletMatrix;
use sfet_telemetry::{names, Level, Telemetry};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Allocation count attributable to `f`, taken as the minimum over a few
/// attempts: the hot path is deterministic (0 every time), while stray
/// allocations from test-harness threads are transient and don't repeat.
fn min_allocations<F: FnMut()>(mut f: F) -> u64 {
    (0..3)
        .map(|_| {
            let before = allocations();
            f();
            allocations() - before
        })
        .min()
        .unwrap()
}

/// Both backends' reuse paths run a sustained refactor/solve loop without
/// touching the heap. One test function so the counter is not racing
/// against a sibling test thread.
#[test]
fn refactor_solve_hot_path_is_allocation_free() {
    let n = 12;

    // --- Dense: persistent workspace, in-place refactorisation. ---
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, 4.0 + i as f64);
        if i + 1 < n {
            a.set(i, i + 1, -1.0);
            a.set(i + 1, i, -1.5);
        }
    }
    let mut factors = LuFactors::workspace(n);
    let mut b = vec![0.0; n];
    let mut scratch = Vec::new();
    // Warm-up pass sizes the scratch buffer.
    factors.refactor(&a).unwrap();
    b.iter_mut().for_each(|v| *v = 1.0);
    factors.solve_in_place(&mut b, &mut scratch).unwrap();

    let dense_allocs = min_allocations(|| {
        for k in 0..200u32 {
            a.set(0, 0, 4.0 + f64::from(k) * 1e-3);
            factors.refactor(&a).unwrap();
            b.iter_mut().for_each(|v| *v = 1.0);
            factors.solve_in_place(&mut b, &mut scratch).unwrap();
        }
    });
    assert_eq!(dense_allocs, 0, "dense refactor/solve loop allocated");
    assert!(b.iter().all(|v| v.is_finite()));

    // --- Sparse: cached symbolic analysis, numeric-only refactor. ---
    let make = |shift: f64| {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 5.0 + shift + i as f64);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -2.0 + shift * 0.1);
            }
        }
        t.to_csc()
    };
    let a0 = make(0.0);
    let a1 = make(0.25);
    let mut lu = a0.lu().unwrap();
    let mut b = vec![0.0; n];
    let mut scratch = Vec::new();
    lu.refactor(&a1).unwrap();
    b.iter_mut().for_each(|v| *v = 1.0);
    lu.solve_in_place(&mut b, &mut scratch).unwrap();

    let sparse_allocs = min_allocations(|| {
        for k in 0..200 {
            let a = if k % 2 == 0 { &a0 } else { &a1 };
            lu.refactor(a).unwrap();
            b.iter_mut().for_each(|v| *v = 1.0);
            lu.solve_in_place(&mut b, &mut scratch).unwrap();
        }
    });
    assert_eq!(sparse_allocs, 0, "sparse refactor/solve loop allocated");
    assert!(b.iter().all(|v| v.is_finite()));

    // --- Disabled telemetry inside the hot loop. ---
    // The simulator calls counter/histogram/span at every Newton iteration;
    // with the default (disabled) handle these must be no-op early returns
    // — no clock reads, no locks, and, asserted here, no heap traffic.
    let telemetry = Telemetry::disabled();
    let telemetry_allocs = min_allocations(|| {
        for k in 0..200u32 {
            a.set(0, 0, 4.0 + f64::from(k) * 1e-3);
            let span = telemetry.span(Level::Iteration, names::SPAN_NEWTON_ITER);
            factors.refactor(&a).unwrap();
            telemetry.counter(names::NEWTON_ITERATIONS, 1);
            telemetry.histogram(names::H_TRAN_DT, f64::from(k) * 1e-12);
            drop(span);
        }
    });
    assert_eq!(
        telemetry_allocs, 0,
        "disabled telemetry must not touch the heap in the hot loop"
    );
}
