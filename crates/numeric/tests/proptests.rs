//! Property-based tests for the numerical kernels.

use proptest::prelude::*;
use sfet_numeric::dense::DenseMatrix;
use sfet_numeric::interp::PiecewiseLinear;
use sfet_numeric::smooth;
use sfet_numeric::sparse::TripletMatrix;

/// Strategy: a diagonally dominant n×n matrix given as (n, entries).
fn dd_matrix() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..12).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -1.0f64..1.0);
        (Just(n), proptest::collection::vec(entry, 0..4 * n))
    })
}

fn build_matrices(n: usize, entries: &[(usize, usize, f64)]) -> (TripletMatrix, DenseMatrix) {
    let mut t = TripletMatrix::new(n, n);
    let mut d = DenseMatrix::zeros(n, n);
    for &(r, c, v) in entries {
        t.push(r, c, v);
        d.add(r, c, v);
    }
    // Force diagonal dominance so the system is solvable.
    for i in 0..n {
        t.push(i, i, 8.0);
        d.add(i, i, 8.0);
    }
    (t, d)
}

proptest! {
    /// Sparse LU and dense LU agree on diagonally dominant systems.
    #[test]
    fn sparse_lu_matches_dense((n, entries) in dd_matrix(), b_seed in -1.0f64..1.0) {
        let (t, d) = build_matrices(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| b_seed + i as f64 * 0.37).collect();
        let xs = t.to_csc().lu().unwrap().solve(&b).unwrap();
        let xd = d.solve(&b).unwrap();
        for (s, v) in xs.iter().zip(&xd) {
            prop_assert!((s - v).abs() < 1e-9, "sparse {s} vs dense {v}");
        }
    }

    /// A x == b residual is small for both solvers.
    #[test]
    fn lu_residual_small((n, entries) in dd_matrix()) {
        let (t, d) = build_matrices(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
        let a = t.to_csc();
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-9);
        }
        let xd = d.clone().solve(&b).unwrap();
        let rd = d.matvec(&xd).unwrap();
        for (ri, bi) in rd.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-9);
        }
    }

    /// Triplet compression sums duplicates in any insertion order.
    #[test]
    fn triplet_order_independent(mut entries in proptest::collection::vec((0usize..4, 0usize..4, -2.0f64..2.0), 1..24)) {
        let mut t1 = TripletMatrix::new(4, 4);
        for &(r, c, v) in &entries {
            t1.push(r, c, v);
        }
        entries.reverse();
        let mut t2 = TripletMatrix::new(4, 4);
        for &(r, c, v) in &entries {
            t2.push(r, c, v);
        }
        let (a1, a2) = (t1.to_csc(), t2.to_csc());
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((a1.get(r, c) - a2.get(r, c)).abs() < 1e-12);
            }
        }
    }

    /// PWL evaluation stays within the convex hull of its ordinates.
    #[test]
    fn pwl_bounded_by_ordinates(ys in proptest::collection::vec(-5.0f64..5.0, 2..10), q in 0.0f64..1.0) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = PiecewiseLinear::new(xs, ys).unwrap();
        let x = q * (p.xs().len() as f64 + 2.0) - 1.0; // includes clamp regions
        let y = p.eval(x);
        prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12);
    }

    /// PWL of a monotone sequence is monotone.
    #[test]
    fn pwl_monotone_preserved(steps in proptest::collection::vec(0.01f64..1.0, 2..10), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let mut acc = 0.0;
        let ys: Vec<f64> = steps.iter().map(|s| { acc += s; acc }).collect();
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let xmax = (ys.len() - 1) as f64;
        let p = PiecewiseLinear::new(xs, ys).unwrap();
        let (x1, x2) = (a.min(b) * xmax, a.max(b) * xmax);
        prop_assert!(p.eval(x1) <= p.eval(x2) + 1e-12);
    }

    /// softplus(x) - softplus(-x) == x (exact identity).
    #[test]
    fn softplus_identity(x in -500.0f64..500.0) {
        let lhs = smooth::softplus(x) - smooth::softplus(-x);
        prop_assert!((lhs - x).abs() < 1e-9 * (1.0 + x.abs()));
    }

    /// smoothmax is commutative and bounds max from above.
    #[test]
    fn smoothmax_properties(a in -10.0f64..10.0, b in -10.0f64..10.0, w in 1e-6f64..1.0) {
        let m1 = smooth::smoothmax(a, b, w);
        let m2 = smooth::smoothmax(b, a, w);
        prop_assert!((m1 - m2).abs() < 1e-12);
        prop_assert!(m1 >= a.max(b) - 1e-12);
        prop_assert!(m1 <= a.max(b) + w);
    }

    /// exp_lerp stays between its endpoints and is monotone in t.
    #[test]
    fn exp_lerp_monotone(a in 1.0f64..1e7, b in 1.0f64..1e7, t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let (lo, hi) = (a.min(b), a.max(b));
        let v1 = smooth::exp_lerp(a, b, t1);
        prop_assert!(v1 >= lo * (1.0 - 1e-12) && v1 <= hi * (1.0 + 1e-12));
        let (t_lo, t_hi) = (t1.min(t2), t1.max(t2));
        let (v_lo, v_hi) = (smooth::exp_lerp(a, b, t_lo), smooth::exp_lerp(a, b, t_hi));
        if a <= b {
            prop_assert!(v_lo <= v_hi * (1.0 + 1e-12));
        } else {
            prop_assert!(v_lo >= v_hi * (1.0 - 1e-12));
        }
    }
}

proptest! {
    /// Preconditioned GMRES agrees with sparse LU to 1e-9 relative on
    /// random diagonally dominant systems (the SPD-ish regime the MNA
    /// grid matrices live in), with every preconditioner.
    #[test]
    fn gmres_matches_sparse_lu((n, entries) in dd_matrix(), b_seed in -1.0f64..1.0) {
        use sfet_numeric::krylov::{gmres, GmresOptions, GmresWorkspace, Identity, Ilu0, Jacobi};

        let (t, _) = build_matrices(n, &entries);
        let a = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| b_seed + (i as f64 * 0.73).cos()).collect();
        let x_lu = a.lu().unwrap().solve(&b).unwrap();
        let scale = x_lu.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let opts = GmresOptions::default();
        let mut ws = GmresWorkspace::new(n, opts.restart);

        let mut check = |x: &[f64], name: &str| -> std::result::Result<(), proptest::test_runner::TestCaseError> {
            for (g, l) in x.iter().zip(&x_lu) {
                prop_assert!(
                    (g - l).abs() <= 1e-9 * scale,
                    "{name}: gmres {g} vs lu {l} (scale {scale})"
                );
            }
            Ok(())
        };

        let mut x = vec![0.0; n];
        let stats = gmres(&a, &Identity::new(n), &b, &mut x, &opts, &mut ws).unwrap();
        prop_assert!(stats.converged);
        check(&x, "identity")?;

        x.fill(0.0);
        gmres(&a, &Jacobi::from_csc(&a).unwrap(), &b, &mut x, &opts, &mut ws).unwrap();
        check(&x, "jacobi")?;

        x.fill(0.0);
        gmres(&a, &Ilu0::factor(&a).unwrap(), &b, &mut x, &opts, &mut ws).unwrap();
        check(&x, "ilu0")?;
    }
}
