//! Deterministic fault injection for resilience testing.
//!
//! Retry and resume paths are only trustworthy if they can be *exercised*:
//! a [`FaultPlan`] describes, ahead of time, exactly where the stack should
//! pretend to fail. Faults are keyed on deterministic quantities — the
//! transient stepper's global attempt counter and the sweep engine's
//! `(task index, attempt)` pair — so an injected failure reproduces
//! bit-for-bit on any machine and at any worker count.
//!
//! A plan is built programmatically (tests) or parsed from the
//! `SFET_FAULT_PLAN` environment variable (CI smoke jobs). The grammar is
//! a comma-separated list of entries:
//!
//! ```text
//! newton@STEP     force a Newton failure on transient step attempt STEP
//! crash@STEP      simulate a process crash on transient step attempt STEP
//! task@INDEXxN    fail sweep task INDEX on its first N attempts
//! nan@STEP        poison the Newton solution with NaN from step attempt
//!                 STEP onwards (models a diverging / iterative-solver
//!                 breakdown that no retry can fix)
//! nanmeas@INDEX   make sweep task INDEX's reduced measurement NaN on
//!                 every attempt (exercises the non-finite sample paths)
//! ```
//!
//! Step attempts are 1-based and count *attempts*, not accepted steps, so a
//! plan keeps addressing the same solve even when earlier injected failures
//! add rejections. Example: `SFET_FAULT_PLAN="newton@40,crash@200"` makes
//! the solver reject step attempt 40 through its normal recovery ladder,
//! then aborts the run at attempt 200 as if the process had been killed.
//!
//! See `docs/RESILIENCE.md` for how the simulator and sweep layers consume
//! a plan.

use std::sync::Once;

/// Environment variable holding a fault plan for the whole process.
pub const FAULT_PLAN_ENV: &str = "SFET_FAULT_PLAN";

/// A deterministic schedule of injected failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Transient step attempts (1-based) whose Newton solve is failed.
    newton_steps: Vec<u64>,
    /// Transient step attempts (1-based) at which the run crashes.
    crash_steps: Vec<u64>,
    /// `(task index, failing attempts)`: task `index` fails its first
    /// `attempts` attempts (attempt numbering is 0-based).
    task_faults: Vec<(usize, usize)>,
    /// Transient step attempts (1-based) from which Newton solutions are
    /// poisoned with NaN (persistent: every attempt ≥ the entry fails).
    nan_steps: Vec<u64>,
    /// Sweep task indices whose reduced measurement is forced to NaN.
    nan_measurements: Vec<usize>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a forced Newton failure at transient step attempt `step`
    /// (1-based).
    pub fn with_newton_failure(mut self, step: u64) -> Self {
        self.newton_steps.push(step);
        self
    }

    /// Adds a simulated crash at transient step attempt `step` (1-based).
    pub fn with_crash(mut self, step: u64) -> Self {
        self.crash_steps.push(step);
        self
    }

    /// Makes sweep task `index` fail its first `attempts` attempts.
    pub fn with_task_failure(mut self, index: usize, attempts: usize) -> Self {
        self.task_faults.push((index, attempts));
        self
    }

    /// Poisons Newton solutions with NaN from transient step attempt
    /// `step` (1-based) onwards. Unlike [`with_newton_failure`]
    /// (one-shot, recoverable by the step-size ladder), the poison is
    /// persistent — it models genuine numerical breakdown and drives the
    /// run to a terminal simulator error at `dtmin`.
    ///
    /// [`with_newton_failure`]: FaultPlan::with_newton_failure
    pub fn with_nan_from(mut self, step: u64) -> Self {
        self.nan_steps.push(step);
        self
    }

    /// Forces sweep task `index`'s reduced measurement to NaN on every
    /// attempt, exercising the non-finite sample-rejection paths in the
    /// metric reducers.
    pub fn with_nan_measurement(mut self, index: usize) -> Self {
        self.nan_measurements.push(index);
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.newton_steps.is_empty()
            && self.crash_steps.is_empty()
            && self.task_faults.is_empty()
            && self.nan_steps.is_empty()
            && self.nan_measurements.is_empty()
    }

    /// Whether the Newton solve of transient step attempt `step` (1-based)
    /// must be failed.
    pub fn fail_newton(&self, step: u64) -> bool {
        self.newton_steps.contains(&step)
    }

    /// Whether the transient must simulate a crash at step attempt `step`
    /// (1-based).
    pub fn crash_at(&self, step: u64) -> bool {
        self.crash_steps.contains(&step)
    }

    /// Whether sweep task `index` must fail its attempt number `attempt`
    /// (0-based). A `task@INDEXxN` entry fails attempts `0..N`.
    pub fn fail_task(&self, index: usize, attempt: usize) -> bool {
        self.task_faults
            .iter()
            .any(|&(i, n)| i == index && attempt < n)
    }

    /// Whether the Newton solution of transient step attempt `step`
    /// (1-based) must be poisoned with NaN. A `nan@STEP` entry covers
    /// every attempt from `STEP` onwards.
    pub fn poison_newton(&self, step: u64) -> bool {
        self.nan_steps.iter().any(|&s| step >= s)
    }

    /// Whether sweep task `index`'s reduced measurement must be forced
    /// to NaN.
    pub fn nan_measurement(&self, index: usize) -> bool {
        self.nan_measurements.contains(&index)
    }

    /// Parses the grammar described in the module docs.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, arg) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry {entry:?} is missing '@'"))?;
            match kind.trim() {
                "newton" => plan.newton_steps.push(parse_step(entry, arg)?),
                "crash" => plan.crash_steps.push(parse_step(entry, arg)?),
                "task" => {
                    let (index, attempts) = arg.split_once(['x', 'X']).ok_or_else(|| {
                        format!("task entry {entry:?} must look like task@INDEXxN")
                    })?;
                    let index = index
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("task entry {entry:?} has a non-numeric index"))?;
                    let attempts = attempts.trim().parse::<usize>().map_err(|_| {
                        format!("task entry {entry:?} has a non-numeric attempt count")
                    })?;
                    plan.task_faults.push((index, attempts));
                }
                "nan" => plan.nan_steps.push(parse_step(entry, arg)?),
                "nanmeas" => plan.nan_measurements.push(
                    arg.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("nanmeas entry {entry:?} has a non-numeric index"))?,
                ),
                other => return Err(format!("unknown fault kind {other:?} in {entry:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads a plan from [`FAULT_PLAN_ENV`]. Returns `None` when the
    /// variable is unset, empty, or malformed; a malformed value warns on
    /// stderr once per process rather than silently arming garbage.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(FAULT_PLAN_ENV).ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        match Self::parse(&raw) {
            Ok(plan) if plan.is_empty() => None,
            Ok(plan) => Some(plan),
            Err(msg) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!("warning: ignoring invalid {FAULT_PLAN_ENV}: {msg}");
                });
                None
            }
        }
    }
}

fn parse_step(entry: &str, arg: &str) -> Result<u64, String> {
    match arg.trim().parse::<u64>() {
        Ok(0) | Err(_) => Err(format!(
            "fault entry {entry:?} needs a positive step number"
        )),
        Ok(step) => Ok(step),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_entry_kinds() {
        let plan = FaultPlan::parse("newton@40, crash@200 ,task@3x2").unwrap();
        assert!(plan.fail_newton(40));
        assert!(!plan.fail_newton(41));
        assert!(plan.crash_at(200));
        assert!(!plan.crash_at(40));
        assert!(plan.fail_task(3, 0));
        assert!(plan.fail_task(3, 1));
        assert!(!plan.fail_task(3, 2));
        assert!(!plan.fail_task(2, 0));
    }

    #[test]
    fn builder_matches_parser() {
        let built = FaultPlan::new()
            .with_newton_failure(7)
            .with_crash(9)
            .with_task_failure(1, 3);
        assert_eq!(
            built,
            FaultPlan::parse("newton@7,crash@9,task@1x3").unwrap()
        );
    }

    #[test]
    fn empty_and_blank_entries() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().with_crash(1).is_empty());
    }

    #[test]
    fn malformed_entries_rejected() {
        assert!(FaultPlan::parse("newton40").is_err());
        assert!(FaultPlan::parse("newton@zero").is_err());
        assert!(FaultPlan::parse("newton@0").is_err());
        assert!(FaultPlan::parse("task@3").is_err());
        assert!(FaultPlan::parse("task@ax2").is_err());
        assert!(FaultPlan::parse("task@1xq").is_err());
        assert!(FaultPlan::parse("explode@5").is_err());
    }

    #[test]
    fn parses_nan_entries() {
        let plan = FaultPlan::parse("nan@12,nanmeas@4").unwrap();
        assert!(!plan.poison_newton(11));
        assert!(plan.poison_newton(12), "poison starts at the entry step");
        assert!(plan.poison_newton(500), "poison is persistent");
        assert!(plan.nan_measurement(4));
        assert!(!plan.nan_measurement(3));
        assert_eq!(
            plan,
            FaultPlan::new().with_nan_from(12).with_nan_measurement(4)
        );
        assert!(FaultPlan::parse("nan@0").is_err());
        assert!(FaultPlan::parse("nanmeas@x").is_err());
    }

    #[test]
    fn repeated_entries_accumulate() {
        let plan = FaultPlan::parse("newton@3,newton@5").unwrap();
        assert!(plan.fail_newton(3) && plan.fail_newton(5));
        let plan = FaultPlan::parse("task@0x1,task@0x4").unwrap();
        assert!(plan.fail_task(0, 3), "widest entry wins");
    }
}
