//! Bracketing root refinement.
//!
//! The transient engine locates PTM threshold crossings by bracketing the
//! crossing between two accepted time points and refining with Brent's
//! method (falling back to bisection steps when the interpolation stalls).

use crate::{NumericError, Result};

/// Options for bracketing root refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the abscissa.
    pub xtol: f64,
    /// Maximum iterations.
    pub max_iter: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        RootOptions {
            xtol: 1e-15,
            max_iter: 100,
        }
    }
}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// # Errors
///
/// * [`NumericError::InvalidBracket`] if `f(a)` and `f(b)` have the same
///   sign (and neither is zero).
/// * [`NumericError::NonConvergence`] if the iteration limit is reached
///   before the bracket shrinks below `xtol`.
///
/// # Example
///
/// ```
/// use sfet_numeric::roots::{bisect, RootOptions};
/// # fn main() -> Result<(), sfet_numeric::NumericError> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, &RootOptions::default())?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    opts: &RootOptions,
) -> Result<f64> {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumericError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    for _ in 0..opts.max_iter {
        let m = 0.5 * (a + b);
        if (b - a).abs() <= opts.xtol {
            return Ok(m);
        }
        let fm = f(m);
        if fm == 0.0 {
            return Ok(m);
        }
        if fa * fm < 0.0 {
            b = m;
            fb = fm;
        } else {
            a = m;
            fa = fm;
        }
        let _ = fb;
    }
    Err(NumericError::NonConvergence {
        iterations: opts.max_iter,
        last_delta: (b - a).abs(),
    })
}

/// Finds a root of `f` in `[a, b]` using Brent's method (inverse quadratic
/// interpolation with bisection safeguards).
///
/// # Errors
///
/// Same conditions as [`bisect`].
///
/// # Example
///
/// ```
/// use sfet_numeric::roots::{brent, RootOptions};
/// # fn main() -> Result<(), sfet_numeric::NumericError> {
/// let root = brent(|x| x.cos() - x, 0.0, 1.0, &RootOptions::default())?;
/// assert!((root - 0.7390851332151607).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    opts: &RootOptions,
) -> Result<f64> {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumericError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..opts.max_iter {
        if fb == 0.0 || (b - a).abs() <= opts.xtol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let (lo, hi) = if lo < b { (lo, b) } else { (b, lo) };
        let cond_outside = s < lo || s > hi;
        let cond_slow = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0
        } else {
            (s - b).abs() >= (c - d).abs() / 2.0
        };
        if cond_outside || cond_slow {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericError::NonConvergence {
        iterations: opts.max_iter,
        last_delta: (b - a).abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, &RootOptions::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bisect_exact_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn bisect_invalid_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, &RootOptions::default()),
            Err(NumericError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let opts = RootOptions::default();
        let rb = bisect(f, 0.0, 2.0, &opts).unwrap();
        let rr = brent(f, 0.0, 2.0, &opts).unwrap();
        assert!((rb - rr).abs() < 1e-10);
        assert!((rr - 3f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn brent_steep_function() {
        // Mimics a PTM crossing: nearly flat then a steep wall.
        let f = |x: f64| (50.0 * (x - 0.73)).tanh();
        let r = brent(f, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert!((r - 0.73).abs() < 1e-9);
    }

    #[test]
    fn brent_descending_bracket_sign() {
        let f = |x: f64| 1.0 - x;
        let r = brent(f, 0.0, 5.0, &RootOptions::default()).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn brent_invalid_bracket() {
        assert!(matches!(
            brent(|_| 1.0, 0.0, 1.0, &RootOptions::default()),
            Err(NumericError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn loose_tolerance_converges_fast() {
        let opts = RootOptions {
            xtol: 1e-3,
            max_iter: 60,
        };
        let r = bisect(|x| x - 0.5, 0.0, 1.0, &opts).unwrap();
        assert!((r - 0.5).abs() < 1e-3);
    }
}
